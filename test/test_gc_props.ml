(* Property-based tests of the collector's safety and liveness
   invariants, driven by randomly generated mutator programs.

   A "program" is a list of operations (allocate, link, unlink, pin,
   unpin, tag, advise, GC) executed against a small heap with TeraHeap
   enabled. After the program runs, we compare the simulated heap state
   against a full-reachability oracle. *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Roots = Th_objmodel.Roots
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module H2_card_table = Th_core.H2_card_table
module Runtime = Th_psgc.Runtime
module Device = Th_device.Device

type op =
  | Alloc of int  (* size selector *)
  | Link of int * int  (* parent idx, child idx into live table *)
  | Unlink of int * int
  | Pin of int
  | Unpin of int
  | Tag of int * int  (* obj idx, label *)
  | Advise of int
  | Minor
  | Major

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun s -> Alloc s) (int_range 0 3));
        (6, map2 (fun a b -> Link (a, b)) (int_range 0 63) (int_range 0 63));
        (2, map2 (fun a b -> Unlink (a, b)) (int_range 0 63) (int_range 0 63));
        (3, map (fun a -> Pin a) (int_range 0 63));
        (2, map (fun a -> Unpin a) (int_range 0 63));
        (2, map2 (fun a l -> Tag (a, l)) (int_range 0 63) (int_range 0 7));
        (2, map (fun l -> Advise l) (int_range 0 7));
        (1, return Minor);
        (1, return Major);
      ])

let program_gen = QCheck.Gen.(list_size (int_range 10 120) op_gen)

let op_to_string = function
  | Alloc s -> Printf.sprintf "Alloc %d" s
  | Link (a, b) -> Printf.sprintf "Link(%d,%d)" a b
  | Unlink (a, b) -> Printf.sprintf "Unlink(%d,%d)" a b
  | Pin a -> Printf.sprintf "Pin %d" a
  | Unpin a -> Printf.sprintf "Unpin %d" a
  | Tag (a, l) -> Printf.sprintf "Tag(%d,%d)" a l
  | Advise l -> Printf.sprintf "Advise %d" l
  | Minor -> "Minor"
  | Major -> "Major"

let arbitrary_program =
  QCheck.make
    ~print:(fun p -> String.concat "; " (List.map op_to_string p))
    ~shrink:QCheck.Shrink.list program_gen

(* Execute a program; returns the runtime plus the table of every object
   ever allocated and the currently pinned set. *)
let base_config =
  {
    H2.default_config with
    H2.region_size = Size.kib 64;
    capacity = Size.mib 16;
  }

let execute ?(config = base_config) ?rset_mode ?on_runtime program =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 2) () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 = H2.create ~config ~clock ~costs ~device ~dr2_bytes:(Size.kib 256) () in
  let rt = Runtime.create ?rset_mode ~h2 ~clock ~costs ~heap () in
  (* Lets Test_verify attach its sanitizer before any operation runs. *)
  (match on_runtime with Some f -> f rt | None -> ());
  let table = Vec.create () in
  let pinned : (int, Obj_.t) Hashtbl.t = Hashtbl.create 16 in
  let sizes = [| 64; 256; 1024; 4096 |] in
  let get idx =
    if Vec.is_empty table then None
    else begin
      let o = Vec.get table (idx mod Vec.length table) in
      if Obj_.is_freed o then None else Some o
    end
  in
  (try
     List.iter
       (fun op ->
         match op with
         | Alloc s ->
             let o = Runtime.alloc rt ~size:sizes.(s) () in
             (* Pin transiently through the table? No: objects are only
                live if pinned or linked from a pinned object. *)
             Vec.push table o
         | Link (a, b) -> (
             match (get a, get b) with
             | Some pa, Some cb when pa != cb -> Runtime.write_ref rt pa cb
             | _ -> ())
         | Unlink (a, b) -> (
             match (get a, get b) with
             | Some pa, Some cb -> Runtime.unlink_ref rt pa cb
             | _ -> ())
         | Pin a -> (
             match get a with
             | Some o when not (Hashtbl.mem pinned o.Obj_.id) ->
                 Runtime.add_root rt o;
                 Hashtbl.replace pinned o.Obj_.id o
             | _ -> ())
         | Unpin a -> (
             match get a with
             | Some o when Hashtbl.mem pinned o.Obj_.id ->
                 Runtime.remove_root rt o;
                 Hashtbl.remove pinned o.Obj_.id
             | _ -> ())
         | Tag (a, label) -> (
             match get a with
             | Some o -> Runtime.h2_tag_root rt o ~label
             | _ -> ())
         | Advise label -> Runtime.h2_move rt ~label
         | Minor -> Runtime.minor_gc rt
         | Major -> Runtime.major_gc rt)
       program
   with Runtime.Out_of_memory _ | H2.Out_of_h2_space -> ());
  (rt, table, pinned)

let roots_of rt = Roots.to_list (Runtime.roots rt)

(* Invariant 1: no reachable object is ever freed. *)
let prop_no_reachable_object_freed =
  QCheck.Test.make ~name:"GC never frees a reachable object" ~count:120
    arbitrary_program
    (fun program ->
      let rt, _, _ = execute program in
      Runtime.major_gc rt;
      let reachable =
        Obj_.reachable ~roots:(roots_of rt) ~fence_h2:false
      in
      (* Order-insensitive: conjunction over every binding.
         th-lint: allow hashtbl-order *)
      Hashtbl.fold
        (fun _ (o : Obj_.t) ok ->
          if Obj_.is_freed o then begin
            Printf.eprintf "[freed-but-reachable] %s region=%d label=%d\n%!"
              (Format.asprintf "%a" Obj_.pp o)
              o.Obj_.h2_region o.Obj_.label;
            false
          end
          else ok)
        reachable true)

(* Invariant 2: completeness of H1 reclamation modulo TeraHeap's
   designed-in conservatism. The collector treats every H1 object
   referenced from H2 as live (backward references found through the
   card table, §3.4) without scanning H2 — so H1 objects on H1<->H2
   cycles are retained even when globally unreachable, and backward
   references from a still-unreclaimed dead region pin their targets
   for one extra cycle. The right oracle is therefore: reachable from
   the GC roots plus the backward-reference targets of all current H2
   residents, with tracing fenced at the H1/H2 boundary. Anything
   outside that set must be gone after two collections. *)
let prop_unreachable_h1_reclaimed =
  QCheck.Test.make ~name:"major GCs reclaim all dead H1 objects" ~count:120
    arbitrary_program
    (fun program ->
      let rt, table, _ = execute program in
      Runtime.major_gc rt;
      Runtime.major_gc rt;
      let backward_targets = ref [] in
      (match Runtime.h2 rt with
      | Some h2 ->
          Th_core.H2.iter_objects h2 (fun h ->
              Obj_.iter_refs
                (fun c ->
                  if Obj_.is_in_h1 c then
                    backward_targets := c :: !backward_targets)
                h)
      | None -> ());
      let retained =
        Obj_.reachable
          ~roots:(roots_of rt @ !backward_targets)
          ~fence_h2:true
      in
      let ok = ref true in
      Vec.iter
        (fun (o : Obj_.t) ->
          if Obj_.is_in_h1 o && not (Hashtbl.mem retained o.Obj_.id) then
            ok := false)
        table;
      !ok)

(* Invariant 3: space accounting matches the objects actually resident. *)
let prop_h1_accounting_consistent =
  QCheck.Test.make ~name:"H1 used bytes match resident objects" ~count:120
    arbitrary_program
    (fun program ->
      let rt, _, _ = execute program in
      Runtime.major_gc rt;
      let heap = Runtime.heap rt in
      let sum = ref 0 in
      Vec.iter (fun o -> sum := !sum + Obj_.footprint o) heap.H1_heap.old_objs;
      !sum = heap.H1_heap.old_used
      && heap.H1_heap.eden_used = 0
      && heap.H1_heap.survivor_used = 0)

(* Invariant 4: a freed H2 region really had no incoming references —
   equivalently, no living object anywhere still references a freed
   object. *)
let prop_no_live_object_references_freed =
  QCheck.Test.make ~name:"no live object references a freed one" ~count:120
    arbitrary_program
    (fun program ->
      let rt, table, _ = execute program in
      Runtime.major_gc rt;
      let ok = ref true in
      Vec.iter
        (fun (o : Obj_.t) ->
          if not (Obj_.is_freed o) then
            Obj_.iter_refs
              (fun c ->
                (* Backward/forward references from live objects must
                   never dangle. *)
                if Obj_.is_freed c then ok := false)
              o)
        table;
      !ok)

(* Invariant 5: objects moved by one h2_move land in regions owned by
   their label. *)
let prop_label_grouping =
  QCheck.Test.make ~name:"H2 regions group objects by label" ~count:120
    arbitrary_program
    (fun program ->
      let rt, table, _ = execute program in
      Runtime.major_gc rt;
      (* Collect region -> labels mapping over H2 residents. *)
      let region_label : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      Vec.iter
        (fun (o : Obj_.t) ->
          if o.Obj_.loc = Obj_.In_h2 then
            match Hashtbl.find_opt region_label o.Obj_.h2_region with
            | None -> Hashtbl.replace region_label o.Obj_.h2_region o.Obj_.label
            | Some l -> if l <> o.Obj_.label then ok := false)
        table;
      !ok)

(* Invariant 6: card-table soundness — any H2-resident object holding a
   reference to a young H1 object lies in a segment whose card is dirty
   or youngGen, so the next minor GC will find the backward reference. *)
let prop_backward_ref_cards_sound =
  QCheck.Test.make ~name:"H2 cards cover all backward refs to young objects"
    ~count:120 arbitrary_program
    (fun program ->
      let rt, table, _ = execute program in
      match Runtime.h2 rt with
      | None -> true
      | Some h2 ->
          let ct = H2.card_table h2 in
          let cfg = H2.config h2 in
          let ok = ref true in
          Vec.iter
            (fun (o : Obj_.t) ->
              if o.Obj_.loc = Obj_.In_h2 then begin
                let has_young = ref false in
                Obj_.iter_refs
                  (fun c -> if Obj_.is_young c then has_young := true)
                  o;
                if !has_young then begin
                  let gaddr =
                    (o.Obj_.h2_region * cfg.H2.region_size) + o.Obj_.addr
                  in
                  let seg = H2_card_table.segment_of ct ~gaddr in
                  match H2_card_table.state ct ~seg with
                  | H2_card_table.Dirty | H2_card_table.Young_gen -> ()
                  | H2_card_table.Clean | H2_card_table.Old_gen -> ok := false
                end
              end)
            table;
          !ok)

(* Invariant 7: dependency-list reclamation is never less conservative
   than the Union-Find alternative would allow it to be unsafe — freed
   regions cannot be reachable from H1 roots. *)
let prop_freed_regions_unreachable =
  QCheck.Test.make ~name:"freed H2 objects are unreachable from roots"
    ~count:120 arbitrary_program
    (fun program ->
      let rt, table, _ = execute program in
      Runtime.major_gc rt;
      let reachable = Obj_.reachable ~roots:(roots_of rt) ~fence_h2:false in
      let ok = ref true in
      Vec.iter
        (fun (o : Obj_.t) ->
          if Obj_.is_freed o && Hashtbl.mem reachable o.Obj_.id then
            ok := false)
        table;
      !ok)

(* The safety invariant must hold under every H2 configuration variant:
   the Union-Find reclamation mode, size-segregated placement, unaligned
   (vanilla) card stripes, and dynamic thresholds. *)
let prop_safety_under_config name config =
  QCheck.Test.make ~name ~count:80 arbitrary_program (fun program ->
      let rt, table, _ = execute ~config program in
      Runtime.major_gc rt;
      let reachable = Obj_.reachable ~roots:(roots_of rt) ~fence_h2:false in
      (* Order-insensitive: conjunction over every binding.
         th-lint: allow hashtbl-order *)
      Hashtbl.fold
        (fun _ (o : Obj_.t) ok -> ok && not (Obj_.is_freed o))
        reachable true
      && Th_sim.Vec.fold_left
           (fun ok (o : Obj_.t) ->
             ok
             &&
             if Obj_.is_freed o then
               not (Hashtbl.mem reachable o.Obj_.id)
             else true)
           true table)

let prop_safety_region_groups =
  prop_safety_under_config "safety holds under Union-Find region groups"
    { base_config with H2.reclaim_mode = H2.Region_groups }

let prop_safety_size_segregated =
  prop_safety_under_config "safety holds under size-segregated placement"
    { base_config with H2.placement = H2.Size_segregated }

let prop_safety_unaligned_stripes =
  prop_safety_under_config "safety holds with vanilla (unaligned) stripes"
    { base_config with H2.stripe_aligned = false }

let prop_safety_dynamic_thresholds =
  prop_safety_under_config "safety holds with dynamic thresholds"
    { base_config with H2.dynamic_thresholds = true }

(* Invariant 8: the card-indexed remembered set is an exact drop-in for
   the linear old-generation sweep — same program, same simulated clock,
   same GC counts, same final object state. The old generation is
   address-sorted and buckets keep insertion (= address) order, so both
   modes visit the same objects in the same order and must charge
   identical simulated time. *)
let prop_rset_modes_equivalent =
  QCheck.Test.make
    ~name:"card-indexed rset is observationally equal to linear scan"
    ~count:120 arbitrary_program
    (fun program ->
      let summarize rset_mode =
        let rt, table, _ = execute ~rset_mode program in
        let module Gc_stats = Th_psgc.Gc_stats in
        let stats = Runtime.stats rt in
        let objs =
          List.map
            (fun (o : Obj_.t) -> (o.Obj_.id, o.Obj_.loc, o.Obj_.addr))
            (Vec.to_list table)
        in
        ( Clock.now_ns (Runtime.clock rt),
          Gc_stats.minor_count stats,
          Gc_stats.major_count stats,
          Th_minijvm.Card_table.dirty_count (Runtime.heap rt).H1_heap.cards,
          objs )
      in
      summarize Th_psgc.Rt.Card_buckets = summarize Th_psgc.Rt.Linear_scan)

(* Invariant 9: the remembered-set index is exact — for every card, the
   bucket holds precisely the old-generation objects whose start address
   lies on that card, in address order. *)
let prop_rset_index_exact =
  QCheck.Test.make ~name:"card buckets exactly partition the old generation"
    ~count:120 arbitrary_program
    (fun program ->
      let rt, _, _ = execute program in
      let heap = Runtime.heap rt in
      let ct = heap.H1_heap.cards in
      let module Card_table = Th_minijvm.Card_table in
      (* Expected bucket contents from a fresh sweep of [old_objs]. *)
      let expected : (int, Obj_.t list) Hashtbl.t = Hashtbl.create 64 in
      Vec.iter
        (fun (o : Obj_.t) ->
          let c = Card_table.card_of_addr ct o.Obj_.addr in
          let tl = Option.value ~default:[] (Hashtbl.find_opt expected c) in
          Hashtbl.replace expected c (o :: tl))
        heap.H1_heap.old_objs;
      let ids objs = List.map (fun (o : Obj_.t) -> o.Obj_.id) objs in
      let ok = ref true in
      for c = 0 to Card_table.num_cards ct - 1 do
        let exp =
          List.rev (Option.value ~default:[] (Hashtbl.find_opt expected c))
        in
        let got = ref [] in
        Card_table.iter_card_objects ct ~card:c (fun o -> got := o :: !got);
        if ids (List.rev !got) <> ids exp then ok := false
      done;
      !ok)

(* Invariant 10: after a major GC the space vectors hold no [Freed]
   entries and their backing arrays carry no slack referencing them. *)
let prop_no_freed_after_major =
  QCheck.Test.make ~name:"major GC compacts Freed entries out of the vectors"
    ~count:120 arbitrary_program
    (fun program ->
      let rt, _, _ = execute program in
      Runtime.major_gc rt;
      let heap = Runtime.heap rt in
      let no_freed v =
        Vec.fold_left (fun ok (o : Obj_.t) -> ok && not (Obj_.is_freed o)) true v
      in
      no_freed heap.H1_heap.old_objs
      && no_freed heap.H1_heap.eden
      && no_freed heap.H1_heap.survivor)

let props =
  [
    prop_no_reachable_object_freed;
    prop_rset_modes_equivalent;
    prop_rset_index_exact;
    prop_no_freed_after_major;
    prop_safety_region_groups;
    prop_safety_size_segregated;
    prop_safety_unaligned_stripes;
    prop_safety_dynamic_thresholds;
    prop_unreachable_h1_reclaimed;
    prop_h1_accounting_consistent;
    prop_no_live_object_references_freed;
    prop_label_grouping;
    prop_backward_ref_cards_sound;
    prop_freed_regions_unreachable;
  ]

let suite = List.map QCheck_alcotest.to_alcotest props
