(* Tests for the Kryo-like serializer model.

   Test bodies call Serializer.serialize bare: alcotest isolates each
   case, so a Not_serializable escaping a fixture fails that one case
   with a backtrace — the suite needs no fault barrier of its own. *)
[@@@th.allow "fault-barrier"]

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module Runtime = Th_psgc.Runtime
module Serializer = Th_serde.Serializer

let fresh_rt ?(heap_bytes = Size.mib 16) () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes () in
  Runtime.create ~clock ~costs:Costs.default ~heap ()

let build_group rt ~elems ~elem_size =
  let root = Runtime.alloc rt ~size:128 () in
  Runtime.add_root rt root;
  for _ = 1 to elems do
    let e = Runtime.alloc rt ~size:elem_size () in
    Runtime.write_ref rt root e
  done;
  root

let test_serialize_counts_closure () =
  let rt = fresh_rt () in
  let root = build_group rt ~elems:10 ~elem_size:100 in
  let s = Serializer.serialize rt root in
  Alcotest.(check int) "root + 10 elements" 11 s.Serializer.objects;
  Alcotest.(check bool) "stream smaller than heap form" true
    (s.Serializer.bytes < 128 + (10 * 100))

let test_serialize_charges_sd_time () =
  let rt = fresh_rt () in
  let root = build_group rt ~elems:10 ~elem_size:1000 in
  let before = (Clock.breakdown (Runtime.clock rt)).Clock.serde_io_ns in
  ignore (Serializer.serialize rt root);
  Alcotest.(check bool) "S/D time charged" true
    ((Clock.breakdown (Runtime.clock rt)).Clock.serde_io_ns > before)

let test_roundtrip_preserves_shape () =
  let rt = fresh_rt () in
  let root = build_group rt ~elems:20 ~elem_size:256 in
  let s = Serializer.serialize rt root in
  let root' = Serializer.deserialize rt s in
  Alcotest.(check int) "same element count" (Obj_.ref_count root)
    (Obj_.ref_count root');
  Alcotest.(check int) "same element size" 256
    (List.hd (Obj_.refs_list root')).Obj_.size;
  Alcotest.(check bool) "fresh objects" true (root != root');
  Runtime.remove_root rt root'

let test_deserialize_returns_pinned () =
  let rt = fresh_rt () in
  let root = build_group rt ~elems:5 ~elem_size:100 in
  let s = Serializer.serialize rt root in
  let root' = Serializer.deserialize rt s in
  (* Survives GC without any other anchor. *)
  Runtime.major_gc rt;
  Alcotest.(check bool) "pinned through GC" false (Obj_.is_freed root');
  Runtime.remove_root rt root';
  Runtime.major_gc rt;
  Alcotest.(check bool) "reclaimed after unpin" true (Obj_.is_freed root')

let test_serialize_rejects_jvm_metadata () =
  let rt = fresh_rt () in
  let root = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt root;
  let klass = Runtime.alloc rt ~kind:Obj_.Jvm_metadata ~size:64 () in
  Runtime.write_ref rt root klass;
  Alcotest.(check bool) "raises Not_serializable" true
    (try
       ignore (Serializer.serialize rt root);
       false
     with Serializer.Not_serializable _ -> true)

let test_serde_allocates_temporaries () =
  let rt = fresh_rt () in
  let root = build_group rt ~elems:200 ~elem_size:1024 in
  let heap = Runtime.heap rt in
  let used_before = H1_heap.live_bytes heap in
  ignore (Serializer.serialize rt root);
  (* Temp buffers are dead but occupy eden until the next minor GC. *)
  Alcotest.(check bool) "temporary heap pressure" true
    (H1_heap.live_bytes heap > used_before)

let test_charge_stream_parallelizes () =
  let run threads =
    let clock = Clock.create () in
    let heap = H1_heap.create ~heap_bytes:(Size.mib 16) () in
    let costs = Costs.with_mutator_threads Costs.default threads in
    let rt = Runtime.create ~clock ~costs ~heap () in
    Serializer.charge_stream rt ~bytes:(Size.mib 1) ~objects:1000;
    (Clock.breakdown clock).Clock.serde_io_ns
  in
  Alcotest.(check bool) "S/D parallelizes over mutator threads (§7.6)" true
    (run 16 < run 4)

let suite =
  [
    Alcotest.test_case "serialize walks the closure" `Quick
      test_serialize_counts_closure;
    Alcotest.test_case "serialize charges S/D time" `Quick
      test_serialize_charges_sd_time;
    Alcotest.test_case "roundtrip preserves group shape" `Quick
      test_roundtrip_preserves_shape;
    Alcotest.test_case "deserialize returns pinned root" `Quick
      test_deserialize_returns_pinned;
    Alcotest.test_case "JVM metadata is not serializable" `Quick
      test_serialize_rejects_jvm_metadata;
    Alcotest.test_case "S/D creates temporary heap pressure" `Quick
      test_serde_allocates_temporaries;
    Alcotest.test_case "S/D parallelizes across threads" `Quick
      test_charge_stream_parallelizes;
  ]
