(* Tests for the flight recorder (lib/trace): ring-buffer accounting,
   both exporters, golden compact-text traces of one tiny Spark and one
   tiny Giraph workload, qcheck properties over random mutator programs
   (span nesting, timestamp monotonicity, rollup exactness, and trace
   determinism), and the fault timeline.

   Golden files live in test/golden/; regenerate them with
   `TH_UPDATE_GOLDEN=1 dune runtest` (the update path writes back into
   the source tree, not just the build sandbox). *)

open Th_sim
module Event = Th_trace.Event
module Recorder = Th_trace.Recorder
module Export = Th_trace.Export
module Rollup = Th_trace.Rollup
module Counters = Th_verify.Counters
module Fault = Th_sim.Fault
module Device = Th_device.Device
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Runtime = Th_psgc.Runtime
module Gc_stats = Th_psgc.Gc_stats
module Context = Th_spark.Context
module Rdd = Th_spark.Rdd
module Block_manager = Th_spark.Block_manager
module Stage = Th_spark.Stage
module Engine = Th_giraph.Engine
module Setups = Th_baselines.Setups
module Spark_profiles = Th_workloads.Spark_profiles
module Spark_driver = Th_workloads.Spark_driver
module Run_result = Th_workloads.Run_result

(* --- ring-buffer accounting ------------------------------------------ *)

let test_ring_drops_oldest () =
  let tr = Recorder.create ~capacity:16 ~lane:3 () in
  for i = 0 to 19 do
    Recorder.instant tr ~ts:(float_of_int i) ~cat:"t" ~name:"e" ()
  done;
  Alcotest.(check int) "lane" 3 (Recorder.lane tr);
  Alcotest.(check int) "length capped at capacity" 16 (Recorder.length tr);
  Alcotest.(check int) "total counts everything" 20 (Recorder.total tr);
  Alcotest.(check int) "dropped = overflow" 4 (Recorder.dropped tr);
  let events = Recorder.events tr in
  Alcotest.(check int) "events returns the window" 16 (List.length events);
  (match events with
  | first :: _ ->
      Alcotest.(check (float 0.0)) "oldest survivor" 4.0 first.Event.ts
  | [] -> Alcotest.fail "empty window");
  (match List.rev events with
  | last :: _ -> Alcotest.(check (float 0.0)) "newest kept" 19.0 last.Event.ts
  | [] -> Alcotest.fail "empty window");
  Recorder.clear tr;
  Alcotest.(check int) "clear empties the window" 0 (Recorder.length tr);
  Alcotest.(check int) "clear resets totals" 0 (Recorder.total tr)

let test_ring_capacity_clamped () =
  (* Requested capacity 1 is clamped up to the 16-slot floor. *)
  let tr = Recorder.create ~capacity:1 ~lane:0 () in
  for i = 0 to 15 do
    Recorder.instant tr ~ts:(float_of_int i) ~cat:"t" ~name:"e" ()
  done;
  Alcotest.(check int) "16 events fit" 0 (Recorder.dropped tr);
  Recorder.instant tr ~ts:16.0 ~cat:"t" ~name:"e" ();
  Alcotest.(check int) "17th drops one" 1 (Recorder.dropped tr)

(* --- exporters ------------------------------------------------------- *)

let sample_recorder () =
  let tr = Recorder.create ~lane:1 () in
  Recorder.span_begin tr ~ts:1000.0 ~cat:"gc" ~name:"minor_gc" ();
  Recorder.complete tr ~ts:1500.0 ~dur_ns:250.0 ~cat:"device" ~name:"read"
    ~args:[ ("bytes", Event.Int 4096) ]
    ();
  Recorder.span_end tr ~ts:2000.0 ~cat:"gc" ~name:"minor_gc"
    ~args:[ ("dur_ns", Event.Float 1000.0) ]
    ();
  Recorder.instant tr ~ts:2000.0 ~cat:"safepoint" ~name:"after_minor" ();
  Recorder.counter tr ~ts:2000.0 ~cat:"counter" ~name:"page_cache"
    ~args:[ ("hits", Event.Int 3); ("misses", Event.Int 1) ];
  tr

let test_text_exporter_format () =
  let text = Export.to_text (Recorder.events (sample_recorder ())) in
  Alcotest.(check string) "compact text, one line per event"
    "1 1000.000 B gc minor_gc\n\
     1 1500.000 X device read dur=250.000 bytes=4096\n\
     1 2000.000 E gc minor_gc dur_ns=1000.000\n\
     1 2000.000 I safepoint after_minor\n\
     1 2000.000 C counter page_cache hits=3 misses=1\n"
    text

let test_chrome_exporter_format () =
  let json = Export.to_chrome_json (Recorder.events (sample_recorder ())) in
  Alcotest.(check string) "chrome trace events (ts/dur in microseconds)"
    ("{\"traceEvents\":[\n"
   ^ "{\"name\":\"minor_gc\",\"cat\":\"gc\",\"ph\":\"B\",\"ts\":1.000,\"pid\":0,\"tid\":1},\n"
   ^ "{\"name\":\"read\",\"cat\":\"device\",\"ph\":\"X\",\"ts\":1.500,\"dur\":0.250,\"pid\":0,\"tid\":1,\"args\":{\"bytes\":4096}},\n"
   ^ "{\"name\":\"minor_gc\",\"cat\":\"gc\",\"ph\":\"E\",\"ts\":2.000,\"pid\":0,\"tid\":1,\"args\":{\"dur_ns\":1000.000}},\n"
   ^ "{\"name\":\"after_minor\",\"cat\":\"safepoint\",\"ph\":\"i\",\"ts\":2.000,\"s\":\"t\",\"pid\":0,\"tid\":1},\n"
   ^ "{\"name\":\"page_cache\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":2.000,\"pid\":0,\"tid\":1,\"args\":{\"hits\":3,\"misses\":1}}\n"
   ^ "],\"displayTimeUnit\":\"ms\"}\n")
    json

let test_merge_keeps_lane_order () =
  let a = Recorder.create ~lane:0 () in
  let b = Recorder.create ~lane:1 () in
  Recorder.instant a ~ts:5.0 ~cat:"t" ~name:"a0" ();
  Recorder.instant b ~ts:1.0 ~cat:"t" ~name:"b0" ();
  Recorder.instant a ~ts:7.0 ~cat:"t" ~name:"a1" ();
  let names = List.map (fun e -> e.Event.name) (Export.merge [ a; b ]) in
  Alcotest.(check (list string))
    "argument order, not timestamp order; per-lane order preserved"
    [ "a0"; "a1"; "b0" ] names

(* --- span-structure helpers ------------------------------------------ *)

(* Walk an event list checking stack discipline per lane: every Span_end
   must close the innermost open span of its lane. Returns the open-span
   count left at the end. *)
let check_nesting events =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 4 in
  let stack lane = Option.value ~default:[] (Hashtbl.find_opt stacks lane) in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Span_begin ->
          Hashtbl.replace stacks e.Event.lane (e.Event.name :: stack e.Event.lane)
      | Event.Span_end -> (
          match stack e.Event.lane with
          | top :: rest when String.equal top e.Event.name ->
              Hashtbl.replace stacks e.Event.lane rest
          | top :: _ ->
              Alcotest.failf "span_end %s closes open span %s" e.Event.name top
          | [] -> Alcotest.failf "span_end %s with no open span" e.Event.name)
      | Event.Complete _ | Event.Instant | Event.Counter -> ())
    events;
  (* Order-insensitive: sums the open-span counts. th-lint: allow hashtbl-order *)
  Hashtbl.fold (fun _ s n -> n + List.length s) stacks 0

(* Events are recorded in simulated-time order, but a Complete event is
   stamped with its start time and recorded when the operation finishes
   (instants injected mid-operation, e.g. faults, land between the two).
   The monotone quantity is therefore the record time: ts + dur for
   Complete events, ts for everything else. *)
let record_time (e : Event.t) =
  match e.Event.kind with
  | Event.Complete dur -> e.Event.ts +. dur
  | Event.Span_begin | Event.Span_end | Event.Instant | Event.Counter ->
      e.Event.ts

let check_monotone events =
  ignore
    (List.fold_left
       (fun prev (e : Event.t) ->
         let t = record_time e in
         if t < prev then
           Alcotest.failf "record time went backwards: %.3f after %.3f" t prev;
         t)
       neg_infinity events)

(* --- golden traces --------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* dune runs the test binary in _build/default/test with golden/ staged
   as a dep; on update we also write through to the source tree so the
   regenerated file survives the build directory. *)
let update_golden ~file text =
  let wrote = ref false in
  List.iter
    (fun dir ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        write_file (Filename.concat dir file) text;
        wrote := true
      end)
    [ "golden"; "../../../test/golden"; "test/golden" ];
  if not !wrote then Alcotest.failf "no golden directory found to update %s" file

let golden_check ~file text =
  match Sys.getenv_opt "TH_UPDATE_GOLDEN" with
  | Some _ -> update_golden ~file text
  | None ->
      let path = Filename.concat "golden" file in
      if not (Sys.file_exists path) then
        Alcotest.failf "missing %s (regenerate: TH_UPDATE_GOLDEN=1 dune runtest)"
          path
      else begin
        let expected = read_file path in
        if not (String.equal expected text) then begin
          let el = String.split_on_char '\n' expected in
          let al = String.split_on_char '\n' text in
          let rec first_diff i = function
            | e :: es, a :: as_ ->
                if String.equal e a then first_diff (i + 1) (es, as_)
                else (i, e, a)
            | e :: _, [] -> (i, e, "<end of trace>")
            | [], a :: _ -> (i, "<end of golden>", a)
            | [], [] -> (i, "", "")
          in
          let line, e, a = first_diff 1 (el, al) in
          Alcotest.failf
            "%s differs at line %d:\n golden: %s\n actual: %s\n\
             (regenerate with TH_UPDATE_GOLDEN=1 dune runtest)"
            path line e a
        end
      end

(* A tiny deterministic Spark scenario: cache two partitions through the
   TeraHeap block manager inside a stage, advise+move them at a major
   GC, then read one back in a second stage. Everything is simulated, so
   the trace is a pure function of this code. *)
let traced_spark_run () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 24) () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 =
    H2.create ~config:H2.default_config ~clock ~costs:Costs.default ~device
      ~dr2_bytes:(Size.mib 8) ()
  in
  let rt = Runtime.create ~h2 ~clock ~costs:Costs.default ~heap () in
  let ctx = Context.create ~mode:Context.Teraheap_cache rt in
  let tr = Recorder.create ~lane:0 () in
  Clock.set_tracer clock (Some tr);
  let bm = Block_manager.create ctx in
  let rdd =
    Rdd.create ctx ~partitions:2 ~elems_per_partition:16 ~elem_size:512 ()
  in
  Stage.run ctx ~shuffle_bytes:(Size.kib 128) ~transient_bytes:(Size.kib 32)
    ~work:(fun () ->
      for pidx = 0 to rdd.Rdd.partitions - 1 do
        let group = Rdd.build_partition ctx rdd in
        Block_manager.put bm ~rdd_id:rdd.Rdd.id ~pidx group;
        Runtime.remove_root rt group
      done)
    ();
  Runtime.major_gc rt;
  Stage.run ctx
    ~work:(fun () ->
      Block_manager.get bm ~rdd_id:rdd.Rdd.id ~pidx:0 ~consume:(fun _ -> ()))
    ();
  Runtime.minor_gc rt;
  (rt, tr)

let test_golden_spark () =
  let _, tr = traced_spark_run () in
  Alcotest.(check int) "no ring drops" 0 (Recorder.dropped tr);
  let events = Recorder.events tr in
  Alcotest.(check int) "all spans closed" 0 (check_nesting events);
  golden_check ~file:"spark_small.trace" (Export.to_text events)

(* A tiny deterministic Giraph scenario: three supersteps of the BSP
   engine in TeraHeap mode over a 120-vertex graph, with a heap small
   enough that the message churn forces real GC (and H2) activity onto
   the timeline. *)
let traced_giraph_run () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 2) () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 =
    H2.create ~config:H2.default_config ~clock ~costs:Costs.default ~device
      ~dr2_bytes:(Size.mib 8) ()
  in
  let rt = Runtime.create ~h2 ~clock ~costs:Costs.default ~heap () in
  let tr = Recorder.create ~lane:0 () in
  Clock.set_tracer clock (Some tr);
  let algo =
    {
      Engine.name = "golden";
      supersteps = 3;
      message_bytes = (fun ~superstep:_ ~total_edges -> total_edges * 2000);
      combine_factor = 2.0;
      active_fraction = (fun ~superstep:_ -> 1.0);
      update_fraction = 0.5;
    }
  in
  let params =
    { Engine.partitions = 2; vertices = 120; avg_degree = 6; edge_bytes = 16 }
  in
  let result =
    Engine.run rt ~mode:Engine.Teraheap ~prng:(Prng.create 5L) ~algo params
  in
  (result, tr)

let test_golden_giraph () =
  let result, tr = traced_giraph_run () in
  Alcotest.(check int) "ran all supersteps" 3 result.Engine.supersteps_run;
  Alcotest.(check int) "no ring drops" 0 (Recorder.dropped tr);
  let events = Recorder.events tr in
  Alcotest.(check int) "all spans closed" 0 (check_nesting events);
  golden_check ~file:"giraph_small.trace" (Export.to_text events)

(* --- qcheck properties over random mutator programs ------------------ *)

let record_program ?(capacity = Recorder.default_capacity) program =
  let tr = Recorder.create ~capacity ~lane:0 () in
  let rt, _, _ =
    Test_gc_props.execute
      ~on_runtime:(fun rt -> Clock.set_tracer (Runtime.clock rt) (Some tr))
      program
  in
  (rt, tr)

(* Every span end closes the innermost open span of its lane. Programs
   may abort mid-operation (tiny heap, tiny H2), which can legally leave
   spans open at the end — but can never produce a mismatched close. *)
let prop_spans_nested =
  QCheck.Test.make ~name:"trace spans are properly nested per lane" ~count:60
    Test_gc_props.arbitrary_program
    (fun program ->
      let _, tr = record_program program in
      ignore (check_nesting (Recorder.events tr));
      true)

let prop_timestamps_monotone =
  QCheck.Test.make ~name:"trace record times never go backwards" ~count:60
    Test_gc_props.arbitrary_program
    (fun program ->
      let _, tr = record_program program in
      check_monotone (Recorder.events tr);
      true)

(* The rollup re-derives the GC and device breakdown from events alone
   and must agree with the live counters bit-for-bit. *)
let prop_rollup_exact =
  QCheck.Test.make ~name:"rollup from events = live counters, bit-exact"
    ~count:60 Test_gc_props.arbitrary_program
    (fun program ->
      let rt, tr = record_program program in
      if Recorder.dropped tr <> 0 then
        QCheck.Test.fail_report "ring dropped events; buffer too small";
      let r = Rollup.of_events (Recorder.events tr) in
      let gs = Runtime.stats rt in
      let ph = Gc_stats.phase_totals gs in
      let check what a b =
        if a <> b then QCheck.Test.fail_reportf "%s: rollup %d <> stats %d" what a b
      in
      let checkf what a b =
        (* bit-exact: both sides sum the same floats in the same order *)
        if a <> b then
          QCheck.Test.fail_reportf "%s: rollup %.17g <> stats %.17g" what a b
      in
      check "minor count" r.Rollup.minor_gcs (Gc_stats.minor_count gs);
      check "major count" r.Rollup.major_gcs (Gc_stats.major_count gs);
      checkf "minor total" r.Rollup.minor_total_ns (Gc_stats.minor_total_ns gs);
      checkf "major total" r.Rollup.major_total_ns (Gc_stats.major_total_ns gs);
      checkf "marking" r.Rollup.marking_ns ph.Gc_stats.marking_ns;
      checkf "precompact" r.Rollup.precompact_ns ph.Gc_stats.precompact_ns;
      checkf "adjust" r.Rollup.adjust_ns ph.Gc_stats.adjust_ns;
      checkf "compact" r.Rollup.compact_ns ph.Gc_stats.compact_ns;
      (match Rollup.check_against r ~final:(Counters.capture rt) with
      | [] -> ()
      | ms ->
          QCheck.Test.fail_reportf "device counters diverge: %s"
            (String.concat "; " ms));
      true)

(* Re-running the same program yields a byte-identical text trace: the
   property behind --jobs determinism (workload cells record into
   per-lane recorders merged in argument order, so scheduling cannot
   reorder anything). *)
let prop_trace_deterministic =
  QCheck.Test.make ~name:"same program, byte-identical trace" ~count:20
    Test_gc_props.arbitrary_program
    (fun program ->
      let run () =
        let _, tr = record_program program in
        Export.to_text (Recorder.events tr)
      in
      String.equal (run ()) (run ()))

(* --- fault timeline -------------------------------------------------- *)

let injection_names =
  [ "read_error"; "write_error"; "spike"; "stall"; "device_full" ]

let count_fault events name =
  List.length
    (List.filter
       (fun (e : Event.t) ->
         String.equal e.Event.cat "fault" && String.equal e.Event.name name)
       events)

(* Device-level: every counter the injector charges has exactly one
   instant on the timeline, per kind. *)
let test_fault_events_match_injector_counters () =
  let plan =
    {
      Fault.default_plan with
      Fault.seed = 7L;
      read_error_rate = 0.02;
      write_error_rate = 0.02;
      spike_rate = 0.005;
      stall_rate = 0.01;
      full_rate = 5e-4;
    }
  in
  let clock = Clock.create () in
  let tr = Recorder.create ~lane:0 () in
  Clock.set_tracer clock (Some tr);
  let inj = Fault.create plan in
  let device = Device.create ~faults:inj clock Device.Nvme_ssd in
  for _ = 1 to 2000 do
    Device.read device ~cat:Clock.Serde_io ~random:true 4096;
    Device.write device ~cat:Clock.Serde_io ~random:true 4096
  done;
  Alcotest.(check int) "no ring drops" 0 (Recorder.dropped tr);
  let events = Recorder.events tr in
  let fs = Fault.stats inj in
  Alcotest.(check bool) "faults actually injected" true
    (Fault.faults_injected fs > 0);
  Alcotest.(check int) "read errors" fs.Fault.read_errors
    (count_fault events "read_error");
  Alcotest.(check int) "write errors" fs.Fault.write_errors
    (count_fault events "write_error");
  Alcotest.(check int) "spikes" fs.Fault.spiked_ops
    (count_fault events "spike");
  Alcotest.(check int) "stalls" fs.Fault.stalls (count_fault events "stall");
  Alcotest.(check int) "ENOSPC rejections" fs.Fault.enospc_rejections
    (count_fault events "device_full");
  Alcotest.(check int) "retries" fs.Fault.retries
    (count_fault events "retry");
  Alcotest.(check int) "exhausted retries" fs.Fault.exhausted_retries
    (count_fault events "retry_exhausted");
  let r = Rollup.of_events events in
  Alcotest.(check int) "rollup counts every injection"
    (Fault.faults_injected fs) r.Rollup.faults_injected;
  check_monotone events

(* H2-exhaustion degradation (PR 1): the degraded-compaction path must
   leave its own marks on the timeline. *)
let test_h2_degradation_on_timeline () =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 8) () in
  let device = Device.create clock Device.Nvme_ssd in
  let config =
    { H2.default_config with H2.region_size = Size.kib 64; capacity = Size.kib 128 }
  in
  let h2 = H2.create ~config ~clock ~costs ~device ~dr2_bytes:(Size.mib 1) () in
  let rt = Runtime.create ~h2 ~clock ~costs ~heap () in
  let tr = Recorder.create ~lane:0 () in
  Clock.set_tracer clock (Some tr);
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  let part = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt holder part;
  for _ = 1 to 60 do
    let e = Runtime.alloc rt ~size:(Size.kib 8) () in
    Runtime.write_ref rt part e
  done;
  Runtime.h2_tag_root rt part ~label:4;
  Runtime.h2_move rt ~label:4;
  Runtime.major_gc rt;
  Runtime.major_gc rt;
  let s = H2.stats h2 in
  Alcotest.(check bool) "scenario degraded" true (s.H2.degraded_moves >= 2);
  let events = Recorder.events tr in
  let count name =
    List.length
      (List.filter
         (fun (e : Event.t) ->
           String.equal e.Event.cat "h2" && String.equal e.Event.name name)
         events)
  in
  Alcotest.(check int) "one degraded_move instant per degraded compaction"
    s.H2.degraded_moves (count "degraded_move");
  Alcotest.(check bool) "regions were opened" true (count "region_open" > 0)

(* Whole-workload --faults run (Spark PageRank at half scale): one
   injection instant per fault charged in the Run_result, in order. *)
let test_spark_fault_run_timeline () =
  let p = Spark_profiles.pagerank in
  let dram = List.fold_left max 0 p.Spark_profiles.th_dram_gb in
  let plan = Fault.static { Fault.default_plan with Fault.seed = 11L } in
  let s =
    Setups.spark_teraheap ~huge_pages:p.Spark_profiles.sequential ~faults:plan
      ~h1_gb:(dram - Spark_profiles.dr2_gb)
      ~dr2_gb:Spark_profiles.dr2_gb ()
  in
  let tr = Recorder.create ~capacity:(1 lsl 20) ~lane:0 () in
  Clock.set_tracer s.Setups.clock (Some tr);
  let r =
    Spark_driver.run ~dataset_scale:0.5 ~label:"th-faults-traced"
      ?h2_device:s.Setups.h2_device ?faults:s.Setups.faults s.Setups.ctx p
  in
  Alcotest.(check int) "no ring drops" 0 (Recorder.dropped tr);
  let events = Recorder.events tr in
  match r.Run_result.faults with
  | None -> Alcotest.fail "fault counters missing from Run_result"
  | Some fs ->
      Alcotest.(check bool) "faults actually injected" true
        (Fault.faults_injected fs > 0);
      let injected =
        List.fold_left
          (fun n name -> n + count_fault events name)
          0 injection_names
      in
      Alcotest.(check int) "one injection instant per charged fault"
        (Fault.faults_injected fs) injected;
      check_monotone
        (List.filter
           (fun (e : Event.t) -> String.equal e.Event.cat "fault")
           events)

let props =
  [
    prop_spans_nested;
    prop_timestamps_monotone;
    prop_rollup_exact;
    prop_trace_deterministic;
  ]

let suite =
  [
    Alcotest.test_case "ring buffer drops oldest, accounts drops" `Quick
      test_ring_drops_oldest;
    Alcotest.test_case "ring capacity clamps to the 16-slot floor" `Quick
      test_ring_capacity_clamped;
    Alcotest.test_case "compact text exporter format" `Quick
      test_text_exporter_format;
    Alcotest.test_case "chrome trace-event JSON format" `Quick
      test_chrome_exporter_format;
    Alcotest.test_case "merge keeps lane order" `Quick
      test_merge_keeps_lane_order;
    Alcotest.test_case "golden trace: tiny Spark workload" `Quick
      test_golden_spark;
    Alcotest.test_case "golden trace: tiny Giraph workload" `Quick
      test_golden_giraph;
    Alcotest.test_case "fault instants match injector counters" `Quick
      test_fault_events_match_injector_counters;
    Alcotest.test_case "H2 exhaustion degradation is on the timeline" `Quick
      test_h2_degradation_on_timeline;
    Alcotest.test_case "spark --faults run: one instant per charged fault"
      `Slow test_spark_fault_run_timeline;
  ]
  @ List.map QCheck_alcotest.to_alcotest props
