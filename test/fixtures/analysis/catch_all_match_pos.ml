type state = Clean | Dirty | Young_gen | Old_gen

let scan s = match s with Clean -> 0 | _ -> 1
