let coerce x = Obj.magic x
