exception Io_error of string

let risky () = raise (Io_error "disk") [@@th.raises "Io_error"]

let run pool xs = Th_exec.Pool.map pool (fun x -> risky (); x) xs
