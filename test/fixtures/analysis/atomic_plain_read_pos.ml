type t = { size : int Atomic.t [@th.atomic "count, reconciled via CAS"] }

let rec add t n =
  let v = Atomic.get t.size in
  if not (Atomic.compare_and_set t.size v (v + n)) then add t n

let peek t = Atomic.get t.size
