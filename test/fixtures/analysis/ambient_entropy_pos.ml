let pick xs = List.nth xs (Random.int (List.length xs))
let me () = Domain.self ()
