let closed = Atomic.make false [@th.atomic "one-shot shutdown latch"]

let shutdown () = ignore (Atomic.compare_and_set closed false true)
