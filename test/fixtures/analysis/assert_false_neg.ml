let check n = assert (n >= 0)
let prose = "assert false inside a string"
