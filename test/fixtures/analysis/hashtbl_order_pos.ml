let dump tbl =
  Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
