exception Bad of string

let plan p =
  Th_exec.Plan.seal p ~render:(fun v ->
      if v < 0 then raise (Bad "negative") else string_of_int v)
