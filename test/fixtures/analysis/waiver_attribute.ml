let coerce x = (Obj.magic x [@th.allow "obj-magic"])

let unwaived x = Obj.magic x
