(* Seeded-regression fixture: the checked-read path of the Spark block
   manager with its Io_retry fault barrier intact. The unguarded
   variant (block_manager_unguarded.ml) deletes the handler; the suite
   asserts the fault-barrier rule rejects it and names Io_error. *)

module Io_retry = struct
  exception Io_error of { op : string; attempts : int }

  let run ~op attempt =
    match attempt 0 with
    | Ok v -> v
    | Error `Transient -> raise (Io_error { op; attempts = 1 })
  [@@th.raises "Io_error"]
end

module Page_cache = struct
  let access ?(checked = false) ~offset ~len =
    ignore (offset + len);
    Io_retry.run ~op:"read" (fun _ ->
        if checked then Error `Transient else Ok ())
  [@@th.raises "Io_error(checked)"]
end

let get ~offset ~len ~recompute =
  match Page_cache.access ~checked:true ~offset ~len with
  | () -> ()
  | exception Io_retry.Io_error _ ->
      (* The serialized copy is unreadable past the retry budget:
         recompute the partition from lineage instead of failing. *)
      recompute ()
