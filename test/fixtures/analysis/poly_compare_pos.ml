let sort_names names = List.sort compare names
let h x = Hashtbl.hash x
