(* th-lint: allow hashtbl-order — fixture: the comment waiver must
   divert the finding below into the waived list. It reaches only a few
   lines past the comment, so the second iteration further down is
   reported normally. *)
let dump tbl = Hashtbl.iter (fun _ v -> print_int v) tbl

let id x = x
let const k _ = k

let unwaived tbl = Hashtbl.iter (fun _ v -> print_int v) tbl
