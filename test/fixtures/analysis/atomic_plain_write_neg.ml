type t = { top : int Atomic.t [@th.atomic "cursor, claimed via CAS"] }

let steal t =
  let v = Atomic.get t.top in
  if Atomic.compare_and_set t.top v (v + 1) then Some v else None
