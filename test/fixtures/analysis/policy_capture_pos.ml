(* A placement policy whose observe callback captures a mutable local
   of the enclosing scope: the policy outlives this function and its
   callbacks run on whichever worker domain owns the runtime, so the
   ref escapes cross-domain. *)
let make_counting_policy select =
  let moved = ref 0 in
  Th_policy.Policy.make ~name:"counting" ~select
    ~observe:(fun _ -> moved := !moved + 1)
    ()
