let closed = Atomic.make false [@th.atomic "one-shot shutdown latch"]

let shutdown () = if not (Atomic.get closed) then Atomic.set closed true
