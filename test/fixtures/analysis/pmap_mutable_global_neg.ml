let run pool xs =
  let results =
    Th_exec.Pool.map pool (fun x -> let acc = ref 0 in acc := x; !acc) xs
  in
  let total = ref 0 in
  List.iter (fun r -> total := !total + r) results;
  !total
