type state = Clean | Dirty | Young_gen | Old_gen

let scan s =
  match s with Clean -> 0 | Dirty -> 1 | Young_gen -> 2 | Old_gen -> 3

let unrelated x = match x with None -> 0 | _ -> 1
