let run pool xs =
  let hits = Atomic.make 0 [@th.atomic "shared hit counter"] in
  Th_exec.Pool.map pool (fun x -> Atomic.incr hits; x) xs
