(* Seeded-regression fixture: block_manager_guarded.ml with the
   Io_retry fault barrier deleted — the checked read's Io_error now
   escapes [get]. The suite asserts fault-barrier names it. *)

module Io_retry = struct
  exception Io_error of { op : string; attempts : int }

  let run ~op attempt =
    match attempt 0 with
    | Ok v -> v
    | Error `Transient -> raise (Io_error { op; attempts = 1 })
  [@@th.raises "Io_error"]
end

module Page_cache = struct
  let access ?(checked = false) ~offset ~len =
    ignore (offset + len);
    Io_retry.run ~op:"read" (fun _ ->
        if checked then Error `Transient else Ok ())
  [@@th.raises "Io_error(checked)"]
end

let get ~offset ~len ~recompute =
  ignore recompute;
  Page_cache.access ~checked:true ~offset ~len
