exception Io_error of string

let fetch () = raise (Io_error "disk")
