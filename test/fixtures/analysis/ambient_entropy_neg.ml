let pick prng xs = List.nth xs (Th_sim.Prng.int prng (List.length xs))
