let stamp () = Sys.time ()
