let stamp clock = Th_sim.Clock.now_ns clock
