let run pool xs =
  let acc = ref 0 in
  Th_exec.Pool.map pool (fun x -> acc := !acc + x; x) xs
