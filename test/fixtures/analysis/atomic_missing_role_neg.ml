let pending =
  Atomic.make 0 [@th.atomic "outstanding cells, bumped via RMW"]

let bump () = Atomic.incr pending
