let is_unit x = Float.compare x 1.0 = 0
let close a b = abs_float (a -. b) < 1e-9
