let is_unit x = x = 1.0
