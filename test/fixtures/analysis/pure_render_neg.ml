let plan p =
  Th_exec.Plan.seal p ~render:(fun v ->
      let b = Buffer.create 16 in
      Buffer.add_string b (string_of_int v);
      Buffer.contents b)
