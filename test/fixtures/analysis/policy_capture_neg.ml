(* The same counting policy with the shared counter behind an Atomic
   (recognised as safe by the escape rule) — no finding. *)
let make_counting_policy select =
  let moved = Atomic.make 0 [@th.atomic "policy move counter"] in
  Th_policy.Policy.make ~name:"counting" ~select
    ~observe:(fun _ -> Atomic.incr moved)
    ()
