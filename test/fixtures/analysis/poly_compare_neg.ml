let sort_names names = List.sort String.compare names

let with_local_compare x y =
  let compare a b = Int.compare a b in
  compare x y
