exception Io_error of string

let fetch () = raise (Io_error "disk") [@@th.raises "Io_error"]

let total () = try fetch () with Io_error _ -> ()
