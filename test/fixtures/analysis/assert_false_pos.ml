let impossible () = assert false
