let pending = Atomic.make 0

let bump () = Atomic.incr pending
