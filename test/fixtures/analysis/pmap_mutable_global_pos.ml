let total = ref 0

let bump n = total := !total + n

let run pool xs =
  Th_exec.Pool.map pool (fun x -> bump x; total := !total + x; x) xs
