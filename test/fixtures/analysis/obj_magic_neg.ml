(* Obj.magic is discussed in prose only. *)
let magic = "Obj.magic"
let id x = x
