(* Prose mentioning Hashtbl.iter must not trip the AST pass. *)
let note = "calling Hashtbl.fold inside a string is harmless"
let sorted_keys keys = List.sort String.compare keys
