(* Sealed library unit — missing-mli must stay quiet. *)
let twice x = x * 2
