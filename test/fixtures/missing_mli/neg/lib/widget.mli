val twice : int -> int
