(* Library unit with no sealing interface — missing-mli must fire. *)
let twice x = x * 2
