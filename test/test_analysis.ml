(* Tests for the Th_analysis AST analyzer (lib/analysis).

   The per-rule fixtures under fixtures/analysis/ mirror the snippets
   embedded in Th_analysis.Selftest — the first test asserts file =
   snippet so the two can never drift (regenerate the files with
   `dune exec bin/lint.exe -- --dump-fixtures test/fixtures/analysis`
   after editing Selftest.cases). *)

module Finding = Th_analysis.Finding
module Engine = Th_analysis.Engine
module Source = Th_analysis.Source
module Report = Th_analysis.Report
module Rule = Th_analysis.Rule
module Selftest = Th_analysis.Selftest

let fixture_dir = Filename.concat "fixtures" "analysis"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let analyze_fixture file =
  let path = Filename.concat fixture_dir file in
  match Source.parse_file path with
  | Ok s -> Engine.analyze [ s ]
  | Error m -> Alcotest.failf "fixture %s does not parse: %s" file m

let has_rule rule fs = List.exists (fun f -> String.equal f.Finding.rule rule) fs

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Fixture files stay in sync with the embedded snippets               *)

let test_fixtures_in_sync () =
  List.iter
    (fun (c : Selftest.case) ->
      List.iter
        (fun (polarity, snippet) ->
          let file = Selftest.fixture_basename ~polarity c.rule in
          let on_disk = read_file (Filename.concat fixture_dir file) in
          if not (String.equal on_disk snippet) then
            Alcotest.failf
              "%s differs from the snippet embedded in Selftest.cases \
               (regenerate with lint.exe --dump-fixtures)"
              file)
        [ (`Pos, c.positive); (`Neg, c.negative) ])
    Selftest.cases

(* ------------------------------------------------------------------ *)
(* Each rule: positive fixture triggers, negative fixture is clean     *)

let test_rule_fixtures () =
  List.iter
    (fun (c : Selftest.case) ->
      let pos = analyze_fixture (Selftest.fixture_basename ~polarity:`Pos c.rule) in
      if not (has_rule c.rule pos.Engine.findings) then
        Alcotest.failf "positive fixture for %s produced no %s finding" c.rule
          c.rule;
      let neg = analyze_fixture (Selftest.fixture_basename ~polarity:`Neg c.rule) in
      if has_rule c.rule neg.Engine.findings || has_rule c.rule neg.Engine.waived
      then Alcotest.failf "negative fixture for %s is not clean" c.rule)
    Selftest.cases

(* Every rule in the registry has a selftest case, so the loop above
   really covers the whole rule surface. *)
let test_registry_covered () =
  List.iter
    (fun (r : Rule.t) ->
      if
        not
          (List.exists
             (fun (c : Selftest.case) -> String.equal c.rule r.name)
             Selftest.cases)
      then Alcotest.failf "rule %s has no selftest case" r.name)
    Rule.all

(* ------------------------------------------------------------------ *)
(* Acceptance: the domain-safety rule flags a global mutated from a    *)
(* Pool.pmap cell, and names the offending global                      *)

let test_pmap_acceptance () =
  let r =
    analyze_fixture (Selftest.fixture_basename ~polarity:`Pos "pmap-mutable-global")
  in
  match
    List.filter
      (fun f -> String.equal f.Finding.rule "pmap-mutable-global")
      r.Engine.findings
  with
  | [] -> Alcotest.fail "no pmap-mutable-global finding on the mutation fixture"
  | fs ->
      (* The closure passed to Pool.map both calls [bump] (transitive
         mutation) and assigns [total] directly; the finding must point
         at the global by name so the report is actionable. *)
      if
        not
          (List.exists (fun f -> contains_sub f.Finding.message "total") fs)
      then
        Alcotest.failf "pmap finding does not name the global: %s"
          (String.concat "; " (List.map (fun f -> f.Finding.message) fs))

(* ------------------------------------------------------------------ *)
(* Cross-library escape propagation: a bench closure that reaches a    *)
(* mutable global in lib/metrics through TWO hops and a library        *)
(* boundary is still flagged. Regression for the old analyzer, which   *)
(* resolved calls only inside one library and was blind to this.       *)

let parse_ok ~file src =
  match Source.parse_string ~file src with
  | Ok s -> s
  | Error m -> Alcotest.failf "%s does not parse: %s" file m

let test_cross_library_two_hop () =
  (* lib/metrics/recorder.ml — the mutation lives two calls deep. *)
  let metrics =
    parse_ok ~file:"lib/metrics/recorder.ml"
      "let counts : (string, int) Hashtbl.t = Hashtbl.create 16\n\
       let bump k =\n\
      \  let n = Option.value ~default:0 (Hashtbl.find_opt counts k) in\n\
      \  Hashtbl.replace counts k (n + 1)\n\
       let note k = bump k\n"
  in
  (* bench/driver.ml — a local module with the SAME name as the metrics
     one, but pure: resolution must pick Th_metrics.Recorder for the
     wrapped path and the local Recorder for the bare one. *)
  let bench =
    parse_ok ~file:"bench/driver.ml"
      "module Recorder = struct\n\
      \  let note k = String.length k\n\
       end\n\
       let tainted pool xs =\n\
      \  Th_exec.Pool.map pool (fun x -> Th_metrics.Recorder.note x) xs\n\
       let clean pool xs = Th_exec.Pool.map pool (fun x -> Recorder.note x) xs\n"
  in
  let r = Engine.analyze [ metrics; bench ] in
  let pmap =
    List.filter
      (fun f -> String.equal f.Finding.rule "pmap-mutable-global")
      r.Engine.findings
  in
  (match pmap with
  | [] ->
      Alcotest.fail
        "two-hop bench -> lib/metrics mutation not flagged (cross-library \
         propagation regressed)"
  | fs ->
      if not (List.for_all (fun f -> f.Finding.file = "bench/driver.ml") fs)
      then Alcotest.fail "finding not attributed to the capturing bench file";
      if not (List.exists (fun f -> contains_sub f.Finding.message "counts") fs)
      then
        Alcotest.failf "finding does not name the mutated global: %s"
          (String.concat "; " (List.map (fun f -> f.Finding.message) fs)));
  (* Exactly one closure is tainted: the pure local Recorder.note must
     not pick up the th_metrics effect summary through the name clash. *)
  Alcotest.(check int) "only the Th_metrics call site is flagged" 1
    (List.length pmap)

(* ------------------------------------------------------------------ *)
(* Waivers divert findings, never drop them                            *)

let test_waiver_comment_fixture () =
  let r = analyze_fixture "waiver_comment.ml" in
  Alcotest.(check int)
    "one unwaived hashtbl-order finding" 1
    (List.length
       (List.filter
          (fun f -> String.equal f.Finding.rule "hashtbl-order")
          r.Engine.findings));
  Alcotest.(check int)
    "one waived hashtbl-order finding" 1
    (List.length
       (List.filter
          (fun f -> String.equal f.Finding.rule "hashtbl-order")
          r.Engine.waived))

let test_waiver_attribute_fixture () =
  let r = analyze_fixture "waiver_attribute.ml" in
  Alcotest.(check int)
    "one unwaived obj-magic finding" 1
    (List.length
       (List.filter
          (fun f -> String.equal f.Finding.rule "obj-magic")
          r.Engine.findings));
  Alcotest.(check int)
    "one waived obj-magic finding" 1
    (List.length
       (List.filter
          (fun f -> String.equal f.Finding.rule "obj-magic")
          r.Engine.waived))

(* qcheck: for EVERY rule's positive snippet, a file-level
   [@@@th.allow] waiver moves all of that rule's findings to the waived
   list — none reach the reporter, none are lost. *)
let prop_waived_never_reported =
  QCheck.Test.make ~count:50 ~name:"file-level waiver diverts every finding"
    (QCheck.int_range 0 (List.length Selftest.cases - 1))
    (fun i ->
      let c = List.nth Selftest.cases i in
      let src =
        Printf.sprintf "[@@@th.allow %S]\n%s" c.rule c.positive
      in
      match Source.parse_string ~file:"waived_probe.ml" src with
      | Error m -> QCheck.Test.fail_reportf "probe does not parse: %s" m
      | Ok s ->
          let r = Engine.analyze [ s ] in
          (not (has_rule c.rule r.Engine.findings))
          && has_rule c.rule r.Engine.waived)

(* qcheck: the escape-capture bless token diverts, never drops — a
   [domain_shared] allow WITH a justification moves the finding to
   waived; a bare token (no justification) waives nothing. *)
let prop_domain_shared_diverts =
  let justification =
    QCheck.Gen.(
      string_size ~gen:(char_range 'a' 'z') (int_range 1 12) >>= fun w1 ->
      string_size ~gen:(char_range 'a' 'z') (int_range 1 12) >>= fun w2 ->
      return (w1 ^ " " ^ w2))
  in
  QCheck.Test.make ~count:50
    ~name:"domain_shared bless diverts findings, bare token does not"
    (QCheck.make QCheck.Gen.(pair justification bool))
    (fun (why, justified) ->
      let case =
        List.find
          (fun (c : Selftest.case) -> String.equal c.rule "escape-capture")
          Selftest.cases
      in
      let payload = if justified then "domain_shared " ^ why else "domain_shared" in
      let src = Printf.sprintf "[@@@th.allow %S]\n%s" payload case.positive in
      match Source.parse_string ~file:"bench/bless_probe.ml" src with
      | Error m -> QCheck.Test.fail_reportf "probe does not parse: %s" m
      | Ok s ->
          let r = Engine.analyze [ s ] in
          let reported = has_rule "escape-capture" r.Engine.findings in
          let waived = has_rule "escape-capture" r.Engine.waived in
          if justified then (not reported) && waived
          else reported && not waived)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)

let arbitrary_finding =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range '\x01' '\xff') (int_range 0 20) in
  let gen =
    str >>= fun file ->
    int_range 0 100_000 >>= fun line ->
    int_range 0 500 >>= fun col ->
    oneofl (List.map (fun (r : Rule.t) -> r.name) Rule.all) >>= fun rule ->
    oneofl [ Finding.Error; Finding.Warning ] >>= fun severity ->
    str >>= fun message ->
    return { Finding.file; line; col; rule; severity; message }
  in
  QCheck.make gen

let prop_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"JSON report round-trips"
    QCheck.(pair (small_list arbitrary_finding) (small_list arbitrary_finding))
    (fun (findings, waived) ->
      match Report.of_json (Report.to_json ~waived findings) with
      | Ok (fs, ws) -> fs = findings && ws = waived
      | Error m -> QCheck.Test.fail_reportf "of_json failed: %s" m)

(* ------------------------------------------------------------------ *)
(* SARIF                                                               *)

let prop_sarif_roundtrip =
  QCheck.Test.make ~count:200 ~name:"SARIF report round-trips"
    QCheck.(pair (small_list arbitrary_finding) (small_list arbitrary_finding))
    (fun (findings, waived) ->
      match Report.of_sarif (Report.to_sarif ~waived findings) with
      | Ok (fs, ws) -> fs = findings && ws = waived
      | Error m -> QCheck.Test.fail_reportf "of_sarif failed: %s" m)

let test_sarif_shape () =
  let f rule line =
    {
      Finding.file = "lib/exec/deque.ml";
      line;
      col = 4;
      rule;
      severity = Finding.Error;
      message = "probe";
    }
  in
  let doc =
    Report.to_sarif
      ~waived:[ f "atomic-plain-write" 9 ]
      [ f "escape-capture" 3 ]
  in
  List.iter
    (fun needle ->
      if not (contains_sub doc needle) then
        Alcotest.failf "SARIF output lacks %S" needle)
    [
      "\"version\":\"2.1.0\"";
      "\"name\":\"th-lint\"";
      (* rule metadata: every registered rule is listed in the driver *)
      "\"id\":\"escape-capture\"";
      "\"id\":\"atomic-check-then-act\"";
      (* 0-based finding col 4 becomes 1-based SARIF startColumn 5 *)
      "\"startColumn\":5";
      (* the waived finding is suppressed, not dropped *)
      "\"suppressions\"";
      "\"kind\":\"inSource\"";
    ];
  (* exactly one result carries a suppression *)
  let count_sub hay needle =
    let nl = String.length needle in
    let rec go i acc =
      if i + nl > String.length hay then acc
      else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one suppressed result" 1 (count_sub doc "suppressions")

(* ------------------------------------------------------------------ *)
(* CLI contract pieces that live in the library                        *)

let test_explain_unknown_rule () =
  Alcotest.(check bool) "unknown rule not found" true (Rule.find "no-such" = None);
  Alcotest.(check bool)
    "every registered rule resolvable" true
    (List.for_all (fun (r : Rule.t) -> Rule.find r.name <> None) Rule.all)

(* ------------------------------------------------------------------ *)
(* Policy.make is a domain-crossing sink: placement-policy callbacks   *)
(* run on whichever worker domain owns the runtime                     *)

let test_policy_capture_flagged () =
  let r = analyze_fixture "policy_capture_pos.ml" in
  match
    List.filter
      (fun f -> String.equal f.Finding.rule "escape-capture")
      r.Engine.findings
  with
  | [] ->
      Alcotest.fail
        "no escape-capture finding on the Policy.make capture fixture"
  | f :: _ ->
      Alcotest.(check bool) "finding names the captured local" true
        (contains_sub f.Finding.message "\"moved\"");
      Alcotest.(check bool) "finding names the Policy.make sink" true
        (contains_sub f.Finding.message "Policy.make")

let test_policy_capture_atomic_clean () =
  let r = analyze_fixture "policy_capture_neg.ml" in
  if
    has_rule "escape-capture" r.Engine.findings
    || has_rule "escape-capture" r.Engine.waived
  then Alcotest.fail "Atomic-backed policy state must not be flagged"

(* ------------------------------------------------------------------ *)
(* Exception flow: seeded regression — deleting the Io_retry guard in  *)
(* the block-manager fixture must trip fault-barrier by name           *)

let test_block_manager_regression () =
  let guarded = analyze_fixture "block_manager_guarded.ml" in
  if
    has_rule "fault-barrier" guarded.Engine.findings
    || has_rule "fault-barrier" guarded.Engine.waived
  then Alcotest.fail "guarded block-manager fixture must be barrier-clean";
  let unguarded = analyze_fixture "block_manager_unguarded.ml" in
  match
    List.filter
      (fun f -> String.equal f.Finding.rule "fault-barrier")
      unguarded.Engine.findings
  with
  | [] -> Alcotest.fail "deleting the Io_retry guard must trip fault-barrier"
  | f :: _ ->
      Alcotest.(check bool) "finding names Io_error" true
        (contains_sub f.Finding.message "Io_error")

(* qcheck: a [@th.raises] declaration fixes the summary callers see —
   whatever the body raises, inference never widens it. The twin
   definition without the annotation checks inference still sees the
   body's raises exactly. *)
module Callgraph = Th_analysis.Callgraph
module Raises = Th_analysis.Raises

let ctor_universe = [ "Alpha"; "Beta"; "Gamma"; "Delta" ]

let prop_declared_never_widened =
  QCheck.Test.make ~count:100
    ~name:"[@th.raises] summaries are never widened by inference"
    (QCheck.make QCheck.Gen.(pair (int_bound 15) (int_bound 15)))
    (fun (dbits, bbits) ->
      let subset bits =
        List.filteri (fun i _ -> bits land (1 lsl i) <> 0) ctor_universe
      in
      let declared = subset dbits and body = subset bbits in
      let raises_of = function
        | [] -> "()"
        | cs -> String.concat "; " (List.map (fun c -> "raise " ^ c) cs)
      in
      let src =
        Printf.sprintf
          "exception Alpha\n\
           exception Beta\n\
           exception Gamma\n\
           exception Delta\n\
           let f () = %s [@@th.raises %S]\n\
           let g () = %s\n"
          (raises_of body)
          (String.concat " " declared)
          (raises_of body)
      in
      match Source.parse_string ~file:"lib/core/raises_probe.ml" src with
      | Error m -> QCheck.Test.fail_reportf "probe does not parse: %s" m
      | Ok s ->
          let db = Callgraph.build [ s ] in
          let t = Raises.build db [ s ] in
          let key name =
            { Callgraph.lib = "th_core"; modname = "Raises_probe"; name }
          in
          Raises.summary t (key "f") = List.sort String.compare declared
          && Raises.summary t (key "g") = List.sort String.compare body)

(* The fixpoint visits defs in canonical key order, so two analyses of
   the same sources must serialize byte-identically. *)
let test_raises_determinism () =
  let files =
    [
      "block_manager_guarded.ml";
      "block_manager_unguarded.ml";
      "fault_barrier_pos.ml";
      "cell_boundary_pos.ml";
      "pure_render_pos.ml";
    ]
  in
  let run () =
    let sources =
      List.map
        (fun file ->
          match Source.parse_file (Filename.concat fixture_dir file) with
          | Ok s -> s
          | Error m -> Alcotest.failf "%s does not parse: %s" file m)
        files
    in
    let r = Engine.analyze sources in
    Report.to_json ~waived:r.Engine.waived r.Engine.findings
  in
  Alcotest.(check string) "byte-identical JSON across two runs" (run ())
    (run ())

(* ------------------------------------------------------------------ *)
(* File-system checks over the pos/neg fixture trees                   *)

module Fscheck = Th_analysis.Fscheck

let test_missing_mli_fixtures () =
  let tree p = Filename.concat (Filename.concat "fixtures" "missing_mli") p in
  (match Fscheck.missing_mli (Fscheck.collect_files (tree "pos")) with
  | [ f ] ->
      Alcotest.(check string) "rule" "missing-mli" f.Finding.rule;
      Alcotest.(check bool) "names the unsealed unit" true
        (contains_sub f.Finding.file "widget.ml")
  | fs ->
      Alcotest.failf "expected exactly one missing-mli finding, got %d"
        (List.length fs));
  Alcotest.(check int) "sealed tree is clean" 0
    (List.length (Fscheck.missing_mli (Fscheck.collect_files (tree "neg"))))

let test_selftest_passes () =
  match Selftest.run () with
  | Ok n -> Alcotest.(check bool) "some checks ran" true (n > 0)
  | Error msgs -> Alcotest.failf "self-test failed: %s" (String.concat "; " msgs)

let suite =
  [
    Alcotest.test_case "fixtures match embedded snippets" `Quick
      test_fixtures_in_sync;
    Alcotest.test_case "positive fixtures trigger, negatives clean" `Quick
      test_rule_fixtures;
    Alcotest.test_case "every rule has a fixture case" `Quick
      test_registry_covered;
    Alcotest.test_case "pmap cell mutating a global is flagged by name" `Quick
      test_pmap_acceptance;
    Alcotest.test_case "two-hop cross-library mutation is flagged" `Quick
      test_cross_library_two_hop;
    Alcotest.test_case "Policy.make capture is flagged" `Quick
      test_policy_capture_flagged;
    Alcotest.test_case "Policy.make with Atomic state is clean" `Quick
      test_policy_capture_atomic_clean;
    Alcotest.test_case "comment waiver diverts, not drops" `Quick
      test_waiver_comment_fixture;
    Alcotest.test_case "attribute waiver diverts, not drops" `Quick
      test_waiver_attribute_fixture;
    QCheck_alcotest.to_alcotest prop_waived_never_reported;
    QCheck_alcotest.to_alcotest prop_domain_shared_diverts;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_sarif_roundtrip;
    Alcotest.test_case "SARIF document shape" `Quick test_sarif_shape;
    Alcotest.test_case "seeded regression: unguarded block manager rejected"
      `Quick test_block_manager_regression;
    QCheck_alcotest.to_alcotest prop_declared_never_widened;
    Alcotest.test_case "raises fixpoint is deterministic" `Quick
      test_raises_determinism;
    Alcotest.test_case "missing-mli pos/neg fixture trees" `Quick
      test_missing_mli_fixtures;
    Alcotest.test_case "rule registry lookups" `Quick test_explain_unknown_rule;
    Alcotest.test_case "embedded self-test passes" `Quick test_selftest_passes;
  ]
