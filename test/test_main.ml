(* The runner's module initialisation transitively references every
   suite; alcotest wraps each case, so tracked exceptions surface as
   per-case failures, not an unhandled crash of the runner. *)
[@@@th.allow "fault-barrier"]

let () =
  Alcotest.run "teraheap"
    [
      ("sim", Test_sim.suite);
      ("device", Test_device.suite);
      ("objmodel", Test_objmodel.suite);
      ("heap-structs", Test_heap_structs.suite);
      ("h2", Test_h2.suite);
      ("serde", Test_serde.suite);
      ("runtime", Test_runtime.suite);
      ("gc-properties", Test_gc_props.suite);
      ("policy", Test_policy.suite);
      ("verify", Test_verify.suite);
      ("exec", Test_exec.suite);
      ("spark", Test_spark.suite);
      ("giraph", Test_giraph.suite);
      ("metrics", Test_metrics.suite);
      ("faults", Test_faults.suite);
      ("resilience", Test_resilience.suite);
      ("streaming", Test_streaming.suite);
      ("trace", Test_trace.suite);
      ("analysis", Test_analysis.suite);
      ("interleave", Test_interleave.suite);
      ("dacapo-misc", Test_dacapo.suite);
      ("integration", Test_integration.suite);
    ]
