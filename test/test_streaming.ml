(* Tests for the micro-batch streaming workload (lib/workloads/
   streaming_driver): clean completion, window expiry, same-seed
   determinism, and a chaos run under the safepoint sanitizer with the
   full resilience stack attached. *)

open Th_sim
module Fault = Th_sim.Fault
module H2 = Th_core.H2
module Runtime = Th_psgc.Runtime
module Verify = Th_verify.Verify
module Monitor = Th_resilience.Monitor
module Slo = Th_resilience.Slo
module Setups = Th_baselines.Setups
module Streaming_driver = Th_workloads.Streaming_driver
module Run_result = Th_workloads.Run_result

let run_smoke ?faults ?(with_monitor = false) ?(verify = false) () =
  let s =
    Setups.streaming_teraheap ?faults
      ~h1_gb:Streaming_driver.smoke.Streaming_driver.h1_gb
      ~dr2_gb:Streaming_driver.smoke.Streaming_driver.dr2_gb ()
  in
  let v = if verify then Some (Verify.attach s.Setups.s_rt Verify.Safepoint) else None in
  let monitor =
    if with_monitor then Some (Monitor.attach ~slo:Slo.default s.Setups.s_rt)
    else None
  in
  let r =
    Streaming_driver.run ~label:"smoke" ?h2_device:s.Setups.s_h2_device
      ?faults:s.Setups.s_faults ?monitor s.Setups.s_rt
      Streaming_driver.smoke
  in
  (r, s, v)

let test_smoke_completes () =
  let r, s, _ = run_smoke () in
  Alcotest.(check bool) "completed" true
    (r.Run_result.outcome = Run_result.Completed);
  Alcotest.(check bool) "minor GCs happened" true (r.Run_result.minor_gcs > 0);
  Alcotest.(check bool) "major GCs happened" true (r.Run_result.major_gcs > 0);
  (* The retained window really went through move-to-H2. *)
  (match Runtime.h2 s.Setups.s_rt with
  | None -> Alcotest.fail "streaming setup has no H2"
  | Some h2 ->
      Alcotest.(check bool) "objects moved to H2" true
        ((H2.stats h2).H2.moves_to_h2 > 0));
  (* Expiry keeps retention bounded: live H1+H2 state stays well under
     the total state ever allocated (40 batches vs an 8-batch window). *)
  match r.Run_result.breakdown with
  | None -> Alcotest.fail "no breakdown"
  | Some b -> Alcotest.(check bool) "time advanced" true (Clock.total_ns b > 0.0)

let test_smoke_deterministic () =
  let r1, _, _ = run_smoke () and r2, _, _ = run_smoke () in
  match (r1.Run_result.breakdown, r2.Run_result.breakdown) with
  | Some a, Some b ->
      Alcotest.(check (float 0.0)) "same simulated time" (Clock.total_ns a)
        (Clock.total_ns b);
      Alcotest.(check int) "same GC counts"
        (r1.Run_result.minor_gcs + r1.Run_result.major_gcs)
        (r2.Run_result.minor_gcs + r2.Run_result.major_gcs)
  | _ -> Alcotest.fail "a run did not complete"

let chaos_plan = Fault.bursty

let test_chaos_run_is_sane_and_deterministic () =
  let run () =
    run_smoke ~faults:chaos_plan ~with_monitor:true ~verify:true ()
  in
  let r1, _, v1 = run () in
  Alcotest.(check bool) "not OOM" true (r1.Run_result.outcome <> Run_result.Oom);
  (match v1 with
  | None -> Alcotest.fail "verifier missing"
  | Some v ->
      Alcotest.(check int) "no sanitizer violations under chaos" 0
        (Verify.violation_count v));
  (match r1.Run_result.resilience with
  | None -> Alcotest.fail "resilience summary missing"
  | Some s -> Alcotest.(check bool) "monitor sampled" true (s.Monitor.samples > 0));
  let r2, _, _ = run () in
  (match (r1.Run_result.breakdown, r2.Run_result.breakdown) with
  | Some a, Some b ->
      Alcotest.(check (float 0.0)) "chaos run deterministic"
        (Clock.total_ns a) (Clock.total_ns b)
  | _ -> Alcotest.fail "a chaos run did not complete");
  Alcotest.(check bool) "identical fault counters" true
    (r1.Run_result.faults = r2.Run_result.faults);
  Alcotest.(check bool) "identical resilience summaries" true
    (r1.Run_result.resilience = r2.Run_result.resilience)

(* The wearout plan ends in a worn-out terminal phase: the run must see
   the phase schedule actually advance. *)
let test_phased_plan_advances () =
  let s =
    Setups.streaming_teraheap ~faults:Fault.wearout
      ~h1_gb:Streaming_driver.smoke.Streaming_driver.h1_gb
      ~dr2_gb:Streaming_driver.smoke.Streaming_driver.dr2_gb ()
  in
  let p =
    (* Stretch the smoke run to ~20 simulated seconds so it crosses all
       three finite wearout phases (2 s + 5 s + 10 s). *)
    { Streaming_driver.smoke with Streaming_driver.batch_interval_ns = 500e6 }
  in
  let r =
    Streaming_driver.run ~label:"wearout" ?h2_device:s.Setups.s_h2_device
      ?faults:s.Setups.s_faults s.Setups.s_rt p
  in
  Alcotest.(check bool) "not OOM" true (r.Run_result.outcome <> Run_result.Oom);
  match s.Setups.s_faults with
  | None -> Alcotest.fail "no injector"
  | Some f ->
      Alcotest.(check int) "reached the terminal phase" 3 (Fault.phase_index f);
      Alcotest.(check int) "three phase changes" 3 (Fault.phase_changes f)

let suite =
  [
    Alcotest.test_case "smoke profile completes with H2 traffic" `Quick
      test_smoke_completes;
    Alcotest.test_case "same seed, same run" `Quick test_smoke_deterministic;
    Alcotest.test_case "bursty chaos: sanitizer-clean and deterministic"
      `Slow test_chaos_run_is_sane_and_deterministic;
    Alcotest.test_case "wearout plan advances through its phases" `Quick
      test_phased_plan_advances;
  ]
