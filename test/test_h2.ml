(* Tests for the H2 region heap: allocation, labels, dependency lists,
   liveness propagation, bulk reclamation, Union-Find mode, metadata.

   Test bodies call H2.alloc bare: alcotest isolates each case, so an
   Out_of_h2_space escaping a fixture fails that one case with a
   backtrace — exactly what a sized-down fixture should do. *)
[@@@th.allow "fault-barrier"]

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H2 = Th_core.H2
module Device = Th_device.Device

let next_id = ref 0

let mk ?(size = 1024) () =
  incr next_id;
  Obj_.create ~id:!next_id ~size ()

let fresh ?(config = H2.default_config) () =
  let clock = Clock.create () in
  let device = Device.create clock Device.Nvme_ssd in
  H2.create ~config ~clock ~costs:Costs.default ~device
    ~dr2_bytes:(Size.mib 8) ()

let small_config =
  { H2.default_config with H2.region_size = Size.kib 64; capacity = Size.kib 512 }

let test_alloc_assigns_region_and_addr () =
  let h2 = fresh () in
  let a = mk () and b = mk () in
  H2.alloc h2 a ~label:1;
  H2.alloc h2 b ~label:1;
  Alcotest.(check bool) "same region for same label" true
    (a.Obj_.h2_region = b.Obj_.h2_region);
  Alcotest.(check bool) "addresses ascend" true (b.Obj_.addr > a.Obj_.addr);
  Alcotest.(check bool) "location set" true (a.Obj_.loc = Obj_.In_h2)

let test_labels_get_distinct_regions () =
  let h2 = fresh () in
  let a = mk () and b = mk () in
  H2.alloc h2 a ~label:1;
  H2.alloc h2 b ~label:2;
  Alcotest.(check bool) "different regions" true
    (a.Obj_.h2_region <> b.Obj_.h2_region)

let test_region_overflow_opens_new_region () =
  let h2 = fresh ~config:small_config () in
  let objs = List.init 80 (fun _ -> mk ~size:1024 ()) in
  List.iter (fun o -> H2.alloc h2 o ~label:5) objs;
  let s = H2.stats h2 in
  Alcotest.(check bool) "several regions opened" true
    (s.H2.regions_allocated >= 2);
  (* No object ever spans a region boundary. *)
  List.iter
    (fun (o : Obj_.t) ->
      Alcotest.(check bool) "object within region" true
        (o.Obj_.addr + Obj_.total_size o <= small_config.H2.region_size))
    objs

let test_object_bigger_than_region_rejected () =
  let h2 = fresh ~config:small_config () in
  let o = mk ~size:(Size.kib 128) () in
  Alcotest.check_raises "too big"
    (Invalid_argument "H2.alloc: object larger than an H2 region") (fun () ->
      H2.alloc h2 o ~label:1)

let test_h2_exhaustion () =
  let h2 = fresh ~config:small_config () in
  let blew = ref false in
  (try
     for _ = 1 to 1000 do
       H2.alloc h2 (mk ~size:(Size.kib 32) ()) ~label:9
     done
   with H2.Out_of_h2_space -> blew := true);
  Alcotest.(check bool) "exhaustion raises" true !blew

let test_liveness_and_reclaim () =
  let h2 = fresh () in
  let a = mk () and b = mk () in
  H2.alloc h2 a ~label:1;
  H2.alloc h2 b ~label:2;
  H2.clear_live_bits h2;
  H2.mark_live_from_h1 h2 a;
  let freed = H2.free_dead_regions h2 ~on_free:(fun o -> o.Obj_.loc <- Obj_.Freed) in
  Alcotest.(check int) "label-2 region reclaimed" 1 freed;
  Alcotest.(check bool) "a alive" false (Obj_.is_freed a);
  Alcotest.(check bool) "b freed in bulk" true (Obj_.is_freed b)

let test_dependency_propagation () =
  (* Region X -> Y -> Z: marking X live keeps Y and Z. *)
  let h2 = fresh () in
  let x = mk () and y = mk () and z = mk () in
  H2.alloc h2 x ~label:1;
  H2.alloc h2 y ~label:2;
  H2.alloc h2 z ~label:3;
  H2.add_dependency h2 ~src_region:x.Obj_.h2_region ~dst_region:y.Obj_.h2_region;
  H2.add_dependency h2 ~src_region:y.Obj_.h2_region ~dst_region:z.Obj_.h2_region;
  H2.clear_live_bits h2;
  H2.mark_live_from_h1 h2 x;
  Alcotest.(check int) "nothing reclaimed" 0
    (H2.free_dead_regions h2 ~on_free:(fun _ -> ()))

let test_dependency_direction_matters () =
  (* X -> Y -> Z with only Z referenced from H1: X and Y are reclaimable
     (the paper's argument for directed dependency lists, §3.3). *)
  let h2 = fresh () in
  let x = mk () and y = mk () and z = mk () in
  H2.alloc h2 x ~label:1;
  H2.alloc h2 y ~label:2;
  H2.alloc h2 z ~label:3;
  H2.add_dependency h2 ~src_region:x.Obj_.h2_region ~dst_region:y.Obj_.h2_region;
  H2.add_dependency h2 ~src_region:y.Obj_.h2_region ~dst_region:z.Obj_.h2_region;
  H2.clear_live_bits h2;
  H2.mark_live_from_h1 h2 z;
  Alcotest.(check int) "X and Y reclaimed" 2
    (H2.free_dead_regions h2 ~on_free:(fun o -> o.Obj_.loc <- Obj_.Freed))

let uf_config = { H2.default_config with H2.reclaim_mode = H2.Region_groups }

let test_union_find_conservative () =
  (* Same X -> Y -> Z chain under Region_groups: the whole group stays
     alive when Z is referenced — direction is lost. *)
  let h2 = fresh ~config:uf_config () in
  let x = mk () and y = mk () and z = mk () in
  H2.alloc h2 x ~label:1;
  H2.alloc h2 y ~label:2;
  H2.alloc h2 z ~label:3;
  H2.add_dependency h2 ~src_region:x.Obj_.h2_region ~dst_region:y.Obj_.h2_region;
  H2.add_dependency h2 ~src_region:y.Obj_.h2_region ~dst_region:z.Obj_.h2_region;
  H2.clear_live_bits h2;
  H2.mark_live_from_h1 h2 z;
  Alcotest.(check int) "whole group retained" 0
    (H2.free_dead_regions h2 ~on_free:(fun _ -> ()))

let test_union_find_dead_group_reclaimed () =
  let h2 = fresh ~config:uf_config () in
  let x = mk () and y = mk () in
  H2.alloc h2 x ~label:1;
  H2.alloc h2 y ~label:2;
  H2.add_dependency h2 ~src_region:x.Obj_.h2_region ~dst_region:y.Obj_.h2_region;
  H2.clear_live_bits h2;
  Alcotest.(check int) "dead group reclaimed whole" 2
    (H2.free_dead_regions h2 ~on_free:(fun o -> o.Obj_.loc <- Obj_.Freed))

let test_reclaimed_region_reused () =
  let h2 = fresh ~config:small_config () in
  let a = mk () in
  H2.alloc h2 a ~label:1;
  let region = a.Obj_.h2_region in
  H2.clear_live_bits h2;
  ignore (H2.free_dead_regions h2 ~on_free:(fun o -> o.Obj_.loc <- Obj_.Freed));
  let b = mk () in
  H2.alloc h2 b ~label:7;
  Alcotest.(check int) "free region reused" region b.Obj_.h2_region;
  Alcotest.(check int) "fresh allocation pointer" 0 b.Obj_.addr

let test_backward_ref_marks_card () =
  let h2 = fresh () in
  let a = mk () in
  H2.alloc h2 a ~label:1;
  let ct = H2.card_table h2 in
  Alcotest.(check int) "clean initially" 0 (Th_core.H2_card_table.non_clean_count ct);
  H2.note_backward_ref h2 a;
  Alcotest.(check int) "dirty card" 1 (Th_core.H2_card_table.non_clean_count ct)

let test_move_advice () =
  let h2 = fresh () in
  H2.h2_move h2 ~label:3;
  Alcotest.(check bool) "advised" true (H2.move_advised h2 ~label:3);
  Alcotest.(check bool) "others not advised" false (H2.move_advised h2 ~label:4);
  H2.clear_move_advice h2 ~label:3;
  Alcotest.(check bool) "cleared" false (H2.move_advised h2 ~label:3)

let test_move_hint_disabled () =
  let cfg = { H2.default_config with H2.use_move_hint = false } in
  let h2 = fresh ~config:cfg () in
  H2.h2_move h2 ~label:3;
  Alcotest.(check bool) "NH config ignores h2_move" false
    (H2.move_advised h2 ~label:3)

let test_tag_root_registers () =
  let h2 = fresh () in
  let a = mk () in
  H2.h2_tag_root h2 a ~label:11;
  Alcotest.(check int) "label stored in header word" 11 a.Obj_.label;
  Alcotest.(check bool) "tracked as tagged root" true
    (List.memq a (H2.tagged_roots h2))

let test_tagged_roots_self_clean () =
  let h2 = fresh () in
  let a = mk () in
  H2.h2_tag_root h2 a ~label:11;
  H2.alloc h2 a ~label:11;
  Alcotest.(check int) "moved roots drop off the tagged list" 0
    (List.length (H2.tagged_roots h2))

let test_promotion_buffers_charge_compaction () =
  let clock = Clock.create () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 =
    H2.create ~config:H2.default_config ~clock ~costs:Costs.default ~device
      ~dr2_bytes:(Size.mib 8) ()
  in
  for _ = 1 to 100 do
    H2.alloc h2 (mk ()) ~label:1
  done;
  Alcotest.(check (float 0.0)) "placement itself charges no device time" 0.0
    (Clock.breakdown clock).Clock.major_gc_ns;
  H2.flush_promotion_buffers h2;
  Alcotest.(check bool) "flush writes to the device as major-GC time" true
    ((Clock.breakdown clock).Clock.major_gc_ns > 0.0);
  Alcotest.(check bool) "device saw the bytes" true
    ((Device.stats device).Device.bytes_written >= 100 * 1024)

let test_metadata_table5_values () =
  let mb region_mb =
    let b = H2.metadata_bytes_per_tb ~region_size:(Size.mib region_mb) in
    int_of_float (Float.round (float_of_int b /. 1048576.0))
  in
  Alcotest.(check (list int)) "Table 5"
    [ 417; 209; 104; 52; 26; 13; 7; 3; 2 ]
    (List.map mb [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ])

let test_stats_wasted_space_small () =
  let h2 = fresh ~config:small_config () in
  for _ = 1 to 60 do
    H2.alloc h2 (mk ~size:1000 ()) ~label:1
  done;
  let s = H2.stats h2 in
  (* Sealed-region waste stays below one object's size per region (§7.3:
     unused space 1-3%). *)
  Alcotest.(check bool) "waste bounded" true
    (s.H2.wasted_bytes < s.H2.regions_allocated * 1100)

let test_region_samples_on_reclaim () =
  let h2 = fresh () in
  let a = mk () in
  H2.alloc h2 a ~label:1;
  H2.clear_live_bits h2;
  ignore (H2.free_dead_regions h2 ~on_free:(fun o -> o.Obj_.loc <- Obj_.Freed));
  let samples = H2.harvest_region_samples h2 ~is_live:(fun _ -> true) in
  Alcotest.(check bool) "reclaimed region sampled at 0%" true
    (* Exact-zero sentinel: a reclaimed region reports literally 0.0.
       th-lint: allow float-equality *)
    (List.exists (fun s -> s.H2.live_object_pct = 0.0) samples)

let test_size_segregated_buckets () =
  let cfg =
    { small_config with H2.placement = H2.Size_segregated }
  in
  let h2 = fresh ~config:cfg () in
  let small = mk ~size:512 () in
  let large = mk ~size:(small_config.H2.region_size / 4) () in
  H2.alloc h2 small ~label:1;
  H2.alloc h2 large ~label:1;
  Alcotest.(check bool) "same label, different regions by size" true
    (small.Obj_.h2_region <> large.Obj_.h2_region);
  (* Under the default policy they share the label's open region. *)
  let h2' = fresh ~config:small_config () in
  let small' = mk ~size:512 () in
  let large' = mk ~size:(small_config.H2.region_size / 4) () in
  H2.alloc h2' small' ~label:1;
  H2.alloc h2' large' ~label:1;
  Alcotest.(check bool) "label-only shares the region" true
    (small'.Obj_.h2_region = large'.Obj_.h2_region)

let test_dynamic_thresholds_adapt () =
  let cfg = { H2.default_config with H2.dynamic_thresholds = true } in
  let h2 = fresh ~config:cfg () in
  Alcotest.(check (option (float 1e-9))) "starts at the configured low"
    (Some 0.5) (H2.low_threshold h2);
  (* Sustained pressure lowers the low threshold... *)
  H2.adapt_thresholds h2 ~live_ratio:0.95;
  Alcotest.(check (option (float 1e-9))) "lowered" (Some 0.45)
    (H2.low_threshold h2);
  (* ...comfortable headroom raises it again. *)
  H2.adapt_thresholds h2 ~live_ratio:0.2;
  H2.adapt_thresholds h2 ~live_ratio:0.2;
  Alcotest.(check (option (float 1e-9))) "raised back" (Some 0.55)
    (H2.low_threshold h2);
  (* Static configurations never move. *)
  let h2s = fresh () in
  H2.adapt_thresholds h2s ~live_ratio:0.95;
  Alcotest.(check (option (float 1e-9))) "static untouched" (Some 0.5)
    (H2.low_threshold h2s)

(* --------------------------------------------------------------- *)
(* Exhaustive state x event matrix for the 4-state card table.      *)

module HCT = Th_core.H2_card_table

let all_states = [ HCT.Clean; HCT.Dirty; HCT.Young_gen; HCT.Old_gen ]

let st_name = function
  | HCT.Clean -> "clean"
  | HCT.Dirty -> "dirty"
  | HCT.Young_gen -> "youngGen"
  | HCT.Old_gen -> "oldGen"

(* 16 segments of 4 KiB in 16 KiB stripes: 4 segments per stripe, so
   positions 0 and 3 of each stripe are boundary cards. *)
let mk_ct ~aligned =
  HCT.create ~segment_size:(Size.kib 4) ~stripe_aligned:aligned
    ~stripe_size:(Size.kib 16) ~capacity_bytes:(Size.kib 64) ()

(* Drive a segment into [st] from scratch; clear_range bypasses
   stickiness, so this works on boundary cards too. *)
let force ct ~seg st =
  HCT.clear_range ct ~lo:seg ~hi:(seg + 1);
  match st with
  | HCT.Clean -> ()
  | HCT.Dirty -> HCT.mark_dirty ct ~gaddr:(seg * HCT.segment_size ct)
  (* Every other state round-trips via set_state unchanged — the
     forwarding arm is the point of the helper.
     th-lint: allow catch-all-match *)
  | st -> HCT.set_state ct ~seg st

let scan_non_clean ct =
  let n = ref 0 in
  for seg = 0 to HCT.num_segments ct - 1 do
    if HCT.state ct ~seg <> HCT.Clean then incr n
  done;
  !n

let check_cell ct ~seg ~before ~op_name ~expected run =
  force ct ~seg before;
  run ();
  Alcotest.(check string)
    (Printf.sprintf "seg %d: %s, %s" seg (st_name before) op_name)
    (st_name expected)
    (st_name (HCT.state ct ~seg));
  Alcotest.(check int)
    (Printf.sprintf "non-clean count after %s from %s" op_name
       (st_name before))
    (scan_non_clean ct) (HCT.non_clean_count ct)

(* Every state x event cell on an interior segment of an aligned table:
   set_state always lands the target, the barrier always lands Dirty,
   bulk clear always lands Clean. *)
let matrix_cells ct ~seg ~sticky =
  List.iter
    (fun before ->
      List.iter
        (fun target ->
          let expected =
            if sticky && before = HCT.Dirty && target <> HCT.Dirty then
              HCT.Dirty
            else target
          in
          check_cell ct ~seg ~before
            ~op_name:("recompute to " ^ st_name target)
            ~expected
            (fun () -> HCT.set_state ct ~seg target))
        all_states;
      check_cell ct ~seg ~before ~op_name:"barrier" ~expected:HCT.Dirty
        (fun () -> HCT.mark_dirty ct ~gaddr:(seg * HCT.segment_size ct));
      check_cell ct ~seg ~before ~op_name:"bulk clear" ~expected:HCT.Clean
        (fun () -> HCT.clear_range ct ~lo:seg ~hi:(seg + 1)))
    all_states

let test_transition_matrix_aligned () =
  let ct = mk_ct ~aligned:true in
  (* Boundary position or not, aligned tables have no stickiness. *)
  List.iter (fun seg -> matrix_cells ct ~seg ~sticky:false) [ 4; 5; 7 ]

let test_transition_matrix_unaligned () =
  let ct = mk_ct ~aligned:false in
  (* Stripe 1 covers segments 4-7: 4 and 7 are boundary cards (sticky
     once dirty), 5 and 6 are interior and behave as if aligned. *)
  List.iter (fun seg -> matrix_cells ct ~seg ~sticky:true) [ 4; 7 ];
  List.iter (fun seg -> matrix_cells ct ~seg ~sticky:false) [ 5; 6 ]

let test_transition_hook_records_events () =
  let ct = mk_ct ~aligned:false in
  let log = ref [] in
  HCT.set_transition_hook ct
    (Some (fun ~seg ~before ~after ev -> log := (seg, before, after, ev) :: !log));
  (* Segment 0 is a boundary card: the suppressed sticky clean must be
     reported with after = Dirty and the requested target in the event. *)
  HCT.mark_dirty ct ~gaddr:0;
  HCT.set_state ct ~seg:0 HCT.Clean;
  HCT.clear_range ct ~lo:0 ~hi:1;
  HCT.set_transition_hook ct None;
  HCT.mark_dirty ct ~gaddr:0;
  Alcotest.(check bool) "hook saw barrier, sticky recompute, bulk clear" true
    (* Golden transition log: structural equality against the expected
       literal is exactly the assertion. th-lint: allow poly-compare *)
    (List.rev !log
    = [
        (0, HCT.Clean, HCT.Dirty, HCT.Barrier_dirty);
        (0, HCT.Dirty, HCT.Dirty, HCT.Recompute HCT.Clean);
        (0, HCT.Dirty, HCT.Clean, HCT.Bulk_clear);
      ])

let test_bulk_clear_skips_clean_notifications () =
  let ct = mk_ct ~aligned:true in
  HCT.mark_dirty ct ~gaddr:(5 * HCT.segment_size ct);
  let log = ref [] in
  HCT.set_transition_hook ct (Some (fun ~seg ~before:_ ~after:_ _ -> log := seg :: !log));
  HCT.clear_range ct ~lo:0 ~hi:HCT.(num_segments ct);
  Alcotest.(check (list int)) "only the non-clean segment reported" [ 5 ]
    (List.rev !log)

let suite =
  [
    Alcotest.test_case "alloc assigns region+addr" `Quick
      test_alloc_assigns_region_and_addr;
    Alcotest.test_case "labels get distinct regions" `Quick
      test_labels_get_distinct_regions;
    Alcotest.test_case "full region opens a new one" `Quick
      test_region_overflow_opens_new_region;
    Alcotest.test_case "objects never exceed a region" `Quick
      test_object_bigger_than_region_rejected;
    Alcotest.test_case "H2 exhaustion raises" `Quick test_h2_exhaustion;
    Alcotest.test_case "liveness + bulk reclaim" `Quick
      test_liveness_and_reclaim;
    Alcotest.test_case "dependency lists keep referenced regions" `Quick
      test_dependency_propagation;
    Alcotest.test_case "dependency direction enables reclaim" `Quick
      test_dependency_direction_matters;
    Alcotest.test_case "union-find groups are conservative" `Quick
      test_union_find_conservative;
    Alcotest.test_case "union-find reclaims dead groups" `Quick
      test_union_find_dead_group_reclaimed;
    Alcotest.test_case "reclaimed regions are reused" `Quick
      test_reclaimed_region_reused;
    Alcotest.test_case "backward refs dirty the card" `Quick
      test_backward_ref_marks_card;
    Alcotest.test_case "move advice bookkeeping" `Quick test_move_advice;
    Alcotest.test_case "NH config ignores h2_move" `Quick
      test_move_hint_disabled;
    Alcotest.test_case "tag_root registers key objects" `Quick
      test_tag_root_registers;
    Alcotest.test_case "tagged list self-cleans after moves" `Quick
      test_tagged_roots_self_clean;
    Alcotest.test_case "promotion buffers charge compaction I/O" `Quick
      test_promotion_buffers_charge_compaction;
    Alcotest.test_case "Table 5 metadata values" `Quick
      test_metadata_table5_values;
    Alcotest.test_case "region waste stays small" `Quick
      test_stats_wasted_space_small;
    Alcotest.test_case "reclaimed regions sampled at 0% live" `Quick
      test_region_samples_on_reclaim;
    Alcotest.test_case "size-segregated placement buckets by size" `Quick
      test_size_segregated_buckets;
    Alcotest.test_case "dynamic thresholds adapt" `Quick
      test_dynamic_thresholds_adapt;
    Alcotest.test_case "card transition matrix (aligned)" `Quick
      test_transition_matrix_aligned;
    Alcotest.test_case "card transition matrix (unaligned, sticky)" `Quick
      test_transition_matrix_unaligned;
    Alcotest.test_case "transition hook records events" `Quick
      test_transition_hook_records_events;
    Alcotest.test_case "bulk clear reports only non-clean cards" `Quick
      test_bulk_clear_skips_clean_notifications;
  ]
