(* Tests for the mini-Spark framework: RDDs, the block manager in its
   three cache modes, stage execution. *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Runtime = Th_psgc.Runtime
module Device = Th_device.Device
module Context = Th_spark.Context
module Rdd = Th_spark.Rdd
module Block_manager = Th_spark.Block_manager
module Stage = Th_spark.Stage

let sd_ctx ?(heap_bytes = Size.mib 24) () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes () in
  let rt = Runtime.create ~clock ~costs:Costs.default ~heap () in
  let device = Device.create clock Device.Nvme_ssd in
  Context.create ~offheap_device:device
    ~mode:(Context.Memory_and_ser_offheap { onheap_fraction = 0.5 })
    rt

let th_ctx ?(heap_bytes = Size.mib 24) () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 =
    H2.create ~config:H2.default_config ~clock ~costs:Costs.default ~device
      ~dr2_bytes:(Size.mib 8) ()
  in
  let rt = Runtime.create ~h2 ~clock ~costs:Costs.default ~heap () in
  Context.create ~mode:Context.Teraheap_cache rt

let test_rdd_shapes_dataset () =
  let ctx = th_ctx () in
  let rdd = Rdd.of_dataset ctx ~bytes:(Size.mib 4) () in
  Alcotest.(check int) "default partitions" 16 rdd.Rdd.partitions;
  Alcotest.(check bool) "partition bytes about dataset/16" true
    (abs (Rdd.partition_bytes rdd - (Size.mib 4 / 16)) < Size.kib 8)

let test_build_partition_pinned () =
  let ctx = th_ctx () in
  let rdd =
    Rdd.create ctx ~partitions:4 ~elems_per_partition:32 ~elem_size:512 ()
  in
  let rt = Context.runtime ctx in
  let group = Rdd.build_partition ctx rdd in
  Runtime.major_gc rt;
  Alcotest.(check bool) "pinned during construction window" false
    (Obj_.is_freed group);
  Alcotest.(check int) "all elements present" 32 (Obj_.ref_count group);
  Runtime.remove_root rt group

let test_columnar_layout_has_batches () =
  let ctx = th_ctx () in
  let rdd =
    Rdd.create ctx ~layout:Rdd.Columnar ~partitions:1
      ~elems_per_partition:1024 ~elem_size:1024 ()
  in
  let rt = Context.runtime ctx in
  let group = Rdd.build_partition ctx rdd in
  let arrays =
    List.filter
      (fun (o : Obj_.t) -> o.Obj_.kind = Obj_.Array_data)
      (Obj_.refs_list group)
  in
  Alcotest.(check bool) "several columnar batches" true
    (List.length arrays >= 5);
  List.iter
    (fun (o : Obj_.t) ->
      Alcotest.(check bool) "batch-sized arrays" true
        (o.Obj_.size <= Rdd.columnar_batch_bytes))
    arrays;
  Runtime.remove_root rt group

let cache_one ctx rdd =
  let rt = Context.runtime ctx in
  let bm = Block_manager.create ctx in
  let group = Rdd.build_partition ctx rdd in
  Block_manager.put bm ~rdd_id:rdd.Rdd.id ~pidx:0 group;
  Runtime.remove_root rt group;
  (bm, group)

let test_bm_teraheap_tags_and_advises () =
  let ctx = th_ctx () in
  let rdd =
    Rdd.create ctx ~partitions:1 ~elems_per_partition:16 ~elem_size:512 ()
  in
  let bm, group = cache_one ctx rdd in
  Alcotest.(check (option bool)) "entry tracked" (Some true)
    (Option.map
       (fun k -> k = Block_manager.In_teraheap)
       (Block_manager.entry_kind bm ~rdd_id:rdd.Rdd.id ~pidx:0));
  Alcotest.(check int) "label is the RDD id" rdd.Rdd.id group.Obj_.label;
  (* The advised move happens at the next major GC. *)
  Runtime.major_gc (Context.runtime ctx);
  Alcotest.(check bool) "moved to H2" true (group.Obj_.loc = Obj_.In_h2)

let test_bm_sd_spills_over_budget () =
  let ctx = sd_ctx ~heap_bytes:(Size.mib 12) () in
  let rdd =
    Rdd.create ctx ~partitions:8 ~elems_per_partition:512 ~elem_size:1024 ()
  in
  let rt = Context.runtime ctx in
  let bm = Block_manager.create ctx in
  for pidx = 0 to rdd.Rdd.partitions - 1 do
    let group = Rdd.build_partition ctx rdd in
    Block_manager.put bm ~rdd_id:rdd.Rdd.id ~pidx group;
    Runtime.remove_root rt group
  done;
  let kinds =
    List.init rdd.Rdd.partitions (fun pidx ->
        Block_manager.entry_kind bm ~rdd_id:rdd.Rdd.id ~pidx)
  in
  Alcotest.(check bool) "some on-heap" true
    (List.mem (Some Block_manager.On_heap) kinds);
  Alcotest.(check bool) "overflow serialized off-heap" true
    (List.mem (Some Block_manager.Off_heap) kinds)

let test_bm_get_offheap_deserializes () =
  let ctx = sd_ctx ~heap_bytes:(Size.mib 12) () in
  let rdd =
    Rdd.create ctx ~partitions:8 ~elems_per_partition:512 ~elem_size:1024 ()
  in
  let rt = Context.runtime ctx in
  let bm = Block_manager.create ctx in
  for pidx = 0 to rdd.Rdd.partitions - 1 do
    let group = Rdd.build_partition ctx rdd in
    Block_manager.put bm ~rdd_id:rdd.Rdd.id ~pidx group;
    Runtime.remove_root rt group
  done;
  (* Find an off-heap partition and read it: a fresh group materialises. *)
  let offheap_pidx = ref (-1) in
  for pidx = 0 to rdd.Rdd.partitions - 1 do
    match Block_manager.entry_kind bm ~rdd_id:rdd.Rdd.id ~pidx with
    | Some Block_manager.Off_heap -> offheap_pidx := pidx
    | Some _ | None -> ()
  done;
  let sd_before = (Clock.breakdown (Runtime.clock rt)).Clock.serde_io_ns in
  let seen = ref 0 in
  Block_manager.get bm ~rdd_id:rdd.Rdd.id ~pidx:!offheap_pidx
    ~consume:(fun group -> seen := Obj_.ref_count group);
  Alcotest.(check int) "rebuilt with all elements" 512 !seen;
  Alcotest.(check bool) "paid S/D + I/O" true
    ((Clock.breakdown (Runtime.clock rt)).Clock.serde_io_ns > sd_before)

let test_bm_unpersist_releases () =
  let ctx = th_ctx () in
  let rdd =
    Rdd.create ctx ~partitions:1 ~elems_per_partition:16 ~elem_size:512 ()
  in
  let bm, group = cache_one ctx rdd in
  let rt = Context.runtime ctx in
  Runtime.major_gc rt;
  Block_manager.unpersist bm ~rdd_id:rdd.Rdd.id;
  Runtime.major_gc rt;
  Alcotest.(check bool) "H2 region reclaimed after unpersist" true
    (Obj_.is_freed group);
  Alcotest.(check int) "no blocks left" 0 (Block_manager.cached_blocks bm)

let test_bm_double_put_rejected () =
  let ctx = th_ctx () in
  let rdd =
    Rdd.create ctx ~partitions:1 ~elems_per_partition:4 ~elem_size:128 ()
  in
  let bm, _ = cache_one ctx rdd in
  let rt = Context.runtime ctx in
  let group = Rdd.build_partition ctx rdd in
  Alcotest.check_raises "duplicate block"
    (Invalid_argument "Block_manager.put: block already cached") (fun () ->
      Block_manager.put bm ~rdd_id:rdd.Rdd.id ~pidx:0 group);
  Runtime.remove_root rt group

let test_stage_releases_buffers () =
  let ctx = th_ctx () in
  let rt = Context.runtime ctx in
  let roots_before = Th_objmodel.Roots.count (Runtime.roots rt) in
  Stage.run ctx ~shuffle_bytes:(Size.mib 1) ~transient_bytes:(Size.kib 256)
    ~work:(fun () -> ())
    ();
  Alcotest.(check int) "no pinned buffers leak" roots_before
    (Th_objmodel.Roots.count (Runtime.roots rt))

let test_stage_charges_shuffle_serde () =
  let ctx = th_ctx () in
  let rt = Context.runtime ctx in
  Stage.run ctx ~shuffle_bytes:(Size.mib 1) ~work:(fun () -> ()) ();
  Alcotest.(check bool) "shuffle pays S/D" true
    ((Clock.breakdown (Runtime.clock rt)).Clock.serde_io_ns > 0.0)

let suite =
  [
    Alcotest.test_case "rdd shapes a dataset" `Quick test_rdd_shapes_dataset;
    Alcotest.test_case "partition pinned while building" `Quick
      test_build_partition_pinned;
    Alcotest.test_case "columnar layout builds batch arrays" `Quick
      test_columnar_layout_has_batches;
    Alcotest.test_case "TeraHeap mode tags and advises" `Quick
      test_bm_teraheap_tags_and_advises;
    Alcotest.test_case "Spark-SD spills over the storage budget" `Quick
      test_bm_sd_spills_over_budget;
    Alcotest.test_case "off-heap get deserializes" `Quick
      test_bm_get_offheap_deserializes;
    Alcotest.test_case "unpersist releases H2 regions" `Quick
      test_bm_unpersist_releases;
    Alcotest.test_case "double put rejected" `Quick test_bm_double_put_rejected;
    Alcotest.test_case "stage unpins its buffers" `Quick
      test_stage_releases_buffers;
    Alcotest.test_case "stage charges shuffle S/D" `Quick
      test_stage_charges_shuffle_serde;
  ]
