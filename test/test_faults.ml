(* Tests for the fault-injection substrate: plan parsing, zero-rate
   transparency, retry/backoff accounting, checked-vs-unchecked failure
   semantics, graceful H2 degradation, and whole-workload runs completing
   in degraded mode instead of crashing. *)

open Th_sim
module Fault = Th_sim.Fault
module Device = Th_device.Device
module Io_retry = Th_device.Io_retry
module Page_cache = Th_device.Page_cache
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Runtime = Th_psgc.Runtime
module Setups = Th_baselines.Setups
module Spark_profiles = Th_workloads.Spark_profiles
module Giraph_profiles = Th_workloads.Giraph_profiles
module Spark_driver = Th_workloads.Spark_driver
module Giraph_driver = Th_workloads.Giraph_driver
module Run_result = Th_workloads.Run_result

(* --- plan parsing ---------------------------------------------------- *)

let test_parse_presets () =
  (match Fault.parse "none" with
  | Ok p -> Alcotest.(check bool) "none is zero" true (p = Fault.static Fault.zero)
  | Error e -> Alcotest.fail e);
  (match Fault.parse "default,seed=9" with
  | Ok p ->
      Alcotest.(check bool) "preset with override" true
        (p = Fault.static { Fault.default_plan with Fault.seed = 9L })
  | Error e -> Alcotest.fail e);
  (match Fault.parse "harsh" with
  | Ok p -> Alcotest.(check bool) "harsh preset" true (p = Fault.static Fault.harsh)
  | Error e -> Alcotest.fail e);
  (match Fault.parse "wearout" with
  | Ok p -> Alcotest.(check bool) "wearout preset" true (p = Fault.wearout)
  | Error e -> Alcotest.fail e);
  (match Fault.parse "bursty" with
  | Ok p ->
      Alcotest.(check bool) "bursty preset" true (p = Fault.bursty);
      Alcotest.(check bool) "bursty cycles" true p.Fault.cycle
  | Error e -> Alcotest.fail e);
  match Fault.parse "bogus_key=1" with
  | Ok _ -> Alcotest.fail "bogus key accepted"
  | Error _ -> ()

let test_parse_roundtrip () =
  let spec = { Fault.harsh with Fault.seed = 123L } in
  (match Fault.parse (Fault.to_string spec) with
  | Ok p ->
      Alcotest.(check bool) "to_string parses back" true (p = Fault.static spec)
  | Error e -> Alcotest.fail e);
  (* Plans (including the phased presets) round-trip through
     plan_to_string too. *)
  List.iter
    (fun plan ->
      match Fault.parse (Fault.plan_to_string plan) with
      | Ok p -> Alcotest.(check bool) "plan round-trips" true (p = plan)
      | Error e -> Alcotest.fail e)
    [ Fault.wearout; Fault.bursty; Fault.static Fault.default_plan ]

let test_parse_phases () =
  (match Fault.parse "phase(none,dur_ms=80),phase(harsh,dur_ms=20),cycle" with
  | Ok p ->
      Alcotest.(check bool) "explicit phases equal bursty" true (p = Fault.bursty)
  | Error e -> Alcotest.fail e);
  (* A top-level key after phase(...) applies to every phase. *)
  (match Fault.parse "phase(none,dur_s=1),phase(harsh),seed=77" with
  | Ok p ->
      List.iter
        (fun (s, _) -> Alcotest.(check int64) "seed everywhere" 77L s.Fault.seed)
        p.Fault.phases
  | Error e -> Alcotest.fail e);
  (* A finite last phase is legal in a non-cycling plan: it holds past
     its stated end (the injector never runs out of schedule). *)
  (match Fault.parse "phase(harsh,dur_ms=5)" with
  | Ok p ->
      let inj = Fault.create_plan p in
      ignore (Fault.on_read inj ~now_ns:60e6);
      Alcotest.(check int) "terminal phase persists" 0 (Fault.phase_index inj)
  | Error e -> Alcotest.fail e);
  (* But a cycling plan with an open-ended phase cannot wrap. *)
  match Fault.parse "phase(harsh),cycle" with
  | Ok _ -> Alcotest.fail "cycling plan with an infinite phase accepted"
  | Error _ -> ()

(* Satellite: hostile inputs must come back as descriptive [Error],
   never as a silently-clamped plan or an exception. *)
let test_parse_rejects_invalid () =
  let expect_error ~needle input =
    match Fault.parse input with
    | Ok _ -> Alcotest.failf "accepted %S" input
    | Error e ->
        let lower = String.lowercase_ascii e in
        let found =
          let nl = String.length needle and el = String.length lower in
          let rec scan i =
            i + nl <= el && (String.sub lower i nl = needle || scan (i + 1))
          in
          scan 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%S error mentions %S (got %S)" input needle e)
          true found
  in
  expect_error ~needle:"probability" "read_err=-0.1";
  expect_error ~needle:"probability" "write_err=1.5";
  expect_error ~needle:"probability" "spike=2";
  expect_error ~needle:"spike_factor" "spike_factor=0.5";
  expect_error ~needle:"stall_us" "stall_us=-3";
  expect_error ~needle:"dur" "phase(harsh,dur_ms=0),phase(none)";
  expect_error ~needle:"dur" "phase(harsh,dur_ms=-2),phase(none)";
  expect_error ~needle:"seed" "seed=banana";
  expect_error ~needle:"unknown" "phase(harsh,bogus=1),phase(none)"

(* Grid-valued generators: every value prints exactly under %g, so the
   qcheck round-trip through the textual form is loss-free. *)
let grid_spec_gen =
  QCheck.Gen.(
    let rate = oneofl [ 0.0; 0.05; 0.125; 0.25; 0.5; 1.0 ] in
    let dur_us = oneofl [ 0.0; 50.0; 400.0; 2000.0 ] in
    let* seed = map Int64.of_int (int_range 0 10_000) in
    let* read_error_rate = rate in
    let* write_error_rate = rate in
    let* spike_rate = rate in
    let* spike_factor = oneofl [ 1.0; 2.0; 8.0; 16.0 ] in
    let* spike_d = dur_us in
    let* stall_rate = rate in
    let* stall_us = dur_us in
    let* full_rate = rate in
    let* full_d = dur_us in
    return
      {
        Fault.seed;
        read_error_rate;
        write_error_rate;
        spike_rate;
        spike_factor;
        spike_duration_ns = spike_d *. 1e3;
        stall_rate;
        stall_ns = stall_us *. 1e3;
        full_rate;
        full_duration_ns = full_d *. 1e3;
      })

let grid_plan_gen =
  QCheck.Gen.(
    let* specs = list_size (int_range 1 4) grid_spec_gen in
    let* cycle = bool in
    let* durs =
      flatten_l
        (List.map (fun _ -> oneofl [ 1_000.0; 500_000.0; 3e9 ]) specs)
    in
    let phases = List.combine specs durs in
    if cycle then return { Fault.phases; cycle = true }
    else
      (* A non-cycling plan must end in an open-ended phase. *)
      let rec cap = function
        | [] -> []
        | [ (s, _) ] -> [ (s, infinity) ]
        | p :: rest -> p :: cap rest
      in
      return { Fault.phases = cap phases; cycle = false })

let prop_plan_roundtrip =
  QCheck.Test.make ~count:200 ~name:"parse (plan_to_string p) = Ok p"
    (QCheck.make grid_plan_gen) (fun plan ->
      match Fault.parse (Fault.plan_to_string plan) with
      | Ok p -> p = plan
      | Error e -> QCheck.Test.fail_reportf "did not parse back: %s" e)

(* --- zero-rate transparency ------------------------------------------ *)

(* The same op sequence against a plain device and against one carrying a
   zero-rate injector: identical clock breakdown and device stats, and
   the injector must never have drawn from its PRNG (no counters). *)
let exercise clock device =
  let cache =
    Page_cache.create ~capacity_bytes:(Size.kib 64) clock device
  in
  for i = 0 to 199 do
    Device.read device ~cat:Clock.Serde_io ~random:(i mod 3 = 0) (512 * (i + 1));
    Device.write device ~cat:Clock.Major_gc ~random:(i mod 5 = 0) (256 * (i + 1));
    Page_cache.access cache ~cat:Clock.Other ~write:(i mod 2 = 0)
      ~offset:(i * 1000) ~len:900
  done;
  Device.read_continuation device ~cat:Clock.Other ~overlap:0.5 (Size.kib 8)

let test_zero_rate_plan_is_transparent () =
  let clock_a = Clock.create () in
  let dev_a = Device.create clock_a Device.Nvme_ssd in
  exercise clock_a dev_a;
  let clock_b = Clock.create () in
  let inj = Fault.create Fault.zero in
  let dev_b = Device.create ~faults:inj clock_b Device.Nvme_ssd in
  exercise clock_b dev_b;
  Alcotest.(check bool) "injector disabled" false (Fault.enabled inj);
  let a = Clock.breakdown clock_a and b = Clock.breakdown clock_b in
  Alcotest.(check (float 0.0)) "other" a.Clock.other_ns b.Clock.other_ns;
  Alcotest.(check (float 0.0)) "serde" a.Clock.serde_io_ns b.Clock.serde_io_ns;
  Alcotest.(check (float 0.0)) "minor" a.Clock.minor_gc_ns b.Clock.minor_gc_ns;
  Alcotest.(check (float 0.0)) "major" a.Clock.major_gc_ns b.Clock.major_gc_ns;
  let sa = Device.stats dev_a and sb = Device.stats dev_b in
  Alcotest.(check bool) "device stats identical" true (sa = sb);
  Alcotest.(check bool) "no counters recorded" true
    (Fault.stats inj = Fault.zero_stats)

(* --- retry/backoff accounting ---------------------------------------- *)

(* Invariant of the charging scheme: every completed unchecked operation
   charges its pure cost exactly once outside the fault penalties, so
     total clock = sum of pure costs + backoff_ns + penalty_ns. *)
let test_backoff_and_penalty_account_for_clock_delta () =
  let plan =
    {
      Fault.default_plan with
      Fault.seed = 7L;
      read_error_rate = 0.02;
      write_error_rate = 0.02;
      spike_rate = 0.005;
      stall_rate = 0.01;
      full_rate = 5e-4;
    }
  in
  let clock = Clock.create () in
  let inj = Fault.create plan in
  let device = Device.create ~faults:inj clock Device.Nvme_ssd in
  let ops = 3000 in
  let read_cost = Device.read_cost_ns device ~random:true 4096 in
  let write_cost = Device.write_cost_ns device ~random:true 4096 in
  for _ = 1 to ops do
    Device.read device ~cat:Clock.Serde_io ~random:true 4096;
    Device.write device ~cat:Clock.Serde_io ~random:true 4096
  done;
  let fs = Fault.stats inj in
  Alcotest.(check bool) "faults were injected" true
    (Fault.faults_injected fs > 0);
  Alcotest.(check bool) "retries happened" true (fs.Fault.retries > 0);
  let total = Clock.total_ns (Clock.breakdown clock) in
  let pure = float_of_int ops *. (read_cost +. write_cost) in
  let expected = pure +. fs.Fault.backoff_ns +. fs.Fault.penalty_ns in
  Alcotest.(check (float (1e-6 *. total)))
    "total = pure + backoff + penalty" expected total

let test_backoff_grows_and_caps () =
  let p = Io_retry.default in
  Alcotest.(check (float 0.0)) "first backoff" p.Io_retry.base_backoff_ns
    (Io_retry.backoff_ns p ~attempt:1);
  Alcotest.(check bool) "grows" true
    (Io_retry.backoff_ns p ~attempt:2 > Io_retry.backoff_ns p ~attempt:1);
  Alcotest.(check (float 0.0)) "caps" p.Io_retry.max_backoff_ns
    (Io_retry.backoff_ns p ~attempt:1000)

(* --- checked vs unchecked failure semantics -------------------------- *)

let test_checked_raises_unchecked_waits () =
  let always_fail = { Fault.zero with Fault.seed = 1L; read_error_rate = 1.0 } in
  let clock = Clock.create () in
  let inj = Fault.create always_fail in
  let device = Device.create ~faults:inj clock Device.Nvme_ssd in
  (match Device.read ~checked:true device ~cat:Clock.Serde_io ~random:true 4096 with
  | () -> Alcotest.fail "checked read succeeded under 100% error rate"
  | exception Io_retry.Io_error { op; attempts } ->
      Alcotest.(check string) "op name" "read" op;
      Alcotest.(check int) "attempt budget"
        (1 + Io_retry.default.Io_retry.max_retries)
        attempts);
  Alcotest.(check bool) "exhaustion recorded" true
    ((Fault.stats inj).Fault.exhausted_retries >= 1);
  (* The unchecked (mmap) path absorbs the same exhaustion as a charged
     timeout and completes. *)
  let before = Clock.total_ns (Clock.breakdown clock) in
  Device.read device ~cat:Clock.Serde_io ~random:true 4096;
  let delta = Clock.total_ns (Clock.breakdown clock) -. before in
  Alcotest.(check bool) "timeout wait charged" true
    (delta >= Io_retry.default.Io_retry.timeout_ns)

(* --- graceful H2 degradation ----------------------------------------- *)

let tiny_h2_rt () =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 8) () in
  let device = Device.create clock Device.Nvme_ssd in
  let config =
    {
      H2.default_config with
      H2.region_size = Size.kib 64;
      capacity = Size.kib 128;
    }
  in
  let h2 =
    H2.create ~config ~clock ~costs ~device ~dr2_bytes:(Size.mib 1) ()
  in
  (Runtime.create ~h2 ~clock ~costs ~heap (), h2)

let test_h2_exhaustion_degrades_instead_of_aborting () =
  let rt, h2 = tiny_h2_rt () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  (* A tagged group several times larger than the whole H2. *)
  let part = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt holder part;
  for _ = 1 to 60 do
    let e = Runtime.alloc rt ~size:(Size.kib 8) () in
    Runtime.write_ref rt part e
  done;
  Runtime.h2_tag_root rt part ~label:4;
  Runtime.h2_move rt ~label:4;
  Runtime.major_gc rt;
  let s = H2.stats h2 in
  Alcotest.(check bool) "degraded move recorded" true (s.H2.degraded_moves >= 1);
  Alcotest.(check bool) "objects left in H1" true (s.H2.objects_deferred > 0);
  (* The deferred objects stayed alive in H1, still tagged. *)
  Alcotest.(check bool) "root survives somewhere" false (Obj_.is_freed part);
  (* The next major GC retries (and, H2 still being full, degrades
     again) rather than crashing. *)
  Runtime.major_gc rt;
  let s2 = H2.stats h2 in
  Alcotest.(check bool) "retry at next major GC" true
    (s2.H2.degraded_moves > s.H2.degraded_moves)

(* --- defensive OOM snapshots ----------------------------------------- *)

let test_oom_result_is_defensive () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 2) () in
  let rt = Runtime.create ~clock ~costs:Costs.default ~heap () in
  let keep = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt keep;
  let r =
    try
      (* Pin everything: the heap must fill and the allocator give up. *)
      for _ = 1 to 10_000 do
        let o = Runtime.alloc rt ~size:(Size.kib 8) () in
        Runtime.write_ref rt keep o
      done;
      Alcotest.fail "tiny heap did not OOM"
    with Runtime.Out_of_memory reason -> Run_result.oom ~reason ~label:"oom" rt
  in
  Alcotest.(check bool) "outcome is Oom" true
    (r.Run_result.outcome = Run_result.Oom);
  Alcotest.(check bool) "breakdown marks OOM" true
    (r.Run_result.breakdown = None);
  Alcotest.(check bool) "reason captured" true (r.Run_result.oom_reason <> None);
  Alcotest.(check bool) "gc stats readable" true (r.Run_result.gc_stats <> None);
  Alcotest.(check bool) "gc counts non-negative" true
    (r.Run_result.minor_gcs >= 0 && r.Run_result.major_gcs >= 0);
  (match r.Run_result.at_failure with
  | None -> Alcotest.fail "clock snapshot missing at OOM"
  | Some b ->
      Alcotest.(check bool) "clock categories non-negative" true
        (b.Clock.other_ns >= 0.0 && b.Clock.serde_io_ns >= 0.0
        && b.Clock.minor_gc_ns >= 0.0 && b.Clock.major_gc_ns >= 0.0);
      Alcotest.(check bool) "simulated time advanced" true
        (Clock.total_ns b > 0.0));
  Alcotest.(check bool) "census captured" true (r.Run_result.census <> None)

(* --- whole workloads under faults ------------------------------------ *)

let spark_plan = Fault.static { Fault.default_plan with Fault.seed = 11L }

let run_spark_pr_with_faults () =
  let p = Spark_profiles.pagerank in
  let dram = List.fold_left max 0 p.Spark_profiles.th_dram_gb in
  let s =
    Setups.spark_teraheap ~huge_pages:p.Spark_profiles.sequential
      ~faults:spark_plan
      ~h1_gb:(dram - Spark_profiles.dr2_gb)
      ~dr2_gb:Spark_profiles.dr2_gb ()
  in
  Spark_driver.run ~dataset_scale:0.5 ~label:"th-faults"
    ?h2_device:s.Setups.h2_device ?faults:s.Setups.faults s.Setups.ctx p

let test_spark_pagerank_degrades_not_crashes () =
  let r = run_spark_pr_with_faults () in
  Alcotest.(check bool) "completed (no OOM)" true
    (r.Run_result.breakdown <> None);
  Alcotest.(check bool) "outcome Degraded" true
    (r.Run_result.outcome = Run_result.Degraded);
  (match r.Run_result.faults with
  | None -> Alcotest.fail "fault counters missing"
  | Some fs ->
      Alcotest.(check bool) "faults injected" true
        (Fault.faults_injected fs > 0));
  (* Same seed, same simulated time: rebuilding the whole setup must
     reproduce the run exactly. *)
  let r2 = run_spark_pr_with_faults () in
  match (r.Run_result.breakdown, r2.Run_result.breakdown) with
  | Some a, Some b ->
      Alcotest.(check (float 0.0)) "deterministic under same seed"
        (Clock.total_ns a) (Clock.total_ns b);
      Alcotest.(check bool) "identical counters" true
        (r.Run_result.faults = r2.Run_result.faults)
  | _ -> Alcotest.fail "a run OOMed"

let giraph_plan = Fault.static { Fault.harsh with Fault.seed = 5L }

let run_giraph_bfs_with_faults () =
  let p = Giraph_profiles.bfs in
  let s =
    Setups.giraph_teraheap ~faults:giraph_plan
      ~h1_gb:p.Giraph_profiles.th_h1_gb ~dr2_gb:p.Giraph_profiles.th_dr2_gb ()
  in
  Giraph_driver.run ~label:"th-faults" s.Setups.rt ~mode:s.Setups.mode
    ?h2_device:s.Setups.g_h2_device ?faults:s.Setups.g_faults p

let test_giraph_bfs_degrades_not_crashes () =
  let r = run_giraph_bfs_with_faults () in
  Alcotest.(check bool) "completed (no OOM)" true
    (r.Run_result.breakdown <> None);
  Alcotest.(check bool) "outcome Degraded" true
    (r.Run_result.outcome = Run_result.Degraded);
  let r2 = run_giraph_bfs_with_faults () in
  match (r.Run_result.breakdown, r2.Run_result.breakdown) with
  | Some a, Some b ->
      Alcotest.(check (float 0.0)) "deterministic under same seed"
        (Clock.total_ns a) (Clock.total_ns b)
  | _ -> Alcotest.fail "a run OOMed"

let suite =
  [
    Alcotest.test_case "plan presets and overrides parse" `Quick
      test_parse_presets;
    Alcotest.test_case "plan to_string round-trips" `Quick test_parse_roundtrip;
    Alcotest.test_case "phase(...) syntax parses" `Quick test_parse_phases;
    Alcotest.test_case "invalid plans rejected with reasons" `Quick
      test_parse_rejects_invalid;
    QCheck_alcotest.to_alcotest prop_plan_roundtrip;
    Alcotest.test_case "zero-rate plan is byte-identical to no injector"
      `Quick test_zero_rate_plan_is_transparent;
    Alcotest.test_case "clock delta = pure + backoff + penalty" `Quick
      test_backoff_and_penalty_account_for_clock_delta;
    Alcotest.test_case "exponential backoff grows and caps" `Quick
      test_backoff_grows_and_caps;
    Alcotest.test_case "checked I/O raises, unchecked waits out a timeout"
      `Quick test_checked_raises_unchecked_waits;
    Alcotest.test_case "H2 exhaustion degrades instead of aborting" `Quick
      test_h2_exhaustion_degrades_instead_of_aborting;
    Alcotest.test_case "OOM snapshot stays readable" `Quick
      test_oom_result_is_defensive;
    Alcotest.test_case "Spark PageRank completes degraded under faults" `Slow
      test_spark_pagerank_degrades_not_crashes;
    Alcotest.test_case "Giraph BFS completes degraded under faults" `Slow
      test_giraph_bfs_degrades_not_crashes;
  ]
