(* Tests for the Th_verify heap-state sanitizer.

   Two layers:

   - clean-run properties: the sanitizer attached at every GC safepoint
     (and at Paranoid) must stay silent over randomly generated mutator
     programs, including degraded (H2-exhausted) runs, and must not
     perturb the simulated clock;

   - mutation tests: each class of seeded corruption must be detected
     and named by the right rule id. Deterministic unit tests guarantee
     one real detection per rule; qcheck variants plant the same
     corruption wherever a random program's final state offers the
     precondition (vacuously true otherwise). *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Card_table = Th_minijvm.Card_table
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module H2_card_table = Th_core.H2_card_table
module Runtime = Th_psgc.Runtime
module Device = Th_device.Device
module Verify = Th_verify.Verify

let has_rule v rule =
  List.exists (fun (x : Verify.violation) -> x.Verify.rule = rule)
    (Verify.violations v)

let check_detects v rule =
  Alcotest.(check bool)
    (Printf.sprintf "corruption detected as %s" (Verify.rule_id rule))
    true (has_rule v rule)

(* Same environment as Test_gc_props.execute: 2 MiB H1, 64 KiB regions,
   16 MiB H2. *)
let mk_rt () =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 2) () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 =
    H2.create ~config:Test_gc_props.base_config ~clock ~costs ~device
      ~dr2_bytes:(Size.kib 256) ()
  in
  let rt = Runtime.create ~h2 ~clock ~costs ~heap () in
  (rt, h2, clock)

(* Allocate an object, root it and age it past the tenure threshold so
   it sits in the old generation. *)
let make_old rt =
  let o = Runtime.alloc rt ~size:1024 () in
  Runtime.add_root rt o;
  for _ = 1 to 4 do
    Runtime.minor_gc rt
  done;
  Alcotest.(check bool) "precondition: object tenured" true
    (o.Obj_.loc = Obj_.Old);
  o

(* Move a rooted object into H2 under [label] and return it. *)
let make_h2 rt ~label =
  let o = Runtime.alloc rt ~size:1024 () in
  Runtime.add_root rt o;
  Runtime.h2_tag_root rt o ~label;
  Runtime.h2_move rt ~label;
  Runtime.major_gc rt;
  Alcotest.(check bool) "precondition: object moved to H2" true
    (o.Obj_.loc = Obj_.In_h2);
  o

(* ------------------------------------------------------------------ *)
(* Deterministic detection tests: one planted corruption per rule.     *)

let test_detects_cleared_h1_card () =
  let rt, _, _ = mk_rt () in
  let parent = make_old rt in
  let child = Runtime.alloc rt ~size:64 () in
  Runtime.write_ref rt parent child;
  let cards = (Runtime.heap rt).H1_heap.cards in
  let card = Card_table.card_of_addr cards parent.Obj_.addr in
  Alcotest.(check bool) "precondition: barrier dirtied the card" true
    (Card_table.is_dirty cards ~card);
  Card_table.clear_card cards ~card;
  let v = Verify.attach rt Verify.Paranoid in
  Verify.check_now v;
  check_detects v Verify.Rset_completeness

let test_detects_dropped_rset_index () =
  let rt, _, _ = mk_rt () in
  let _ = make_old rt in
  Card_table.clear_index (Runtime.heap rt).H1_heap.cards;
  let v = Verify.attach rt Verify.Paranoid in
  Verify.check_now v;
  check_detects v Verify.Rset_completeness

let test_detects_illegal_h2_card_clean () =
  let rt, h2, _ = mk_rt () in
  let a = make_h2 rt ~label:0 in
  let child = Runtime.alloc rt ~size:64 () in
  Runtime.write_ref rt a child;
  let ct = H2.card_table h2 in
  let cfg = H2.config h2 in
  let gaddr = (a.Obj_.h2_region * cfg.H2.region_size) + a.Obj_.addr in
  let seg = H2_card_table.segment_of ct ~gaddr in
  (* Any state but the two scanned ones fails the precondition — the
     catch-all is the assertion. th-lint: allow catch-all-match *)
  (match H2_card_table.state ct ~seg with
  | H2_card_table.Dirty | H2_card_table.Young_gen -> ()
  | _ -> Alcotest.fail "precondition: backward ref left no scanned card");
  H2_card_table.set_state ct ~seg H2_card_table.Clean;
  let v = Verify.attach rt Verify.Paranoid in
  Verify.check_now v;
  check_detects v Verify.H2_card_legality

let test_detects_illegal_transition () =
  let rt, h2, _ = mk_rt () in
  let v = Verify.attach rt Verify.Safepoint in
  (* A recompute must never run on a clean card nor target Dirty; this
     does both, and the online hook records it without any check_now. *)
  H2_card_table.set_state (H2.card_table h2) ~seg:0 H2_card_table.Dirty;
  check_detects v Verify.H2_card_transition

let test_detects_removed_dependency () =
  let rt, h2, _ = mk_rt () in
  (* Move a and b separately (a link before the move would drag b into
     a's closure and the same region), then store the cross-region
     reference through the barrier, which records the dependency. *)
  let a = make_h2 rt ~label:0 in
  let b = make_h2 rt ~label:1 in
  Runtime.write_ref rt a b;
  Alcotest.(check bool) "precondition: cross-region H2 edge" true
    (a.Obj_.loc = Obj_.In_h2 && b.Obj_.loc = Obj_.In_h2
    && a.Obj_.h2_region <> b.Obj_.h2_region);
  H2.debug_remove_dependency h2 ~src_region:a.Obj_.h2_region
    ~dst_region:b.Obj_.h2_region;
  let v = Verify.attach rt Verify.Paranoid in
  Verify.check_now v;
  check_detects v Verify.Dependency_soundness

let test_detects_accounting_skew () =
  let rt, _, _ = mk_rt () in
  let _ = make_old rt in
  let heap = Runtime.heap rt in
  heap.H1_heap.old_used <- heap.H1_heap.old_used + 4096;
  let v = Verify.attach rt Verify.Paranoid in
  Verify.check_now v;
  check_detects v Verify.Region_accounting

let test_detects_freed_reachable () =
  let rt, _, _ = mk_rt () in
  let o = Runtime.alloc rt ~size:256 () in
  Runtime.add_root rt o;
  o.Obj_.loc <- Obj_.Freed;
  let v = Verify.attach rt Verify.Paranoid in
  Verify.check_now v;
  check_detects v Verify.Reachability;
  (* The census only runs at Paranoid. *)
  let rt2, _, _ = mk_rt () in
  let o2 = Runtime.alloc rt2 ~size:256 () in
  Runtime.add_root rt2 o2;
  o2.Obj_.loc <- Obj_.Freed;
  let v2 = Verify.attach rt2 Verify.Safepoint in
  Verify.check_now v2;
  Alcotest.(check bool) "reachability census skipped at Safepoint" false
    (has_rule v2 Verify.Reachability)

let test_detects_clock_reset () =
  let rt, _, clock = mk_rt () in
  let _ = Runtime.alloc rt ~size:1024 () in
  Runtime.minor_gc rt;
  Alcotest.(check bool) "precondition: clock advanced" true
    (Clock.now_ns clock > 0.0);
  let v = Verify.attach rt Verify.Safepoint in
  Verify.check_now v;
  Clock.reset clock;
  Verify.check_now v;
  check_detects v Verify.Conservation

let test_report_names_rules () =
  let rt, _, _ = mk_rt () in
  let heap = Runtime.heap rt in
  heap.H1_heap.old_used <- heap.H1_heap.old_used + 64;
  let v = Verify.attach rt Verify.Safepoint in
  Verify.check_now v;
  let report = Verify.report v in
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report names the rule" true
    (contains report "region-accounting");
  Alcotest.(check bool) "report names the phase" true (contains report "manual")

(* ------------------------------------------------------------------ *)
(* Clean-run properties over random programs.                          *)

let attach_via_hook level vref rt = vref := Some (Verify.attach rt level)

let finish rt =
  (* Trailing collection so After_minor/After_major safepoints fire on
     the final state too; programs may already be out of memory. *)
  try Runtime.major_gc rt with
  | Runtime.Out_of_memory _ | H2.Out_of_h2_space -> ()

let clean_run ?config level program =
  let vref = ref None in
  let rt, _, _ =
    Test_gc_props.execute ?config ~on_runtime:(attach_via_hook level vref)
      program
  in
  finish rt;
  let v = Option.get !vref in
  Verify.check_now v;
  if Verify.violation_count v > 0 then begin
    Printf.eprintf "%s" (Verify.report v);
    false
  end
  else true

let prop_clean_safepoint =
  QCheck.Test.make ~name:"random programs verify clean at safepoint level"
    ~count:80 Test_gc_props.arbitrary_program (clean_run Verify.Safepoint)

let prop_clean_paranoid =
  QCheck.Test.make ~name:"random programs verify clean at paranoid level"
    ~count:40 Test_gc_props.arbitrary_program (clean_run Verify.Paranoid)

let prop_clean_unaligned =
  QCheck.Test.make
    ~name:"unaligned (sticky-boundary) runs verify clean" ~count:40
    Test_gc_props.arbitrary_program
    (clean_run
       ~config:
         { Test_gc_props.base_config with H2.stripe_aligned = false }
       Verify.Paranoid)

let prop_clean_region_groups =
  QCheck.Test.make ~name:"union-find reclamation runs verify clean" ~count:40
    Test_gc_props.arbitrary_program
    (clean_run
       ~config:
         { Test_gc_props.base_config with H2.reclaim_mode = H2.Region_groups }
       Verify.Paranoid)

(* A single 64 KiB region exhausts almost immediately: the run degrades
   (Out_of_h2_space handled by the collector) yet must stay invariant-
   clean throughout. *)
let prop_degraded_clean =
  QCheck.Test.make ~name:"H2-exhausted (degraded) runs verify clean" ~count:40
    Test_gc_props.arbitrary_program
    (clean_run
       ~config:{ Test_gc_props.base_config with H2.capacity = Size.kib 64 }
       Verify.Safepoint)

(* The sanitizer is observational: attaching it must not change the
   simulated clock or the GC counts. *)
let prop_verifier_pure =
  QCheck.Test.make ~name:"attaching the sanitizer never perturbs the run"
    ~count:60 Test_gc_props.arbitrary_program
    (fun program ->
      let summarize on_runtime =
        let rt, _, _ = Test_gc_props.execute ?on_runtime program in
        let module Gc_stats = Th_psgc.Gc_stats in
        let stats = Runtime.stats rt in
        ( Clock.now_ns (Runtime.clock rt),
          Gc_stats.minor_count stats,
          Gc_stats.major_count stats )
      in
      let vref = ref None in
      summarize None
      = summarize (Some (attach_via_hook Verify.Paranoid vref)))

(* ------------------------------------------------------------------ *)
(* qcheck mutation properties: plant the corruption wherever the final
   state offers the precondition; vacuously true otherwise.            *)

let plant name ~count corrupt =
  QCheck.Test.make ~name ~count Test_gc_props.arbitrary_program
    (fun program ->
      let rt, table, pinned = Test_gc_props.execute program in
      match corrupt rt table pinned with
      | None -> true (* precondition absent *)
      | Some rule ->
          let v = Verify.attach rt Verify.Paranoid in
          Verify.check_now v;
          if has_rule v rule then true
          else begin
            Printf.eprintf "planted %s went undetected\n%!"
              (Verify.rule_id rule);
            false
          end)

let first_in_vec vec pred =
  Vec.fold_left
    (fun acc o -> match acc with Some _ -> acc | None -> pred o)
    None vec

let has_young_ref o =
  let found = ref false in
  Obj_.iter_refs (fun c -> if Obj_.is_young c then found := true) o;
  !found

let prop_plant_card_clear =
  plant "clearing a dirty H1 card is detected" ~count:40 (fun rt _ _ ->
      let heap = Runtime.heap rt in
      let cards = heap.H1_heap.cards in
      first_in_vec heap.H1_heap.old_objs (fun o ->
          if has_young_ref o then begin
            let card = Card_table.card_of_addr cards o.Obj_.addr in
            if Card_table.is_dirty cards ~card then begin
              Card_table.clear_card cards ~card;
              Some Verify.Rset_completeness
            end
            else None
          end
          else None))

let prop_plant_index_drop =
  plant "dropping the remembered-set index is detected" ~count:40
    (fun rt _ _ ->
      let heap = Runtime.heap rt in
      if Vec.length heap.H1_heap.old_objs = 0 then None
      else begin
        Card_table.clear_index heap.H1_heap.cards;
        Some Verify.Rset_completeness
      end)

let prop_plant_h2_card_clean =
  plant "cleaning a covering H2 card is detected" ~count:40
    (fun rt table _ ->
      match Runtime.h2 rt with
      | None -> None
      | Some h2 ->
          let ct = H2.card_table h2 in
          let cfg = H2.config h2 in
          first_in_vec table (fun o ->
              if o.Obj_.loc = Obj_.In_h2 && has_young_ref o then begin
                let gstart =
                  (o.Obj_.h2_region * cfg.H2.region_size) + o.Obj_.addr
                in
                let seg_size = H2_card_table.segment_size ct in
                let s0 = gstart / seg_size in
                let s1 = (gstart + Obj_.total_size o - 1) / seg_size in
                for s = s0 to min s1 (H2_card_table.num_segments ct - 1) do
                  H2_card_table.set_state ct ~seg:s H2_card_table.Clean
                done;
                Some Verify.H2_card_legality
              end
              else None))

let prop_plant_dep_drop =
  plant "removing a live dependency edge is detected" ~count:40
    (fun rt table _ ->
      match Runtime.h2 rt with
      | None -> None
      | Some h2 ->
          first_in_vec table (fun o ->
              if o.Obj_.loc <> Obj_.In_h2 then None
              else begin
                let hit = ref None in
                Obj_.iter_refs
                  (fun c ->
                    if
                      !hit = None
                      && c.Obj_.loc = Obj_.In_h2
                      && c.Obj_.h2_region <> o.Obj_.h2_region
                    then hit := Some c.Obj_.h2_region)
                  o;
                match !hit with
                | None -> None
                | Some dst ->
                    H2.debug_remove_dependency h2
                      ~src_region:o.Obj_.h2_region ~dst_region:dst;
                    Some Verify.Dependency_soundness
              end))

let prop_plant_accounting_skew =
  plant "old-generation accounting skew is detected" ~count:40
    (fun rt _ _ ->
      let heap = Runtime.heap rt in
      heap.H1_heap.old_used <- heap.H1_heap.old_used + 4096;
      Some Verify.Region_accounting)

let prop_plant_freed_root =
  plant "marking a rooted object freed is detected" ~count:40
    (fun _ _ pinned ->
      let victim =
        (* Any live object serves as the planted victim; which binding
           the fold happens to surface first is immaterial.
           th-lint: allow hashtbl-order *)
        Hashtbl.fold
          (fun _ (o : Obj_.t) acc ->
            match acc with
            | Some _ -> acc
            | None -> if Obj_.is_freed o then None else Some o)
          pinned None
      in
      match victim with
      | None -> None
      | Some o ->
          o.Obj_.loc <- Obj_.Freed;
          Some Verify.Reachability)

let prop_plant_clock_reset =
  QCheck.Test.make ~name:"clock rollback is detected as conservation"
    ~count:40 Test_gc_props.arbitrary_program
    (fun program ->
      let rt, _, _ = Test_gc_props.execute program in
      (* Exact-zero guard: a program that never advanced the clock has
         literally 0.0 ns. th-lint: allow float-equality *)
      if Clock.now_ns (Runtime.clock rt) = 0.0 then true
      else begin
        let v = Verify.attach rt Verify.Safepoint in
        Verify.check_now v;
        Clock.reset (Runtime.clock rt);
        Verify.check_now v;
        has_rule v Verify.Conservation
      end)

let props =
  [
    prop_clean_safepoint;
    prop_clean_paranoid;
    prop_clean_unaligned;
    prop_clean_region_groups;
    prop_degraded_clean;
    prop_verifier_pure;
    prop_plant_card_clear;
    prop_plant_index_drop;
    prop_plant_h2_card_clean;
    prop_plant_dep_drop;
    prop_plant_accounting_skew;
    prop_plant_freed_root;
    prop_plant_clock_reset;
  ]

let suite =
  [
    Alcotest.test_case "detects cleared H1 card" `Quick
      test_detects_cleared_h1_card;
    Alcotest.test_case "detects dropped rset index" `Quick
      test_detects_dropped_rset_index;
    Alcotest.test_case "detects illegally cleaned H2 card" `Quick
      test_detects_illegal_h2_card_clean;
    Alcotest.test_case "detects illegal card transition online" `Quick
      test_detects_illegal_transition;
    Alcotest.test_case "detects removed dependency edge" `Quick
      test_detects_removed_dependency;
    Alcotest.test_case "detects accounting skew" `Quick
      test_detects_accounting_skew;
    Alcotest.test_case "detects freed-but-reachable (paranoid only)" `Quick
      test_detects_freed_reachable;
    Alcotest.test_case "detects clock rollback" `Quick
      test_detects_clock_reset;
    Alcotest.test_case "report names rule and phase" `Quick
      test_report_names_rules;
  ]
  @ List.map QCheck_alcotest.to_alcotest props
