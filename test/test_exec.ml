(* Tests of the domain-pool executor and of the harness determinism
   contract: pooled execution returns results in submission order, so
   rendering (and therefore CSV/report output) is byte-identical to a
   serial run. *)

module Pool = Th_exec.Pool
module Wall = Th_exec.Wall
module Csv = Th_metrics.Csv
module Setups = Th_baselines.Setups
module Giraph_profiles = Th_workloads.Giraph_profiles
module Giraph_driver = Th_workloads.Giraph_driver
module Run_result = Th_workloads.Run_result

let test_results_in_submission_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let thunks =
        List.init 32 (fun i () ->
            (* Stagger so later submissions tend to finish first. *)
            if i mod 4 = 0 then Unix.sleepf 0.002;
            i * i)
      in
      let results = Pool.run pool thunks in
      Alcotest.(check (list int))
        "squares in order"
        (List.init 32 (fun i -> i * i))
        results)

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "thunk exception re-raised" (Failure "boom")
        (fun () ->
          ignore
            (Pool.run pool
               [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]));
      (* The pool survives a failing batch. *)
      Alcotest.(check (list int))
        "pool reusable after failure" [ 7 ]
        (Pool.run pool [ (fun () -> 7) ]))

let test_serial_pool () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int))
        "jobs=1 runs in the calling domain" [ 1; 2; 3 ]
        (Pool.run pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]))

let test_map () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list int))
        "map keeps order" [ 2; 4; 6; 8 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3; 4 ]))

let test_invalid_jobs () =
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_wall_clock_monotonic () =
  let t0 = Wall.now_s () in
  Unix.sleepf 0.001;
  let dt = Wall.elapsed_s ~since:t0 in
  Alcotest.(check bool) "elapsed time is positive" true (dt > 0.0)

(* The determinism contract end to end: the same Giraph cell, with a
   fixed seed, produces byte-identical CSV whether computed serially or
   on a 4-domain pool. *)
let giraph_cell seed () =
  let p = Giraph_profiles.bfs in
  let s =
    Setups.giraph_teraheap ~h1_gb:p.Giraph_profiles.th_h1_gb
      ~dr2_gb:p.Giraph_profiles.th_dr2_gb ()
  in
  Giraph_driver.run ~label:"BFS determinism" s.Setups.rt ~mode:s.Setups.mode
    ~scale:0.1 ~seed p

let csv_of_results results =
  Csv.to_string ~header:Csv.breakdown_header
    (List.map
       (fun (r : Run_result.t) ->
         Csv.breakdown_row ~label:r.Run_result.label r.Run_result.breakdown)
       results)

let test_pooled_csv_identical () =
  let seed = 42L in
  let cells = [ giraph_cell seed; giraph_cell seed; giraph_cell seed ] in
  let serial = csv_of_results (List.map (fun f -> f ()) cells) in
  let pooled =
    Pool.with_pool ~jobs:4 (fun pool -> csv_of_results (Pool.run pool cells))
  in
  Alcotest.(check string) "serial and pooled CSV bytes" serial pooled

let suite =
  [
    Alcotest.test_case "results in submission order" `Quick
      test_results_in_submission_order;
    Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
    Alcotest.test_case "jobs=1 serial path" `Quick test_serial_pool;
    Alcotest.test_case "map keeps order" `Quick test_map;
    Alcotest.test_case "jobs=0 rejected" `Quick test_invalid_jobs;
    Alcotest.test_case "wall clock is monotonic" `Quick
      test_wall_clock_monotonic;
    Alcotest.test_case "pooled CSV identical to serial" `Slow
      test_pooled_csv_identical;
  ]
