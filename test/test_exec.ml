(* Tests of the domain-pool executor and of the harness determinism
   contract: pooled execution returns results in submission order, so
   rendering (and therefore CSV/report output) is byte-identical to a
   serial run. *)

module Pool = Th_exec.Pool
module Scheduler = Th_exec.Scheduler
module Cell = Th_exec.Cell
module Plan = Th_exec.Plan
module Deque = Th_exec.Deque
module Wall = Th_exec.Wall
module Csv = Th_metrics.Csv
module Setups = Th_baselines.Setups
module Giraph_profiles = Th_workloads.Giraph_profiles
module Giraph_driver = Th_workloads.Giraph_driver
module Run_result = Th_workloads.Run_result

let test_results_in_submission_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let thunks =
        List.init 32 (fun i () ->
            (* Stagger so later submissions tend to finish first. *)
            if i mod 4 = 0 then Unix.sleepf 0.002;
            i * i)
      in
      let results = Pool.run pool thunks in
      Alcotest.(check (list int))
        "squares in order"
        (List.init 32 (fun i -> i * i))
        results)

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "thunk exception re-raised" (Failure "boom")
        (fun () ->
          ignore
            (Pool.run pool
               [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]));
      (* The pool survives a failing batch. *)
      Alcotest.(check (list int))
        "pool reusable after failure" [ 7 ]
        (Pool.run pool [ (fun () -> 7) ]))

let test_serial_pool () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int))
        "jobs=1 runs in the calling domain" [ 1; 2; 3 ]
        (Pool.run pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ]))

let test_map () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list int))
        "map keeps order" [ 2; 4; 6; 8 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3; 4 ]))

let test_invalid_jobs () =
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_wall_clock_monotonic () =
  let t0 = Wall.now_s () in
  Unix.sleepf 0.001;
  let dt = Wall.elapsed_s ~since:t0 in
  Alcotest.(check bool) "elapsed time is positive" true (dt > 0.0)

(* The determinism contract end to end: the same Giraph cell, with a
   fixed seed, produces byte-identical CSV whether computed serially or
   on a 4-domain pool. *)
let giraph_cell seed () =
  let p = Giraph_profiles.bfs in
  let s =
    Setups.giraph_teraheap ~h1_gb:p.Giraph_profiles.th_h1_gb
      ~dr2_gb:p.Giraph_profiles.th_dr2_gb ()
  in
  Giraph_driver.run ~label:"BFS determinism" s.Setups.rt ~mode:s.Setups.mode
    ~scale:0.1 ~seed p

let csv_of_results results =
  Csv.to_string ~header:Csv.breakdown_header
    (List.map
       (fun (r : Run_result.t) ->
         Csv.breakdown_row ~label:r.Run_result.label r.Run_result.breakdown)
       results)

let test_pooled_csv_identical () =
  let seed = 42L in
  let cells = [ giraph_cell seed; giraph_cell seed; giraph_cell seed ] in
  let serial = csv_of_results (List.map (fun f -> f ()) cells) in
  let pooled =
    Pool.with_pool ~jobs:4 (fun pool -> csv_of_results (Pool.run pool cells))
  in
  Alcotest.(check string) "serial and pooled CSV bytes" serial pooled

(* ------------------------------------------------------------------ *)
(* Deque: owner pops the bottom (LIFO), thieves steal the top (FIFO).  *)

let test_deque_lifo_fifo () =
  let d = Deque.create ~capacity:4 in
  List.iter (Deque.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "thief steals the oldest" (Some 1)
    (Deque.steal d);
  Alcotest.(check (option int)) "owner pops the newest" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "steal again" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "pop the last" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "pop empty" None (Deque.pop d);
  Alcotest.(check (option int)) "steal empty" None (Deque.steal d);
  Alcotest.check_raises "push past capacity"
    (Invalid_argument "Deque.push: capacity exceeded") (fun () ->
      let d = Deque.create ~capacity:1 in
      Deque.push d 1;
      Deque.push d 2)

(* ------------------------------------------------------------------ *)
(* Scheduler: the steal path, forced deterministically with [pin].     *)

(* Every chunk is pinned onto domain 1, so the submitting domain (0)
   starts with an empty deque and can only make progress by stealing. *)
let test_forced_steals () =
  Scheduler.with_scheduler ~jobs:2 (fun t ->
      let cells =
        List.init 16 (fun i ->
            Cell.make ~label:(Printf.sprintf "steal-%d" i) ~lane:i (fun () ->
                Unix.sleepf 0.002;
                i))
      in
      let results = Scheduler.run_cells ~pin:(fun _ -> 1) ~chunk_max:1 t cells in
      Alcotest.(check (list int))
        "submission order despite steals"
        (List.init 16 Fun.id) results;
      let stats = Scheduler.last_batch t in
      Alcotest.(check int) "one chunk per cell" 16 stats.Scheduler.chunks;
      Alcotest.(check bool)
        "the idle domain stole work" true
        (stats.Scheduler.steals > 0);
      Alcotest.(check int)
        "per-cell wall times recorded" 16
        (Array.length stats.Scheduler.cell_wall_s);
      Alcotest.(check bool)
        "wall times are positive" true
        (Array.for_all (fun w -> w > 0.0) stats.Scheduler.cell_wall_s))

let test_pin_out_of_range () =
  Scheduler.with_scheduler ~jobs:2 (fun t ->
      Alcotest.check_raises "pin must land inside [0, jobs)"
        (Invalid_argument "Scheduler.run_cells: pin out of range") (fun () ->
          ignore
            (Scheduler.run_cells
               ~pin:(fun _ -> 2)
               t
               [ Cell.of_thunk (fun () -> 1) ])))

(* ------------------------------------------------------------------ *)
(* Plan: futures, grouped regrouping, read-before-run.                 *)

let test_plan_futures () =
  let b = Plan.create () in
  let x = Plan.cell b ~label:"x" ~cost:2.0 (fun () -> 21 * 2) in
  let ys = Plan.cell_list b ~label:"ys" [ (fun () -> "a"); (fun () -> "b") ] in
  let g =
    Plan.grouped b ~label:"g"
      [
        ("k0", List.init 3 (fun i () -> i));
        ("k1", []);
        ("k2", List.init 2 (fun i () -> 10 + i));
      ]
  in
  Alcotest.(check int) "cell count" 8 (Plan.cell_count b);
  let rendered = Buffer.create 64 in
  let section =
    Plan.seal b ~render:(fun () ->
        Buffer.add_string rendered (string_of_int (Plan.get x));
        List.iter (Buffer.add_string rendered) (Plan.get ys);
        List.iter
          (fun (k, vs) ->
            Buffer.add_string rendered
              (Printf.sprintf "%s=%s" k
                 (String.concat "+" (List.map string_of_int vs))))
          (Plan.get g))
  in
  Scheduler.with_scheduler ~jobs:4 (fun t -> Plan.run_section t section);
  Alcotest.(check string)
    "futures resolve in submission order, groups regroup exactly"
    "42abk0=0+1+2k1=k2=10+11" (Buffer.contents rendered)

let test_plan_get_before_run () =
  let b = Plan.create () in
  let x = Plan.cell b ~label:"early" (fun () -> 1) in
  Alcotest.check_raises "future read before the batch"
    (Failure "Plan.get: cell \"early\" read before the batch executed it")
    (fun () -> ignore (Plan.get x))

(* ------------------------------------------------------------------ *)
(* Property: for ANY cost vector, chunking and jobs count, the
   scheduler returns submission-order results and a render over those
   results is byte-identical to the serial reference.                  *)

let prop_scheduler_deterministic =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (int_range 0 40) (int_range (-5) 80))
        (int_range 1 6)
        (oneofl [ 1; 2; 4; 8 ]))
  in
  let arb =
    QCheck.make
      ~print:(fun (costs, chunk_max, jobs) ->
        Printf.sprintf "costs(x0.1)=[%s] chunk_max=%d jobs=%d"
          (String.concat ";" (List.map string_of_int costs))
          chunk_max jobs)
      gen
  in
  QCheck.Test.make ~count:40
    ~name:"random cell DAGs render byte-identically at any jobs" arb
    (fun (deci_costs, chunk_max, jobs) ->
      let cells =
        List.mapi
          (fun i dc ->
            (* Negative and zero hints exercise the default-cost path. *)
            let cost = float_of_int dc /. 10.0 in
            Cell.make ~label:(string_of_int i) ~cost ~lane:i (fun () ->
                (i * 31) + dc))
          deci_costs
      in
      let render results =
        String.concat "," (List.map string_of_int results)
      in
      let serial =
        render (List.mapi (fun i dc -> (i * 31) + dc) deci_costs)
      in
      let scheduled =
        Scheduler.with_scheduler ~jobs (fun t ->
            render (Scheduler.run_cells ~chunk_max t cells))
      in
      String.equal serial scheduled)

let suite =
  [
    Alcotest.test_case "results in submission order" `Quick
      test_results_in_submission_order;
    Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
    Alcotest.test_case "jobs=1 serial path" `Quick test_serial_pool;
    Alcotest.test_case "map keeps order" `Quick test_map;
    Alcotest.test_case "jobs=0 rejected" `Quick test_invalid_jobs;
    Alcotest.test_case "wall clock is monotonic" `Quick
      test_wall_clock_monotonic;
    Alcotest.test_case "pooled CSV identical to serial" `Slow
      test_pooled_csv_identical;
    Alcotest.test_case "deque LIFO owner / FIFO thief" `Quick
      test_deque_lifo_fifo;
    Alcotest.test_case "pinned batch forces steals" `Quick test_forced_steals;
    Alcotest.test_case "pin out of range rejected" `Quick test_pin_out_of_range;
    Alcotest.test_case "plan futures and grouped regroup" `Quick
      test_plan_futures;
    Alcotest.test_case "plan future read before run" `Quick
      test_plan_get_before_run;
    QCheck_alcotest.to_alcotest prop_scheduler_deterministic;
  ]
