(* Tests for the pluggable H2 placement policies (Th_policy) and the
   policy tournament.

   Four layers:

   - equivalence goldens: the refactored collector running the default
     [Policy.threshold] must reproduce the pre-refactor bench stdout
     byte for byte, at --jobs 1 and --jobs 4 (goldens under
     test/golden/bench_fig*.txt are captures of the pre-policy harness;
     TH_UPDATE_GOLDEN=1 regenerates them, TH_GOLDEN_FULL=1 adds the
     expensive fig6 / fig9-j4 runs);

   - dominance properties: over random mutator programs whose access
     stream is policy-independent (reads target only pinned, explicitly
     tagged roots), the two-pass oracle is never worse than any
     competitor on H2 read-back bytes, and every policy's run stays
     clean under the Paranoid sanitizer;

   - determinism: the same program under the same (fresh) policy renders
     an identical run, and the tournament bench section is byte-stable
     across --jobs {1,2,4} and repeated seeds;

   - edge cases: negative labels, advice arriving before the tag, the
     resilience move gate, promotion-failure retention, and the
     lifetime-profile serialization round-trip. *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Device = Th_device.Device
module Runtime = Th_psgc.Runtime
module Rt = Th_psgc.Rt
module Verify = Th_verify.Verify
module Policy = Th_policy.Policy
module Profile = Th_policy.Profile

(* Same environment as Test_gc_props.execute: 2 MiB H1, 64 KiB regions,
   16 MiB H2. *)
let mk_rt ?policy ?(config = Test_gc_props.base_config) () =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 2) () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 = H2.create ~config ~clock ~costs ~device ~dr2_bytes:(Size.kib 256) () in
  let rt = Runtime.create ?policy ~h2 ~clock ~costs ~heap () in
  (rt, h2)

(* Allocate, root and tenure an object so it sits in the old generation
   (H2 moves happen during old-generation compaction). *)
let make_old ?(size = 1024) rt =
  let o = Runtime.alloc rt ~size () in
  Runtime.add_root rt o;
  for _ = 1 to 4 do
    Runtime.minor_gc rt
  done;
  Alcotest.(check bool) "precondition: object tenured" true
    (o.Obj_.loc = Obj_.Old);
  o

(* ------------------------------------------------------------------ *)
(* Random mutator programs with a policy-independent access stream.    *)

(* Reads and updates target only pinned (rooted forever), explicitly
   tagged roots, so the sequence of labelled accesses — the policies'
   logical op clock — is identical whatever placement decisions a policy
   makes. Programs stay far below the pressure thresholds (a few KiB
   live in a ~MiB old generation), so under [No_pressure] the oracle
   moves only zero-future labels: its read-back is zero by construction,
   and any read-back it does incur is a bug the dominance property
   catches. *)
type op =
  | Group of int  (* allocate + pin + tag a root with [n] children *)
  | Read of int  (* read group [i mod count] *)
  | Update of int
  | Advise of int  (* h2_move for that group's label *)
  | Minor
  | Major

let pp_op = function
  | Group n -> Printf.sprintf "Group %d" n
  | Read i -> Printf.sprintf "Read %d" i
  | Update i -> Printf.sprintf "Update %d" i
  | Advise i -> Printf.sprintf "Advise %d" i
  | Minor -> "Minor"
  | Major -> "Major"

let exec ~policy program =
  let rt, h2 = mk_rt ~policy () in
  let v = Verify.attach rt Verify.Paranoid in
  let groups : Obj_.t Vec.t = Vec.create () in
  let nth i = Vec.get groups (i mod Vec.length groups) in
  List.iter
    (fun op ->
      match op with
      | Group children ->
          let root = Runtime.alloc rt ~size:256 () in
          Runtime.add_root rt root;
          for _ = 1 to children do
            let c = Runtime.alloc rt ~size:512 () in
            Runtime.write_ref rt root c
          done;
          let label = Vec.length groups in
          (* Deliberate site collisions so lifetime profiles aggregate. *)
          Runtime.h2_tag_root rt ~site:(label mod 3) root ~label;
          Vec.push groups root
      | Read i -> if Vec.length groups > 0 then Runtime.read_obj rt (nth i)
      | Update i -> if Vec.length groups > 0 then Runtime.update_obj rt (nth i)
      | Advise i ->
          if Vec.length groups > 0 then
            Runtime.h2_move rt ~label:(nth i).Obj_.label
      | Minor -> Runtime.minor_gc rt
      | Major -> Runtime.major_gc rt)
    program;
  Runtime.major_gc rt;
  Verify.check_now v;
  (rt, h2, v)

let readback h2 = (H2.stats h2).H2.readback_bytes

(* ------------------------------------------------------------------ *)
(* Dominance property                                                  *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Group n) (int_range 0 3));
        (6, map (fun i -> Read i) (int_range 0 9));
        (3, map (fun i -> Update i) (int_range 0 9));
        (3, map (fun i -> Advise i) (int_range 0 9));
        (1, return Minor);
        (2, return Major);
      ])

let program_arb =
  QCheck.make
    ~print:(fun p -> String.concat "; " (List.map pp_op p))
    QCheck.Gen.(list_size (int_range 10 50) op_gen)

let prop_oracle_dominates =
  QCheck.Test.make ~count:30
    ~name:"oracle never worse on H2 read-back; every policy paranoid-clean"
    program_arb
    (fun program ->
      let clean = ref true in
      let run policy =
        let _, h2, v = exec ~policy program in
        if Verify.violation_count v > 0 then clean := false;
        readback h2
      in
      let lifetime_rb =
        let pp, prof = Policy.profiler () in
        ignore (run pp : int);
        let prof =
          match Profile.of_string (Profile.to_string prof) with
          | Ok p -> p
          | Error e -> failwith ("profile round-trip: " ^ e)
        in
        run (Policy.lifetime prof)
      in
      let competitors =
        [
          run Policy.threshold;
          lifetime_rb;
          run (Policy.gang_locality ());
          run (Policy.two_q ());
        ]
      in
      let oracle_rb =
        let rp, fut = Policy.recording () in
        ignore (run rp : int);
        run (Policy.oracle fut)
      in
      !clean && List.for_all (fun rb -> oracle_rb <= rb) competitors)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_oracle_dominates ]

(* ------------------------------------------------------------------ *)
(* Deterministic policy-behavior tests                                 *)

(* The canonical oracle-gap scenario: two advised groups, one read ten
   times after the move epoch, one never touched again. Threshold moves
   both and pays read-back on the hot one; the oracle holds it in H1
   (its future accesses are visible from pass one) and still moves the
   dead-cold group. *)
let test_oracle_beats_threshold () =
  let program =
    [ Group 2; Group 2; Advise 0; Advise 1; Major ]
    @ List.init 10 (fun _ -> Read 0)
    @ [ Major ]
  in
  let _, th2, _ = exec ~policy:Policy.threshold program in
  let rp, fut = Policy.recording () in
  ignore (exec ~policy:rp program);
  let _, oh2, _ = exec ~policy:(Policy.oracle fut) program in
  let os = H2.stats oh2 in
  Alcotest.(check bool)
    "threshold pays read-back for the hot advised group" true
    (readback th2 > 0);
  Alcotest.(check int) "oracle read-back is zero under no pressure" 0
    os.H2.readback_bytes;
  Alcotest.(check bool) "oracle still moves the never-touched group" true
    (os.H2.moves_to_h2 >= 1)

let test_policy_run_determinism () =
  let program =
    [
      Group 2; Group 1; Advise 0; Read 0; Major; Read 0; Update 1; Group 3;
      Advise 2; Major; Read 2; Major;
    ]
  in
  List.iter
    (fun (name, mk) ->
      let run () =
        let rt, h2, v = exec ~policy:(mk ()) program in
        let s = H2.stats h2 in
        ( Clock.now_ns (Runtime.clock rt),
          s.H2.readback_bytes,
          s.H2.rmw_bytes,
          s.H2.bytes_moved,
          Verify.violation_count v )
      in
      Alcotest.(check bool)
        (name ^ ": same program, fresh policy, identical run")
        true
        (run () = run ()))
    [
      ("threshold", fun () -> Policy.threshold);
      ("lifetime", fun () -> Policy.lifetime (Profile.create ()));
      ("gang", Policy.gang_locality);
      ("2q", Policy.two_q);
    ]

let test_threshold_is_trace_silent () =
  Alcotest.(check bool)
    "default policy emits no policy/select trace instants" false
    Policy.threshold.Policy.trace_decisions

(* Runtime -> policy observation plumbing, via a recording custom
   policy built with Policy.make (moves advised roots only). *)
let test_observation_stream () =
  let events = ref [] in
  let policy =
    Policy.make ~name:"recorder" ~trace_decisions:false
      ~select:(fun ctx ~roots ->
        List.filter_map
          (fun (r : Obj_.t) ->
            if
              r.Obj_.label >= 0
              && H2.move_advised ctx.Policy.h2 ~label:r.Obj_.label
            then
              Some { Policy.root = r; cls = Policy.Advised; group = r.Obj_.label }
            else None)
          roots)
      (* th-lint: allow domain_shared — the recording runtime is built
         with mk_rt and driven serially on this test's single domain *)
      ~observe:(fun ev -> events := ev :: !events)
      ()
  in
  let rt, _ = mk_rt ~policy () in
  let hot = make_old rt in
  Runtime.h2_tag_root rt ~site:3 hot ~label:5;
  Runtime.h2_move rt ~label:5;
  Runtime.read_obj rt hot;
  Runtime.major_gc rt;
  Runtime.read_obj rt hot;
  (* A tagged, never-advised group that dies in H1. *)
  let doomed = make_old rt in
  Runtime.h2_tag_root rt doomed ~label:6;
  Runtime.remove_root rt doomed;
  Runtime.major_gc rt;
  let has p = List.exists p (List.rev !events) in
  let check name p = Alcotest.(check bool) name true (has p) in
  check "Tagged carries label and site" (function
    | Policy.Tagged { label = 5; site = 3; _ } -> true
    | _ -> false);
  check "Advice observed" (function
    | Policy.Advice { label = 5 } -> true
    | _ -> false);
  check "Major_start observed" (function
    | Policy.Major_start _ -> true
    | _ -> false);
  check "Moved observed with bytes" (function
    | Policy.Moved { label = 5; bytes; _ } -> bytes > 0
    | _ -> false);
  check "H1 access observed" (function
    | Policy.Access { label = 5; in_h2 = false; _ } -> true
    | _ -> false);
  check "H2 access observed after the move" (function
    | Policy.Access { label = 5; in_h2 = true; _ } -> true
    | _ -> false);
  check "Death observed for the unrooted group" (function
    | Policy.Death { label = 6; _ } -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)

let test_negative_label_rejected () =
  let rt, _ = mk_rt () in
  let o = Runtime.alloc rt ~size:256 () in
  Runtime.add_root rt o;
  Alcotest.check_raises "negative label"
    (Invalid_argument "H2.h2_tag_root: negative label") (fun () ->
      Runtime.h2_tag_root rt o ~label:(-2))

let test_advice_before_tag () =
  let rt, _ = mk_rt () in
  let o = make_old rt in
  Runtime.h2_move rt ~label:9;
  (* Advice precedes any tag: nothing is labelled 9 yet, so nothing moves. *)
  Runtime.major_gc rt;
  Alcotest.(check bool) "untagged object stays in H1" true
    (o.Obj_.loc = Obj_.Old);
  Runtime.h2_tag_root rt o ~label:9;
  Runtime.major_gc rt;
  Alcotest.(check bool) "tag catches up with the earlier advice" true
    (o.Obj_.loc = Obj_.In_h2)

let test_breaker_gates_moves () =
  let rt, _ = mk_rt () in
  let o = make_old rt in
  Runtime.h2_tag_root rt o ~label:0;
  Runtime.h2_move rt ~label:0;
  rt.Rt.h2_move_gate <- Some (fun () -> false);
  Runtime.major_gc rt;
  Alcotest.(check bool) "gated major moves nothing" true (o.Obj_.loc = Obj_.Old);
  rt.Rt.h2_move_gate <- None;
  Runtime.major_gc rt;
  Alcotest.(check bool) "re-enabled gate moves the advised root" true
    (o.Obj_.loc = Obj_.In_h2)

let test_promotion_failure_retention () =
  (* One 64 KiB region of H2 in total: the second ~31 KiB group cannot
     fit (different label, so it needs its own region) and must be
     retained in H1, then retried — not freed, not crashed. *)
  let config =
    { Test_gc_props.base_config with H2.capacity = Size.kib 64 }
  in
  let rt, h2 = mk_rt ~config () in
  let big label =
    let root = Runtime.alloc rt ~size:256 () in
    Runtime.add_root rt root;
    for _ = 1 to 30 do
      let c = Runtime.alloc rt ~size:1024 () in
      Runtime.write_ref rt root c
    done;
    for _ = 1 to 4 do
      Runtime.minor_gc rt
    done;
    Runtime.h2_tag_root rt root ~label;
    Runtime.h2_move rt ~label;
    root
  in
  let a = big 0 in
  let b = big 1 in
  Runtime.major_gc rt;
  let s = H2.stats h2 in
  Alcotest.(check bool) "first group moved" true (a.Obj_.loc = Obj_.In_h2);
  Alcotest.(check bool) "exhausted-H2 group retained in H1" true
    (b.Obj_.loc = Obj_.Old);
  Alcotest.(check bool) "degraded move recorded" true (s.H2.degraded_moves >= 1);
  Alcotest.(check bool) "deferred objects recorded" true
    (s.H2.objects_deferred >= 1);
  Runtime.major_gc rt;
  let s2 = H2.stats h2 in
  Alcotest.(check bool) "retry degrades again; the group stays live" true
    (b.Obj_.loc = Obj_.Old && s2.H2.degraded_moves > s.H2.degraded_moves);
  (* Still a perfectly usable object. *)
  Runtime.read_obj rt b

let test_profile_roundtrip () =
  let program =
    [ Group 2; Group 0; Advise 0; Read 0; Read 1; Major; Read 0; Update 0; Major ]
  in
  let pp, prof = Policy.profiler () in
  ignore (exec ~policy:pp program);
  Alcotest.(check bool) "profile saw sites" true
    (Profile.sorted_sites prof <> []);
  (match Profile.of_string (Profile.to_string prof) with
  | Ok p ->
      Alcotest.(check bool) "round-trip equal" true (Profile.equal p prof);
      Alcotest.(check string) "serialization is canonical"
        (Profile.to_string prof) (Profile.to_string p);
      (* The round-tripped profile drives a clean lifetime run. *)
      let _, _, v = exec ~policy:(Policy.lifetime p) program in
      Alcotest.(check int) "lifetime run paranoid-clean" 0
        (Verify.violation_count v)
  | Error e -> Alcotest.failf "of_string failed on its own output: %s" e);
  match Profile.of_string "not a profile" with
  | Ok _ -> Alcotest.fail "garbage accepted by Profile.of_string"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Bench-process tests: equivalence goldens and tournament determinism *)

(* The harness binary is a declared dune dependency. `dune runtest` runs
   tests from _build/default/test (one directory over); `dune exec` runs
   them from the project root. *)
let bench_exe =
  match
    List.find_opt Sys.file_exists
      [ "../bench/main.exe"; "_build/default/bench/main.exe" ]
  with
  | Some p -> p
  | None -> "../bench/main.exe"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Spawn the bench harness, returning its stdout only: timing and the
   completion footer go to stderr precisely so stdout can be compared
   byte for byte. TH_BENCH_JSON is pointed at a scratch file so test
   runs never touch a checked-out BENCH_harness.json. *)
let run_bench ?(env = "") ~args () =
  let out = Filename.temp_file "th_bench" ".out" in
  let json = Filename.temp_file "th_bench" ".json" in
  let cmd =
    Printf.sprintf "%s TH_BENCH_JSON=%s %s %s > %s 2>/dev/null" env
      (Filename.quote json) bench_exe args (Filename.quote out)
  in
  let rc = Sys.command cmd in
  let text = read_file out in
  Sys.remove out;
  (try Sys.remove json with Sys_error _ -> ());
  if rc <> 0 then Alcotest.failf "bench %s exited %d" args rc;
  text

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Golden directory, whether running from the build sandbox or the
   source tree (same search order as Test_trace). *)
let golden_dir () =
  List.find_opt Sys.file_exists [ "golden"; "../../../test/golden"; "test/golden" ]

let check_bench_golden ~jobs ~section ~file () =
  let args = Printf.sprintf "--jobs %d %s" jobs section in
  let got = run_bench ~args () in
  if Sys.getenv_opt "TH_UPDATE_GOLDEN" <> None then (
    match golden_dir () with
    | Some dir ->
        let oc = open_out_bin (Filename.concat dir file) in
        output_string oc got;
        close_out oc
    | None -> Alcotest.fail "TH_UPDATE_GOLDEN: no golden directory found")
  else
    let dir =
      match golden_dir () with
      | Some d -> d
      | None -> Alcotest.fail "no golden directory found"
    in
    let want = read_file (Filename.concat dir file) in
    if not (String.equal got want) then
      Alcotest.failf
        "bench %s stdout diverged from golden/%s (%d bytes vs %d); if the \
         change is intentional, regenerate with TH_UPDATE_GOLDEN=1 dune \
         runtest"
        args file (String.length got) (String.length want)

let golden_full = Sys.getenv_opt "TH_GOLDEN_FULL" <> None

let require_full () =
  if not golden_full then
    Alcotest.skip ()

(* Tournament smoke subset: one Spark and one Giraph workload at a
   reduced dataset scale (the full 15-workload matrix belongs to the
   bench harness, not the test suite). *)
let tournament_env =
  "TH_TOURNAMENT_WORKLOADS=spark:PR,giraph:BFS TH_TOURNAMENT_SCALE=0.3"

let test_tournament_jobs_identical () =
  let out j =
    run_bench ~env:tournament_env
      ~args:(Printf.sprintf "--jobs %d tournament" j)
      ()
  in
  let a = out 1 in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "render mentions %S" needle)
        true (contains a needle))
    [ "threshold"; "lifetime"; "gang"; "2q"; "oracle"; "oracle gap" ];
  Alcotest.(check string) "--jobs 2 renders identically" a (out 2);
  Alcotest.(check string) "--jobs 4 renders identically" a (out 4)

let test_tournament_seed_repeatable () =
  let run () = run_bench ~env:tournament_env ~args:"--jobs 2 --seed 11 tournament" () in
  Alcotest.(check string) "same seed, same render" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "threshold is trace-silent" `Quick
      test_threshold_is_trace_silent;
    Alcotest.test_case "observation stream reaches the policy" `Quick
      test_observation_stream;
    Alcotest.test_case "oracle beats threshold on a hot advised group" `Quick
      test_oracle_beats_threshold;
    Alcotest.test_case "fresh policies replay a program identically" `Quick
      test_policy_run_determinism;
    Alcotest.test_case "negative label is rejected" `Quick
      test_negative_label_rejected;
    Alcotest.test_case "advice before tag moves at the next major" `Quick
      test_advice_before_tag;
    Alcotest.test_case "resilience breaker gates moves" `Quick
      test_breaker_gates_moves;
    Alcotest.test_case "promotion failure retains objects in H1" `Quick
      test_promotion_failure_retention;
    Alcotest.test_case "lifetime profile round-trips" `Quick
      test_profile_roundtrip;
  ]
  @ qcheck_tests
  @ [
      Alcotest.test_case "golden: fig7 --jobs 1 equals pre-policy stdout" `Slow
        (check_bench_golden ~jobs:1 ~section:"fig7" ~file:"bench_fig7.txt");
      Alcotest.test_case "golden: fig7 --jobs 4 equals pre-policy stdout" `Slow
        (check_bench_golden ~jobs:4 ~section:"fig7" ~file:"bench_fig7.txt");
      Alcotest.test_case "golden: fig9 --jobs 1 equals pre-policy stdout" `Slow
        (check_bench_golden ~jobs:1 ~section:"fig9" ~file:"bench_fig9.txt");
      Alcotest.test_case "golden: fig9 --jobs 4 (TH_GOLDEN_FULL)" `Slow
        (fun () ->
          require_full ();
          check_bench_golden ~jobs:4 ~section:"fig9" ~file:"bench_fig9.txt" ());
      Alcotest.test_case "golden: fig6 --jobs 1 (TH_GOLDEN_FULL)" `Slow
        (fun () ->
          require_full ();
          check_bench_golden ~jobs:1 ~section:"fig6" ~file:"bench_fig6.txt" ());
      Alcotest.test_case "golden: fig6 --jobs 4 (TH_GOLDEN_FULL)" `Slow
        (fun () ->
          require_full ();
          check_bench_golden ~jobs:4 ~section:"fig6" ~file:"bench_fig6.txt" ());
      Alcotest.test_case "tournament renders identically across --jobs" `Slow
        test_tournament_jobs_identical;
      Alcotest.test_case "tournament renders identically across runs of a seed"
        `Slow test_tournament_seed_repeatable;
    ]
