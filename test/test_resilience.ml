(* Tests for the resilience layer (lib/resilience): the pure breaker
   transition table, the stateful breaker lifecycle (cooldowns, probe
   streaks, reopens), the I/O watchdog, seeded backoff jitter, SLO
   parsing and evaluation, the monitor's tripwires plus the move gate
   it installs on the runtime, and the headline regression: a run that
   OOMs without the breaker completes Degraded with it. *)

open Th_sim
module Fault = Th_sim.Fault
module Device = Th_device.Device
module Io_retry = Th_device.Io_retry
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Runtime = Th_psgc.Runtime
module Event = Th_trace.Event
module Recorder = Th_trace.Recorder
module Rollup = Th_trace.Rollup
module Verify = Th_verify.Verify
module Breaker = Th_resilience.Breaker
module Slo = Th_resilience.Slo
module Monitor = Th_resilience.Monitor
module Setups = Th_baselines.Setups
module Streaming_driver = Th_workloads.Streaming_driver
module Run_result = Th_workloads.Run_result
module Cdf = Th_metrics.Cdf

(* --- pure transition table -------------------------------------------- *)

(* The full 3x4 table, written out so any change to the relation is a
   visible diff here, not an emergent behavior change. *)
let test_step_table () =
  let expected =
    [
      (Breaker.Closed, Breaker.Trip, Breaker.Open);
      (Breaker.Closed, Breaker.Probe_ok, Breaker.Closed);
      (Breaker.Closed, Breaker.Probe_fail, Breaker.Closed);
      (Breaker.Closed, Breaker.Cooldown_elapsed, Breaker.Closed);
      (Breaker.Open, Breaker.Trip, Breaker.Open);
      (Breaker.Open, Breaker.Probe_ok, Breaker.Open);
      (Breaker.Open, Breaker.Probe_fail, Breaker.Open);
      (Breaker.Open, Breaker.Cooldown_elapsed, Breaker.Half_open);
      (Breaker.Half_open, Breaker.Trip, Breaker.Open);
      (Breaker.Half_open, Breaker.Probe_ok, Breaker.Closed);
      (Breaker.Half_open, Breaker.Probe_fail, Breaker.Open);
      (Breaker.Half_open, Breaker.Cooldown_elapsed, Breaker.Half_open);
    ]
  in
  Alcotest.(check int) "table is exhaustive" 12 (List.length expected);
  List.iter
    (fun (s, e, s') ->
      Alcotest.(check bool)
        (Printf.sprintf "%s --(event)--> %s" (Breaker.state_name s)
           (Breaker.state_name s'))
        true
        (Breaker.step s e = s'))
    expected

(* --- stateful lifecycle ----------------------------------------------- *)

let test_breaker_lifecycle () =
  let config = { Breaker.open_cooldown_ns = 100.0; probe_successes = 2 } in
  let b = Breaker.create ~config () in
  Alcotest.(check bool) "starts Closed" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "healthy sample is a no-op" true
    (Breaker.on_sample b ~now_ns:0.0 ~healthy:true = `Unchanged);
  Alcotest.(check bool) "trip opens" true
    (Breaker.on_sample b ~now_ns:10.0 ~healthy:false = `Opened);
  Alcotest.(check bool) "Open" true (Breaker.state b = Breaker.Open);
  (* An unhealthy sample while Open restarts the cooldown... *)
  Alcotest.(check bool) "still sick, still Open" true
    (Breaker.on_sample b ~now_ns:50.0 ~healthy:false = `Unchanged);
  (* ...so a healthy sample before 50 + 100 has not cooled down yet. *)
  Alcotest.(check bool) "cooldown restarted" true
    (Breaker.on_sample b ~now_ns:120.0 ~healthy:true = `Unchanged);
  Alcotest.(check bool) "still Open" true (Breaker.state b = Breaker.Open);
  (* Healthy after the cooldown: Half-open, first probe counted. *)
  Alcotest.(check bool) "first probe" true
    (Breaker.on_sample b ~now_ns:160.0 ~healthy:true = `Unchanged);
  Alcotest.(check bool) "Half-open" true
    (Breaker.state b = Breaker.Half_open);
  Alcotest.(check bool) "second probe closes" true
    (Breaker.on_sample b ~now_ns:170.0 ~healthy:true = `Closed);
  let s = Breaker.stats b in
  Alcotest.(check int) "one trip" 1 s.Breaker.trips;
  Alcotest.(check int) "no reopens" 0 s.Breaker.reopens;
  Alcotest.(check int) "one close" 1 s.Breaker.closes;
  Alcotest.(check int) "two probes ok" 2 s.Breaker.probes_ok;
  (* Failed recovery: Half-open probe failure counts as a reopen. *)
  ignore (Breaker.on_sample b ~now_ns:200.0 ~healthy:false);
  ignore (Breaker.on_sample b ~now_ns:320.0 ~healthy:true);
  Alcotest.(check bool) "probing again" true
    (Breaker.state b = Breaker.Half_open);
  Alcotest.(check bool) "probe failure reopens" true
    (Breaker.on_sample b ~now_ns:330.0 ~healthy:false = `Opened);
  let s = Breaker.stats b in
  Alcotest.(check int) "two trips" 3 s.Breaker.trips;
  Alcotest.(check int) "one reopen" 1 s.Breaker.reopens;
  Alcotest.(check int) "one probe failed" 1 s.Breaker.probes_failed

let test_single_probe_closes_immediately () =
  let config = { Breaker.open_cooldown_ns = 10.0; probe_successes = 1 } in
  let b = Breaker.create ~config () in
  ignore (Breaker.on_sample b ~now_ns:0.0 ~healthy:false);
  Alcotest.(check bool) "one healthy probe closes" true
    (Breaker.on_sample b ~now_ns:20.0 ~healthy:true = `Closed);
  Alcotest.(check bool) "Closed" true (Breaker.state b = Breaker.Closed)

(* --- I/O watchdog ------------------------------------------------------ *)

(* A device that always fails transiently plus a tight episode deadline:
   the watchdog must abort the episode (before the generous retry budget
   runs out), count it, and mark the timeline. *)
let test_watchdog_bounds_episode () =
  let clock = Clock.create () in
  let tr = Recorder.create ~lane:0 () in
  Clock.set_tracer clock (Some tr);
  let inj =
    Fault.create { Fault.zero with Fault.seed = 3L; read_error_rate = 1.0 }
  in
  let retry =
    { Io_retry.default with max_retries = 64; episode_deadline_ns = 50_000.0 }
  in
  let device = Device.create ~faults:inj ~retry clock Device.Nvme_ssd in
  (match Device.read ~checked:true device ~cat:Clock.Serde_io ~random:true 4096 with
  | () -> Alcotest.fail "checked read succeeded under 100% error rate"
  | exception Io_retry.Io_error { op; attempts } ->
      Alcotest.(check string) "op name" "read" op;
      Alcotest.(check bool) "gave up before the retry budget" true
        (attempts < 1 + retry.Io_retry.max_retries));
  let fs = Fault.stats inj in
  Alcotest.(check int) "watchdog counted" 1 fs.Fault.watchdog_timeouts;
  Alcotest.(check int) "not an exhaustion" 0 fs.Fault.exhausted_retries;
  Alcotest.(check bool) "watchdog episodes count as degraded" true
    (Fault.degraded fs);
  let events = Recorder.events tr in
  let timeouts =
    List.filter
      (fun e -> e.Event.cat = "fault" && e.Event.name = "watchdog_timeout")
      events
  in
  Alcotest.(check int) "one timeline mark" 1 (List.length timeouts);
  let r = Rollup.of_events events in
  Alcotest.(check int) "rollup sees it" 1 r.Rollup.watchdog_timeouts

let test_watchdog_disarmed_by_default () =
  let clock = Clock.create () in
  let inj =
    Fault.create { Fault.zero with Fault.seed = 3L; read_error_rate = 1.0 }
  in
  let device = Device.create ~faults:inj clock Device.Nvme_ssd in
  (match Device.read ~checked:true device ~cat:Clock.Serde_io ~random:true 4096 with
  | () -> Alcotest.fail "checked read succeeded under 100% error rate"
  | exception Io_retry.Io_error { attempts; _ } ->
      Alcotest.(check int) "full retry budget used"
        (1 + Io_retry.default.Io_retry.max_retries)
        attempts);
  Alcotest.(check int) "no watchdog timeouts" 0
    (Fault.stats inj).Fault.watchdog_timeouts

(* --- seeded backoff jitter --------------------------------------------- *)

let jitter_spec =
  {
    Fault.zero with
    Fault.seed = 21L;
    read_error_rate = 0.3;
    write_error_rate = 0.3;
  }

let test_jitter_stream_deterministic () =
  let a = Fault.create jitter_spec and b = Fault.create jitter_spec in
  for i = 1 to 200 do
    let ua = Fault.jitter_unit a and ub = Fault.jitter_unit b in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "draw %d identical" i)
      ua ub;
    Alcotest.(check bool) "in [0,1)" true (ua >= 0.0 && ua < 1.0)
  done

(* The jitter PRNG is separate from the outcome PRNG: draining jitter
   draws must not change which operations fault. *)
let test_jitter_does_not_perturb_outcomes () =
  let a = Fault.create jitter_spec and b = Fault.create jitter_spec in
  for i = 0 to 499 do
    let now_ns = float_of_int i *. 1000.0 in
    if i mod 3 = 0 then ignore (Fault.jitter_unit a);
    Alcotest.(check bool)
      (Printf.sprintf "outcome %d identical" i)
      true
      (Fault.on_read a ~now_ns = Fault.on_read b ~now_ns)
  done

(* Whole-device determinism: same seed, same op sequence, jittered
   backoff — byte-identical clock and fault accounting. *)
let test_jittered_backoff_deterministic () =
  let run () =
    let clock = Clock.create () in
    let inj = Fault.create jitter_spec in
    let device = Device.create ~faults:inj clock Device.Nvme_ssd in
    for _ = 1 to 500 do
      Device.read device ~cat:Clock.Serde_io ~random:true 4096;
      Device.write device ~cat:Clock.Major_gc ~random:false 8192
    done;
    (Clock.total_ns (Clock.breakdown clock), Fault.stats inj)
  in
  let t1, s1 = run () and t2, s2 = run () in
  Alcotest.(check (float 0.0)) "identical simulated time" t1 t2;
  Alcotest.(check bool) "identical fault stats" true (s1 = s2);
  Alcotest.(check bool) "backoff time accrued" true (s1.Fault.backoff_ns > 0.0)

(* --- SLO spec and evaluation ------------------------------------------- *)

let test_slo_parse () =
  (match Slo.parse "p99_ms=10,degraded_max=0.1" with
  | Ok s ->
      Alcotest.(check (float 0.0)) "budget" 10e6 s.Slo.p99_pause_ns;
      Alcotest.(check (float 0.0)) "degraded" 0.1 s.Slo.max_degraded_fraction
  | Error e -> Alcotest.fail e);
  (match Slo.parse (Slo.to_string Slo.default) with
  | Ok s -> Alcotest.(check bool) "round-trips" true (s = Slo.default)
  | Error e -> Alcotest.fail e);
  (match Slo.parse "p99_ms=-5" with
  | Ok _ -> Alcotest.fail "negative budget accepted"
  | Error _ -> ());
  (match Slo.parse "degraded_max=1.5" with
  | Ok _ -> Alcotest.fail "fraction > 1 accepted"
  | Error _ -> ());
  match Slo.parse "p42_ms=1" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error _ -> ()

let test_slo_evaluate () =
  let spec = { Slo.p99_pause_ns = 10.0; max_degraded_fraction = 0.5 } in
  (* 9 pauses of 1 ns plus one of 50 ns: the nearest-rank p99 of 10
     samples is the max, so the tail sample blows the budget. *)
  let pauses = List.init 9 (fun _ -> 1.0) @ [ 50.0 ] in
  let r =
    Slo.evaluate spec ~pause_samples_ns:pauses ~total_ns:1000.0
      ~degraded_ns:100.0
  in
  Alcotest.(check int) "one violation" 1 r.Slo.pause_violations;
  Alcotest.(check bool) "pause budget blown" false r.Slo.pause_compliant;
  Alcotest.(check bool) "degraded share fine" true r.Slo.degraded_compliant;
  Alcotest.(check bool) "overall fail" false r.Slo.compliant;
  Alcotest.(check (float 0.0)) "max pause" 50.0 r.Slo.max_pause_ns;
  (* Same pauses, generous budget, but degraded 80% of the run. *)
  let spec2 = { Slo.p99_pause_ns = 100.0; max_degraded_fraction = 0.5 } in
  let r2 =
    Slo.evaluate spec2 ~pause_samples_ns:pauses ~total_ns:1000.0
      ~degraded_ns:800.0
  in
  Alcotest.(check bool) "pauses fine" true r2.Slo.pause_compliant;
  Alcotest.(check bool) "degraded blown" false r2.Slo.degraded_compliant;
  (* No pauses at all is vacuously compliant. *)
  let r3 =
    Slo.evaluate spec ~pause_samples_ns:[] ~total_ns:1000.0 ~degraded_ns:0.0
  in
  Alcotest.(check bool) "empty run compliant" true r3.Slo.compliant

let test_percentile_nearest_rank () =
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check (float 0.0)) "p50 of 1..5" 3.0 (Cdf.percentile xs 50.0);
  Alcotest.(check (float 0.0)) "p100" 5.0 (Cdf.percentile xs 100.0);
  Alcotest.(check (float 0.0)) "p1" 1.0 (Cdf.percentile xs 1.0);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Cdf.percentile [] 99.0)

(* --- monitor: tripwires and the move gate ------------------------------ *)

(* A runtime over a deliberately tiny H2 (two 64 KiB regions): the first
   move-to-H2 fills it past the occupancy tripwire, the breaker opens at
   that safepoint, and the next major GC's move passes are gated off —
   tagged objects stay in H1 and the suppression is counted and traced. *)
let tiny_h2_rt () =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 8) () in
  let device = Device.create clock Device.Nvme_ssd in
  let config =
    {
      H2.default_config with
      H2.region_size = Size.kib 64;
      capacity = Size.kib 128;
    }
  in
  let h2 =
    H2.create ~config ~clock ~costs ~device ~dr2_bytes:(Size.mib 1) ()
  in
  (Runtime.create ~h2 ~clock ~costs ~heap (), h2, clock)

let tag_group rt ~label ~bytes =
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  for _ = 1 to bytes / Size.kib 8 do
    let e = Runtime.alloc rt ~size:(Size.kib 8) () in
    Runtime.write_ref rt holder e
  done;
  Runtime.h2_tag_root rt holder ~label;
  Runtime.h2_move rt ~label;
  holder

(* Region packing wastes headers, so a two-region H2 tops out below 90%
   occupancy; the tests lower the tripwire instead of fighting that. *)
let occupancy_config =
  { Monitor.default_config with Monitor.h2_occupancy_trip = 0.4 }

let test_monitor_trips_and_gates_moves () =
  let rt, h2, clock = tiny_h2_rt () in
  let tr = Recorder.create ~lane:0 () in
  Clock.set_tracer clock (Some tr);
  let m = Monitor.attach ~config:occupancy_config rt in
  Alcotest.(check bool) "starts Closed" true
    (Monitor.state m = Breaker.Closed);
  Alcotest.(check bool) "moves allowed" true (Monitor.h2_allowed m);
  (* Fill H2 past the occupancy tripwire: the safepoint at the end of
     this major GC samples and trips. *)
  let g1 = tag_group rt ~label:1 ~bytes:(Size.kib 120) in
  Runtime.major_gc rt;
  Alcotest.(check bool) "H2 well past the tripwire" true
    (H2.used_bytes h2 > 2 * (H2.config h2).H2.capacity / 5);
  Alcotest.(check bool) "breaker tripped at the safepoint" true
    (Monitor.state m = Breaker.Open);
  Alcotest.(check bool) "moves gated off" false (Monitor.h2_allowed m);
  (* A second tagged group: its move passes must be suppressed. *)
  let used_before = H2.used_bytes h2 in
  let moved_before = (H2.stats h2).H2.moves_to_h2 in
  let g2 = tag_group rt ~label:2 ~bytes:(Size.kib 64) in
  Runtime.major_gc rt;
  Alcotest.(check int) "no new objects moved" moved_before
    (H2.stats h2).H2.moves_to_h2;
  Alcotest.(check int) "H2 usage unchanged" used_before (H2.used_bytes h2);
  Alcotest.(check bool) "tagged group still alive in H1" false
    (Obj_.is_freed g2);
  let s = Monitor.summary m in
  Alcotest.(check bool) "suppressions counted" true (s.Monitor.moves_suppressed > 0);
  Alcotest.(check bool) "trip counted" true (s.Monitor.breaker.Breaker.trips >= 1);
  Alcotest.(check bool) "open time accrued" true (s.Monitor.time_open_ns > 0.0);
  let events = Recorder.events tr in
  let count cat name =
    List.length
      (List.filter (fun e -> e.Event.cat = cat && e.Event.name = name) events)
  in
  Alcotest.(check bool) "breaker_open traced" true (count "resilience" "breaker_open" >= 1);
  Alcotest.(check bool) "suppression traced" true (count "h2" "moves_suppressed" >= 1);
  let r = Rollup.of_events events in
  Alcotest.(check bool) "rollup sees the open" true (r.Rollup.breaker_opens >= 1);
  ignore g1

(* The verifier and the monitor share the safepoint hook: attaching the
   monitor after Verify must keep both running. *)
let test_monitor_chains_verify_hook () =
  let rt, _h2, _clock = tiny_h2_rt () in
  let v = Verify.attach rt Verify.Safepoint in
  let m = Monitor.attach rt in
  ignore (tag_group rt ~label:1 ~bytes:(Size.kib 120));
  Runtime.major_gc rt;
  Runtime.major_gc rt;
  Alcotest.(check int) "verifier still runs, clean" 0
    (Verify.violation_count v);
  Alcotest.(check bool) "monitor sampled at safepoints" true
    ((Monitor.summary m).Monitor.samples > 0)

(* --- the headline regression ------------------------------------------- *)

(* A streaming service whose retained window (24 x 256 KiB = 6 MiB)
   cannot fit in H1 (~2 MiB old gen) plus H2 (1.5 MiB): without the
   resilience layer the H2-degraded moves pile the window back into H1
   and the run dies of OOM; with it, H2 absorbs the first promotion
   wave, the occupancy trip opens the circuit, and batches drain through
   the serialize-to-offheap fallback, so the same pressure completes as
   a Degraded run. *)
let pressure_profile =
  {
    Streaming_driver.smoke with
    Streaming_driver.name = "pressure";
    batches = 80;
    window = 24;
    state_bytes_per_batch = Size.kib 256;
    elems_per_batch = 32;
    batch_interval_ns = 100e6;
    h1_gb = 3;
  }

let tiny_h2_config =
  {
    H2.default_config with
    H2.region_size = Size.kib 64;
    capacity = Size.kib 1536;
  }

let run_pressure ~with_monitor () =
  let s =
    Setups.streaming_teraheap ~h2_config:tiny_h2_config
      ~h1_gb:pressure_profile.Streaming_driver.h1_gb
      ~dr2_gb:pressure_profile.Streaming_driver.dr2_gb ()
  in
  let monitor =
    if with_monitor then
      Some (Monitor.attach ~config:occupancy_config ~slo:Slo.default s.Setups.s_rt)
    else None
  in
  Streaming_driver.run ~label:"pressure"
    ?h2_device:s.Setups.s_h2_device ?faults:s.Setups.s_faults ?monitor
    s.Setups.s_rt pressure_profile

let test_breaker_converts_oom_to_degraded () =
  let bare = run_pressure ~with_monitor:false () in
  Alcotest.(check bool) "without the breaker: OOM" true
    (bare.Run_result.outcome = Run_result.Oom);
  let guarded = run_pressure ~with_monitor:true () in
  Alcotest.(check bool) "with the breaker: completes" true
    (guarded.Run_result.outcome = Run_result.Degraded);
  match guarded.Run_result.resilience with
  | None -> Alcotest.fail "resilience summary missing"
  | Some s ->
      Alcotest.(check bool) "circuit tripped" true
        (s.Monitor.breaker.Breaker.trips >= 1);
      Alcotest.(check bool) "batches drained off-heap" true
        (s.Monitor.fallback_serializations > 0);
      Alcotest.(check bool) "GC move passes were gated" true
        (s.Monitor.moves_suppressed > 0);
      Alcotest.(check bool) "unserializable batches deferred in H1" true
        (s.Monitor.deferred_batches > 0)

let suite =
  [
    Alcotest.test_case "breaker step table is exactly the spec" `Quick
      test_step_table;
    Alcotest.test_case "breaker lifecycle: trip, cooldown, probe, reopen"
      `Quick test_breaker_lifecycle;
    Alcotest.test_case "probe_successes=1 closes on first probe" `Quick
      test_single_probe_closes_immediately;
    Alcotest.test_case "watchdog bounds a checked-I/O episode" `Quick
      test_watchdog_bounds_episode;
    Alcotest.test_case "watchdog disarmed by default" `Quick
      test_watchdog_disarmed_by_default;
    Alcotest.test_case "jitter stream is seed-deterministic" `Quick
      test_jitter_stream_deterministic;
    Alcotest.test_case "jitter draws don't perturb fault outcomes" `Quick
      test_jitter_does_not_perturb_outcomes;
    Alcotest.test_case "jittered backoff is run-to-run deterministic" `Quick
      test_jittered_backoff_deterministic;
    Alcotest.test_case "SLO specs parse and reject junk" `Quick test_slo_parse;
    Alcotest.test_case "SLO evaluation: pause and degraded axes" `Quick
      test_slo_evaluate;
    Alcotest.test_case "nearest-rank percentile" `Quick
      test_percentile_nearest_rank;
    Alcotest.test_case "monitor trips on occupancy and gates move-to-H2"
      `Quick test_monitor_trips_and_gates_moves;
    Alcotest.test_case "monitor chains the verifier's safepoint hook" `Quick
      test_monitor_chains_verify_hook;
    Alcotest.test_case "breaker converts an OOM run into Degraded" `Slow
      test_breaker_converts_oom_to_degraded;
  ]
