(* Tests for the DaCapo-style barrier-overhead micro-suite and the heap
   census / cost-profile helpers. *)

module Dacapo = Th_workloads.Dacapo
module Cost_profile = Th_psgc.Cost_profile
module Heap_census = Th_psgc.Heap_census
module Runtime = Th_psgc.Runtime
module H1_heap = Th_minijvm.H1_heap
module Obj_ = Th_objmodel.Heap_object
open Th_sim

let test_benchmarks_run_cleanly () =
  List.iter
    (fun (b : Dacapo.benchmark) ->
      let ov, barriers = Dacapo.overhead b in
      Alcotest.(check bool)
        (b.Dacapo.name ^ " executed barriers")
        true (barriers > 1000);
      Alcotest.(check bool)
        (b.Dacapo.name ^ " overhead within the paper's 3%")
        true
        (ov >= 0.0 && ov < 0.03))
    Dacapo.all

let test_census_groups_by_kind () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 8) () in
  let rt = Runtime.create ~clock ~costs:Costs.default ~heap () in
  let root = Runtime.alloc rt ~size:100 () in
  Runtime.add_root rt root;
  for _ = 1 to 5 do
    let a = Runtime.alloc rt ~kind:Obj_.Array_data ~size:1000 () in
    Runtime.write_ref rt root a
  done;
  let entries = Heap_census.of_runtime rt in
  let arrays =
    List.find (fun e -> e.Heap_census.kind = Obj_.Array_data) entries
  in
  Alcotest.(check int) "five arrays" 5 arrays.Heap_census.count;
  Alcotest.(check bool) "bytes accounted" true
    (arrays.Heap_census.bytes >= 5 * 1000)

let test_cost_profiles () =
  Alcotest.(check (float 1e-9)) "dram is neutral" 1.0
    Cost_profile.dram.Cost_profile.old_mult;
  let mo = Cost_profile.nvm_memory_mode ~dram_bytes:100 ~heap_bytes:400 in
  Alcotest.(check bool) "memory mode pays NVM latency" true
    (mo.Cost_profile.old_mult > 1.5);
  let full = Cost_profile.nvm_memory_mode ~dram_bytes:400 ~heap_bytes:400 in
  Alcotest.(check bool) "bigger DRAM cache helps" true
    (full.Cost_profile.old_mult < mo.Cost_profile.old_mult);
  Alcotest.(check bool) "panthera old gen on NVM" true
    (Cost_profile.panthera.Cost_profile.old_mult > 2.0);
  Alcotest.(check (float 1e-9)) "panthera young gen on DRAM" 1.0
    Cost_profile.panthera.Cost_profile.young_mult

let test_profiles_well_formed () =
  List.iter
    (fun (p : Th_workloads.Spark_profiles.t) ->
      Alcotest.(check bool) (p.Th_workloads.Spark_profiles.name ^ " dataset") true
        (p.Th_workloads.Spark_profiles.dataset_gb > 0);
      Alcotest.(check bool) "dram ascending" true
        (let l = p.Th_workloads.Spark_profiles.sd_dram_gb in
         List.sort Int.compare l = l);
      Alcotest.(check bool) "cached fraction sane" true
        (p.Th_workloads.Spark_profiles.cached_fraction > 0.0
        && p.Th_workloads.Spark_profiles.cached_fraction <= 1.0))
    Th_workloads.Spark_profiles.all;
  List.iter
    (fun (p : Th_workloads.Giraph_profiles.t) ->
      let params = Th_workloads.Giraph_profiles.graph_params p ~scale:1.0 in
      Alcotest.(check bool)
        (p.Th_workloads.Giraph_profiles.name ^ " vertices positive")
        true
        (params.Th_giraph.Engine.vertices > 0))
    Th_workloads.Giraph_profiles.all

let test_by_name_lookup () =
  Alcotest.(check string) "case-insensitive" "PR"
    (Th_workloads.Spark_profiles.by_name "pr").Th_workloads.Spark_profiles.name;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Th_workloads.Spark_profiles.by_name "nope");
       false
     with Not_found -> true)

let suite =
  [
    Alcotest.test_case "DaCapo suite overheads within 3%" `Slow
      test_benchmarks_run_cleanly;
    Alcotest.test_case "heap census groups by kind" `Quick
      test_census_groups_by_kind;
    Alcotest.test_case "cost profiles" `Quick test_cost_profiles;
    Alcotest.test_case "workload profiles well-formed" `Quick
      test_profiles_well_formed;
    Alcotest.test_case "by_name lookup" `Quick test_by_name_lookup;
  ]
