(* Tests for CDF computation and report helpers. *)

open Th_sim
module Report = Th_metrics.Report
module Cdf = Th_metrics.Cdf

let test_cdf_points_sorted () =
  let pts = Cdf.points ~buckets:4 [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check int) "buckets+1 points" 5 (List.length pts);
  let values = List.map snd pts in
  Alcotest.(check (list (float 1e-9))) "monotone percentiles"
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ] values

let test_cdf_empty () =
  Alcotest.(check int) "empty input" 0 (List.length (Cdf.points []))

let test_cdf_fraction () =
  let s = [ 0.0; 0.0; 50.0; 100.0 ] in
  Alcotest.(check (float 1e-9)) "half at or below zero" 0.5
    (Cdf.fraction_at_or_below s 0.0);
  Alcotest.(check (float 1e-9)) "all below max" 1.0
    (Cdf.fraction_at_or_below s 100.0)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf points are monotone" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 100.0))
    (fun samples ->
      let pts = Cdf.points samples in
      let rec mono = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono pts)

let breakdown other serde minor major =
  let c = Clock.create () in
  Clock.advance c Clock.Other other;
  Clock.advance c Clock.Serde_io serde;
  Clock.advance c Clock.Minor_gc minor;
  Clock.advance c Clock.Major_gc major;
  Clock.breakdown c

let test_first_total_skips_oom () =
  let rows =
    [ Report.oom "dead"; Report.row "alive" (breakdown 10.0 0.0 0.0 0.0) ]
  in
  Alcotest.(check (option (float 1e-9))) "first non-OOM total" (Some 10.0)
    (Report.first_total rows)

let test_speedup () =
  let base = breakdown 100.0 0.0 0.0 0.0 in
  let fast = breakdown 60.0 0.0 0.0 0.0 in
  Alcotest.(check (float 1e-9)) "40% faster" 0.4
    (Report.speedup ~baseline:base fast)

module Csv = Th_metrics.Csv

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_rendering () =
  let out =
    Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "a,b" ] ]
  in
  Alcotest.(check string) "rendered" "x,y\n1,2\n3,\"a,b\"\n" out

let test_csv_breakdown_row () =
  let c = Clock.create () in
  Clock.advance c Clock.Other 1e9;
  let row = Csv.breakdown_row ~label:"run" (Some (Clock.breakdown c)) in
  Alcotest.(check (list string)) "row"
    [ "run"; "1.000000"; "0.000000"; "0.000000"; "0.000000"; "1.000000" ]
    row;
  Alcotest.(check (list string)) "oom row"
    [ "dead"; "OOM"; "OOM"; "OOM"; "OOM"; "OOM" ]
    (Csv.breakdown_row ~label:"dead" None)

(* ------------------------------------------------------------------ *)
(* Bench_log: schema-2 merge-update and schema-1 compatibility.        *)

module Bench_log = Th_metrics.Bench_log

let section name cell_wall_s =
  {
    Bench_log.name;
    jobs = 2;
    cells = 4;
    cell_wall_s;
    render_wall_s = 0.25;
  }

let log sections =
  { Bench_log.jobs = 2; sections; total_wall_s = 10.0; total_cpu_s = 19.0 }

let with_tmp_json f =
  let path = Filename.temp_file "bench_log_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_bench_log_merge_update () =
  with_tmp_json (fun path ->
      (* First run records fig7 and soak... *)
      Bench_log.write ~path (log [ section "fig7" 1.0; section "soak" 2.0 ]);
      (* ...a partial re-run refreshes soak and adds fig8: fig7 must
         survive (the clobbering this layer replaced). *)
      Bench_log.write ~path (log [ section "soak" 5.0; section "fig8" 3.0 ]);
      let names = List.map (fun s -> s.Bench_log.name) in
      let merged = Bench_log.read_sections path in
      Alcotest.(check (list string))
        "kept sections in place, new ones appended"
        [ "fig7"; "soak"; "fig8" ] (names merged);
      let soak = List.nth merged 1 in
      Alcotest.(check (float 1e-6))
        "re-run section updated in place" 5.0 soak.Bench_log.cell_wall_s)

let test_bench_log_v1_compat () =
  with_tmp_json (fun path ->
      let oc = open_out path in
      output_string oc
        {|{
  "schema": "teraheap-bench-harness/1",
  "jobs": 3,
  "total_wall_s": 2.0,
  "total_cpu_s": 2.0,
  "sections": [
    { "name": "fig7", "wall_s": 1.5, "cpu_s": 1.4 }
  ]
}|};
      close_out oc;
      match Bench_log.read_sections path with
      | [ s ] ->
          Alcotest.(check string) "name" "fig7" s.Bench_log.name;
          Alcotest.(check int) "jobs falls back to the top level" 3
            s.Bench_log.jobs;
          Alcotest.(check (float 1e-6))
            "v1 wall_s lands in cell_wall_s" 1.5 s.Bench_log.cell_wall_s;
          Alcotest.(check (float 1e-6)) "no render time in v1" 0.0
            s.Bench_log.render_wall_s
      | other ->
          Alcotest.failf "expected one section, got %d" (List.length other))

let test_bench_log_speedups () =
  let t = log [ section "a" 20.0; section "b" 9.5 ] in
  (* serial equivalent = 20 + 9.5 + 2 * 0.25 = 30; wall = 10. *)
  Alcotest.(check (float 1e-6))
    "measured speedup = serial-equivalent / wall" 3.0
    (Bench_log.speedup_vs_serial_measured t);
  Alcotest.(check (float 1e-6))
    "estimated speedup = cpu / wall" 1.9
    (Bench_log.speedup_vs_serial_est t)

let test_bench_log_unparsable () =
  with_tmp_json (fun path ->
      let oc = open_out path in
      output_string oc "not json at all {";
      close_out oc;
      Alcotest.(check int)
        "unparsable file yields no sections" 0
        (List.length (Bench_log.read_sections path));
      (* The next write starts fresh instead of failing. *)
      Bench_log.write ~path (log [ section "fig7" 1.0 ]);
      Alcotest.(check int) "write recovers" 1
        (List.length (Bench_log.read_sections path)))

let test_bench_log_parse_sections_total () =
  (* Well-formed document: sections come back under Ok. *)
  (match
     Bench_log.parse_sections
       {|{ "jobs": 2, "sections": [ { "name": "fig7", "wall_s": 1.0 } ] }|}
   with
  | Ok [ s ] -> Alcotest.(check string) "name" "fig7" s.Bench_log.name
  | Ok other -> Alcotest.failf "expected one section, got %d" (List.length other)
  | Error e -> Alcotest.failf "well-formed document rejected: %s" e);
  (* No sections is Ok [], not an error. *)
  (match Bench_log.parse_sections {|{ "jobs": 2 }|} with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "sections invented out of nothing"
  | Error e -> Alcotest.failf "sectionless document rejected: %s" e);
  (* Malformed input returns a positioned Error — never raises. *)
  match Bench_log.parse_sections {|{ "jobs": |} with
  | Ok _ -> Alcotest.fail "malformed document accepted"
  | Error e ->
      Alcotest.(check bool) "error names an offset" true
        (let rec has i =
           i + 6 <= String.length e
           && (String.sub e i 6 = "offset" || has (i + 1))
         in
         has 0)

let suite =
  [
    Alcotest.test_case "cdf points sorted" `Quick test_cdf_points_sorted;
    Alcotest.test_case "cdf handles empty input" `Quick test_cdf_empty;
    Alcotest.test_case "cdf fraction_at_or_below" `Quick test_cdf_fraction;
    QCheck_alcotest.to_alcotest prop_cdf_monotone;
    Alcotest.test_case "first_total skips OOM rows" `Quick
      test_first_total_skips_oom;
    Alcotest.test_case "speedup" `Quick test_speedup;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "csv rendering" `Quick test_csv_rendering;
    Alcotest.test_case "csv breakdown rows" `Quick test_csv_breakdown_row;
    Alcotest.test_case "bench log merge-updates by section" `Quick
      test_bench_log_merge_update;
    Alcotest.test_case "bench log reads schema-1 files" `Quick
      test_bench_log_v1_compat;
    Alcotest.test_case "bench log speedup arithmetic" `Quick
      test_bench_log_speedups;
    Alcotest.test_case "bench log survives unparsable files" `Quick
      test_bench_log_unparsable;
    Alcotest.test_case "bench log parse_sections is total" `Quick
      test_bench_log_parse_sections_total;
  ]
