(* Tests for the bounded-interleaving explorer (Th_analysis.Interleave)
   and the deque linearizability harness (Th_analysis.Deque_check).

   The explorer's enumeration is exhaustive over interleavings of the
   threads' atomic operations, so for fixed per-thread op counts the
   schedule total must equal the multinomial coefficient — checked
   exactly on small hand-built programs before trusting the harness on
   the real deque.

   Test bodies call Interleave.explore bare: the hand-built programs
   are orders of magnitude under the schedule budget, and alcotest
   fails the case with a backtrace if one ever isn't. *)
[@@@th.allow "fault-barrier"]

module Interleave = Th_analysis.Interleave
module Deque_check = Th_analysis.Deque_check
module A = Interleave.Instrumented

(* [threads] thread bodies, each performing a fixed number of atomic
   increments on a shared cell; collector returns the final value. *)
let counter_program ops_per_thread () =
  let cell = A.make 0 in
  let body n () =
    for _ = 1 to n do
      let rec bump () =
        let v = A.get cell in
        if not (A.compare_and_set cell v (v + 1)) then bump ()
      in
      bump ()
    done
  in
  (Array.of_list (List.map body ops_per_thread), fun () -> A.get cell)

(* Multinomial (sum n_i)! / prod (n_i!) — the exact number of
   interleavings of fixed-length straight-line threads. *)
let multinomial counts =
  let fact n =
    let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
    go 1 n
  in
  fact (List.fold_left ( + ) 0 counts)
  / List.fold_left (fun acc n -> acc * fact n) 1 counts

let test_exhaustive_counts () =
  (* CAS-loop increments never fail here only if threads are
     straight-line per schedule; with contention the retry adds ops, so
     use single-op threads where the count is exact. *)
  List.iter
    (fun ops ->
      (* one get + one CAS per increment, but retries make the op count
         schedule-dependent; assert instead the invariant that every
         schedule produces the correct final sum (atomicity) and that
         at least the contention-free multinomial of schedules ran. *)
      let outcomes, schedules = Interleave.explore (counter_program ops) in
      let want = List.fold_left ( + ) 0 ops in
      List.iter
        (fun v ->
          if v <> want then
            Alcotest.failf "CAS counter lost an update: got %d, want %d" v want)
        outcomes;
      let floor = multinomial (List.map (fun n -> 2 * n) ops) in
      if schedules < floor then
        Alcotest.failf "explorer ran %d schedules, expected at least %d"
          schedules floor)
    [ [ 1; 1 ]; [ 2; 1 ]; [ 1; 1; 1 ] ]

(* A single-op program has exactly as many schedules as thread
   orderings: each thread performs one atomic set. *)
let test_single_op_schedules () =
  let program () =
    (* The data race between the two plain stores IS the property under
       test: the explorer must surface both outcomes.
       th-lint: allow atomic-plain-write atomic-plain-read atomic-missing-role *)
    let cell = A.make 0 in
    let body v () = A.set cell v in
    ([| body 1; body 2 |], fun () -> A.get cell)
  in
  let outcomes, schedules = Interleave.explore program in
  Alcotest.(check int) "two schedules for two 1-op threads" 2 schedules;
  let sorted = List.sort_uniq Int.compare outcomes in
  Alcotest.(check (list int)) "both orders observed" [ 1; 2 ] sorted

let test_schedule_limit () =
  match Interleave.explore ~max_schedules:1 (counter_program [ 1; 1 ]) with
  | exception Interleave.Schedule_limit 1 -> ()
  | _ -> Alcotest.fail "Schedule_limit not raised at max_schedules:1"

(* The real deque passes every quick configuration. *)
let test_deque_linearizable () =
  List.iter
    (fun (r : Deque_check.report) ->
      if r.schedules <= 0 then
        Alcotest.failf "%s: no schedules executed" r.config;
      if r.distinct <= 0 || r.distinct > r.schedules then
        Alcotest.failf "%s: implausible outcome count %d" r.config r.distinct;
      match r.violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: deque not linearizable: %s" r.config v)
    (Deque_check.check ())

(* The harness must have teeth: the variant whose steal skips the CAS
   is rejected, and the violation names a concrete outcome. *)
let test_buggy_deque_rejected () =
  let reports = Deque_check.check_buggy () in
  if
    not
      (List.exists (fun (r : Deque_check.report) -> r.violations <> []) reports)
  then Alcotest.fail "harness accepted the seeded-bug deque";
  (* Losing the CAS means two consumers can take the same slot: some
     violating outcome must consume a seeded value twice. *)
  let dup_consumption =
    List.exists
      (fun (r : Deque_check.report) ->
        List.exists
          (fun v ->
            (* crude but stable: outcome strings render every consumed
               value; a duplicate "1" across pops/steals shows up as two
               occurrences before the "leftover" section. *)
            let before_leftover =
              let needle = "leftover" in
              let nl = String.length needle in
              let rec find i =
                if i + nl > String.length v then None
                else if String.sub v i nl = needle then Some i
                else find (i + 1)
              in
              match find 0 with Some i -> String.sub v 0 i | None -> v
            in
            let count =
              String.fold_left
                (fun acc c -> if c = '1' then acc + 1 else acc)
                0 before_leftover
            in
            count >= 2)
          r.violations)
      reports
  in
  Alcotest.(check bool) "a violation shows duplicate consumption" true
    dup_consumption

let suite =
  [
    Alcotest.test_case "explorer covers every interleaving" `Quick
      test_exhaustive_counts;
    Alcotest.test_case "1-op threads: schedules = orderings" `Quick
      test_single_op_schedules;
    Alcotest.test_case "schedule limit fails loudly" `Quick test_schedule_limit;
    Alcotest.test_case "deque linearizable under quick configs" `Quick
      test_deque_linearizable;
    Alcotest.test_case "seeded-bug deque rejected" `Quick
      test_buggy_deque_rejected;
  ]
