(* Figure 6: TeraHeap vs Spark-SD (10 workloads) and vs Giraph-OOC
   (5 workloads) under the Figure-6 DRAM sweep, on the NVMe server.
   Normalized execution-time breakdowns; missing bars are OOM. *)

open Runners
module Report = Th_metrics.Report

let spark () =
  List.iter
    (fun (p : Spark_profiles.t) ->
      let sd =
        List.map
          (fun dram -> run_spark ~dram Sd p)
          p.Spark_profiles.sd_dram_gb
      in
      let th =
        List.map
          (fun dram -> run_spark ~dram Th p)
          p.Spark_profiles.th_dram_gb
      in
      Report.print_breakdown_table
        ~title:(Printf.sprintf "Fig 6 / Spark-%s (normalized)" p.Spark_profiles.name)
        (rows_of_results (sd @ th)))
    Spark_profiles.all

let giraph () =
  List.iter
    (fun (p : Giraph_profiles.t) ->
      let results =
        [
          run_giraph ~small_dram:true Ooc p;
          run_giraph Ooc p;
          run_giraph ~small_dram:true G_th p;
          run_giraph G_th p;
        ]
      in
      Report.print_breakdown_table
        ~title:
          (Printf.sprintf "Fig 6 / Giraph-%s (normalized)"
             p.Giraph_profiles.name)
        (rows_of_results results))
    Giraph_profiles.all

let run () =
  spark ();
  giraph ()
