(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6–§7). Run all experiments with `dune exec bench/main.exe`,
   or select sections: `dune exec bench/main.exe -- fig6 fig7 ...`.
   `micro` runs the bechamel micro-benchmarks of the core structures. *)

let sections : (string * string * (unit -> unit)) list =
  [
    ("table5", "H2 metadata size per TB vs region size", Table5.run);
    ("fig6", "TeraHeap vs Spark-SD / Giraph-OOC, DRAM sweep", Fig6.run);
    ("fig7", "GC timeline and old-gen occupancy, Spark-PR", Fig7.run);
    ("fig8", "PS-JDK11 and G1-JDK17 collectors vs TeraHeap", Fig8.run);
    ("fig9", "transfer hint and low-threshold policies", Fig9.run);
    ("fig10", "CDF of live objects/space per H2 region", Fig10.run);
    ("fig11", "H2 card segment sizes; major GC phases", Fig11.run);
    ("fig12", "NVM server: Spark-SD, Spark-MO, Panthera", Fig12.run);
    ("fig13", "scaling with threads and dataset size", Fig13.run);
    ("extras", "write-barrier overhead; union-find ablation", Extras.run);
    ("micro", "bechamel micro-benchmarks", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map (fun (name, _, _) -> name) sections
  in
  let t0 = Sys.time () in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) sections with
      | Some (n, descr, f) ->
          Printf.printf "\n##### %s — %s #####\n%!" n descr;
          f ()
      | None ->
          Printf.eprintf "unknown section %s; available: %s\n" name
            (String.concat ", " (List.map (fun (n, _, _) -> n) sections)))
    requested;
  Printf.printf "\n(benchmarks completed in %.1f s cpu time)\n" (Sys.time () -. t0)
