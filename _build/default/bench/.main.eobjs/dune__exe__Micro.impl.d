bench/micro.ml: Analyze Bechamel Benchmark Clock Costs Hashtbl Instance List Measure Printf Size Staged Test Th_core Th_device Th_minijvm Th_objmodel Th_sim Time Toolkit
