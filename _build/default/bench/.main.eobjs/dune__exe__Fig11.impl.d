bench/fig11.ml: Giraph_profiles List Printf Run_result Runners Size Th_core Th_metrics Th_psgc Th_sim
