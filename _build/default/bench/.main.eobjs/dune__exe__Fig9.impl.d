bench/fig9.ml: Giraph_profiles List Printf Run_result Runners Th_core Th_metrics
