bench/fig7.ml: Array List Printf Run_result Runners Spark_profiles Th_metrics Th_psgc
