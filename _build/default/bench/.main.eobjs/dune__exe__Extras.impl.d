bench/extras.ml: Clock Giraph_profiles List Printf Run_result Runners Setups Size Spark_driver Spark_profiles Th_core Th_device Th_metrics Th_minijvm Th_objmodel Th_psgc Th_sim Th_workloads
