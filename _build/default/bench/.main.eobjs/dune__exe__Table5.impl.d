bench/table5.ml: Float List Printf Size Th_core Th_metrics Th_sim
