bench/fig13.ml: Float Giraph_profiles List Printf Runners Spark_profiles Th_metrics
