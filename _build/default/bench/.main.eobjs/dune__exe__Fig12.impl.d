bench/fig12.ml: List Printf Runners Spark_driver Spark_profiles Th_baselines Th_device Th_metrics
