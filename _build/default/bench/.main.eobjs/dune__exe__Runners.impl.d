bench/runners.ml: Clock Costs List Printf Th_baselines Th_core Th_device Th_metrics Th_psgc Th_sim Th_workloads
