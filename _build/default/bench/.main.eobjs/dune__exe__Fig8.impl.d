bench/fig8.ml: List Printf Runners Spark_profiles Th_metrics
