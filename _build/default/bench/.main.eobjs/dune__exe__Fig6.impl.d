bench/fig6.ml: Giraph_profiles List Printf Runners Spark_profiles Th_metrics
