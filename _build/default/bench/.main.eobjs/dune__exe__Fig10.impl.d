bench/fig10.ml: Giraph_driver Giraph_profiles Hashtbl List Printf Runners Runtime Setups Size Th_core Th_metrics Th_objmodel Th_sim
