bench/main.mli:
