bench/main.ml: Array Extras Fig10 Fig11 Fig12 Fig13 Fig6 Fig7 Fig8 Fig9 List Micro Printf String Sys Table5
