examples/cache_sizing.ml: List Printf Th_baselines Th_metrics Th_sim Th_workloads
