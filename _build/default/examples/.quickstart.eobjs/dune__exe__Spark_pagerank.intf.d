examples/spark_pagerank.mli:
