examples/spark_pagerank.ml: List Printf Th_baselines Th_core Th_metrics Th_sim Th_workloads
