examples/quickstart.mli:
