examples/giraph_bfs.ml: List Printf Th_baselines Th_core Th_metrics Th_sim Th_workloads
