examples/giraph_bfs.mli:
