examples/quickstart.ml: Clock Costs Format Printf Size Th_core Th_device Th_minijvm Th_objmodel Th_psgc Th_sim
