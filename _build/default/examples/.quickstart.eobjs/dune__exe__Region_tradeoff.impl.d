examples/region_tradeoff.ml: List Printf Size Th_baselines Th_core Th_metrics Th_sim Th_workloads
