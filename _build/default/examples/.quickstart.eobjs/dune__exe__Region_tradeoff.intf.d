examples/region_tradeoff.mli:
