(* Tuning the DRAM split between H1 and the page cache (DR2).

   The paper hand-tunes the division of DRAM between the managed H1 heap
   and the system page cache for every workload ("we explore H1 sizes
   between 50% and 90% of DRAM capacity", §6). This example reruns
   Spark Logistic Regression at a fixed DRAM budget while sweeping the
   H1 share, showing the trade-off: a small H1 GCs constantly, a small
   DR2 makes every H2 access a device read.

   Run with: dune exec examples/cache_sizing.exe *)

module Setups = Th_baselines.Setups
module Spark_profiles = Th_workloads.Spark_profiles
module Spark_driver = Th_workloads.Spark_driver
module Run_result = Th_workloads.Run_result
module Report = Th_metrics.Report

let () =
  let p = Spark_profiles.logistic_regression in
  let dram = 60 in
  let results =
    List.map
      (fun h1_pct ->
        let h1 = dram * h1_pct / 100 in
        let dr2 = dram - h1 in
        let s =
          Setups.spark_teraheap ~huge_pages:true ~h1_gb:h1 ~dr2_gb:dr2 ()
        in
        Spark_driver.run
          ~label:(Printf.sprintf "H1 %d%% (%dGB) / DR2 %dGB" h1_pct h1 dr2)
          s.Setups.ctx p)
      [ 50; 60; 70; 80; 90 ]
  in
  Report.print_breakdown_table
    ~title:
      (Printf.sprintf
         "Spark-LgR: H1/DR2 split at %d GB DRAM (normalized to 50%%)" dram)
    (List.map Run_result.to_report_row results);
  (* Report the best split like the paper's hand-tuned configurations. *)
  let best =
    List.fold_left
      (fun acc (r : Run_result.t) ->
        match (acc, r.Run_result.breakdown) with
        | None, Some _ -> Some r
        | Some (b : Run_result.t), Some br ->
            let total x =
              match x.Run_result.breakdown with
              | Some b -> Th_sim.Clock.total_ns b
              | None -> infinity
            in
            if Th_sim.Clock.total_ns br < total b then Some r else acc
        | acc, None -> acc)
      None results
  in
  match best with
  | Some r -> Printf.printf "\nbest split: %s\n" r.Run_result.label
  | None -> print_endline "all configurations failed"
