(* The H2 region-size trade-off (§7.3 + Table 5).

   Small regions reclaim space precisely but cost DRAM metadata; large
   regions are nearly free to track but let one live object pin 256 MB.
   This example sweeps the region size on Giraph SSSP — the workload the
   paper singles out for space waste — and prints, for each size, the
   paper-scale metadata cost per TB of H2 next to the measured storage
   actually held at the end of the run.

   Run with: dune exec examples/region_tradeoff.exe *)

open Th_sim
module H2 = Th_core.H2
module Setups = Th_baselines.Setups
module Giraph_profiles = Th_workloads.Giraph_profiles
module Giraph_driver = Th_workloads.Giraph_driver
module Run_result = Th_workloads.Run_result
module Report = Th_metrics.Report

let () =
  let p = Giraph_profiles.sssp in
  let rows =
    List.map
      (fun region_kib ->
        let region_size = Size.kib region_kib in
        let cfg = { H2.default_config with H2.region_size } in
        let s =
          Setups.giraph_teraheap ~h2_config:cfg
            ~h1_gb:p.Giraph_profiles.th_h1_gb
            ~dr2_gb:p.Giraph_profiles.th_dr2_gb ()
        in
        let r =
          Giraph_driver.run ~label:"sssp" s.Setups.rt ~mode:s.Setups.mode p
        in
        let paper_region = Size.mib (region_kib * 64 / 1024) in
        let metadata_mb =
          float_of_int (H2.metadata_bytes_per_tb ~region_size:paper_region)
          /. 1048576.0
        in
        match r.Run_result.h2_stats with
        | Some st ->
            [
              Size.to_string region_size;
              Printf.sprintf "%d MB" (region_kib * 64 / 1024);
              Printf.sprintf "%.0f MB/TB" metadata_mb;
              Printf.sprintf "%d/%d" st.H2.regions_reclaimed
                st.H2.regions_allocated;
              Size.to_string st.H2.used_bytes;
            ]
        | None -> [ Size.to_string region_size; "-"; "-"; "OOM"; "-" ])
      [ 256; 1024; 4096 ]
  in
  Report.print_series
    ~title:"Giraph SSSP: region size vs metadata cost vs reclamation"
    ~header:
      [
        "region (sim)";
        "region (paper)";
        "DRAM metadata";
        "reclaimed/allocated";
        "H2 in use at end";
      ]
    rows;
  print_endline
    "\nSmaller regions reclaim storage sooner at a DRAM-metadata cost\n\
     (Table 5); the paper picks 16-256 MB depending on the workload."
