(* Giraph breadth-first search: out-of-core Giraph vs TeraHeap.

   Giraph offloads (serialized) edges and message stores to the NVMe SSD
   when the heap fills; TeraHeap instead keeps them as objects in H2,
   tagged per Figure 5: edge maps at the input superstep (label 0),
   message chunks per superstep, moved once immutable.

   Run with: dune exec examples/giraph_bfs.exe *)

module Setups = Th_baselines.Setups
module Giraph_profiles = Th_workloads.Giraph_profiles
module Giraph_driver = Th_workloads.Giraph_driver
module Run_result = Th_workloads.Run_result
module Report = Th_metrics.Report
module H2 = Th_core.H2

let () =
  let p = Giraph_profiles.bfs in
  let ooc =
    let s = Setups.giraph_ooc ~heap_gb:p.Giraph_profiles.ooc_heap_gb () in
    Giraph_driver.run ~label:"Giraph-OOC" s.Setups.rt ~mode:s.Setups.mode
      ?ooc_device:s.Setups.ooc_device p
  in
  let th =
    let s =
      Setups.giraph_teraheap ~h1_gb:p.Giraph_profiles.th_h1_gb
        ~dr2_gb:p.Giraph_profiles.th_dr2_gb ()
    in
    Giraph_driver.run ~label:"TeraHeap" s.Setups.rt ~mode:s.Setups.mode p
  in
  Report.print_breakdown_table
    ~title:"Giraph BFS (65 GB datagen graph), normalized"
    (List.map Run_result.to_report_row [ ooc; th ]);
  (match th.Run_result.h2_stats with
  | Some s ->
      Printf.printf
        "\nTeraHeap H2: %d objects moved (%s); regions allocated %d, \
         reclaimed in bulk %d (per-superstep message regions die as soon \
         as the next superstep consumes them)\n"
        s.H2.moves_to_h2
        (Th_sim.Size.to_string s.H2.bytes_moved)
        s.H2.regions_allocated s.H2.regions_reclaimed
  | None -> ())
