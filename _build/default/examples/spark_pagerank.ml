(* Spark PageRank under three cache configurations.

   Reproduces the headline comparison of the paper on one workload:
   Spark-SD (on-heap cache + serialized off-heap cache on NVMe) versus
   TeraHeap (cached RDD partitions moved to H2), at equal DRAM and at
   2.5x reduced DRAM for TeraHeap.

   Run with: dune exec examples/spark_pagerank.exe *)

module Setups = Th_baselines.Setups
module Spark_profiles = Th_workloads.Spark_profiles
module Spark_driver = Th_workloads.Spark_driver
module Run_result = Th_workloads.Run_result
module Report = Th_metrics.Report

let () =
  let p = Spark_profiles.pagerank in
  let dr2 = Spark_profiles.dr2_gb in
  let run_sd dram =
    let s = Setups.spark_sd ~heap_gb:(dram - dr2) () in
    Spark_driver.run
      ~label:(Printf.sprintf "Spark-SD  @%3d GB DRAM" dram)
      s.Setups.ctx p
  in
  let run_th dram =
    let s = Setups.spark_teraheap ~h1_gb:(dram - dr2) ~dr2_gb:dr2 () in
    Spark_driver.run
      ~label:(Printf.sprintf "TeraHeap  @%3d GB DRAM" dram)
      s.Setups.ctx p
  in
  let results = [ run_sd 32; run_sd 80; run_th 32; run_th 80 ] in
  Report.print_breakdown_table
    ~title:"Spark PageRank (80 GB dataset), normalized to the first bar"
    (List.map Run_result.to_report_row results);
  List.iter
    (fun (r : Run_result.t) ->
      Printf.printf "%-24s minor GCs %4d | major GCs %3d%s\n"
        r.Run_result.label r.Run_result.minor_gcs r.Run_result.major_gcs
        (match r.Run_result.h2_stats with
        | Some s ->
            Printf.sprintf " | moved to H2: %s"
              (Th_sim.Size.to_string s.Th_core.H2.bytes_moved)
        | None -> ""))
    results
