(* Quickstart: the TeraHeap public API in one file.

   Build a MiniJVM runtime with a second heap (H2) over a simulated NVMe
   SSD, allocate a partition-like object group, tag its root key-object,
   advise the move, and watch a major GC transfer the group to H2 and
   later reclaim its region in bulk.

   Run with: dune exec examples/quickstart.exe *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Runtime = Th_psgc.Runtime
module Device = Th_device.Device

let () =
  (* 1. A simulated machine: clock, cost model, a 64 MiB managed heap
     (H1) in DRAM and an NVMe-backed H2 with 16 MiB of page cache. *)
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 64) () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 =
    H2.create ~config:H2.default_config ~clock ~costs ~device
      ~dr2_bytes:(Size.mib 16) ()
  in
  let rt = Runtime.create ~h2 ~clock ~costs ~heap () in

  (* 2. A framework-style object group: a partition descriptor (the root
     key-object) referencing 1 KiB element objects. The block-manager
     hashmap standing in for framework state is a GC root. *)
  let block_manager = Runtime.alloc rt ~size:512 () in
  Runtime.add_root rt block_manager;
  let partition = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt block_manager partition;
  for _ = 1 to 1024 do
    let elem = Runtime.alloc rt ~size:1024 () in
    Runtime.write_ref rt partition elem
  done;
  Printf.printf "partition built: root %s\n"
    (Format.asprintf "%a" Obj_.pp partition);

  (* 3. The hint interface (§3.2): tag the root key-object with a label
     and advise the move. The next major GC computes the transitive
     closure and relocates it to an H2 region via batched writes. *)
  Runtime.h2_tag_root rt partition ~label:42;
  Runtime.h2_move rt ~label:42;
  Runtime.major_gc rt;
  Printf.printf "after major GC:   root %s\n"
    (Format.asprintf "%a" Obj_.pp partition);
  let s = H2.stats h2 in
  Printf.printf "H2: %d objects moved (%s) into %d region(s)\n"
    s.H2.moves_to_h2
    (Size.to_string s.H2.bytes_moved)
    s.H2.regions_active;

  (* 4. Reading the partition back needs no deserialization: accesses go
     straight to the memory-mapped H2 (page faults charged to mutator
     time). *)
  Obj_.iter_refs (fun elem -> Runtime.read_obj rt elem) partition;

  (* 5. Drop the framework reference: the H2 region holding the group is
     reclaimed in bulk by the next major GC — no object scan, no device
     compaction. *)
  Runtime.unlink_ref rt block_manager partition;
  Runtime.major_gc rt;
  let s = H2.stats h2 in
  Printf.printf "after unpersist: regions reclaimed in bulk = %d\n"
    s.H2.regions_reclaimed;
  Printf.printf "partition is now: %s\n"
    (Format.asprintf "%a" Obj_.pp partition);

  (* 6. The simulated execution-time breakdown. *)
  Format.printf "breakdown: %a@." Clock.pp_breakdown (Clock.breakdown clock)
