(* End-to-end integration tests: whole workloads through the baseline
   setups, checking the headline claims of the paper hold in the
   simulation (who wins, OOM behaviour, GC reductions). These mirror the
   bench harness but assert rather than print. *)

open Th_sim
module Setups = Th_baselines.Setups
module Spark_profiles = Th_workloads.Spark_profiles
module Giraph_profiles = Th_workloads.Giraph_profiles
module Spark_driver = Th_workloads.Spark_driver
module Giraph_driver = Th_workloads.Giraph_driver
module Run_result = Th_workloads.Run_result
module Rt = Th_psgc.Rt

let total (r : Run_result.t) =
  match r.Run_result.breakdown with
  | Some b -> Clock.total_ns b
  | None -> Alcotest.failf "%s unexpectedly OOMed" r.Run_result.label

let serde (r : Run_result.t) =
  match r.Run_result.breakdown with
  | Some b -> b.Clock.serde_io_ns
  | None -> nan

let run_sd ?dram (p : Spark_profiles.t) =
  let dram =
    match dram with
    | Some d -> d
    | None -> List.fold_left max 0 p.Spark_profiles.th_dram_gb
  in
  let s = Setups.spark_sd ~heap_gb:(dram - Spark_profiles.dr2_gb) () in
  Spark_driver.run ~label:"sd" s.Setups.ctx p

let run_th ?dram (p : Spark_profiles.t) =
  let dram =
    match dram with
    | Some d -> d
    | None -> List.fold_left max 0 p.Spark_profiles.th_dram_gb
  in
  let s =
    Setups.spark_teraheap
      ~huge_pages:p.Spark_profiles.sequential
      ~h1_gb:(dram - Spark_profiles.dr2_gb)
      ~dr2_gb:Spark_profiles.dr2_gb ()
  in
  Spark_driver.run ~label:"th" s.Setups.ctx p

let test_th_beats_sd_on_pagerank () =
  let p = Spark_profiles.pagerank in
  let sd = run_sd p and th = run_th p in
  Alcotest.(check bool) "TeraHeap faster at equal DRAM" true
    (total th < total sd);
  Alcotest.(check bool) "S/D largely eliminated" true
    (serde th < 0.5 *. serde sd);
  Alcotest.(check bool) "far fewer major GCs" true
    (th.Run_result.major_gcs * 3 < sd.Run_result.major_gcs)

let test_th_survives_reduced_dram () =
  (* Paper: TeraHeap provides better performance with up to 4.6x less
     DRAM. At PR's smallest configuration Spark-SD OOMs while TeraHeap
     completes and still beats the big-DRAM native run. *)
  let p = Spark_profiles.pagerank in
  let sd_small = run_sd ~dram:32 p in
  Alcotest.(check bool) "Spark-SD OOMs at 32GB" true
    (sd_small.Run_result.breakdown = None);
  let th_small = run_th ~dram:32 p in
  let sd_large = run_sd ~dram:80 p in
  Alcotest.(check bool) "TeraHeap@32 completes and beats Spark-SD@80" true
    (total th_small < total sd_large)

let test_g1_fragmentation_oom () =
  (* §7.1: G1 cannot run SVM, BC, RL due to humongous fragmentation. *)
  List.iter
    (fun name ->
      let p = Spark_profiles.by_name name in
      let dram = List.fold_left max 0 p.Spark_profiles.th_dram_gb in
      let s =
        Setups.spark_sd ~collector:Rt.G1
          ~heap_gb:(dram - Spark_profiles.dr2_gb)
          ()
      in
      let r = Spark_driver.run ~label:("g1-" ^ name) s.Setups.ctx p in
      Alcotest.(check bool) (name ^ " OOMs under G1") true
        (r.Run_result.breakdown = None))
    [ "SVM"; "BC"; "RL" ];
  (* G1 + TeraHeap removes the fragmentation: the humongous cached data
     moves to H2 (§7.1's sketched combination). *)
  List.iter
    (fun name ->
      let p = Spark_profiles.by_name name in
      let dram = List.fold_left max 0 p.Spark_profiles.th_dram_gb in
      let s =
        Setups.spark_teraheap ~collector:Rt.G1
          ~huge_pages:p.Spark_profiles.sequential
          ~h1_gb:(dram - Spark_profiles.dr2_gb)
          ~dr2_gb:Spark_profiles.dr2_gb ()
      in
      let r = Spark_driver.run ~label:("g1+th-" ^ name) s.Setups.ctx p in
      Alcotest.(check bool) (name ^ " runs under G1 + TeraHeap") true
        (r.Run_result.breakdown <> None))
    [ "SVM"; "BC"; "RL" ];
  (* ...and chunked-layout workloads run fine under plain G1. *)
  let p = Spark_profiles.pagerank in
  let s = Setups.spark_sd ~collector:Rt.G1 ~heap_gb:64 () in
  let r = Spark_driver.run ~label:"g1-PR" s.Setups.ctx p in
  Alcotest.(check bool) "PR runs under G1" true
    (r.Run_result.breakdown <> None)

let test_th_beats_giraph_ooc () =
  List.iter
    (fun (p : Giraph_profiles.t) ->
      let ooc =
        let s = Setups.giraph_ooc ~heap_gb:p.Giraph_profiles.ooc_heap_gb () in
        Giraph_driver.run ~label:"ooc" s.Setups.rt ~mode:s.Setups.mode
          ?ooc_device:s.Setups.ooc_device p
      in
      let th =
        let s =
          Setups.giraph_teraheap ~h1_gb:p.Giraph_profiles.th_h1_gb
            ~dr2_gb:p.Giraph_profiles.th_dr2_gb ()
        in
        Giraph_driver.run ~label:"th" s.Setups.rt ~mode:s.Setups.mode p
      in
      Alcotest.(check bool)
        (p.Giraph_profiles.name ^ ": TeraHeap beats Giraph-OOC")
        true
        (total th < total ooc))
    [ Giraph_profiles.pagerank; Giraph_profiles.bfs ]

let test_panthera_loses_to_th () =
  let p = Spark_profiles.pagerank in
  let scale = 0.5 in
  let panthera =
    let s = Setups.spark_panthera ~heap_gb:64 () in
    Spark_driver.run ~dataset_scale:scale ~label:"panthera" s.Setups.ctx p
  in
  let th =
    let s =
      Setups.spark_teraheap ~device_kind:Th_device.Device.Nvm_app_direct
        ~h1_gb:16 ~dr2_gb:16 ()
    in
    Spark_driver.run ~dataset_scale:scale ~label:"th" s.Setups.ctx p
  in
  Alcotest.(check bool) "TeraHeap beats Panthera at equal DRAM+NVM" true
    (total th < total panthera)

let test_spark_mo_loses_to_th () =
  let p = Spark_profiles.pagerank in
  let mo =
    let s = Setups.spark_mo ~heap_gb:160 ~dram_gb:80 () in
    Spark_driver.run ~label:"mo" s.Setups.ctx p
  in
  let th =
    let s =
      Setups.spark_teraheap ~device_kind:Th_device.Device.Nvm_app_direct
        ~h1_gb:64 ~dr2_gb:16 ()
    in
    Spark_driver.run ~label:"th" s.Setups.ctx p
  in
  Alcotest.(check bool) "TeraHeap beats Spark-MO" true (total th < total mo)

let test_all_spark_profiles_run_or_oom_cleanly () =
  (* Every workload/DRAM point either completes or reports a clean OOM —
     no exceptions escape, results carry GC statistics. *)
  List.iter
    (fun (p : Spark_profiles.t) ->
      List.iter
        (fun dram ->
          let r = run_sd ~dram p in
          Alcotest.(check bool) "gc stats present" true
            (r.Run_result.gc_stats <> None))
        p.Spark_profiles.sd_dram_gb;
      List.iter
        (fun dram ->
          let r = run_th ~dram p in
          Alcotest.(check bool)
            (Printf.sprintf "TeraHeap %s@%d completes" p.Spark_profiles.name
               dram)
            true
            (r.Run_result.breakdown <> None))
        p.Spark_profiles.th_dram_gb)
    Spark_profiles.all

let suite =
  [
    Alcotest.test_case "TeraHeap beats Spark-SD on PageRank" `Slow
      test_th_beats_sd_on_pagerank;
    Alcotest.test_case "TeraHeap runs where Spark-SD OOMs" `Slow
      test_th_survives_reduced_dram;
    Alcotest.test_case "G1 humongous fragmentation OOMs SVM/BC/RL" `Slow
      test_g1_fragmentation_oom;
    Alcotest.test_case "TeraHeap beats Giraph-OOC" `Slow
      test_th_beats_giraph_ooc;
    Alcotest.test_case "TeraHeap beats Panthera" `Slow
      test_panthera_loses_to_th;
    Alcotest.test_case "TeraHeap beats Spark-MO" `Slow test_spark_mo_loses_to_th;
    Alcotest.test_case "all Spark profiles run or OOM cleanly" `Slow
      test_all_spark_profiles_run_or_oom_cleanly;
  ]
