(* Tests for the storage substrate: device cost model, traffic counters,
   LRU page cache, readahead detection, writeback. *)

open Th_sim
module Device = Th_device.Device
module Page_cache = Th_device.Page_cache

let fresh_device ?(kind = Device.Nvme_ssd) () =
  let clock = Clock.create () in
  (clock, Device.create clock kind)

let test_random_read_amplification () =
  let _, d = fresh_device () in
  (* A 100-byte random read is charged a whole 4 KiB page. *)
  Device.read d ~cat:Clock.Other ~random:true 100;
  Alcotest.(check int) "amplified to a page" 4096 (Device.stats d).Device.bytes_read

let test_sequential_read_not_amplified () =
  let _, d = fresh_device () in
  Device.read d ~cat:Clock.Other ~random:false 100;
  Alcotest.(check int) "charged as-is" 100 (Device.stats d).Device.bytes_read

let test_random_dearer_than_sequential () =
  let _, d = fresh_device () in
  let seq = Device.read_cost_ns d ~random:false (Size.kib 64) in
  let rand = Device.read_cost_ns d ~random:true (Size.kib 64) in
  Alcotest.(check bool) "random pays per-page latencies" true (rand > seq)

let test_nvme_slower_than_nvm () =
  let _, nvme = fresh_device () in
  let _, nvm = fresh_device ~kind:Device.Nvm_app_direct () in
  (* Byte-addressable NVM wins on small random accesses: a 256 B load
     costs one 256 B block, while the SSD pays a whole 4 KiB page. *)
  Alcotest.(check bool) "NVM random reads are cheaper" true
    (Device.read_cost_ns nvm ~random:true 256
    < Device.read_cost_ns nvme ~random:true 256)

let test_rmw_counts_both_directions () =
  let _, d = fresh_device () in
  Device.read_modify_write d ~cat:Clock.Other 1000;
  let s = Device.stats d in
  Alcotest.(check int) "read side" 4096 s.Device.bytes_read;
  Alcotest.(check int) "write side" 4096 s.Device.bytes_written

let test_clock_charged () =
  let clock, d = fresh_device () in
  Device.read d ~cat:Clock.Serde_io ~random:true 4096;
  let b = Clock.breakdown clock in
  Alcotest.(check bool) "charged to s/d+io" true (b.Clock.serde_io_ns > 0.0);
  Alcotest.(check (float 0.0)) "not to other" 0.0 b.Clock.other_ns

let fresh_cache ?(capacity = Size.kib 64) () =
  let clock = Clock.create () in
  let d = Device.create clock Device.Nvme_ssd in
  (clock, d, Page_cache.create ~capacity_bytes:capacity clock d)

let test_cache_hit_after_miss () =
  let _, _, c = fresh_cache () in
  Page_cache.access c ~cat:Clock.Other ~write:false ~offset:0 ~len:100;
  Page_cache.access c ~cat:Clock.Other ~write:false ~offset:0 ~len:100;
  let s = Page_cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Page_cache.misses;
  Alcotest.(check int) "one hit" 1 s.Page_cache.hits

let test_cache_lru_eviction () =
  (* Capacity 16 pages; touch 17 distinct pages; the first is evicted. *)
  let _, _, c = fresh_cache () in
  for i = 0 to 16 do
    Page_cache.access c ~cat:Clock.Other ~write:false ~offset:(i * 4096) ~len:1
  done;
  Alcotest.(check int) "resident capped" 16 (Page_cache.resident_pages c);
  Page_cache.access c ~cat:Clock.Other ~write:false ~offset:0 ~len:1;
  let s = Page_cache.stats c in
  Alcotest.(check int) "page 0 missed again" 18 s.Page_cache.misses

let test_cache_dirty_writeback_on_eviction () =
  let _, d, c = fresh_cache () in
  Page_cache.access c ~cat:Clock.Other ~write:true ~offset:0 ~len:100;
  for i = 1 to 16 do
    Page_cache.access c ~cat:Clock.Other ~write:false ~offset:(i * 4096) ~len:1
  done;
  Alcotest.(check bool) "dirty page written back" true
    ((Device.stats d).Device.bytes_written >= 4096)

let test_cache_invalidate_skips_writeback () =
  let _, d, c = fresh_cache () in
  Page_cache.access c ~cat:Clock.Other ~write:true ~offset:0 ~len:4096;
  let written_before = (Device.stats d).Device.bytes_written in
  Page_cache.invalidate_range c ~offset:0 ~len:4096;
  Alcotest.(check int) "no writeback on invalidate" written_before
    (Device.stats d).Device.bytes_written;
  Alcotest.(check int) "page dropped" 0 (Page_cache.resident_pages c)

let test_cache_readahead_cheaper () =
  (* Sequential stream across calls: later misses are charged at
     bandwidth without per-request latency. *)
  let run offsets =
    let clock, _, c = fresh_cache ~capacity:(Size.mib 4) () in
    List.iter
      (fun off ->
        Page_cache.access c ~cat:Clock.Other ~write:false ~offset:off
          ~len:4096)
      offsets;
    Clock.now_ns clock
  in
  let sequential = run [ 0; 4096; 8192; 12288; 16384 ] in
  let scattered = run [ 0; 40960; 8192; 53248; 16384 ] in
  Alcotest.(check bool) "sequential stream cheaper" true
    (sequential < scattered)

let test_cache_flush () =
  let _, d, c = fresh_cache () in
  Page_cache.access c ~cat:Clock.Other ~write:true ~offset:0 ~len:8192;
  Page_cache.flush c ~cat:Clock.Other;
  Alcotest.(check bool) "flush wrote dirty pages" true
    ((Device.stats d).Device.bytes_written >= 8192)

let prop_cache_resident_bounded =
  QCheck.Test.make ~name:"page cache never exceeds capacity" ~count:100
    QCheck.(list (int_range 0 255))
    (fun pages ->
      let _, _, c = fresh_cache ~capacity:(Size.kib 32) () in
      List.iter
        (fun p ->
          Page_cache.access c ~cat:Clock.Other ~write:(p mod 3 = 0)
            ~offset:(p * 4096) ~len:4096)
        pages;
      Page_cache.resident_pages c <= Page_cache.capacity_pages c)

let suite =
  [
    Alcotest.test_case "random reads amplified to pages" `Quick
      test_random_read_amplification;
    Alcotest.test_case "sequential reads not amplified" `Quick
      test_sequential_read_not_amplified;
    Alcotest.test_case "random dearer than sequential" `Quick
      test_random_dearer_than_sequential;
    Alcotest.test_case "NVM cheaper than NVMe for small reads" `Quick
      test_nvme_slower_than_nvm;
    Alcotest.test_case "rmw counts both directions" `Quick
      test_rmw_counts_both_directions;
    Alcotest.test_case "device charges the right clock category" `Quick
      test_clock_charged;
    Alcotest.test_case "cache hit after miss" `Quick test_cache_hit_after_miss;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "dirty writeback on eviction" `Quick
      test_cache_dirty_writeback_on_eviction;
    Alcotest.test_case "invalidate skips writeback" `Quick
      test_cache_invalidate_skips_writeback;
    Alcotest.test_case "readahead makes streams cheaper" `Quick
      test_cache_readahead_cheaper;
    Alcotest.test_case "flush writes dirty pages" `Quick test_cache_flush;
    QCheck_alcotest.to_alcotest prop_cache_resident_bounded;
  ]
