test/test_spark.ml: Alcotest Clock Costs List Option Size Th_core Th_device Th_minijvm Th_objmodel Th_psgc Th_sim Th_spark
