test/test_gc_props.ml: Array Clock Costs Format Hashtbl List Printf QCheck QCheck_alcotest Size String Th_core Th_device Th_minijvm Th_objmodel Th_psgc Th_sim Vec
