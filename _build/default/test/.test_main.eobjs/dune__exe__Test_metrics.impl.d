test/test_metrics.ml: Alcotest Clock List QCheck QCheck_alcotest Th_metrics Th_sim
