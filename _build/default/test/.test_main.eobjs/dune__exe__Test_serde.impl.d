test/test_serde.ml: Alcotest Clock Costs List Size Th_minijvm Th_objmodel Th_psgc Th_serde Th_sim
