test/test_giraph.ml: Alcotest Array Clock Costs List Prng Size Th_core Th_device Th_giraph Th_minijvm Th_objmodel Th_psgc Th_sim Vec
