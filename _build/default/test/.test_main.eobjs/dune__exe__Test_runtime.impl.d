test/test_runtime.ml: Alcotest Clock Costs List Size Th_core Th_device Th_minijvm Th_objmodel Th_psgc Th_sim
