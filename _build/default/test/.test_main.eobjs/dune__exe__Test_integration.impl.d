test/test_integration.ml: Alcotest Clock List Printf Th_baselines Th_device Th_psgc Th_sim Th_workloads
