test/test_sim.ml: Alcotest Clock Costs List Prng QCheck QCheck_alcotest Size Th_sim Vec
