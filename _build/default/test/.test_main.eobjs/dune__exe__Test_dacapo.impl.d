test/test_dacapo.ml: Alcotest Clock Costs List Size Th_giraph Th_minijvm Th_objmodel Th_psgc Th_sim Th_workloads
