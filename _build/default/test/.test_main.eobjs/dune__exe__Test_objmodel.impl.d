test/test_objmodel.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Th_objmodel
