test/test_heap_structs.ml: Alcotest List QCheck QCheck_alcotest Size Th_core Th_minijvm Th_objmodel Th_sim
