test/test_device.ml: Alcotest Clock List QCheck QCheck_alcotest Size Th_device Th_sim
