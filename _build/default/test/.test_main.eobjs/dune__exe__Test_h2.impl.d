test/test_h2.ml: Alcotest Clock Costs Float List Size Th_core Th_device Th_objmodel Th_sim
