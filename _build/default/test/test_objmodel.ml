(* Tests for the object-graph model and the GC root set. *)

module Obj_ = Th_objmodel.Heap_object
module Roots = Th_objmodel.Roots

let mk ?(size = 64) ?(kind = Obj_.Data) id = Obj_.create ~kind ~id ~size ()

let test_total_size_includes_headers () =
  let o = mk ~size:100 0 in
  Alcotest.(check int) "header + label word" (100 + 16 + 8) (Obj_.total_size o)

let test_footprint_includes_slack () =
  let o = mk ~size:100 0 in
  o.Obj_.region_slack <- 28;
  Alcotest.(check int) "slack pinned" (Obj_.total_size o + 28) (Obj_.footprint o)

let test_refs_add_remove () =
  let a = mk 0 and b = mk 1 and c = mk 2 in
  Obj_.add_ref a b;
  Obj_.add_ref a c;
  Alcotest.(check int) "two refs" 2 (Obj_.ref_count a);
  Obj_.remove_ref a b;
  Alcotest.(check int) "one ref" 1 (Obj_.ref_count a);
  Alcotest.(check bool) "c remains" true (List.memq c (Obj_.refs_list a));
  Obj_.remove_ref a b;
  Alcotest.(check int) "removing absent ref is a no-op" 1 (Obj_.ref_count a)

let test_set_ref_bounds () =
  let a = mk 0 and b = mk 1 in
  Obj_.add_ref a b;
  Alcotest.check_raises "slot out of range"
    (Invalid_argument "Heap_object.set_ref") (fun () -> Obj_.set_ref a 1 b)

let test_excluded_kinds () =
  Alcotest.(check bool) "metadata excluded" true
    (Obj_.excluded_from_closure (mk ~kind:Obj_.Jvm_metadata 0));
  Alcotest.(check bool) "weak ref excluded" true
    (Obj_.excluded_from_closure (mk ~kind:Obj_.Weak_reference 1));
  Alcotest.(check bool) "data included" false
    (Obj_.excluded_from_closure (mk 2))

let test_reachable_basic () =
  let a = mk 0 and b = mk 1 and c = mk 2 and d = mk 3 in
  Obj_.add_ref a b;
  Obj_.add_ref b c;
  (* d is unreachable *)
  let r = Obj_.reachable ~roots:[ a ] ~fence_h2:false in
  Alcotest.(check int) "three reachable" 3 (Hashtbl.length r);
  Alcotest.(check bool) "d not reachable" false (Hashtbl.mem r d.Obj_.id)

let test_reachable_handles_cycles () =
  let a = mk 0 and b = mk 1 in
  Obj_.add_ref a b;
  Obj_.add_ref b a;
  let r = Obj_.reachable ~roots:[ a ] ~fence_h2:false in
  Alcotest.(check int) "cycle terminates" 2 (Hashtbl.length r)

let test_reachable_fences_h2 () =
  let a = mk 0 and b = mk 1 and c = mk 2 in
  Obj_.add_ref a b;
  Obj_.add_ref b c;
  b.Obj_.loc <- Obj_.In_h2;
  let r = Obj_.reachable ~roots:[ a ] ~fence_h2:true in
  Alcotest.(check bool) "b seen" true (Hashtbl.mem r b.Obj_.id);
  Alcotest.(check bool) "fence stops at b: c unseen" false
    (Hashtbl.mem r c.Obj_.id)

let test_roots_refcounted () =
  let r = Roots.create () in
  let o = mk 0 in
  Roots.add r o;
  Roots.add r o;
  Roots.remove r o;
  Alcotest.(check bool) "still a root after one removal" true (Roots.is_root o);
  Alcotest.(check int) "counted once in the set" 1 (Roots.count r);
  Roots.remove r o;
  Alcotest.(check bool) "fully removed" false (Roots.is_root o);
  Alcotest.(check int) "empty" 0 (Roots.count r)

let test_roots_remove_unregistered () =
  let r = Roots.create () in
  let o = mk 0 in
  Roots.remove r o;
  Alcotest.(check int) "no-op" 0 (Roots.count r)

let prop_reachable_subset_of_graph =
  (* Build a random graph; everything reachable must be in the node set,
     and roots are always reachable. *)
  QCheck.Test.make ~name:"reachability is sound" ~count:100
    QCheck.(pair (int_range 1 40) (list (pair (int_range 0 39) (int_range 0 39))))
    (fun (n, edges) ->
      let nodes = Array.init n (fun i -> mk i) in
      List.iter
        (fun (a, b) ->
          if a < n && b < n then Obj_.add_ref nodes.(a) nodes.(b))
        edges;
      let r = Obj_.reachable ~roots:[ nodes.(0) ] ~fence_h2:false in
      Hashtbl.mem r 0 && Hashtbl.length r <= n)

let suite =
  [
    Alcotest.test_case "total_size includes headers" `Quick
      test_total_size_includes_headers;
    Alcotest.test_case "footprint includes region slack" `Quick
      test_footprint_includes_slack;
    Alcotest.test_case "add/remove refs" `Quick test_refs_add_remove;
    Alcotest.test_case "set_ref bounds-checked" `Quick test_set_ref_bounds;
    Alcotest.test_case "metadata/weak refs excluded from closures" `Quick
      test_excluded_kinds;
    Alcotest.test_case "reachability basic" `Quick test_reachable_basic;
    Alcotest.test_case "reachability terminates on cycles" `Quick
      test_reachable_handles_cycles;
    Alcotest.test_case "reachability fences H2" `Quick test_reachable_fences_h2;
    Alcotest.test_case "roots are reference-counted" `Quick
      test_roots_refcounted;
    Alcotest.test_case "removing unregistered root is no-op" `Quick
      test_roots_remove_unregistered;
    QCheck_alcotest.to_alcotest prop_reachable_subset_of_graph;
  ]
