(* Tests for H1 heap layout/accounting and the two card tables. *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Card_table = Th_minijvm.Card_table
module H1_heap = Th_minijvm.H1_heap
module H2_card_table = Th_core.H2_card_table

(* ---- H1 card table ---- *)

let test_card_mark_and_clear () =
  let ct = Card_table.create ~capacity_bytes:(Size.kib 64) () in
  Card_table.mark_dirty ct ~addr:1000;
  let card = Card_table.card_of_addr ct 1000 in
  Alcotest.(check bool) "dirty" true (Card_table.is_dirty ct ~card);
  Alcotest.(check int) "count" 1 (Card_table.dirty_count ct);
  Card_table.mark_dirty ct ~addr:1001;
  Alcotest.(check int) "same card counted once" 1 (Card_table.dirty_count ct);
  Card_table.clear_card ct ~card;
  Alcotest.(check bool) "cleared" false (Card_table.is_dirty ct ~card);
  Alcotest.(check int) "count back to zero" 0 (Card_table.dirty_count ct)

let test_card_512b_granularity () =
  let ct = Card_table.create ~capacity_bytes:(Size.kib 64) () in
  Alcotest.(check int) "512B cards" 128 (Card_table.num_cards ct);
  Alcotest.(check bool) "adjacent bytes share a card" true
    (Card_table.card_of_addr ct 0 = Card_table.card_of_addr ct 511);
  Alcotest.(check bool) "next card at 512" false
    (Card_table.card_of_addr ct 511 = Card_table.card_of_addr ct 512)

let test_card_out_of_range () =
  let ct = Card_table.create ~capacity_bytes:(Size.kib 4) () in
  Alcotest.check_raises "address out of range"
    (Invalid_argument "Card_table.card_of_addr: address out of range")
    (fun () -> Card_table.mark_dirty ct ~addr:(Size.kib 4))

(* ---- H1 heap ---- *)

let test_h1_sizing_defaults () =
  (* NewRatio=2, SurvivorRatio=8: young = heap/3, eden = 8/10 young. *)
  let h = H1_heap.create ~heap_bytes:(Size.mib 30) () in
  Alcotest.(check int) "young third" (Size.mib 10) (H1_heap.young_bytes h);
  Alcotest.(check int) "old two thirds" (Size.mib 20) h.H1_heap.old_capacity;
  Alcotest.(check int) "eden 8/10 of young" (Size.mib 8) h.H1_heap.eden_capacity;
  Alcotest.(check int) "whole heap accounted" (Size.mib 30) (H1_heap.heap_bytes h)

let test_h1_alloc_accounting () =
  let h = H1_heap.create ~heap_bytes:(Size.mib 3) () in
  (match H1_heap.alloc h ~kind:Obj_.Data ~size:1000 with
  | H1_heap.Allocated o ->
      Alcotest.(check int) "eden used" (Obj_.total_size o) h.H1_heap.eden_used
  | _ -> Alcotest.fail "expected allocation");
  Alcotest.(check bool) "occupancy positive" true (H1_heap.occupancy h > 0.0)

let test_h1_eden_full () =
  let h = H1_heap.create ~heap_bytes:(Size.kib 300) () in
  let rec fill n =
    match H1_heap.alloc h ~kind:Obj_.Data ~size:(Size.kib 4) with
    | H1_heap.Allocated _ when n < 1000 -> fill (n + 1)
    | H1_heap.Allocated _ -> Alcotest.fail "eden never filled"
    | H1_heap.Eden_full -> ()
    | H1_heap.Old_full -> Alcotest.fail "unexpected old-full"
  in
  fill 0

let test_h1_large_object_goes_old () =
  let h = H1_heap.create ~heap_bytes:(Size.mib 3) () in
  let big = (h.H1_heap.eden_capacity / 2) + 100 in
  match H1_heap.alloc h ~kind:Obj_.Array_data ~size:big with
  | H1_heap.Allocated o ->
      Alcotest.(check bool) "old gen" true (o.Obj_.loc = Obj_.Old);
      Alcotest.(check bool) "address assigned" true (o.Obj_.addr >= 0)
  | _ -> Alcotest.fail "expected old-gen allocation"

let test_h1_old_bump_allocation () =
  let h = H1_heap.create ~heap_bytes:(Size.mib 3) () in
  let a1 = H1_heap.old_alloc_addr h 100 in
  let a2 = H1_heap.old_alloc_addr h 100 in
  Alcotest.(check (option int)) "first at 0" (Some 0) a1;
  Alcotest.(check (option int)) "bumped" (Some 100) a2;
  Alcotest.(check int) "used tracked" 200 h.H1_heap.old_used

let test_h1_old_full () =
  let h = H1_heap.create ~heap_bytes:(Size.mib 3) () in
  Alcotest.(check (option int)) "over capacity refused" None
    (H1_heap.old_alloc_addr h (Size.mib 4))

let test_h1_double_free_detected () =
  let h = H1_heap.create ~heap_bytes:(Size.mib 3) () in
  match H1_heap.alloc h ~kind:Obj_.Data ~size:64 with
  | H1_heap.Allocated o ->
      H1_heap.free_object h o;
      Alcotest.check_raises "double free"
        (Invalid_argument "H1_heap.free_object: double free") (fun () ->
          H1_heap.free_object h o)
  | _ -> Alcotest.fail "expected allocation"

(* ---- H2 card table ---- *)

let test_h2_states () =
  let ct = H2_card_table.create ~capacity_bytes:(Size.mib 1) () in
  let seg = H2_card_table.segment_of ct ~gaddr:5000 in
  Alcotest.(check bool) "initially clean" true
    (H2_card_table.state ct ~seg = H2_card_table.Clean);
  H2_card_table.mark_dirty ct ~gaddr:5000;
  Alcotest.(check bool) "dirty after store" true
    (H2_card_table.state ct ~seg = H2_card_table.Dirty);
  H2_card_table.set_state ct ~seg H2_card_table.Old_gen;
  Alcotest.(check bool) "downgraded to oldGen" true
    (H2_card_table.state ct ~seg = H2_card_table.Old_gen);
  Alcotest.(check int) "non-clean tracked" 1 (H2_card_table.non_clean_count ct)

let test_h2_minor_scan_selects_dirty_and_young () =
  let ct = H2_card_table.create ~capacity_bytes:(Size.mib 1) () in
  H2_card_table.set_state ct ~seg:1 H2_card_table.Dirty;
  H2_card_table.set_state ct ~seg:2 H2_card_table.Young_gen;
  H2_card_table.set_state ct ~seg:3 H2_card_table.Old_gen;
  let minor = ref [] and major = ref [] in
  H2_card_table.iter_minor_scan ct ~lo:0 ~hi:(H2_card_table.num_segments ct)
    (fun seg _ -> minor := seg :: !minor);
  H2_card_table.iter_major_scan ct ~lo:0 ~hi:(H2_card_table.num_segments ct)
    (fun seg _ -> major := seg :: !major);
  Alcotest.(check (list int)) "minor skips oldGen" [ 2; 1 ] !minor;
  Alcotest.(check (list int)) "major includes oldGen" [ 3; 2; 1 ] !major

let test_h2_sticky_boundary_cards () =
  (* Unaligned (vanilla) layout: a dirty boundary card is never cleaned. *)
  let ct =
    H2_card_table.create ~segment_size:512 ~stripe_aligned:false
      ~stripe_size:(Size.kib 4) ~capacity_bytes:(Size.kib 64) ()
  in
  (* Segment 0 is the first card of stripe 0: boundary. *)
  H2_card_table.mark_dirty ct ~gaddr:0;
  H2_card_table.set_state ct ~seg:0 H2_card_table.Clean;
  Alcotest.(check bool) "boundary card stays dirty" true
    (H2_card_table.state ct ~seg:0 = H2_card_table.Dirty);
  (* An interior card can be cleaned. *)
  H2_card_table.mark_dirty ct ~gaddr:(512 * 3);
  H2_card_table.set_state ct ~seg:3 H2_card_table.Clean;
  Alcotest.(check bool) "interior card cleaned" true
    (H2_card_table.state ct ~seg:3 = H2_card_table.Clean)

let test_h2_aligned_boundary_cards_clean () =
  let ct =
    H2_card_table.create ~segment_size:512 ~stripe_aligned:true
      ~stripe_size:(Size.kib 4) ~capacity_bytes:(Size.kib 64) ()
  in
  H2_card_table.mark_dirty ct ~gaddr:0;
  H2_card_table.set_state ct ~seg:0 H2_card_table.Clean;
  Alcotest.(check bool) "TeraHeap alignment removes stickiness" true
    (H2_card_table.state ct ~seg:0 = H2_card_table.Clean)

let test_h2_clear_range_overrides_sticky () =
  let ct =
    H2_card_table.create ~segment_size:512 ~stripe_aligned:false
      ~stripe_size:(Size.kib 4) ~capacity_bytes:(Size.kib 64) ()
  in
  H2_card_table.mark_dirty ct ~gaddr:0;
  H2_card_table.clear_range ct ~lo:0 ~hi:8;
  Alcotest.(check int) "bulk region reclamation clears all" 0
    (H2_card_table.non_clean_count ct)

let test_h2_metadata_bytes () =
  let ct = H2_card_table.create ~segment_size:4096 ~capacity_bytes:(Size.mib 4) () in
  Alcotest.(check int) "one byte per segment" 1024
    (H2_card_table.metadata_bytes ct)

let prop_h2_non_clean_counter_consistent =
  QCheck.Test.make ~name:"h2 card non-clean counter matches states" ~count:100
    QCheck.(list (pair (int_range 0 63) (int_range 0 3)))
    (fun ops ->
      let ct =
        H2_card_table.create ~segment_size:512 ~capacity_bytes:(Size.kib 32) ()
      in
      List.iter
        (fun (seg, st) ->
          let state =
            match st with
            | 0 -> H2_card_table.Clean
            | 1 -> H2_card_table.Dirty
            | 2 -> H2_card_table.Young_gen
            | _ -> H2_card_table.Old_gen
          in
          H2_card_table.set_state ct ~seg state)
        ops;
      let actual = ref 0 in
      H2_card_table.iter_major_scan ct ~lo:0
        ~hi:(H2_card_table.num_segments ct) (fun _ _ -> incr actual);
      !actual = H2_card_table.non_clean_count ct)

let suite =
  [
    Alcotest.test_case "h1 card mark/clear" `Quick test_card_mark_and_clear;
    Alcotest.test_case "h1 card granularity" `Quick test_card_512b_granularity;
    Alcotest.test_case "h1 card range check" `Quick test_card_out_of_range;
    Alcotest.test_case "h1 sizing follows PS defaults" `Quick
      test_h1_sizing_defaults;
    Alcotest.test_case "h1 alloc accounting" `Quick test_h1_alloc_accounting;
    Alcotest.test_case "h1 eden fills" `Quick test_h1_eden_full;
    Alcotest.test_case "h1 large objects allocate old" `Quick
      test_h1_large_object_goes_old;
    Alcotest.test_case "h1 old-gen bump allocation" `Quick
      test_h1_old_bump_allocation;
    Alcotest.test_case "h1 old-gen capacity enforced" `Quick test_h1_old_full;
    Alcotest.test_case "h1 double free detected" `Quick
      test_h1_double_free_detected;
    Alcotest.test_case "h2 card four states" `Quick test_h2_states;
    Alcotest.test_case "h2 minor scan skips oldGen segments" `Quick
      test_h2_minor_scan_selects_dirty_and_young;
    Alcotest.test_case "h2 unaligned boundary cards sticky" `Quick
      test_h2_sticky_boundary_cards;
    Alcotest.test_case "h2 aligned boundary cards cleanable" `Quick
      test_h2_aligned_boundary_cards_clean;
    Alcotest.test_case "h2 clear_range overrides stickiness" `Quick
      test_h2_clear_range_overrides_sticky;
    Alcotest.test_case "h2 card metadata size" `Quick test_h2_metadata_bytes;
    QCheck_alcotest.to_alcotest prop_h2_non_clean_counter_consistent;
  ]
