(* Unit and property tests for the simulation substrate: Vec, Prng,
   Clock, Size, Costs. *)

open Th_sim

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" 198 (Vec.get v 99)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 3))

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.(check (option int)) "pop 2" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "empty" None (Vec.pop v)

let test_vec_filter_in_place () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens kept in order" [ 2; 4; 6 ] (Vec.to_list v)

let test_vec_swap_remove () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Vec.swap_remove v 0;
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check int) "last moved into slot" 4 (Vec.get v 0)

let prop_vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let prop_vec_filter_models_list =
  QCheck.Test.make ~name:"vec filter_in_place = List.filter" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let v = Vec.of_list l in
      Vec.filter_in_place (fun x -> x mod 3 <> 0) v;
      Vec.to_list v = List.filter (fun x -> x mod 3 <> 0) l)

let test_prng_deterministic () =
  let a = Prng.create 7L and b = Prng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_split_independent () =
  let a = Prng.create 7L in
  let c = Prng.split a in
  Alcotest.(check bool) "split differs from parent stream" true
    (Prng.int a 1_000_000 <> Prng.int c 1_000_000 || Prng.int a 1_000_000 <> Prng.int c 1_000_000)

let prop_prng_int_in_bounds =
  QCheck.Test.make ~name:"prng int stays within bounds" ~count:500
    QCheck.(pair int64 (int_range 1 10_000))
    (fun (seed, bound) ->
      let p = Prng.create seed in
      let x = Prng.int p bound in
      x >= 0 && x < bound)

let prop_prng_float_in_bounds =
  QCheck.Test.make ~name:"prng float stays within bounds" ~count:500
    QCheck.int64
    (fun seed ->
      let p = Prng.create seed in
      let x = Prng.float p 1.0 in
      x >= 0.0 && x < 1.0)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf rank within range" ~count:500
    QCheck.(triple int64 (int_range 1 1000) (float_range 0.0 2.0))
    (fun (seed, n, theta) ->
      let p = Prng.create seed in
      let r = Prng.zipf_rank p ~n ~theta in
      r >= 0 && r < n)

let test_pareto_min () =
  let p = Prng.create 3L in
  for _ = 1 to 200 do
    Alcotest.(check bool) "pareto >= x_min" true
      (Prng.pareto p ~alpha:1.5 ~x_min:4.0 >= 4.0)
  done

let test_clock_accumulates () =
  let c = Clock.create () in
  Clock.advance c Clock.Other 100.0;
  Clock.advance c Clock.Minor_gc 50.0;
  Clock.advance c Clock.Major_gc 25.0;
  Clock.advance c Clock.Serde_io 10.0;
  Alcotest.(check (float 1e-9)) "total" 185.0 (Clock.now_ns c);
  let b = Clock.breakdown c in
  Alcotest.(check (float 1e-9)) "other" 100.0 b.Clock.other_ns;
  Alcotest.(check (float 1e-9)) "minor" 50.0 b.Clock.minor_gc_ns

let test_clock_rejects_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative charge"
    (Invalid_argument "Clock.advance: negative charge") (fun () ->
      Clock.advance c Clock.Other (-1.0))

let test_clock_sub () =
  let c = Clock.create () in
  Clock.advance c Clock.Other 10.0;
  let before = Clock.breakdown c in
  Clock.advance c Clock.Other 7.0;
  let d = Clock.sub (Clock.breakdown c) before in
  Alcotest.(check (float 1e-9)) "delta" 7.0 d.Clock.other_ns

let test_size_conversions () =
  Alcotest.(check int) "kib" 2048 (Size.kib 2);
  Alcotest.(check int) "mib" (1024 * 1024) (Size.mib 1);
  Alcotest.(check int) "paper gb = mib" (Size.mib 80) (Size.paper_gb 80);
  Alcotest.(check string) "pp" "1.5 MiB" (Size.to_string (Size.kib 1536))

let test_costs_parallel () =
  let c = Costs.default in
  Alcotest.(check (float 1e-9)) "single thread unchanged" 100.0
    (Costs.parallel c ~threads:1 100.0);
  Alcotest.(check bool) "16 threads faster" true
    (Costs.parallel c ~threads:16 100.0 < 10.0)

let suite =
  [
    Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
    Alcotest.test_case "vec bounds checks" `Quick test_vec_bounds;
    Alcotest.test_case "vec pop" `Quick test_vec_pop;
    Alcotest.test_case "vec filter_in_place" `Quick test_vec_filter_in_place;
    Alcotest.test_case "vec swap_remove" `Quick test_vec_swap_remove;
    QCheck_alcotest.to_alcotest prop_vec_roundtrip;
    QCheck_alcotest.to_alcotest prop_vec_filter_models_list;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split independent" `Quick
      test_prng_split_independent;
    QCheck_alcotest.to_alcotest prop_prng_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_prng_float_in_bounds;
    QCheck_alcotest.to_alcotest prop_zipf_in_range;
    Alcotest.test_case "pareto respects x_min" `Quick test_pareto_min;
    Alcotest.test_case "clock accumulates per category" `Quick
      test_clock_accumulates;
    Alcotest.test_case "clock rejects negative charges" `Quick
      test_clock_rejects_negative;
    Alcotest.test_case "clock sub" `Quick test_clock_sub;
    Alcotest.test_case "size conversions" `Quick test_size_conversions;
    Alcotest.test_case "costs parallel scaling" `Quick test_costs_parallel;
  ]
