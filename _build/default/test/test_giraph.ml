(* Tests for the mini-Giraph framework: graph loading, message stores,
   the out-of-core scheduler, and the BSP engine end to end. *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Runtime = Th_psgc.Runtime
module Device = Th_device.Device
module Graph = Th_giraph.Graph
module Msg_store = Th_giraph.Msg_store
module Ooc = Th_giraph.Ooc
module Engine = Th_giraph.Engine

let fresh_rt ?(heap_bytes = Size.mib 32) ?h2 () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes () in
  match h2 with
  | Some true ->
      let device = Device.create clock Device.Nvme_ssd in
      let h2 =
        H2.create ~config:H2.default_config ~clock ~costs:Costs.default
          ~device ~dr2_bytes:(Size.mib 8) ()
      in
      (Runtime.create ~h2 ~clock ~costs:Costs.default ~heap (), Some h2)
  | _ -> (Runtime.create ~clock ~costs:Costs.default ~heap (), None)

let load rt ?(vertices = 400) ?(partitions = 4) ?(on_vertex = fun _ -> ()) () =
  Graph.load rt ~prng:(Prng.create 11L) ~partitions ~vertices ~avg_degree:8
    ~edge_bytes:16 ~on_vertex_loaded:on_vertex ()

let test_graph_load_structure () =
  let rt, _ = fresh_rt () in
  let g = load rt () in
  Alcotest.(check int) "partitions" 4 (Array.length g.Graph.partitions);
  Alcotest.(check int) "vertices" 400
    (Array.fold_left
       (fun acc p -> acc + Array.length p.Graph.vertices)
       0 g.Graph.partitions);
  Alcotest.(check bool) "edges counted" true (g.Graph.total_edges > 400);
  (* Every vertex has its value object linked under the partition and its
     out-edges array linked under the vertex. *)
  Graph.iter_vertices g (fun p v ->
      Alcotest.(check bool) "vobj under partition" true
        (List.memq v.Graph.vobj (Obj_.refs_list p.Graph.pobj));
      Alcotest.(check bool) "edges under vobj" true
        (List.memq v.Graph.edges_obj (Obj_.refs_list v.Graph.vobj)))

let test_graph_survives_gc () =
  let rt, _ = fresh_rt () in
  let g = load rt () in
  Runtime.major_gc rt;
  Graph.iter_vertices g (fun _ v ->
      Alcotest.(check bool) "vertex alive" false (Obj_.is_freed v.Graph.vobj))

let test_msg_store_append_consume () =
  let rt, _ = fresh_rt () in
  let anchor = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt anchor;
  let store = Msg_store.create rt ~anchor ~superstep:1 in
  Msg_store.append rt store ~bytes:(Size.kib 200) ~on_chunk_created:(fun _ -> ());
  Alcotest.(check int) "bytes tracked" (Size.kib 200) store.Msg_store.bytes;
  Alcotest.(check bool) "chunked into 64KiB arrays" true
    (Vec.length store.Msg_store.chunks = 4);
  Msg_store.consume rt store;
  Msg_store.drop rt store ~anchor;
  Runtime.major_gc rt;
  Vec.iter
    (fun c -> Alcotest.(check bool) "chunks reclaimed" true (Obj_.is_freed c))
    store.Msg_store.chunks

let test_msg_store_spill_stream () =
  let rt, _ = fresh_rt () in
  let clock = Runtime.clock rt in
  let device = Device.create clock Device.Nvme_ssd in
  let cache =
    Th_device.Page_cache.create ~capacity_bytes:(Size.kib 256) clock device
  in
  let anchor = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt anchor;
  let store = Msg_store.create rt ~anchor ~superstep:1 in
  Msg_store.append rt store ~bytes:(Size.kib 512) ~on_chunk_created:(fun _ -> ());
  let written = Msg_store.offload rt store ~cache ~offset:0 in
  Alcotest.(check bool) "spilled all chunks" true (written >= Size.kib 512);
  Alcotest.(check int) "nothing resident" 0 (Vec.length store.Msg_store.chunks);
  (* Streamed consumption reads the spill back without re-anchoring it. *)
  Msg_store.consume_streamed rt store ~cache;
  Alcotest.(check bool) "device read back" true
    ((Device.stats device).Device.bytes_read >= Size.kib 512)

let test_msg_store_partial_spill_keeps_tail () =
  let rt, _ = fresh_rt () in
  let clock = Runtime.clock rt in
  let device = Device.create clock Device.Nvme_ssd in
  let cache =
    Th_device.Page_cache.create ~capacity_bytes:(Size.kib 256) clock device
  in
  let anchor = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt anchor;
  let store = Msg_store.create rt ~anchor ~superstep:1 in
  Msg_store.append rt store ~bytes:(Size.kib 512) ~on_chunk_created:(fun _ -> ());
  ignore (Msg_store.spill rt store ~cache ~offset:0 ~keep_chunks:2);
  Alcotest.(check int) "open tail stays resident" 2
    (Vec.length store.Msg_store.chunks)

let test_ooc_budget_enforced () =
  let rt, _ = fresh_rt () in
  let g = load rt ~vertices:800 ~partitions:8 () in
  let device = Device.create (Runtime.clock rt) Device.Nvme_ssd in
  let ooc =
    Ooc.create rt ~device ~dr2_bytes:(Size.kib 512) ~threshold:0.0
  in
  Array.iter (Ooc.note_processed ooc) g.Graph.partitions;
  Ooc.enforce_budget ooc g ~max_resident:3;
  Th_device.Page_cache.flush (Ooc.page_cache ooc) ~cat:Clock.Other;
  let resident =
    Array.fold_left
      (fun n (p : Graph.partition) ->
        if p.Graph.offloaded_edge_bytes = 0 then n + 1 else n)
      0 g.Graph.partitions
  in
  Alcotest.(check int) "at most 3 resident" 3 resident;
  Alcotest.(check bool) "edges written once" true
    ((Device.stats device).Device.bytes_written > 0)

let test_ooc_reload_and_reoffload_free () =
  let rt, _ = fresh_rt () in
  let g = load rt ~vertices:800 ~partitions:8 () in
  let device = Device.create (Runtime.clock rt) Device.Nvme_ssd in
  let ooc = Ooc.create rt ~device ~dr2_bytes:(Size.kib 64) ~threshold:0.0 in
  Array.iter (Ooc.note_processed ooc) g.Graph.partitions;
  Ooc.enforce_budget ooc g ~max_resident:0;
  Th_device.Page_cache.flush (Ooc.page_cache ooc) ~cat:Clock.Other;
  let written_once = (Device.stats device).Device.bytes_written in
  let p = g.Graph.partitions.(0) in
  Ooc.ensure_resident ooc g p;
  Alcotest.(check int) "resident again" 0 p.Graph.offloaded_edge_bytes;
  Ooc.note_processed ooc p;
  Ooc.enforce_budget ooc g ~max_resident:0;
  Th_device.Page_cache.flush (Ooc.page_cache ooc) ~cat:Clock.Other;
  (* Edges are immutable: re-offloading a reloaded partition writes
     nothing new. *)
  Alcotest.(check int) "no second write of immutable edges" written_once
    (Device.stats device).Device.bytes_written

let tiny_algo =
  {
    Engine.name = "tiny";
    supersteps = 4;
    message_bytes = (fun ~superstep:_ ~total_edges -> total_edges * 4);
    combine_factor = 2.0;
    active_fraction = (fun ~superstep:_ -> 1.0);
    update_fraction = 0.5;
  }

let tiny_params =
  { Engine.partitions = 4; vertices = 400; avg_degree = 8; edge_bytes = 16 }

let test_engine_in_memory () =
  let rt, _ = fresh_rt () in
  let r =
    Engine.run rt ~mode:Engine.In_memory ~prng:(Prng.create 5L)
      ~algo:tiny_algo tiny_params
  in
  Alcotest.(check int) "all supersteps ran" 4 r.Engine.supersteps_run;
  Alcotest.(check bool) "messages flowed" true
    (r.Engine.total_messages_bytes > 0)

(* Message-heavy variant: enough per-superstep volume to force in-run
   collections, so message regions move to H2 and die superstep by
   superstep. *)
let pressure_algo =
  {
    tiny_algo with
    Engine.supersteps = 6;
    message_bytes = (fun ~superstep:_ ~total_edges -> total_edges * 400);
    combine_factor = 1.0;
  }

let test_engine_teraheap_moves_edges_and_messages () =
  let rt, h2 = fresh_rt ~heap_bytes:(Size.mib 4) ~h2:true () in
  let (_ : Engine.result) =
    Engine.run rt ~mode:Engine.Teraheap ~prng:(Prng.create 5L)
      ~algo:pressure_algo tiny_params
  in
  (* Dropped message stores become dead regions at the next full GC. *)
  Runtime.major_gc rt;
  match h2 with
  | None -> Alcotest.fail "expected H2"
  | Some h2 ->
      let s = H2.stats h2 in
      Alcotest.(check bool) "objects moved to H2" true (s.H2.moves_to_h2 > 0);
      Alcotest.(check bool) "consumed message regions reclaimed" true
        (s.H2.regions_reclaimed > 0)

let test_engine_ooc_offloads () =
  let rt, _ = fresh_rt ~heap_bytes:(Size.mib 6) () in
  let device = Device.create (Runtime.clock rt) Device.Nvme_ssd in
  let (_ : Engine.result) =
    Engine.run rt
      ~mode:(Engine.Out_of_core { threshold = 0.5 })
      ~ooc_device:device ~ooc_dr2:(Size.kib 512) ~prng:(Prng.create 5L)
      ~algo:tiny_algo
      { tiny_params with Engine.vertices = 20_000 }
  in
  Alcotest.(check bool) "device traffic from offloading" true
    ((Device.stats device).Device.bytes_written > 0)

let suite =
  [
    Alcotest.test_case "graph load structure" `Quick test_graph_load_structure;
    Alcotest.test_case "graph survives GC" `Quick test_graph_survives_gc;
    Alcotest.test_case "message store append/consume/drop" `Quick
      test_msg_store_append_consume;
    Alcotest.test_case "message store spill + streamed consume" `Quick
      test_msg_store_spill_stream;
    Alcotest.test_case "partial spill keeps the open tail" `Quick
      test_msg_store_partial_spill_keeps_tail;
    Alcotest.test_case "out-of-core budget enforced" `Quick
      test_ooc_budget_enforced;
    Alcotest.test_case "immutable edges written to device once" `Quick
      test_ooc_reload_and_reoffload_free;
    Alcotest.test_case "engine runs in-memory" `Quick test_engine_in_memory;
    Alcotest.test_case "engine + TeraHeap moves edges and messages" `Quick
      test_engine_teraheap_moves_edges_and_messages;
    Alcotest.test_case "engine + out-of-core offloads" `Quick
      test_engine_ooc_offloads;
  ]
