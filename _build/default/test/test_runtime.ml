(* Unit and integration tests for the MiniJVM runtime and the PS collector. *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module Runtime = Th_psgc.Runtime
module Gc_stats = Th_psgc.Gc_stats
module H2 = Th_core.H2
module Device = Th_device.Device

let make_rt ?collector ?(heap_bytes = Size.mib 8) () =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes () in
  Runtime.create ?collector ~clock ~costs ~heap ()

let make_teraheap_rt ?(heap_bytes = Size.mib 8) ?(h2_config = H2.default_config)
    () =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes () in
  let device = Device.create clock Device.Nvme_ssd in
  let h2 =
    H2.create ~config:h2_config ~clock ~costs ~device ~dr2_bytes:(Size.mib 16)
      ()
  in
  (Runtime.create ~h2 ~clock ~costs ~heap (), h2)

let test_alloc_in_eden () =
  let rt = make_rt () in
  let o = Runtime.alloc rt ~size:100 () in
  Alcotest.(check bool) "in eden" true (o.Obj_.loc = Obj_.Eden);
  Alcotest.(check int)
    "eden accounting"
    (Obj_.total_size o)
    (Runtime.heap rt).H1_heap.eden_used

let test_large_object_goes_old () =
  let rt = make_rt () in
  let heap = Runtime.heap rt in
  let big = (heap.H1_heap.eden_capacity / 2) + 1024 in
  let o = Runtime.alloc rt ~kind:Obj_.Array_data ~size:big () in
  Alcotest.(check bool) "in old gen" true (o.Obj_.loc = Obj_.Old)

let test_minor_gc_reclaims_garbage () =
  let rt = make_rt () in
  let heap = Runtime.heap rt in
  (* Fill eden several times over with unreachable objects: allocation
     must keep succeeding thanks to minor GCs. *)
  for _ = 1 to 1000 do
    ignore (Runtime.alloc rt ~size:(Size.kib 8) ())
  done;
  Alcotest.(check bool)
    "minor GCs happened" true
    (Gc_stats.minor_count (Runtime.stats rt) > 0);
  Alcotest.(check bool)
    "old gen stayed small" true
    (heap.H1_heap.old_used < heap.H1_heap.old_capacity / 4)

let test_live_objects_survive_minor_gc () =
  let rt = make_rt () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  let kept = Runtime.alloc rt ~size:128 () in
  Runtime.write_ref rt holder kept;
  Runtime.minor_gc rt;
  Alcotest.(check bool) "holder alive" false (Obj_.is_freed holder);
  Alcotest.(check bool) "kept alive" false (Obj_.is_freed kept);
  Alcotest.(check bool) "kept left eden" true (kept.Obj_.loc <> Obj_.Eden)

let test_tenuring_promotes () =
  let rt = make_rt () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  let kept = Runtime.alloc rt ~size:128 () in
  Runtime.write_ref rt holder kept;
  for _ = 1 to (Runtime.heap rt).H1_heap.tenure_threshold + 1 do
    Runtime.minor_gc rt
  done;
  Alcotest.(check bool) "promoted to old" true (kept.Obj_.loc = Obj_.Old)

let test_old_to_young_ref_keeps_young_alive () =
  let rt = make_rt () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  (* Tenure the holder. *)
  for _ = 1 to (Runtime.heap rt).H1_heap.tenure_threshold + 1 do
    Runtime.minor_gc rt
  done;
  Alcotest.(check bool) "holder tenured" true (holder.Obj_.loc = Obj_.Old);
  (* Store an old->young reference; the write barrier must dirty a card
     so the young target survives minor GC. *)
  let young = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt holder young;
  Runtime.minor_gc rt;
  Alcotest.(check bool) "young target alive" false (Obj_.is_freed young)

let test_major_gc_compacts_old_gen () =
  let rt = make_rt () in
  let heap = Runtime.heap rt in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  (* Create old-generation garbage: tenured objects that later die. *)
  let doomed = ref [] in
  for _ = 1 to 20 do
    let o = Runtime.alloc rt ~size:(Size.kib 4) () in
    Runtime.write_ref rt holder o;
    doomed := o :: !doomed
  done;
  for _ = 1 to heap.H1_heap.tenure_threshold + 1 do
    Runtime.minor_gc rt
  done;
  List.iter (fun o -> Runtime.unlink_ref rt holder o) !doomed;
  let used_before = heap.H1_heap.old_used in
  Runtime.major_gc rt;
  Alcotest.(check bool)
    "old gen shrank" true
    (heap.H1_heap.old_used < used_before);
  List.iter
    (fun o -> Alcotest.(check bool) "doomed freed" true (Obj_.is_freed o))
    !doomed;
  Alcotest.(check bool) "holder survived" false (Obj_.is_freed holder);
  Alcotest.(check int)
    "old_used equals old_top after compaction" heap.H1_heap.old_used
    heap.H1_heap.old_top

let test_oom_raised () =
  let rt = make_rt ~heap_bytes:(Size.mib 2) () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  let blew_up =
    try
      for _ = 1 to 10_000 do
        let o = Runtime.alloc rt ~size:(Size.kib 16) () in
        Runtime.write_ref rt holder o
      done;
      false
    with Runtime.Out_of_memory _ -> true
  in
  Alcotest.(check bool) "OOM raised" true blew_up

let test_h2_move_via_hints () =
  let rt, h2 = make_teraheap_rt () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  (* A partition-like group: a root key-object referencing elements. *)
  let part = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt holder part;
  let elems =
    List.init 50 (fun _ ->
        let e = Runtime.alloc rt ~size:(Size.kib 1) () in
        Runtime.write_ref rt part e;
        e)
  in
  Runtime.h2_tag_root rt part ~label:7;
  Runtime.h2_move rt ~label:7;
  Runtime.major_gc rt;
  Alcotest.(check bool) "root key-object in H2" true
    (part.Obj_.loc = Obj_.In_h2);
  List.iter
    (fun e ->
      Alcotest.(check bool) "closure element in H2" true
        (e.Obj_.loc = Obj_.In_h2))
    elems;
  Alcotest.(check bool) "same label regions" true
    (List.for_all (fun e -> e.Obj_.label = 7) elems);
  let s = H2.stats h2 in
  Alcotest.(check bool) "objects moved" true (s.H2.moves_to_h2 >= 51)

let test_h2_fences_gc () =
  let rt, _h2 = make_teraheap_rt () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  let part = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt holder part;
  Runtime.h2_tag_root rt part ~label:1;
  Runtime.h2_move rt ~label:1;
  Runtime.major_gc rt;
  (* The H2 object stays alive across GCs even though the collector never
     scans it. *)
  Runtime.minor_gc rt;
  Runtime.major_gc rt;
  Alcotest.(check bool) "H2 object not freed" false (Obj_.is_freed part)

let test_h2_region_reclaimed_when_unreferenced () =
  let rt, h2 = make_teraheap_rt () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  let part = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt holder part;
  let elem = Runtime.alloc rt ~size:512 () in
  Runtime.write_ref rt part elem;
  Runtime.h2_tag_root rt part ~label:3;
  Runtime.h2_move rt ~label:3;
  Runtime.major_gc rt;
  Alcotest.(check bool) "moved" true (part.Obj_.loc = Obj_.In_h2);
  (* Drop the only H1 reference; two major GCs later the region is gone
     (liveness is computed during marking, reclamation frees it). *)
  Runtime.unlink_ref rt holder part;
  Runtime.major_gc rt;
  let s = H2.stats h2 in
  Alcotest.(check bool) "region reclaimed" true (s.H2.regions_reclaimed >= 1);
  Alcotest.(check bool) "objects freed in bulk" true (Obj_.is_freed part);
  Alcotest.(check bool) "closure freed too" true (Obj_.is_freed elem)

let test_backward_ref_protects_h1_object () =
  let rt, h2 = make_teraheap_rt () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  let part = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt holder part;
  Runtime.h2_tag_root rt part ~label:9;
  Runtime.h2_move rt ~label:9;
  Runtime.major_gc rt;
  (* Create a backward reference H2 -> H1 young object; it must survive
     GC even though nothing in H1 references it. *)
  let young = Runtime.alloc rt ~size:128 () in
  Runtime.write_ref rt part young;
  Runtime.minor_gc rt;
  Alcotest.(check bool) "young kept by backward ref" false
    (Obj_.is_freed young);
  Runtime.major_gc rt;
  Alcotest.(check bool) "survives major too" false (Obj_.is_freed young);
  ignore h2

let test_threshold_moves_without_hint () =
  let cfg =
    { H2.default_config with H2.use_move_hint = false; H2.low_threshold = None }
  in
  let rt, h2 = make_teraheap_rt ~heap_bytes:(Size.mib 4) ~h2_config:cfg () in
  let holder = Runtime.alloc rt ~size:64 () in
  Runtime.add_root rt holder;
  (* Tag a large group but never call h2_move: pressure must trigger the
     transfer once H1 live occupancy crosses the high threshold. *)
  let part = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt holder part;
  for _ = 1 to 400 do
    let e = Runtime.alloc rt ~size:(Size.kib 8) () in
    Runtime.write_ref rt part e
  done;
  Runtime.h2_tag_root rt part ~label:5;
  (* Keep allocating garbage so GCs keep firing; pressure should move the
     tagged group eventually. *)
  (try
     for _ = 1 to 2000 do
       ignore (Runtime.alloc rt ~size:(Size.kib 8) ())
     done
   with Runtime.Out_of_memory _ -> ());
  Alcotest.(check bool) "moved under pressure" true
    (part.Obj_.loc = Obj_.In_h2);
  ignore h2

let suite =
  [
    Alcotest.test_case "alloc lands in eden" `Quick test_alloc_in_eden;
    Alcotest.test_case "large objects go directly old" `Quick
      test_large_object_goes_old;
    Alcotest.test_case "minor GC reclaims garbage" `Quick
      test_minor_gc_reclaims_garbage;
    Alcotest.test_case "live objects survive minor GC" `Quick
      test_live_objects_survive_minor_gc;
    Alcotest.test_case "tenuring promotes to old" `Quick test_tenuring_promotes;
    Alcotest.test_case "card table keeps old->young targets" `Quick
      test_old_to_young_ref_keeps_young_alive;
    Alcotest.test_case "major GC compacts old gen" `Quick
      test_major_gc_compacts_old_gen;
    Alcotest.test_case "OOM raised when heap exhausted" `Quick test_oom_raised;
    Alcotest.test_case "h2_tag_root + h2_move transfers closure" `Quick
      test_h2_move_via_hints;
    Alcotest.test_case "H2 objects fenced from GC" `Quick test_h2_fences_gc;
    Alcotest.test_case "dead H2 regions reclaimed in bulk" `Quick
      test_h2_region_reclaimed_when_unreferenced;
    Alcotest.test_case "backward refs protect H1 objects" `Quick
      test_backward_ref_protects_h1_object;
    Alcotest.test_case "high threshold moves without hint" `Quick
      test_threshold_moves_without_hint;
  ]
