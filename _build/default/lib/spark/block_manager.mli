(** The Spark block manager (Figure 4).

    Holds every cached partition in a hashmap whose root object is a GC
    root. Depending on the context's cache mode a partition is kept
    on-heap (deserialized), serialized to the off-heap device cache, or
    tagged and advised for movement to H2. *)

type entry_kind = On_heap | Off_heap | In_teraheap

type t

val create : Context.t -> t

val root_object : t -> Th_objmodel.Heap_object.t

val put :
  t ->
  rdd_id:int ->
  pidx:int ->
  Th_objmodel.Heap_object.t ->
  unit
(** Cache a freshly built partition group (root key-object). Spark-SD
    serializes it to the device once the on-heap budget is exhausted, in
    which case the heap copy becomes garbage. TeraHeap mode executes
    [h2_tag_root] (label = RDD id) and [h2_move]. *)

val get :
  ?hold:bool ->
  t ->
  rdd_id:int ->
  pidx:int ->
  consume:(Th_objmodel.Heap_object.t -> unit) ->
  unit
(** Access a cached partition. Off-heap entries are read back and
    deserialized into fresh heap objects which become garbage after
    [consume] — or, with [hold], stay live until {!release_held} (stage
    end), the behaviour that promotes them into the old generation under
    minor-GC pressure. On-heap and H2 entries are consumed in place.
    Raises [Not_found] for unknown blocks. *)

val release_held : t -> unit
(** Drop all groups held by [get ~hold:true]. *)

val entry_kind : t -> rdd_id:int -> pidx:int -> entry_kind option

val unpersist : t -> rdd_id:int -> unit
(** Drop all blocks of an RDD: on-heap and H2 groups become unreachable;
    off-heap bytes are forgotten. *)

val onheap_used : t -> int

val cached_blocks : t -> int
