(** Resilient-distributed-dataset model.

    An RDD is a logical collection split into partitions; a materialised
    partition is a group of heap objects with a single root (the
    partition descriptor), exactly the "group of objects with a
    single-entry root reference" the paper's hint interface relies on.

    Two layouts mirror the workload families:
    - [Chunked]: many row objects of [elem_size] bytes (GraphX/MLlib
      deserialized caches);
    - [Columnar]: one large backing array per partition plus a few row
      descriptors — the humongous-object layout that fragments G1
      (§7.1). *)

type layout = Chunked | Columnar

type t = {
  id : int;
  partitions : int;
  elems_per_partition : int;
  elem_size : int;
  layout : layout;
}

val create :
  Context.t ->
  ?layout:layout ->
  partitions:int ->
  elems_per_partition:int ->
  elem_size:int ->
  unit ->
  t

val of_dataset :
  Context.t ->
  ?layout:layout ->
  ?partitions:int ->
  ?elem_size:int ->
  bytes:int ->
  unit ->
  t
(** Shape an RDD holding [bytes] of data (default 16 partitions, 1 KiB
    elements). *)

val columnar_batch_bytes : int
(** Size of one columnar backing array (192 KiB): about 1.5–3 G1 regions
    at the simulated heap sizes, the humongous-object geometry of §7.1. *)

val partition_bytes : t -> int
(** Approximate heap bytes of one materialised partition. *)

val dataset_bytes : t -> int

val build_partition : Context.t -> t -> Th_objmodel.Heap_object.t
(** Materialise one partition: allocate the descriptor and its elements
    (charging build compute) and return the root, {e pinned} as a GC root
    while under construction. The caller must
    {!Th_psgc.Runtime.remove_root} it once anchored (e.g. cached in the
    block manager) or abandoned. *)

val iter_elements :
  Context.t -> Th_objmodel.Heap_object.t ->
  f:(Th_objmodel.Heap_object.t -> unit) -> unit
(** Visit the element objects of a materialised partition group. *)

val read_partition : Context.t -> Th_objmodel.Heap_object.t -> unit
(** Touch every element (streaming read: compute + page faults if the
    group lives in H2). *)
