lib/spark/block_manager.mli: Context Th_objmodel
