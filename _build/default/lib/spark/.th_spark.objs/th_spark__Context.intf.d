lib/spark/context.mli: Th_device Th_psgc Th_sim
