lib/spark/rdd.mli: Context Th_objmodel
