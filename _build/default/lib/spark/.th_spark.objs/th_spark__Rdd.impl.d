lib/spark/rdd.ml: Context Th_objmodel Th_psgc Th_sim
