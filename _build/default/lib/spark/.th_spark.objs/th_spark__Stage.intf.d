lib/spark/stage.mli: Context
