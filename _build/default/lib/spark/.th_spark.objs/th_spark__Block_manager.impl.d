lib/spark/block_manager.ml: Clock Context Hashtbl List Option Th_device Th_minijvm Th_objmodel Th_psgc Th_serde Th_sim
