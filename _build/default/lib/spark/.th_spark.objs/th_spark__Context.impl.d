lib/spark/context.ml: Prng Size Th_device Th_psgc Th_sim
