(** Mini-Spark execution context.

    Ties a MiniJVM runtime to a cache mode (how [persist()] stores
    partitions) and, for the off-heap modes, a device-backed serialized
    cache. The three modes mirror Table 2:

    - [Memory_and_ser_offheap]: Spark-SD — deserialized partitions on-heap
      up to a budget (50 % of the heap), the rest serialized on the
      device;
    - [Memory_only]: all partitions deserialized on-heap (Spark-MO places
      this heap on NVM in Memory mode via a cost profile);
    - [Teraheap_cache]: partitions are tagged root key-objects moved to H2
      through the hint interface (Figure 4). *)

type cache_mode =
  | Memory_and_ser_offheap of { onheap_fraction : float }
  | Memory_only
  | Teraheap_cache

type t = {
  rt : Th_psgc.Runtime.t;
  mode : cache_mode;
  offheap : Th_device.Page_cache.t option;
      (** serialized off-heap cache (Spark-SD only) *)
  prng : Th_sim.Prng.t;
  mutable next_rdd_id : int;
}

val create :
  ?offheap_device:Th_device.Device.t ->
  ?offheap_dr2:int ->
  mode:cache_mode ->
  Th_psgc.Runtime.t ->
  t
(** [offheap_dr2] is the page-cache DRAM in front of the off-heap cache
    device (defaults to 16 "GB" scaled, the paper's DR2 for Spark). *)

val fresh_rdd_id : t -> int

val runtime : t -> Th_psgc.Runtime.t
