(** Stage execution: the executor-side allocation behaviour around a unit
    of work.

    Each mutator thread holds a working buffer for the duration of a
    stage (task deserialization buffers, sort buffers, ...), which is why
    more executor threads raise the live in-flight footprint and with it
    the GC cost (§7.6). Shuffles serialize a byte volume through Kryo on
    both the map and reduce sides and produce short-lived records. *)

val run :
  Context.t ->
  ?shuffle_bytes:int ->
  ?transient_bytes:int ->
  ?thread_buffer_bytes:int ->
  work:(unit -> unit) ->
  unit ->
  unit
(** [run ctx ~work ()] pins one [thread_buffer_bytes] buffer per mutator
    thread (default 256 KiB), executes [work], charges the shuffle S/D
    stream, allocates [transient_bytes] of immediately-dead records, and
    unpins the buffers. *)

val alloc_garbage : Context.t -> bytes:int -> unit
(** Allocate short-lived objects totalling [bytes] that die immediately. *)
