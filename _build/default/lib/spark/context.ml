open Th_sim
module Runtime = Th_psgc.Runtime
module Device = Th_device.Device
module Page_cache = Th_device.Page_cache

type cache_mode =
  | Memory_and_ser_offheap of { onheap_fraction : float }
  | Memory_only
  | Teraheap_cache

type t = {
  rt : Runtime.t;
  mode : cache_mode;
  offheap : Page_cache.t option;
  prng : Prng.t;
  mutable next_rdd_id : int;
}

let create ?offheap_device ?(offheap_dr2 = Size.paper_gb 16) ~mode rt =
  let offheap =
    match (mode, offheap_device) with
    | Memory_and_ser_offheap _, Some device ->
        Some
          (Page_cache.create ~capacity_bytes:offheap_dr2 (Runtime.clock rt)
             device)
    | Memory_and_ser_offheap _, None ->
        invalid_arg "Context.create: Spark-SD needs an off-heap device"
    | (Memory_only | Teraheap_cache), _ -> None
  in
  { rt; mode; offheap; prng = Prng.create 0x5EEDL; next_rdd_id = 0 }

let fresh_rdd_id t =
  let id = t.next_rdd_id in
  t.next_rdd_id <- id + 1;
  id

let runtime t = t.rt
