module Obj_ = Th_objmodel.Heap_object
module Runtime = Th_psgc.Runtime

type layout = Chunked | Columnar

type t = {
  id : int;
  partitions : int;
  elems_per_partition : int;
  elem_size : int;
  layout : layout;
}

let create ctx ?(layout = Chunked) ~partitions ~elems_per_partition ~elem_size
    () =
  if partitions <= 0 || elems_per_partition <= 0 || elem_size <= 0 then
    invalid_arg "Rdd.create: sizes must be positive";
  { id = Context.fresh_rdd_id ctx; partitions; elems_per_partition; elem_size; layout }

let of_dataset ctx ?layout ?(partitions = 16) ?(elem_size = 1024) ~bytes () =
  let elems_per_partition = max 1 (bytes / partitions / elem_size) in
  create ctx ?layout ~partitions ~elems_per_partition ~elem_size ()

let descriptor_bytes = 256

let columnar_batch_bytes = Th_sim.Size.kib 192

let partition_bytes t =
  descriptor_bytes + (t.elems_per_partition * t.elem_size)

let dataset_bytes t = t.partitions * partition_bytes t

let build_partition ctx t =
  let rt = Context.runtime ctx in
  let root = Runtime.alloc rt ~size:descriptor_bytes () in
  (* Pinned while under construction; the caller unpins once the group is
     anchored (e.g. in the block manager) or abandoned. *)
  Runtime.add_root rt root;
  (match t.layout with
  | Chunked ->
      for _ = 1 to t.elems_per_partition do
        let e = Runtime.alloc rt ~size:t.elem_size () in
        Runtime.write_ref rt root e
      done
  | Columnar ->
      (* Columnar batches: large backing arrays sized like Spark SQL /
         MLlib column chunks. Each straddles G1 regions, wasting the tail
         of its last humongous region (§7.1). *)
      let total = t.elems_per_partition * t.elem_size in
      let batch = columnar_batch_bytes in
      let n = max 1 (total / batch) in
      for _ = 1 to n do
        let backing = Runtime.alloc rt ~kind:Obj_.Array_data ~size:batch () in
        Runtime.write_ref rt root backing
      done;
      let rem = total - (n * batch) in
      if rem > 0 then begin
        let backing = Runtime.alloc rt ~kind:Obj_.Array_data ~size:rem () in
        Runtime.write_ref rt root backing
      end);
  Runtime.compute rt ~bytes:(partition_bytes t);
  root

let iter_elements _ctx root ~f = Obj_.iter_refs f root

let read_partition ctx root =
  let rt = Context.runtime ctx in
  Runtime.read_obj rt root;
  Obj_.iter_refs (Runtime.read_obj rt) root
