module Runtime = Th_psgc.Runtime
module Gc_stats = Th_psgc.Gc_stats
module H2 = Th_core.H2
module Device = Th_device.Device
module Heap_census = Th_psgc.Heap_census

type t = {
  label : string;
  breakdown : Th_sim.Clock.breakdown option;
  oom_reason : string option;
  minor_gcs : int;
  major_gcs : int;
  h2_stats : H2.stats option;
  gc_stats : Gc_stats.t option;
  h2_device : Device.stats option;
  census : Heap_census.entry list option;
      (* live-heap composition captured at OOM *)
}

let ok ~label rt ?h2_device () =
  let stats = Runtime.stats rt in
  {
    label;
    breakdown = Some (Th_sim.Clock.breakdown (Runtime.clock rt));
    oom_reason = None;
    minor_gcs = Gc_stats.minor_count stats;
    major_gcs = Gc_stats.major_count stats;
    h2_stats = Option.map H2.stats (Runtime.h2 rt);
    gc_stats = Some stats;
    h2_device = Option.map Device.stats h2_device;
    census = None;
  }

let oom ?reason ~label rt =
  let stats = Runtime.stats rt in
  {
    label;
    breakdown = None;
    oom_reason = reason;
    minor_gcs = Gc_stats.minor_count stats;
    major_gcs = Gc_stats.major_count stats;
    h2_stats = Option.map H2.stats (Runtime.h2 rt);
    gc_stats = Some stats;
    h2_device = None;
    census = Some (Heap_census.of_runtime rt);
  }

let to_report_row t =
  match t.breakdown with
  | Some b -> Th_metrics.Report.row t.label b
  | None -> Th_metrics.Report.oom t.label
