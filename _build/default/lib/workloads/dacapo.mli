(** A DaCapo-style micro-suite of mutation-heavy synthetic programs.

    The paper evaluates the post-write-barrier overhead of
    [EnableTeraHeap] with the DaCapo benchmarks, reporting a mean
    overhead within 3 % (§4). This module provides four programs with
    distinct reference-mutation patterns to reproduce that measurement:
    each executes the same simulated work with and without TeraHeap
    enabled, so the delta isolates the extra range check in the barrier. *)

type benchmark = {
  name : string;
  run : Th_psgc.Runtime.t -> unit;
}

val mesh_rewrite : benchmark
(** A fixed object mesh whose edges are rewritten randomly (xalan-like
    pointer churn). *)

val lru_cache : benchmark
(** A bounded map with continuous insert/evict traffic (h2-like). *)

val tree_rebuild : benchmark
(** Builds and discards binary trees (the classic GC stress pattern). *)

val producer_consumer : benchmark
(** A bounded queue of short-lived records flowing through pinned
    endpoints (tradebeans-like). *)

val all : benchmark list

val overhead :
  benchmark -> (float * int)
(** [overhead b] runs [b] twice on fresh 64 MiB runtimes — vanilla, then
    with TeraHeap enabled — and returns the relative time overhead along
    with the number of post-write barriers executed. *)
