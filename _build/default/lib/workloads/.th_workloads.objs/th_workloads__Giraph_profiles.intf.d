lib/workloads/giraph_profiles.mli: Th_giraph
