lib/workloads/spark_profiles.ml: List String Th_spark
