lib/workloads/dacapo.mli: Th_psgc
