lib/workloads/dacapo.ml: Array Clock Costs Prng Queue Size Th_core Th_device Th_minijvm Th_objmodel Th_psgc Th_sim
