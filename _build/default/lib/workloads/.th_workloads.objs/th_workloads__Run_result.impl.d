lib/workloads/run_result.ml: Option Th_core Th_device Th_metrics Th_psgc Th_sim
