lib/workloads/spark_driver.ml: List Run_result Size Spark_profiles Th_core Th_psgc Th_sim Th_spark
