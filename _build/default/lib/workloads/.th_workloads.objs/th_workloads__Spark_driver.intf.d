lib/workloads/spark_driver.mli: Run_result Spark_profiles Th_spark
