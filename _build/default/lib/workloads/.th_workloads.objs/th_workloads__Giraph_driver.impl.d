lib/workloads/giraph_driver.ml: Giraph_profiles Prng Run_result Size Th_core Th_giraph Th_psgc Th_sim
