lib/workloads/giraph_driver.mli: Giraph_profiles Run_result Th_device Th_giraph Th_psgc
