lib/workloads/spark_profiles.mli: Th_spark
