lib/workloads/giraph_profiles.ml: List Size String Th_giraph Th_sim
