open Th_sim
module Obj_ = Th_objmodel.Heap_object
module H1_heap = Th_minijvm.H1_heap
module Runtime = Th_psgc.Runtime
module H2 = Th_core.H2
module Device = Th_device.Device

type benchmark = { name : string; run : Runtime.t -> unit }

let mesh_rewrite =
  {
    name = "mesh-rewrite";
    run =
      (fun rt ->
        let holder = Runtime.alloc rt ~size:256 () in
        Runtime.add_root rt holder;
        let nodes =
          Array.init 512 (fun _ ->
              let o = Runtime.alloc rt ~size:512 () in
              Runtime.write_ref rt holder o;
              o)
        in
        let prng = Prng.create 42L in
        for _ = 1 to 100_000 do
          let a = nodes.(Prng.int prng 512)
          and b = nodes.(Prng.int prng 512) in
          Runtime.write_ref rt a b;
          Runtime.compute rt ~bytes:256;
          if Obj_.ref_count a > 64 then Runtime.replace_refs rt a [ b ]
        done;
        Runtime.remove_root rt holder);
  }

let lru_cache =
  {
    name = "lru-cache";
    run =
      (fun rt ->
        let table = Runtime.alloc rt ~size:1024 () in
        Runtime.add_root rt table;
        let prng = Prng.create 7L in
        let entries = Queue.create () in
        for _ = 1 to 50_000 do
          let e = Runtime.alloc rt ~size:(256 + Prng.int prng 512) () in
          Runtime.write_ref rt table e;
          Queue.push e entries;
          Runtime.compute rt ~bytes:128;
          if Queue.length entries > 256 then begin
            let victim = Queue.pop entries in
            if not (Obj_.is_freed victim) then
              Runtime.unlink_ref rt table victim
          end
        done;
        Runtime.remove_root rt table);
  }

let tree_rebuild =
  {
    name = "tree-rebuild";
    run =
      (fun rt ->
        let rec build depth =
          let node = Runtime.alloc rt ~size:96 () in
          if depth > 0 then begin
            Runtime.write_ref rt node (build (depth - 1));
            Runtime.write_ref rt node (build (depth - 1))
          end;
          node
        in
        for _ = 1 to 200 do
          let root = build 8 in
          Runtime.add_root rt root;
          Runtime.compute rt ~bytes:4096;
          Runtime.remove_root rt root
        done);
  }

let producer_consumer =
  {
    name = "producer-consumer";
    run =
      (fun rt ->
        let queue_obj = Runtime.alloc rt ~size:512 () in
        Runtime.add_root rt queue_obj;
        let backlog = Queue.create () in
        for _ = 1 to 60_000 do
          let msg = Runtime.alloc rt ~size:200 () in
          Runtime.write_ref rt queue_obj msg;
          Queue.push msg backlog;
          if Queue.length backlog > 64 then begin
            let consumed = Queue.pop backlog in
            if not (Obj_.is_freed consumed) then begin
              Runtime.read_obj rt consumed;
              Runtime.unlink_ref rt queue_obj consumed
            end
          end
        done;
        Runtime.remove_root rt queue_obj);
  }

let all = [ mesh_rewrite; lru_cache; tree_rebuild; producer_consumer ]

let fresh ~teraheap =
  let clock = Clock.create () in
  let costs = Costs.default in
  let heap = H1_heap.create ~heap_bytes:(Size.mib 64) () in
  if teraheap then begin
    let device = Device.create clock Device.Nvme_ssd in
    let h2 =
      H2.create ~config:H2.default_config ~clock ~costs ~device
        ~dr2_bytes:(Size.mib 8) ()
    in
    Runtime.create ~h2 ~clock ~costs ~heap ()
  end
  else Runtime.create ~clock ~costs ~heap ()

let overhead b =
  let time ~teraheap =
    let rt = fresh ~teraheap in
    b.run rt;
    (Clock.total_ns (Clock.breakdown (Runtime.clock rt)), Runtime.barrier_checks rt)
  in
  let base, _ = time ~teraheap:false in
  let th, barriers = time ~teraheap:true in
  ((th -. base) /. base, barriers)
