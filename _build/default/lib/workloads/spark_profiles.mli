(** The ten Spark workloads of §6 (SparkBench), with their Table-3
    configurations and Figure-6 DRAM sweep points.

    All paper capacities are in GB and are scaled by
    {!Th_sim.Size.paper_gb} when instantiated. Behavioural knobs
    (iterations, cached fraction, shuffle intensity, layout, access
    pattern) encode how each workload exercises the compute cache. *)

type t = {
  name : string;
  dataset_gb : int;
  sd_dram_gb : int list;  (** Figure 6 Spark-SD DRAM points, ascending *)
  th_dram_gb : int list;  (** Figure 6 TeraHeap DRAM points *)
  mo_heap_gb : int;  (** Table 3 Spark-MO heap (NVM Memory mode) *)
  iterations : int;
  cached_fraction : float;  (** share of the dataset kept via [persist()] *)
  shuffle_fraction : float;  (** dataset share shuffled per iteration *)
  transient_fraction : float;  (** per-iteration short-lived garbage *)
  layout : Th_spark.Rdd.layout;
  sequential : bool;  (** streaming access; TeraHeap uses huge pages *)
  recache_period : int option;
      (** churn: a new cached RDD generation every [k] iterations *)
  compute_factor : float;
      (** mutator CPU work per byte of cached data touched, relative to
          the base cost model (graph analytics is compute-heavy, ML
          training streams) *)
  stages_per_iter : int;
      (** stages per iteration (GraphX Pregel supersteps span several
          stages; ML training is one stage per iteration) *)
  intermediate_fraction : float;
      (** execution-memory live set per iteration (aggregation buffers,
          candidate sets) as a fraction of the dataset; pinned for the
          iteration, then garbage *)
}

val dr2_gb : int
(** DRAM devoted to the system/page cache in the Spark configurations
    (16 GB, §6). Heap (or H1) is DRAM minus this. *)

val pagerank : t
val connected_components : t
val shortest_path : t
val svd_plus_plus : t
val triangle_counts : t
val linear_regression : t
val logistic_regression : t
val svm : t
val bayes_classifier : t
val rdd_relation : t
val kmeans : t
(** Only evaluated in the Panthera comparison (Figure 12c). *)

val all : t list
(** The ten Figure-6/8/12a/12b workloads (without KMeans). *)

val by_name : string -> t
(** Raises [Not_found] for unknown names. *)
