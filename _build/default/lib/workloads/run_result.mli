(** Outcome of one simulated workload run. *)

type t = {
  label : string;
  breakdown : Th_sim.Clock.breakdown option;  (** [None] marks an OOM *)
  oom_reason : string option;
  minor_gcs : int;
  major_gcs : int;
  h2_stats : Th_core.H2.stats option;
  gc_stats : Th_psgc.Gc_stats.t option;
  h2_device : Th_device.Device.stats option;
  census : Th_psgc.Heap_census.entry list option;
      (** live-heap composition captured at OOM *)
}

val ok :
  label:string ->
  Th_psgc.Runtime.t ->
  ?h2_device:Th_device.Device.t ->
  unit ->
  t

val oom : ?reason:string -> label:string -> Th_psgc.Runtime.t -> t
(** Capture a run that died with [Out_of_memory] (partial GC statistics
    are still recorded). *)

val to_report_row : t -> Th_metrics.Report.row
