module Rdd = Th_spark.Rdd

type t = {
  name : string;
  dataset_gb : int;
  sd_dram_gb : int list;
  th_dram_gb : int list;
  mo_heap_gb : int;
  iterations : int;
  cached_fraction : float;
  shuffle_fraction : float;
  transient_fraction : float;
  layout : Rdd.layout;
  sequential : bool;
  recache_period : int option;
  compute_factor : float;
  stages_per_iter : int;
  intermediate_fraction : float;
}

let dr2_gb = 16

(* GraphX workloads: iterative graph computation caching the working
   graph; every few iterations the rank/frontier RDD is re-cached and the
   previous generation unpersisted. *)

let pagerank =
  {
    name = "PR";
    dataset_gb = 80;
    sd_dram_gb = [ 32; 48; 80; 144 ];
    th_dram_gb = [ 32; 80 ];
    mo_heap_gb = 1024;
    iterations = 15;
    cached_fraction = 0.9;
    shuffle_fraction = 0.25;
    transient_fraction = 6.0;
    layout = Rdd.Chunked;
    sequential = false;
    recache_period = Some 5;
    compute_factor = 6.0;
    stages_per_iter = 12;
    intermediate_fraction = 0.0;
  }

let connected_components =
  {
    pagerank with
    name = "CC";
    dataset_gb = 84;
    sd_dram_gb = [ 33; 50; 84; 152 ];
    th_dram_gb = [ 33; 84 ];
    iterations = 12;
    recache_period = Some 6;
  }

let shortest_path =
  {
    pagerank with
    name = "SSSP";
    dataset_gb = 58;
    sd_dram_gb = [ 27; 37; 58; 100 ];
    th_dram_gb = [ 37; 58 ];
    mo_heap_gb = 650;
    iterations = 14;
    shuffle_fraction = 0.2;
    recache_period = Some 7;
  }

let svd_plus_plus =
  {
    pagerank with
    name = "SVD";
    dataset_gb = 40;
    sd_dram_gb = [ 22; 28; 40; 64 ];
    th_dram_gb = [ 28; 40 ];
    mo_heap_gb = 500;
    iterations = 12;
    cached_fraction = 0.95;
    shuffle_fraction = 0.3;
    transient_fraction = 2.2;
    recache_period = Some 4;
  }

let triangle_counts =
  {
    name = "TR";
    dataset_gb = 80;
    sd_dram_gb = [ 59; 70; 80 ];
    th_dram_gb = [ 59; 80 ];
    mo_heap_gb = 64;
    iterations = 8;
    (* The cached data fits in the on-heap cache (§7.1), so S/D cost under
       TeraHeap matches Spark-SD. *)
    cached_fraction = 0.3;
    shuffle_fraction = 0.5;
    transient_fraction = 2.4;
    layout = Rdd.Chunked;
    sequential = false;
    recache_period = None;
    compute_factor = 5.0;
    stages_per_iter = 6;
    intermediate_fraction = 0.20;
  }

(* MLlib workloads: 100 training iterations streaming over a cached
   training set (§7.1: "streaming access on cached RDD elements in each
   iteration of the ML training phase"). *)

let linear_regression =
  {
    name = "LR";
    dataset_gb = 70;
    sd_dram_gb = [ 29; 43; 70; 124 ];
    th_dram_gb = [ 43; 70 ];
    mo_heap_gb = 1084;
    iterations = 100;
    cached_fraction = 1.0;
    shuffle_fraction = 0.02;
    transient_fraction = 0.5;
    layout = Rdd.Chunked;
    sequential = true;
    recache_period = None;
    compute_factor = 1.5;
    stages_per_iter = 1;
    intermediate_fraction = 0.15;
  }

let logistic_regression = { linear_regression with name = "LgR" }

let svm =
  {
    linear_regression with
    name = "SVM";
    dataset_gb = 48;
    sd_dram_gb = [ 28; 32; 36; 48 ];
    th_dram_gb = [ 36; 48 ];
    mo_heap_gb = 620;
    (* Columnar feature matrices: humongous objects under G1 (§7.1). *)
    layout = Rdd.Columnar;
  }

let bayes_classifier =
  {
    name = "BC";
    dataset_gb = 98;
    sd_dram_gb = [ 53; 57; 98; 180 ];
    th_dram_gb = [ 57; 98 ];
    mo_heap_gb = 82;
    iterations = 5;
    cached_fraction = 0.35;
    shuffle_fraction = 0.1;
    transient_fraction = 1.6;
    layout = Rdd.Columnar;
    sequential = false;
    recache_period = None;
    compute_factor = 4.0;
    stages_per_iter = 4;
    intermediate_fraction = 0.23;
  }

let rdd_relation =
  {
    name = "RL";
    dataset_gb = 63;
    sd_dram_gb = [ 24; 37; 63 ];
    th_dram_gb = [ 37; 63 ];
    mo_heap_gb = 96;
    iterations = 10;
    cached_fraction = 0.6;
    shuffle_fraction = 0.4;
    transient_fraction = 2.0;
    layout = Rdd.Columnar;
    sequential = false;
    recache_period = None;
    compute_factor = 4.0;
    stages_per_iter = 6;
    intermediate_fraction = 0.13;
  }

let kmeans =
  {
    linear_regression with
    name = "KM";
    iterations = 50;
    transient_fraction = 0.5;
    intermediate_fraction = 0.12;
  }

let all =
  [
    pagerank;
    connected_components;
    shortest_path;
    svd_plus_plus;
    triangle_counts;
    linear_regression;
    logistic_regression;
    svm;
    bayes_classifier;
    rdd_relation;
  ]

let by_name name =
  List.find
    (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name)
    (kmeans :: all)
