open Th_sim
module Engine = Th_giraph.Engine

type t = {
  name : string;
  dataset_gb : int;
  dram_gb : int;
  dram_small_gb : int;
  ooc_heap_gb : int;
  ooc_dr2_gb : int;
  th_h1_gb : int;
  th_dr2_gb : int;
  algo : Engine.algorithm;
}

let msg_bytes_per_edge = 8

let full_volume ~superstep:_ ~total_edges = total_edges * msg_bytes_per_edge

let decaying_volume rate ~superstep ~total_edges =
  let f = rate ** float_of_int (superstep - 1) in
  int_of_float (f *. float_of_int (total_edges * msg_bytes_per_edge))

(* Frontier wave for traversal algorithms: narrow start, peak in the
   middle supersteps, narrow tail. *)
let wave peak_step width ~superstep =
  let d = float_of_int (superstep - peak_step) /. width in
  exp (-.(d *. d))

let wave_volume peak width ~superstep ~total_edges =
  let f = wave peak width ~superstep in
  int_of_float (f *. float_of_int (total_edges * msg_bytes_per_edge))

let pagerank =
  {
    name = "PR";
    dataset_gb = 85;
    dram_gb = 85;
    dram_small_gb = 74;
    ooc_heap_gb = 70;
    ooc_dr2_gb = 15;
    th_h1_gb = 50;
    th_dr2_gb = 35;
    algo =
      {
        Engine.name = "PR";
        supersteps = 12;
        message_bytes = full_volume;
        combine_factor = 3.0;
        active_fraction = (fun ~superstep:_ -> 1.0);
        update_fraction = 1.0;
      };
  }

let cdlp =
  {
    pagerank with
    name = "CDLP";
    ooc_heap_gb = 70;
    th_h1_gb = 60;
    th_dr2_gb = 25;
    algo =
      {
        Engine.name = "CDLP";
        supersteps = 10;
        message_bytes = decaying_volume 0.92;
        combine_factor = 2.0;
        active_fraction = (fun ~superstep:_ -> 1.0);
        update_fraction = 0.7;
      };
  }

let wcc =
  {
    pagerank with
    name = "WCC";
    th_h1_gb = 60;
    th_dr2_gb = 25;
    algo =
      {
        Engine.name = "WCC";
        supersteps = 12;
        message_bytes = decaying_volume 0.65;
        combine_factor = 2.0;
        active_fraction =
          (fun ~superstep -> 0.65 ** float_of_int (superstep - 1));
        update_fraction = 0.6;
      };
  }

let bfs =
  {
    name = "BFS";
    dataset_gb = 65;
    dram_gb = 65;
    dram_small_gb = 57;
    ooc_heap_gb = 48;
    ooc_dr2_gb = 17;
    th_h1_gb = 35;
    th_dr2_gb = 30;
    algo =
      {
        Engine.name = "BFS";
        supersteps = 10;
        message_bytes = wave_volume 4 1.6;
        combine_factor = 1.5;
        active_fraction = (fun ~superstep -> wave 4 1.6 ~superstep);
        update_fraction = 0.9;
      };
  }

let sssp =
  {
    name = "SSSP";
    dataset_gb = 90;
    dram_gb = 90;
    dram_small_gb = 78;
    ooc_heap_gb = 75;
    ooc_dr2_gb = 15;
    th_h1_gb = 50;
    th_dr2_gb = 40;
    algo =
      {
        Engine.name = "SSSP";
        supersteps = 14;
        message_bytes = wave_volume 6 2.8;
        combine_factor = 1.5;
        active_fraction = (fun ~superstep -> wave 6 2.8 ~superstep);
        update_fraction = 0.9;
      };
  }

let all = [ pagerank; cdlp; wcc; bfs; sssp ]

let by_name name =
  List.find
    (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name)
    all

(* Average out-degree and edge entry size of the datagen-fb graphs. *)
let avg_degree = 30

let edge_bytes = 16

let graph_params t ~scale =
  let dataset_bytes =
    int_of_float (scale *. float_of_int (Size.paper_gb t.dataset_gb))
  in
  (* Per-vertex footprint: value object + out-edges array. *)
  let per_vertex =
    Th_giraph.Graph.vertex_value_bytes + (avg_degree * edge_bytes) + 32 + 48
  in
  let vertices = max 64 (dataset_bytes * 4 / 5 / per_vertex) in
  {
    Th_giraph.Engine.partitions = 16;
    vertices;
    avg_degree;
    edge_bytes;
  }
