(** The five LDBC Graphalytics workloads for Giraph (§6, Table 4), with
    BSP algorithm shapes (superstep count, message-volume and frontier
    profiles) and the paper's memory configurations. *)

type t = {
  name : string;
  dataset_gb : int;
  dram_gb : int;  (** full configuration (Figure 6's larger bar) *)
  dram_small_gb : int;  (** reduced-DRAM configuration *)
  ooc_heap_gb : int;  (** Giraph-OOC heap (Table 4) *)
  ooc_dr2_gb : int;
  th_h1_gb : int;  (** TeraHeap H1 (Table 4) *)
  th_dr2_gb : int;
  algo : Th_giraph.Engine.algorithm;
}

val msg_bytes_per_edge : int

val pagerank : t
val cdlp : t
val wcc : t
val bfs : t
val sssp : t

val all : t list

val by_name : string -> t

val graph_params : t -> scale:float -> Th_giraph.Engine.params
(** Derive generator parameters (vertices, degree, edge bytes) from the
    dataset size; [scale] further scales the vertex count (Figure 13b's
    larger datasets and Figure 9b's 91 GB runs). *)
