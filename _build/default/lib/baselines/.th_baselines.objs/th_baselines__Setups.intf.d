lib/baselines/setups.mli: Th_core Th_device Th_giraph Th_psgc Th_sim Th_spark
