lib/baselines/setups.ml: Clock Costs Size Th_core Th_device Th_giraph Th_minijvm Th_psgc Th_sim Th_spark
