lib/device/page_cache.mli: Device Th_sim
