lib/device/page_cache.ml: Device Hashtbl Th_sim
