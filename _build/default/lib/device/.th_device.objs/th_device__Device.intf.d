lib/device/device.mli: Format Th_sim
