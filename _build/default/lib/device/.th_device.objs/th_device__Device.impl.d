lib/device/device.ml: Format Th_sim
