(** Storage-device models.

    A device charges simulated time per access and keeps traffic counters.
    Requests are charged as [latency + size / bandwidth]; sequential streams
    amortise the latency over the stream (modern NVMe queues and OS
    readahead hide per-page latency for sequential access, cf. paper §2 and
    [41]). Byte-addressable devices (DRAM, NVM App-Direct) use their access
    granularity instead of a 4 KiB page. *)

type kind =
  | Dram
  | Nvme_ssd  (** Samsung PM983-like: block-addressable, 4 KiB pages *)
  | Nvm_app_direct  (** Optane DC in App-Direct mode: byte-addressable *)
  | Nvm_memory_mode
      (** Optane DC in Memory mode: CPU-managed DRAM cache in front of NVM *)

type params = {
  kind : kind;
  page_size : int;  (** access granularity in bytes *)
  read_latency_ns : float;  (** effective queued latency per request *)
  write_latency_ns : float;
  read_bw_gbps : float;  (** GB/s *)
  write_bw_gbps : float;
}

type stats = {
  bytes_read : int;
  bytes_written : int;
  read_ops : int;
  write_ops : int;
}

type t

val params_of_kind : kind -> params
(** Datasheet-derived presets; see DESIGN.md. *)

val create : ?params:params -> Th_sim.Clock.t -> kind -> t
(** [create clock kind] is a device charging its accesses to [clock]. *)

val kind : t -> kind

val page_size : t -> int

val read :
  t -> cat:Th_sim.Clock.category -> random:bool -> int -> unit
(** [read t ~cat ~random bytes] charges one read request of [bytes] bytes.
    [random] requests pay the full per-request latency and round the
    transfer up to page granularity (the paper's I/O amplification);
    sequential requests are charged at bandwidth. *)

val write :
  t -> cat:Th_sim.Clock.category -> random:bool -> int -> unit

val read_continuation :
  ?overlap:float -> t -> cat:Th_sim.Clock.category -> int -> unit
(** Continuation of a detected sequential stream (OS readahead): charged
    at pure transfer bandwidth, without the per-request latency.
    [overlap] scales the charge below 1.0 when the transfer proceeds
    concurrently with useful work. *)

val read_modify_write :
  t -> cat:Th_sim.Clock.category -> int -> unit
(** In-place update of device-resident data: a page-granularity read
    followed by a write of the same pages (§7.2: "large cost of
    read-modify-write operations on an I/O device"). *)

val stats : t -> stats

val reset_stats : t -> unit

val read_cost_ns : t -> random:bool -> int -> float
(** Pure cost query without charging; used by cache layers. *)

val write_cost_ns : t -> random:bool -> int -> float

val pp_stats : Format.formatter -> stats -> unit
