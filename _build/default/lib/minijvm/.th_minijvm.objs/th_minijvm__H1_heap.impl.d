lib/minijvm/h1_heap.ml: Card_table Th_objmodel Th_sim Vec
