lib/minijvm/h1_heap.mli: Card_table Th_objmodel Th_sim
