lib/minijvm/card_table.ml: Bytes
