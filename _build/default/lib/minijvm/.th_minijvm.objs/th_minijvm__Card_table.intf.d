lib/minijvm/card_table.mli:
