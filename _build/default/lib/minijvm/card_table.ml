type t = {
  card_size : int;
  cards : Bytes.t;
  mutable dirty : int;
}

let create ?(card_size = 512) ~capacity_bytes () =
  if card_size <= 0 then invalid_arg "Card_table.create: card_size";
  let n = max 1 ((capacity_bytes + card_size - 1) / card_size) in
  { card_size; cards = Bytes.make n '\000'; dirty = 0 }

let card_size t = t.card_size

let num_cards t = Bytes.length t.cards

let card_of_addr t addr =
  let c = addr / t.card_size in
  if c < 0 || c >= Bytes.length t.cards then
    invalid_arg "Card_table.card_of_addr: address out of range";
  c

let mark_dirty t ~addr =
  let c = card_of_addr t addr in
  if Bytes.unsafe_get t.cards c = '\000' then begin
    Bytes.unsafe_set t.cards c '\001';
    t.dirty <- t.dirty + 1
  end

let is_dirty t ~card = Bytes.get t.cards card <> '\000'

let dirty_count t = t.dirty

let clear_all t =
  Bytes.fill t.cards 0 (Bytes.length t.cards) '\000';
  t.dirty <- 0

let clear_card t ~card =
  if Bytes.get t.cards card <> '\000' then begin
    Bytes.set t.cards card '\000';
    t.dirty <- t.dirty - 1
  end
