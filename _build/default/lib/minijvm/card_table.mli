(** H1 card table.

    One dirty bit per fixed-size card covering the old generation's address
    space, as in vanilla Parallel Scavenge (512 B cards). The post-write
    barrier marks the card holding an updated old-generation object; minor
    GC scans dirty cards for old-to-young references. *)

type t

val create : ?card_size:int -> capacity_bytes:int -> unit -> t
(** [card_size] defaults to 512 bytes. *)

val card_size : t -> int

val num_cards : t -> int

val card_of_addr : t -> int -> int

val mark_dirty : t -> addr:int -> unit

val is_dirty : t -> card:int -> bool

val dirty_count : t -> int

val clear_all : t -> unit

val clear_card : t -> card:int -> unit
