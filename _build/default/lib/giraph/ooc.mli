(** Giraph's out-of-core scheduler (§5).

    Monitors managed-heap pressure and offloads the serialized edge arrays
    of least-recently-used partitions to the storage device; offloaded
    partitions are read back (and their byte arrays re-allocated on the
    heap) before they are processed. Because Giraph already keeps edges
    and messages as serialized byte arrays, offloading costs device I/O
    and allocation churn, not Kryo CPU. *)

type t

val create :
  Th_psgc.Runtime.t ->
  device:Th_device.Device.t ->
  dr2_bytes:int ->
  threshold:float ->
  t
(** [threshold] is the old-generation occupancy above which the scheduler
    starts offloading. *)

val page_cache : t -> Th_device.Page_cache.t

val note_processed : t -> Graph.partition -> unit
(** LRU bookkeeping: the partition was just processed. *)

val maybe_offload : t -> Graph.t -> unit
(** Offload LRU partitions' edges while heap pressure exceeds the
    threshold (bounded by the pressure excess, since unlinked space only
    returns at the next collection). *)

val maybe_offload_list : t -> Graph.partition list -> unit
(** Same, over an explicit candidate list — used during the input
    superstep while the graph is still being built. *)

val enforce_budget : t -> Graph.t -> max_resident:int -> unit
(** Giraph's [maxPartitionsInMemory] policy: offload LRU partitions until
    at most [max_resident] partitions' edges stay on the heap. *)

val enforce_budget_list : t -> Graph.partition list -> max_resident:int -> unit

val ensure_resident : t -> Graph.t -> Graph.partition -> unit
(** Read an offloaded partition's edges back and re-allocate their byte
    arrays on the heap. No-op for resident partitions. *)

val offloaded_partitions : t -> Graph.t -> int
