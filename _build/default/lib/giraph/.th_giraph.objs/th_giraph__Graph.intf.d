lib/giraph/graph.mli: Th_objmodel Th_psgc Th_sim
