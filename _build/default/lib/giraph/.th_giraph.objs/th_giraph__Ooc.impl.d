lib/giraph/ooc.ml: Array Clock Graph Hashtbl List Option Printf Sys Th_device Th_minijvm Th_objmodel Th_psgc Th_sim
