lib/giraph/ooc.mli: Graph Th_device Th_psgc
