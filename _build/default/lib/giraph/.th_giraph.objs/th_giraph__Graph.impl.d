lib/giraph/graph.ml: Array Printf Prng Sys Th_objmodel Th_psgc Th_sim
