lib/giraph/engine.ml: Array Graph Msg_store Ooc Printf Prng Size Sys Th_minijvm Th_objmodel Th_psgc Th_sim
