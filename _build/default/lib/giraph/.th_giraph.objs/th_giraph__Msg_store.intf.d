lib/giraph/msg_store.mli: Th_device Th_objmodel Th_psgc Th_sim
