lib/giraph/msg_store.ml: Clock Size Th_device Th_objmodel Th_psgc Th_sim Vec
