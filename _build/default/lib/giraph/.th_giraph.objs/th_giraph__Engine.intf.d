lib/giraph/engine.mli: Graph Th_device Th_psgc Th_sim
