(** The BSP engine: supersteps with a synchronisation barrier (Figure 5).

    An algorithm is described by its superstep count, per-superstep
    message volume, and the fraction of vertices active each superstep;
    the engine handles graph loading, the two message stores, the
    out-of-core scheduler (Giraph-OOC) or the TeraHeap hint protocol:

    - step 1: out-edges maps are tagged as vertices load (label 0);
    - step 2: [h2_move 0] at the end of the input superstep;
    - step 3: message chunks are tagged with the superstep id as they are
      created;
    - step 4: [h2_move (k-1)] at the beginning of superstep [k]. *)

type mode =
  | In_memory
  | Out_of_core of { threshold : float }
      (** offload LRU edges/messages above this old-gen occupancy *)
  | Teraheap

type algorithm = {
  name : string;
  supersteps : int;
  message_bytes : superstep:int -> total_edges:int -> int;
      (** volume of raw per-edge sends in a superstep (before combining) *)
  combine_factor : float;
      (** message-combiner reduction: the stored volume is
          [message_bytes / combine_factor]; compute is charged on the raw
          sends *)
  active_fraction : superstep:int -> float;
      (** share of vertices computing in a superstep (frontier width) *)
  update_fraction : float;  (** share of active vertices updating values *)
}

type params = {
  partitions : int;
  vertices : int;
  avg_degree : int;
  edge_bytes : int;
}

type result = {
  supersteps_run : int;
  total_messages_bytes : int;
  graph : Graph.t;
}

val edges_label : int
(** The label used for out-edges maps (0); message labels are superstep
    ids starting at 1. *)

val run :
  Th_psgc.Runtime.t ->
  mode:mode ->
  ?ooc_device:Th_device.Device.t ->
  ?ooc_dr2:int ->
  prng:Th_sim.Prng.t ->
  algo:algorithm ->
  params ->
  result
(** Execute the full computation; simulated time lands in the runtime's
    clock. Raises {!Th_psgc.Runtime.Out_of_memory} like a real run. *)
