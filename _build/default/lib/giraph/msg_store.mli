(** Superstep message stores (Figure 5).

    Each superstep has a current store (mutable, filled as vertices send)
    and an incoming store (the previous superstep's current store, immutable
    after the synchronisation barrier). Messages are serialized byte-array
    chunks per partition, as Giraph stores them. *)

type t = {
  superstep : int;
  root : Th_objmodel.Heap_object.t;  (** store root, linked from the engine *)
  chunks : Th_objmodel.Heap_object.t Th_sim.Vec.t;  (** resident chunks *)
  mutable bytes : int;
  mutable offloaded_at : int option;
      (** device offset of the spill area, when the out-of-core scheduler
          has spilled part of the store *)
  mutable spilled_bytes : int;
}

val chunk_bytes : int
(** Messages are appended into fixed-size byte-array chunks (64 KiB). *)

val create :
  Th_psgc.Runtime.t ->
  anchor:Th_objmodel.Heap_object.t ->
  superstep:int ->
  t
(** A fresh, empty store whose root is linked under [anchor]. *)

val append :
  Th_psgc.Runtime.t ->
  t ->
  bytes:int ->
  on_chunk_created:(Th_objmodel.Heap_object.t -> unit) ->
  unit
(** Append [bytes] of messages: allocates chunks as needed (each new chunk
    reported to [on_chunk_created] — TeraHeap tags it, Figure 5 step 3) and
    charges the in-place serialization writes. Writing into a chunk that
    has already been moved to H2 pays the read-modify-write device cost. *)

val consume : Th_psgc.Runtime.t -> t -> unit
(** Read every chunk (page faults if resident in H2) and charge compute
    proportional to the message volume. *)

val drop : Th_psgc.Runtime.t -> t -> anchor:Th_objmodel.Heap_object.t -> unit
(** Unlink the store from the engine: its chunks become garbage (in H1) or
    dead-region candidates (in H2). *)

val spill :
  Th_psgc.Runtime.t ->
  t ->
  cache:Th_device.Page_cache.t ->
  offset:int ->
  keep_chunks:int ->
  int
(** Out-of-core: write all but the newest [keep_chunks] resident chunks to
    the device and drop them from the heap (Giraph spills the message
    store incrementally as the superstep produces it). Returns the bytes
    written. [offset] fixes the spill area on first use. *)

val offload :
  Th_psgc.Runtime.t -> t -> cache:Th_device.Page_cache.t -> offset:int -> int
(** [spill ~keep_chunks:0]: the barrier-time full spill. *)

val ensure_resident :
  Th_psgc.Runtime.t -> t -> cache:Th_device.Page_cache.t -> unit
(** Out-of-core: read an offloaded store back, re-allocating its chunks. *)

val consume_streamed :
  Th_psgc.Runtime.t -> t -> cache:Th_device.Page_cache.t -> unit
(** Out-of-core: consume an offloaded store chunk by chunk, keeping only
    one chunk resident at a time (device reads plus allocation churn).
    Falls back to {!consume} when the store is resident. *)
