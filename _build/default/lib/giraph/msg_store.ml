open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Runtime = Th_psgc.Runtime

type t = {
  superstep : int;
  root : Obj_.t;
  chunks : Obj_.t Vec.t;  (* resident chunks *)
  mutable bytes : int;
  mutable offloaded_at : int option;  (* device offset of the spill area *)
  mutable spilled_bytes : int;
}

let chunk_bytes = Size.kib 64

let create rt ~anchor ~superstep =
  let root = Runtime.alloc rt ~size:256 () in
  Runtime.write_ref rt anchor root;
  {
    superstep;
    root;
    chunks = Vec.create ();
    bytes = 0;
    offloaded_at = None;
    spilled_bytes = 0;
  }

let append rt t ~bytes ~on_chunk_created =
  if bytes > 0 then begin
    let resident_before = Vec.length t.chunks * chunk_bytes in
    let resident_target =
      t.bytes + bytes - t.spilled_bytes
    in
    let needed =
      (max 0 (resident_target - resident_before) + chunk_bytes - 1)
      / chunk_bytes
    in
    for _ = 1 to needed do
      let c = Runtime.alloc rt ~kind:Obj_.Array_data ~size:chunk_bytes () in
      Runtime.write_ref rt t.root c;
      Vec.push t.chunks c;
      on_chunk_created c
    done;
    t.bytes <- t.bytes + bytes;
    (* In-place serialization of the messages into the chunks they land
       in; when a chunk has already moved to H2 this is the expensive
       device read-modify-write of §7.2. *)
    let touched = min (Vec.length t.chunks) (1 + (bytes / chunk_bytes)) in
    for i = Vec.length t.chunks - touched to Vec.length t.chunks - 1 do
      Runtime.update_obj rt (Vec.get t.chunks i)
    done;
    (* The message combiner rewrites per-vertex slots spread over the
       store, so earlier chunks keep being updated until the superstep's
       barrier seals them. This is why moving a still-mutable store to H2
       is so expensive (§7.2). *)
    let n = Vec.length t.chunks in
    let i = ref 0 in
    while !i < n do
      Runtime.update_obj rt (Vec.get t.chunks !i);
      i := !i + 4
    done
  end

let consume rt t =
  Vec.iter (fun c -> Runtime.read_obj rt c) t.chunks;
  Runtime.compute rt ~bytes:(max 0 (t.bytes - t.spilled_bytes))

(* Out-of-core paths: byte arrays are written to the device and dropped
   from the heap, then streamed back before consumption. *)

let spill rt t ~cache ~offset ~keep_chunks =
  let resident = Vec.length t.chunks in
  let n = max 0 (resident - keep_chunks) in
  if n > 0 then begin
    let off =
      match t.offloaded_at with
      | Some o -> o
      | None ->
          t.offloaded_at <- Some offset;
          offset
    in
    Th_device.Page_cache.access cache ~cat:Clock.Serde_io ~write:true
      ~offset:(off + t.spilled_bytes) ~len:(n * chunk_bytes);
    (* Drop the oldest (sealed) chunks; the open tail stays resident. *)
    let kept = Vec.create () in
    Vec.iteri
      (fun i c ->
        if i < n then Runtime.unlink_ref rt t.root c else Vec.push kept c)
      t.chunks;
    Vec.clear t.chunks;
    Vec.iter (Vec.push t.chunks) kept;
    t.spilled_bytes <- t.spilled_bytes + (n * chunk_bytes)
  end;
  n * chunk_bytes

let offload rt t ~cache ~offset =
  if t.bytes = 0 then 0 else spill rt t ~cache ~offset ~keep_chunks:0

let ensure_resident rt t ~cache =
  match t.offloaded_at with
  | None -> ()
  | Some offset ->
      let n = t.spilled_bytes / chunk_bytes in
      Th_device.Page_cache.access cache ~cat:Clock.Serde_io ~write:false
        ~offset ~len:t.spilled_bytes;
      for _ = 1 to n do
        let c = Runtime.alloc rt ~kind:Obj_.Array_data ~size:chunk_bytes () in
        Runtime.write_ref rt t.root c;
        Vec.push t.chunks c
      done;
      t.offloaded_at <- None;
      t.spilled_bytes <- 0

let consume_streamed rt t ~cache =
  (match t.offloaded_at with
  | None -> ()
  | Some offset ->
      (* Stream the spilled chunks back one at a time: each is read from
         the device, materialised briefly, consumed and dropped — the
         resident footprint stays one chunk, at the price of allocation
         churn. *)
      let n = t.spilled_bytes / chunk_bytes in
      for i = 0 to n - 1 do
        Th_device.Page_cache.access cache ~cat:Clock.Serde_io ~write:false
          ~offset:(offset + (i * chunk_bytes))
          ~len:chunk_bytes;
        let c = Runtime.alloc rt ~kind:Obj_.Array_data ~size:chunk_bytes () in
        Runtime.read_obj rt c
      done);
  consume rt t

let drop rt t ~anchor = Runtime.unlink_ref rt anchor t.root
