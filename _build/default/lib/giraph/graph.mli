(** Giraph's in-memory graph representation.

    The graph is hash-partitioned; each partition holds vertices, each
    vertex a (mutable) value object and an out-edges map. Giraph
    serializes edges into byte arrays at allocation time (§5), so the
    out-edges map is modelled as one [Array_data] byte-array object per
    vertex and its construction charges serialization CPU to mutator
    time. *)

type vertex = {
  vid : int;
  degree : int;
  vobj : Th_objmodel.Heap_object.t;  (** mutable vertex-value object *)
  mutable edges_obj : Th_objmodel.Heap_object.t;  (** serialized out-edges array; replaced when the out-of-core scheduler reloads it *)
}

type partition = {
  pid : int;
  pobj : Th_objmodel.Heap_object.t;  (** partition hashmap object *)
  vertices : vertex array;
  mutable offloaded_edge_bytes : int;
      (** bytes currently off-heap under the out-of-core scheduler *)
}

type t = {
  partitions : partition array;
  total_edges : int;
  edge_bytes : int;
  store_root : Th_objmodel.Heap_object.t;  (** partition store, a GC root *)
}

val vertex_value_bytes : int

val load :
  Th_psgc.Runtime.t ->
  prng:Th_sim.Prng.t ->
  partitions:int ->
  vertices:int ->
  avg_degree:int ->
  edge_bytes:int ->
  on_vertex_loaded:(vertex -> unit) ->
  ?on_partition_loaded:(partition -> unit) ->
  unit ->
  t
(** The input superstep: build all partitions, drawing vertex degrees
    from a power-law distribution. [on_vertex_loaded] runs right after a
    vertex materialises (TeraHeap tags the out-edges map here,
    Figure 5 step 1); [on_partition_loaded] runs after each partition
    (the out-of-core scheduler relieves pressure here). *)

val edges_bytes_of : vertex -> int

val iter_vertices : t -> (partition -> vertex -> unit) -> unit

val total_bytes : t -> int
