open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Runtime = Th_psgc.Runtime

type vertex = {
  vid : int;
  degree : int;
  vobj : Obj_.t;
  mutable edges_obj : Obj_.t;
}

type partition = {
  pid : int;
  pobj : Obj_.t;
  vertices : vertex array;
  mutable offloaded_edge_bytes : int;
}

type t = {
  partitions : partition array;
  total_edges : int;
  edge_bytes : int;
  store_root : Obj_.t;
}

let vertex_value_bytes = 48

let edges_obj_overhead = 32

let load rt ~prng ~partitions ~vertices ~avg_degree ~edge_bytes
    ~on_vertex_loaded ?(on_partition_loaded = fun _ -> ()) () =
  if partitions <= 0 || vertices <= 0 then invalid_arg "Graph.load";
  let store_root = Runtime.alloc rt ~size:256 () in
  Runtime.add_root rt store_root;
  let total_edges = ref 0 in
  let per_part = max 1 (vertices / partitions) in
  let next_vid = ref 0 in
  let parts =
    Array.init partitions (fun pid ->
        let pobj = Runtime.alloc rt ~size:512 () in
        Runtime.write_ref rt store_root pobj;
        let vs =
          Array.init per_part (fun _ ->
              let vid = !next_vid in
              incr next_vid;
              (* Power-law degrees, min 1, capped to keep single edge
                 arrays within one H2 region. *)
              let degree =
                let d =
                  Prng.pareto prng ~alpha:1.6
                    ~x_min:(float_of_int avg_degree *. 0.4)
                in
                max 1 (min (avg_degree * 24) (int_of_float d))
              in
              total_edges := !total_edges + degree;
              let vobj = Runtime.alloc rt ~size:vertex_value_bytes () in
              Runtime.write_ref rt pobj vobj;
              let edge_array_bytes =
                (degree * edge_bytes) + edges_obj_overhead
              in
              let edges_obj =
                Runtime.alloc rt ~kind:Obj_.Array_data ~size:edge_array_bytes
                  ()
              in
              Runtime.write_ref rt vobj edges_obj;
              (* Giraph serializes edges into the byte array as the graph
                 loads: CPU charged to mutator ("other") time, §5. *)
              Runtime.compute rt ~bytes:edge_array_bytes;
              let v = { vid; degree; vobj; edges_obj } in
              on_vertex_loaded v;
              v)
        in
        let p = { pid; pobj; vertices = vs; offloaded_edge_bytes = 0 } in
        if Sys.getenv_opt "TH_DEBUG_OOC" <> None then
          Printf.eprintf "[load] partition %d done\n%!" pid;
        on_partition_loaded p;
        p)
  in
  { partitions = parts; total_edges = !total_edges; edge_bytes; store_root }

let edges_bytes_of v = Obj_.total_size v.edges_obj

let iter_vertices t f =
  Array.iter (fun p -> Array.iter (fun v -> f p v) p.vertices) t.partitions

let total_bytes t =
  Array.fold_left
    (fun acc p ->
      Array.fold_left
        (fun acc v ->
          acc + Obj_.total_size v.vobj + Obj_.total_size v.edges_obj)
        (acc + Obj_.total_size p.pobj)
        p.vertices)
    0 t.partitions
