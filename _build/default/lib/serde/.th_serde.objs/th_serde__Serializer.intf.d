lib/serde/serializer.mli: Th_objmodel Th_psgc
