lib/serde/serializer.ml: Clock Costs Hashtbl List Printf Size Stack Th_objmodel Th_psgc Th_sim
