(** GC root set.

    Frameworks register the objects their mutator threads and static fields
    hold directly (thread stacks, block-manager maps, partition stores). An
    object may be registered several times; it stays a root until all
    registrations are removed. *)

type t

val create : unit -> t

val add : t -> Heap_object.t -> unit

val remove : t -> Heap_object.t -> unit
(** Removing an object that is not registered is a no-op. *)

val is_root : Heap_object.t -> bool

val iter : (Heap_object.t -> unit) -> t -> unit

val to_list : t -> Heap_object.t list

val count : t -> int
