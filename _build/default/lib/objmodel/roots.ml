open Th_sim

type t = {
  objs : Heap_object.t Vec.t;
  mutable needs_compact : bool;
}

let create () = { objs = Vec.create (); needs_compact = false }

let add t o =
  o.Heap_object.root_pin <- o.Heap_object.root_pin + 1;
  if o.Heap_object.root_pin = 1 then Vec.push t.objs o

let remove t o =
  if o.Heap_object.root_pin > 0 then begin
    o.Heap_object.root_pin <- o.Heap_object.root_pin - 1;
    if o.Heap_object.root_pin = 0 then t.needs_compact <- true
  end

let is_root (o : Heap_object.t) = o.Heap_object.root_pin > 0

let compact t =
  if t.needs_compact then begin
    Vec.filter_in_place is_root t.objs;
    t.needs_compact <- false
  end

let iter f t =
  compact t;
  Vec.iter f t.objs

let to_list t =
  compact t;
  Vec.to_list t.objs

let count t =
  compact t;
  Vec.length t.objs
