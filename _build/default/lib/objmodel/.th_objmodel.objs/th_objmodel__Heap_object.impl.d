lib/objmodel/heap_object.ml: Array Format Hashtbl List Printf Stack
