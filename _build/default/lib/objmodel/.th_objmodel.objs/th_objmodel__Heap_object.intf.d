lib/objmodel/heap_object.mli: Format Hashtbl
