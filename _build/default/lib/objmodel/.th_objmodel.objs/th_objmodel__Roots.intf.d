lib/objmodel/roots.mli: Heap_object
