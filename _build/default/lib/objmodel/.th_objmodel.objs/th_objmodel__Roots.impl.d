lib/objmodel/roots.ml: Heap_object Th_sim Vec
