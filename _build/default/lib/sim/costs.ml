type t = {
  alloc_ns : float;
  compute_per_byte_ns : float;
  trace_ref_ns : float;
  mark_obj_ns : float;
  copy_byte_ns : float;
  card_scan_ns : float;
  card_obj_scan_ns : float;
  serde_per_byte_ns : float;
  serde_per_obj_ns : float;
  serde_temp_bytes_per_byte : float;
  write_barrier_ns : float;
  gc_pause_overhead_ns : float;
  gc_threads : int;
  old_gc_threads : int;
  mutator_threads : int;
}

let default =
  {
    alloc_ns = 20.0;
    compute_per_byte_ns = 0.8;
    trace_ref_ns = 14.0;
    mark_obj_ns = 10.0;
    copy_byte_ns = 0.1 (* ~10 GB/s DRAM copy *);
    card_scan_ns = 1.5;
    card_obj_scan_ns = 25.0;
    serde_per_byte_ns = 2.2 (* ~450 MB/s Kryo per thread, graph traversal included *);
    serde_per_obj_ns = 60.0;
    serde_temp_bytes_per_byte = 1.0;
    write_barrier_ns = 1.0;
    gc_pause_overhead_ns = 200_000.0 (* 0.2 ms safepoint *);
    gc_threads = 16;
    old_gc_threads = 1;
    mutator_threads = 8;
  }

let with_mutator_threads t n = { t with mutator_threads = n }

let parallel _t ~threads ns =
  if threads <= 1 then ns
  else ns /. (float_of_int threads *. 0.85)
