(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Prng.t]
    so that runs are reproducible and independent components can use
    independent streams. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto-distributed sample; used for power-law degree distributions. *)

val zipf_rank : t -> n:int -> theta:float -> int
(** [zipf_rank t ~n ~theta] draws a rank in [0, n) with Zipf-like skew
    [theta] (0 = uniform), using the inverse-CDF approximation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
