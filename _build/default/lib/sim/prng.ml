type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to 62 bits: a 63-bit shift result can still overflow OCaml's
     native int and come out negative. *)
  let x = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  x mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, as in the reference splitmix64 double conversion. *)
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pareto t ~alpha ~x_min =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  x_min /. (u ** (1.0 /. alpha))

let zipf_rank t ~n ~theta =
  if n <= 0 then invalid_arg "Prng.zipf_rank: n must be positive";
  if theta <= 0.0 then int t n
  else begin
    let u = float t 1.0 in
    (* Inverse-CDF approximation of a Zipf-like distribution: rank density
       proportional to (r+1)^(-theta). The theta = 1 case degenerates to the
       harmonic distribution, whose inverse CDF is n^u. *)
    let rank =
      if Float.abs (theta -. 1.0) < 1e-9 then
        int_of_float (float_of_int n ** u) - 1
      else begin
        let r = (float_of_int n ** (1.0 -. theta)) *. u in
        int_of_float (r ** (1.0 /. (1.0 -. theta)))
      end
    in
    if rank >= n then n - 1 else if rank < 0 then 0 else rank
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
