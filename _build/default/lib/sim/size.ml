let kib n = n * 1024

let mib n = n * 1024 * 1024

let gib n = n * 1024 * 1024 * 1024

let scale_factor = 1024

let paper_gb n = gib n / scale_factor

let to_string bytes =
  let b = float_of_int bytes in
  if bytes < 1024 then Printf.sprintf "%d B" bytes
  else if bytes < 1024 * 1024 then Printf.sprintf "%.1f KiB" (b /. 1024.0)
  else if bytes < 1024 * 1024 * 1024 then Printf.sprintf "%.1f MiB" (b /. 1048576.0)
  else Printf.sprintf "%.1f GiB" (b /. 1073741824.0)

let pp f bytes = Format.pp_print_string f (to_string bytes)
