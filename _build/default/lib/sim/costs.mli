(** CPU-side cost model.

    Charges are expressed per modelled operation (allocate an object, trace a
    reference, scan a card, serialize a byte, ...). The defaults approximate a
    2.4 GHz Xeon as used in the paper's NVMe server (Table 1); they matter
    only through ratios — the evaluation reports normalized times.

    Device-side costs (page reads/writes, NVM loads) live in
    {!Th_device.Device}. *)

type t = {
  alloc_ns : float;  (** bump-pointer allocation + header initialisation *)
  compute_per_byte_ns : float;
      (** mutator computation per byte of data touched *)
  trace_ref_ns : float;  (** following one reference during GC tracing *)
  mark_obj_ns : float;  (** marking one live object *)
  copy_byte_ns : float;  (** GC copy/compaction, DRAM to DRAM *)
  card_scan_ns : float;  (** examining one card-table entry *)
  card_obj_scan_ns : float;
      (** scanning one object inside a dirty card segment *)
  serde_per_byte_ns : float;  (** Kryo-like S/D throughput term *)
  serde_per_obj_ns : float;  (** Kryo-like S/D per-object overhead *)
  serde_temp_bytes_per_byte : float;
      (** temporary heap allocation generated per byte serialized; this is
          the paper's "temporary objects put more pressure on the heap" *)
  write_barrier_ns : float;  (** post-write barrier, incl. range check *)
  gc_pause_overhead_ns : float;  (** fixed safepoint cost per GC cycle *)
  gc_threads : int;  (** parallel GC threads (paper: 16 for minor GC) *)
  old_gc_threads : int;  (** PS old-generation collection is single-threaded *)
  mutator_threads : int;  (** executor threads (paper default: 8) *)
}

val default : t
(** Calibrated defaults; see DESIGN.md for the datasheet values
    they approximate. *)

val with_mutator_threads : t -> int -> t

val parallel : t -> threads:int -> float -> float
(** [parallel c ~threads ns] scales a perfectly-parallel cost over [threads]
    with a fixed 0.85 parallel efficiency. *)
