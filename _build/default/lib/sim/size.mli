(** Byte-size constants and pretty-printing.

    All capacities in the simulator are plain [int] byte counts (OCaml's
    63-bit ints comfortably hold exabytes). *)

val kib : int -> int
(** [kib n] is [n] kibibytes. *)

val mib : int -> int
(** [mib n] is [n] mebibytes. *)

val gib : int -> int
(** [gib n] is [n] gibibytes. *)

val paper_gb : int -> int
(** [paper_gb n] converts a capacity the paper states in GB into the scaled
    simulation capacity (GB / {!scale_factor} = MiB). Dataset, heap, and DRAM
    sizes from Tables 3 and 4 go through this function. *)

val scale_factor : int
(** Paper-to-simulation down-scaling of capacities (1024: GB become MiB). *)

val pp : Format.formatter -> int -> unit
(** Human-readable size, e.g. [pp f 1572864] prints ["1.5 MiB"]. *)

val to_string : int -> string
