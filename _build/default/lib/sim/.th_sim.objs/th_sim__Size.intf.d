lib/sim/size.mli: Format
