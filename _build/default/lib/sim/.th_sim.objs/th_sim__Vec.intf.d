lib/sim/vec.mli:
