lib/sim/clock.ml: Format
