lib/sim/costs.mli:
