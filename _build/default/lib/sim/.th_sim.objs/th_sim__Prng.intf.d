lib/sim/prng.mli:
