lib/sim/costs.ml:
