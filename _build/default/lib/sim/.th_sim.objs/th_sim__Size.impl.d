lib/sim/size.ml: Format Printf
