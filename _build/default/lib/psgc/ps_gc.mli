(** The Parallel Scavenge collector, with TeraHeap extensions (§4).

    Minor GC copies live young objects into the survivor space or promotes
    them to the old generation; with TeraHeap it additionally fences
    tracing at the H1/H2 boundary and scans the H2 card table for backward
    references. Major GC runs the four PS phases — marking, precompaction,
    pointer adjustment, compaction — extended with the five marking-phase
    tasks of §4 (live-bit reset, backward-reference marking, forward-
    reference fencing, labelled-closure computation, dead-region
    reclamation) and the H2 placement/move work in the later phases.

    The [G1] and [Ps_jdk11] collector variants of {!Rt.collector} reuse the
    same structural simulation with the cost and fragmentation models
    described in DESIGN.md. *)

val minor_gc : Rt.t -> bool
(** Run a minor collection. Returns [true] when promotion failed and the
    caller should run a major collection. *)

val major_gc : Rt.t -> unit
(** Run a full collection. Raises {!Rt.Out_of_memory} when live data does
    not fit in the old generation even after collection, and
    {!Th_core.H2.Out_of_h2_space} when H2 is exhausted. *)
