lib/psgc/cost_profile.ml:
