lib/psgc/gc_stats.mli:
