lib/psgc/cost_profile.mli:
