lib/psgc/heap_census.mli: Format Rt Th_objmodel
