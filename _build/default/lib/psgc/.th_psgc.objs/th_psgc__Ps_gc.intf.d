lib/psgc/ps_gc.mli: Rt
