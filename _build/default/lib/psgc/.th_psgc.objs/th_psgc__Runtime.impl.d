lib/psgc/runtime.ml: Clock Cost_profile Costs List Printf Ps_gc Rt Size Th_core Th_minijvm Th_objmodel Th_sim
