lib/psgc/gc_stats.ml: Th_sim Vec
