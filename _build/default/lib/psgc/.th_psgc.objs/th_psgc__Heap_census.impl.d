lib/psgc/heap_census.ml: Format Hashtbl List Rt Size Th_minijvm Th_objmodel Th_sim Vec
