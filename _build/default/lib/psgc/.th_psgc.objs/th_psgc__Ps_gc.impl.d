lib/psgc/ps_gc.ml: Clock Cost_profile Costs Gc_stats Hashtbl List Printf Queue Rt Size Stack Th_core Th_minijvm Th_objmodel Th_sim Vec
