lib/psgc/rt.ml: Clock Cost_profile Costs Gc_stats Size Th_core Th_minijvm Th_objmodel Th_sim
