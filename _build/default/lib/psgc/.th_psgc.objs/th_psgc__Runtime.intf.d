lib/psgc/runtime.mli: Cost_profile Gc_stats Rt Th_core Th_minijvm Th_objmodel Th_sim
