type t = { young_mult : float; old_mult : float; mutator_mult : float }

let dram = { young_mult = 1.0; old_mult = 1.0; mutator_mult = 1.0 }

(* Optane load latency over DRAM load latency (~300 ns vs ~80 ns). *)
let nvm_penalty = 3.75

let nvm_memory_mode ~dram_bytes ~heap_bytes =
  let ratio =
    if heap_bytes <= 0 then 1.0
    else min 1.0 (float_of_int dram_bytes /. float_of_int heap_bytes)
  in
  (* GC pointer chasing has little locality, so its effective hit ratio is
     well below the capacity ratio; mutator streaming does better. *)
  let gc_hit = 0.55 *. ratio and mut_hit = 0.85 *. ratio in
  let mult hit = hit +. ((1.0 -. hit) *. nvm_penalty) in
  { young_mult = mult gc_hit; old_mult = mult gc_hit; mutator_mult = mult mut_hit }

let panthera =
  (* Young generation entirely in DRAM; 48/54 of the old generation on NVM
     (Wang et al. configuration reproduced in §7.5). *)
  let nvm_fraction = 48.0 /. 54.0 in
  let old_mult = 1.0 +. (nvm_fraction *. (nvm_penalty -. 1.0)) in
  { young_mult = 1.0; old_mult; mutator_mult = 1.0 +. (0.35 *. (nvm_penalty -. 1.0)) }
