(** Memory-medium cost multipliers.

    Baselines that place (part of) H1 on NVM pay higher per-reference and
    per-byte costs. Multipliers apply to GC tracing/copy work and mutator
    access on objects resident in the given generation. *)

type t = {
  young_mult : float;  (** young-generation residents *)
  old_mult : float;  (** old-generation residents *)
  mutator_mult : float;  (** mutator compute touching heap data *)
}

val dram : t
(** All 1.0 — plain DRAM-backed H1. *)

val nvm_memory_mode : dram_bytes:int -> heap_bytes:int -> t
(** Spark-MO: the whole heap lives on NVM in Memory mode with DRAM acting
    as a direct-mapped cache. The multiplier follows the expected DRAM-cache
    hit ratio (capacity ratio), with GC traversals getting poorer locality
    than mutator streaming. *)

val panthera : t
(** Panthera: young generation in DRAM; most of the old generation on NVM
    (§7.5: 48 of 54 GB). Old-generation work pays the NVM latency ratio. *)
