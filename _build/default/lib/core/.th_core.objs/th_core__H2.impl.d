lib/core/h2.ml: Array Clock Costs Float H2_card_table Hashtbl List Size Stack Th_device Th_objmodel Th_sim Vec
