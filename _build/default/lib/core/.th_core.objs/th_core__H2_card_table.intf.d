lib/core/h2_card_table.mli:
