lib/core/h2_card_table.ml: Bytes
