lib/core/h2.mli: H2_card_table Th_device Th_objmodel Th_sim
