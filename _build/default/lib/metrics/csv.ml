open Th_sim

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape cells)

let to_string ~header rows =
  String.concat "\n" (List.map row_to_string (header :: rows)) ^ "\n"

let to_channel oc ~header rows = output_string oc (to_string ~header rows)

let breakdown_header =
  [ "configuration"; "other_s"; "serde_io_s"; "minor_gc_s"; "major_gc_s"; "total_s" ]

let breakdown_row ~label b =
  match b with
  | None -> [ label; "OOM"; "OOM"; "OOM"; "OOM"; "OOM" ]
  | Some b ->
      let s ns = Printf.sprintf "%.6f" (ns /. 1e9) in
      [
        label;
        s b.Clock.other_ns;
        s b.Clock.serde_io_ns;
        s b.Clock.minor_gc_ns;
        s b.Clock.major_gc_ns;
        s (Clock.total_ns b);
      ]
