lib/metrics/cdf.ml: Array List
