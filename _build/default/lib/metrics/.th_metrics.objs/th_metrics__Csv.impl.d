lib/metrics/csv.ml: Buffer Clock List Printf String Th_sim
