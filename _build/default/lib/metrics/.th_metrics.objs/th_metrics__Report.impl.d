lib/metrics/report.ml: Clock Csv Filename List Option Printf String Sys Th_sim
