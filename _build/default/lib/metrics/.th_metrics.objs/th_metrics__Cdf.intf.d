lib/metrics/cdf.mli:
