lib/metrics/csv.mli: Th_sim
