lib/metrics/report.mli: Th_sim
