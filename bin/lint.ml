(* Thin CLI over the Th_analysis AST analyzer (lib/analysis).

   Usage: lint.exe [options] [paths...]
     --format text|json|sarif  report format (default text)
     --rules r1,r2        run only the named rules
     --explain RULE       print a rule's documentation and exit
     --list-rules         one-line summary of every rule
     --self-test          run the analyzer over its embedded fixtures
     --dump-fixtures DIR  write the embedded fixtures as files into DIR
     --callgraph-dump     print the cross-library call graph and exit
     --interleave [full]  run the bounded-interleaving deque checker
     -o FILE              write the report to FILE instead of stdout
     paths                files or directories (default: lib bin bench)

   Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage error.

   The analyzer parses every .ml/.mli with the compiler's own parser and
   runs scope-aware AST rules (see `--list-rules`). The one check that
   cannot live at the AST level — a lib/ compilation unit missing its
   sealing .mli — is Th_analysis.Fscheck, against the file system. *)

let default_paths = [ "lib"; "bin"; "bench" ]

let usage () =
  prerr_endline
    "usage: lint.exe [--format text|json|sarif] [--rules r1,r2] [--explain \
     RULE]\n\
    \       [--list-rules] [--self-test] [--callgraph-dump] [--interleave \
     [full]]\n\
    \       [-o FILE] [paths...]";
  exit 2

let collect path acc =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "lint: %s: no such file or directory\n" path;
    exit 2
  end;
  Th_analysis.Fscheck.collect_files path @ acc

let explain rule =
  match Th_analysis.Rule.find rule with
  | Some r ->
      print_string (Th_analysis.Rule.explain_text r);
      exit 0
  | None ->
      Printf.eprintf "lint: unknown rule %S; known rules:\n  %s\n" rule
        (String.concat "\n  " Th_analysis.Rule.names);
      exit 2

let list_rules () =
  List.iter
    (fun (r : Th_analysis.Rule.t) ->
      Printf.printf "%-20s %-17s %s\n" r.name
        (Th_analysis.Rule.family_to_string r.family)
        r.synopsis)
    Th_analysis.Rule.all;
  Printf.printf "%-20s %-17s %s\n" "missing-mli" "invariant-hygiene"
    "lib/ compilation unit without a sealing .mli (file-system check)";
  exit 0

(* Regenerate test/fixtures/analysis/ from the embedded snippets. The
   alcotest suite asserts file = snippet, so this is the one sanctioned
   way to update the fixtures after editing Selftest.cases. *)
let dump_fixtures dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "lint: --dump-fixtures: %s is not a directory\n" dir;
    exit 2
  end;
  List.iter
    (fun (c : Th_analysis.Selftest.case) ->
      List.iter
        (fun (polarity, contents) ->
          let file =
            Filename.concat dir
              (Th_analysis.Selftest.fixture_basename ~polarity c.rule)
          in
          let oc = open_out file in
          output_string oc contents;
          close_out oc;
          Printf.printf "lint: wrote %s\n" file)
        [ (`Pos, c.positive); (`Neg, c.negative) ])
    Th_analysis.Selftest.cases;
  exit 0

(* Exhaustive schedule enumeration over the deque's owner/thief
   protocol, plus the sanity leg: the harness must reject a variant
   whose steal skips the CAS. *)
let interleave ~full =
  let failed = ref false in
  let show tag (r : Th_analysis.Deque_check.report) =
    Printf.printf "interleave %s %-22s %7d schedule(s), %3d outcome(s)%s\n" tag
      r.config r.schedules r.distinct
      (if r.violations = [] then "" else ", VIOLATIONS:");
    List.iter (fun v -> Printf.printf "  not linearizable: %s\n" v) r.violations
  in
  List.iter
    (fun r ->
      show "deque" r;
      if r.Th_analysis.Deque_check.violations <> [] then failed := true)
    (Th_analysis.Deque_check.check ~full ());
  let buggy = Th_analysis.Deque_check.check_buggy () in
  List.iter (show "buggy") buggy;
  if
    not
      (List.exists
         (fun (r : Th_analysis.Deque_check.report) -> r.violations <> [])
         buggy)
  then begin
    Printf.printf
      "interleave: FAILED — the harness accepted the seeded-bug deque\n";
    failed := true
  end;
  if !failed then exit 1
  else begin
    Printf.printf "interleave: deque linearizable, seeded bug rejected\n";
    exit 0
  end

let callgraph_dump paths =
  let files =
    List.sort String.compare (List.concat_map (fun p -> collect p []) paths)
  in
  let sources =
    List.filter_map
      (fun f -> Result.to_option (Th_analysis.Source.parse_file f))
      files
  in
  print_string (Th_analysis.Engine.callgraph_dump sources);
  exit 0

let self_test () =
  match Th_analysis.Selftest.run () with
  | Ok n ->
      Printf.printf "lint --self-test: %d check(s) passed\n" n;
      exit 0
  | Error msgs ->
      List.iter (fun m -> Printf.eprintf "lint --self-test: FAILED: %s\n" m) msgs;
      exit 1

let () =
  let format = ref `Text in
  let rules = ref None in
  let output = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--format" :: v :: rest ->
        (match v with
        | "text" -> format := `Text
        | "json" -> format := `Json
        | "sarif" -> format := `Sarif
        | _ ->
            Printf.eprintf "lint: unknown format %S (text|json|sarif)\n" v;
            exit 2);
        parse_args rest
    | "--rules" :: v :: rest ->
        let names = String.split_on_char ',' v |> List.filter (fun s -> s <> "") in
        List.iter
          (fun n ->
            if
              Th_analysis.Rule.find n = None
              && not (String.equal n "missing-mli")
            then begin
              Printf.eprintf "lint: unknown rule %S in --rules\n" n;
              exit 2
            end)
          names;
        rules := Some names;
        parse_args rest
    | "--explain" :: v :: rest ->
        ignore rest;
        explain v
    | [ "--explain" ] -> usage ()
    | "--list-rules" :: _ -> list_rules ()
    | "--self-test" :: _ -> self_test ()
    | "--interleave" :: "full" :: _ -> interleave ~full:true
    | "--interleave" :: _ -> interleave ~full:false
    | "--callgraph-dump" :: rest ->
        callgraph_dump (match rest with [] -> default_paths | ps -> ps)
    | "--dump-fixtures" :: dir :: _ -> dump_fixtures dir
    | [ "--dump-fixtures" ] -> usage ()
    | "-o" :: v :: rest | "--output" :: v :: rest ->
        output := Some v;
        parse_args rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "lint: unknown option %S\n" arg;
        usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let paths = match List.rev !paths with [] -> default_paths | ps -> ps in
  let files =
    List.sort String.compare (List.concat_map (fun p -> collect p []) paths)
  in
  let result = Th_analysis.Engine.analyze_files ?rules:!rules files in
  let fs_findings =
    match !rules with
    | Some names when not (List.exists (String.equal "missing-mli") names) -> []
    | _ -> Th_analysis.Fscheck.missing_mli files
  in
  let findings =
    List.sort Th_analysis.Finding.compare
      (fs_findings @ result.Th_analysis.Engine.findings)
  in
  let waived = result.Th_analysis.Engine.waived in
  let report =
    match !format with
    | `Text -> Th_analysis.Report.to_text ~waived findings
    | `Json -> Th_analysis.Report.to_json ~waived findings
    | `Sarif -> Th_analysis.Report.to_sarif ~waived findings
  in
  (match !output with
  | None -> print_string report
  | Some file ->
      let oc = open_out file in
      output_string oc report;
      close_out oc;
      Printf.printf "lint: report written to %s (%d finding(s), %d waived, %d \
                     file(s))\n"
        file (List.length findings) (List.length waived) (List.length files));
  exit (if findings = [] then 0 else 1)
