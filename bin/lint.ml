(* AST-free source linter, run over lib/ in CI.

   Rules:
     forbidden-assert-false  bare [assert false] — use a contextful
                             exception (Rt.Invalid_heap_state, invalid_arg)
     forbidden-obj-magic     any use of Obj.magic
     unordered-hashtbl-iter  Hashtbl.iter/fold on paths whose behaviour
                             could depend on hash order; waived by an
                             "order-insensitive" comment on the same or
                             one of the three preceding lines
     missing-mli             a .ml compilation unit without a sealing .mli

   The scanner strips comments and string/char literals (preserving line
   structure) before matching, so mentions of the forbidden constructs in
   prose never trip a rule. *)

type finding = { path : string; line : int; rule : string; message : string }

(* ------------------------------------------------------------------ *)
(* Comment/string stripping                                            *)

(* Replace the contents of comments, string literals and char literals
   with spaces, keeping every newline so line numbers survive. Handles
   nested comments, string literals inside comments (as the OCaml lexer
   does), escape sequences, raw-delimited strings, and char literals —
   a double quote in a char literal included — without confusing char
   literals with type variables. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let rec skip_string i =
    (* [i] is past the opening quote; returns the index past the close. *)
    if i >= n then i
    else
      match src.[i] with
      | '"' ->
          blank i;
          i + 1
      | '\\' when i + 1 < n ->
          blank i;
          blank (i + 1);
          skip_string (i + 2)
      | _ ->
          blank i;
          skip_string (i + 1)
  in
  let raw_delim i =
    (* At an opening brace: recognise a raw-string delimiter (brace,
       lowercase identifier, pipe) and return the identifier plus the
       index past the pipe. *)
    let j = ref (i + 1) in
    while
      !j < n
      && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < n && src.[!j] = '|' then Some (String.sub src (i + 1) (!j - i - 1), !j + 1)
    else None
  in
  let rec skip_raw id i =
    (* Scan for the closing delimiter: pipe, identifier, brace. *)
    if i >= n then i
    else if
      src.[i] = '|'
      && i + String.length id + 1 < n
      && String.sub src (i + 1) (String.length id) = id
      && src.[i + 1 + String.length id] = '}'
    then begin
      for k = i to i + String.length id + 1 do
        blank k
      done;
      i + String.length id + 2
    end
    else begin
      blank i;
      skip_raw id (i + 1)
    end
  in
  let char_literal_end i =
    (* At [i] = '\'': distinguish a char literal from a type variable.
       Returns the index past the literal, or None. *)
    if i + 1 >= n then None
    else if src.[i + 1] = '\\' then begin
      (* escape: '\\', '\n', '\xhh', '\123' ... scan to closing quote *)
      let j = ref (i + 2) in
      while !j < n && src.[!j] <> '\'' && src.[!j] <> '\n' do
        incr j
      done;
      if !j < n && src.[!j] = '\'' then Some (!j + 1) else None
    end
    else if i + 2 < n && src.[i + 1] <> '\'' && src.[i + 2] = '\'' then
      Some (i + 3)
    else None
  in
  let rec comment depth i =
    if i >= n then i
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (depth + 1) (i + 2)
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then i + 2 else comment (depth - 1) (i + 2)
    end
    else if src.[i] = '"' then begin
      blank i;
      comment depth (skip_string (i + 1))
    end
    else begin
      blank i;
      comment depth (i + 1)
    end
  in
  let rec code i =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      code (comment 1 (i + 2))
    end
    else if src.[i] = '"' then begin
      blank i;
      code (skip_string (i + 1))
    end
    else if src.[i] = '{' then begin
      match raw_delim i with
      | Some (id, j) ->
          for k = i to j - 1 do
            blank k
          done;
          code (skip_raw id j)
      | None -> code (i + 1)
    end
    else if src.[i] = '\'' then begin
      match char_literal_end i with
      | Some j ->
          for k = i to j - 1 do
            blank k
          done;
          code j
      | None -> code (i + 1)
    end
    else code (i + 1)
  in
  code 0;
  Bytes.to_string out

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

let line_of src pos =
  let line = ref 1 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then incr line
  done;
  !line

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* All positions where [word] occurs as a full token in [s]. *)
let word_positions s word =
  let wl = String.length word and sl = String.length s in
  let acc = ref [] in
  let i = ref 0 in
  while !i + wl <= sl do
    if
      String.sub s !i wl = word
      && (!i = 0 || not (is_word_char s.[!i - 1]))
      && (!i + wl = sl || not (is_word_char s.[!i + wl]))
    then acc := !i :: !acc;
    incr i
  done;
  List.rev !acc

let next_token_is s pos word =
  let sl = String.length s in
  let i = ref pos in
  while
    !i < sl && (s.[!i] = ' ' || s.[!i] = '\n' || s.[!i] = '\t' || s.[!i] = '\r')
  do
    incr i
  done;
  let wl = String.length word in
  !i + wl <= sl
  && String.sub s !i wl = word
  && (!i + wl = sl || not (is_word_char s.[!i + wl]))

let lower = String.lowercase_ascii

let contains_ci hay needle =
  let hay = lower hay and needle = lower needle in
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let stripped = strip raw in
  let raw_lines = Array.of_list (String.split_on_char '\n' raw) in
  let findings = ref [] in
  let report line rule message = findings := { path; line; rule; message } :: !findings in
  List.iter
    (fun pos ->
      if next_token_is stripped (pos + 6) "false" then
        report (line_of stripped pos) "forbidden-assert-false"
          "bare 'assert false'; raise a contextful exception instead")
    (word_positions stripped "assert");
  List.iter
    (fun pos ->
      if next_token_is stripped (pos + 3) ".magic" then
        report (line_of stripped pos) "forbidden-obj-magic"
          "Obj.magic defeats the type system")
    (word_positions stripped "Obj");
  let waived line =
    (* [line] is 1-based; look at it and up to 3 preceding raw lines. *)
    let ok = ref false in
    for l = max 1 (line - 3) to line do
      if
        l - 1 < Array.length raw_lines
        && contains_ci raw_lines.(l - 1) "order-insensitive"
      then ok := true
    done;
    !ok
  in
  List.iter
    (fun pos ->
      if
        next_token_is stripped (pos + 7) ".iter"
        || next_token_is stripped (pos + 7) ".fold"
      then begin
        let line = line_of stripped pos in
        if not (waived line) then
          report line "unordered-hashtbl-iter"
            "Hashtbl iteration order is unspecified; justify with an \
             'order-insensitive' comment or iterate a sorted view"
      end)
    (word_positions stripped "Hashtbl");
  if
    Filename.check_suffix path ".ml"
    && not (Sys.file_exists (path ^ "i"))
  then
    report 1 "missing-mli"
      "compilation unit has no sealing .mli interface";
  !findings

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let rec collect path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else collect (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let args =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib" ] | _ :: rest -> rest
  in
  let files = List.sort compare (List.concat_map (fun p -> collect p []) args) in
  let findings = List.concat_map check_file files in
  let findings =
    List.sort
      (fun a b ->
        match compare a.path b.path with 0 -> compare a.line b.line | c -> c)
      findings
  in
  List.iter
    (fun f ->
      Printf.printf "%s:%d: [%s] %s\n" f.path f.line f.rule f.message)
    findings;
  match findings with
  | [] ->
      Printf.printf "lint: %d file(s) clean\n" (List.length files)
  | fs ->
      Printf.printf "lint: %d finding(s) in %d file(s)\n" (List.length fs)
        (List.length files);
      exit 1
