(* Command-line front end: run one or more workloads (comma-separated)
   under one system configuration and print each execution-time breakdown
   and GC/H2 statistics. Multiple workloads run on a domain pool
   (`--jobs`); results print serially in argument order. *)

open Th_sim
module Setups = Th_baselines.Setups
module Spark_profiles = Th_workloads.Spark_profiles
module Giraph_profiles = Th_workloads.Giraph_profiles
module Spark_driver = Th_workloads.Spark_driver
module Giraph_driver = Th_workloads.Giraph_driver
module Run_result = Th_workloads.Run_result
module Streaming_driver = Th_workloads.Streaming_driver
module Gc_stats = Th_psgc.Gc_stats
module Runtime = Th_psgc.Runtime
module H2 = Th_core.H2
module Verify = Th_verify.Verify
module Monitor = Th_resilience.Monitor
module Slo = Th_resilience.Slo

let outcome_name = function
  | Run_result.Completed -> "completed"
  | Run_result.Degraded -> "degraded"
  | Run_result.Oom -> "oom"

let print_result (r : Run_result.t) =
  (match r.Run_result.breakdown with
  | None ->
      Printf.printf "%s: OUT OF MEMORY (%s)\n" r.Run_result.label
        (Option.value ~default:"?" r.Run_result.oom_reason);
      (match r.Run_result.census with
      | Some census -> Format.printf "%a" Th_psgc.Heap_census.pp census
      | None -> ())
  | Some b ->
      Format.printf "%s: %a@." r.Run_result.label Clock.pp_breakdown b);
  (match r.Run_result.outcome with
  | Run_result.Completed -> ()
  | outcome -> Printf.printf "  outcome: %s\n" (outcome_name outcome));
  Printf.printf "  minor GCs: %d   major GCs: %d\n" r.Run_result.minor_gcs
    r.Run_result.major_gcs;
  (match r.Run_result.h2_stats with
  | Some s ->
      Printf.printf
        "  H2: %d objects moved (%s), regions alloc/reclaimed/active: \
         %d/%d/%d, dep nodes: %d\n"
        s.H2.moves_to_h2
        (Size.to_string s.H2.bytes_moved)
        s.H2.regions_allocated s.H2.regions_reclaimed s.H2.regions_active
        s.H2.dep_nodes
  | None -> ());
  (match r.Run_result.h2_device with
  | Some d -> Format.printf "  H2 device: %a@." Th_device.Device.pp_stats d
  | None -> ());
  (match r.Run_result.faults with
  | Some fs -> Th_metrics.Report.print_fault_summary ~label:"run" fs
  | None -> ());
  match r.Run_result.resilience with
  | Some s -> Format.printf "  resilience: %a@." Monitor.pp_summary s
  | None -> ()

let run_spark ?tracer name system threads dram_override faults verify =
  let p = Spark_profiles.by_name name in
  let costs = Costs.with_mutator_threads Setups.default_costs threads in
  let dram =
    if dram_override > 0 then dram_override
    else List.fold_left max 0 p.Spark_profiles.sd_dram_gb
  in
  let heap_gb = dram - Spark_profiles.dr2_gb in
  let setup, label =
    match system with
    | "sd" -> (Setups.spark_sd ~costs ?faults ~heap_gb (), "Spark-SD")
    | "sd-nvm" ->
        ( Setups.spark_sd ~device_kind:Th_device.Device.Nvm_app_direct ~costs
            ?faults ~heap_gb (),
          "Spark-SD/NVM" )
    | "mo" ->
        ( Setups.spark_mo ~costs ~heap_gb:p.Spark_profiles.mo_heap_gb
            ~dram_gb:dram (),
          "Spark-MO" )
    | "ps11" ->
        ( Setups.spark_sd ~collector:Th_psgc.Rt.Ps_jdk11 ~costs ?faults
            ~heap_gb (),
          "PS/JDK11" )
    | "g1" ->
        ( Setups.spark_sd ~collector:Th_psgc.Rt.G1 ~costs ?faults ~heap_gb (),
          "G1/JDK17" )
    | "panthera" -> (Setups.spark_panthera ~costs ~heap_gb:64 (), "Panthera")
    | "th" ->
        ( Setups.spark_teraheap ~costs ~huge_pages:p.Spark_profiles.sequential
            ?faults ~h1_gb:heap_gb ~dr2_gb:Spark_profiles.dr2_gb (),
          "TeraHeap" )
    | "th-nvm" ->
        ( Setups.spark_teraheap ~device_kind:Th_device.Device.Nvm_app_direct
            ~costs ~huge_pages:p.Spark_profiles.sequential ?faults
            ~h1_gb:heap_gb ~dr2_gb:Spark_profiles.dr2_gb (),
          "TeraHeap/NVM" )
    | other -> failwith ("unknown spark system: " ^ other)
  in
  let label = Printf.sprintf "%s %s (DRAM %dGB)" p.Spark_profiles.name label dram in
  Clock.set_tracer setup.Setups.clock tracer;
  let v =
    Verify.attach (Th_spark.Context.runtime setup.Setups.ctx) verify
  in
  let r =
    Spark_driver.run ~label ?h2_device:setup.Setups.h2_device
      ?faults:setup.Setups.faults setup.Setups.ctx p
  in
  (r, v)

let run_giraph ?tracer name system threads faults verify :
    Run_result.t * Verify.t =
  let p = Giraph_profiles.by_name name in
  let costs = Costs.with_mutator_threads Setups.default_costs threads in
  let result =
    match system with
    | "ooc" ->
        let s =
          Setups.giraph_ooc ~costs ?faults
            ~heap_gb:p.Giraph_profiles.ooc_heap_gb ()
        in
        Clock.set_tracer s.Setups.g_clock tracer;
        let v = Verify.attach s.Setups.rt verify in
        ( Giraph_driver.run
            ~label:(p.Giraph_profiles.name ^ " Giraph-OOC")
            s.Setups.rt ~mode:s.Setups.mode ?ooc_device:s.Setups.ooc_device
            ?faults:s.Setups.g_faults p,
          v )
    | "th" ->
        let s =
          Setups.giraph_teraheap ~costs ?faults
            ~h1_gb:p.Giraph_profiles.th_h1_gb
            ~dr2_gb:p.Giraph_profiles.th_dr2_gb ()
        in
        Clock.set_tracer s.Setups.g_clock tracer;
        let v = Verify.attach s.Setups.rt verify in
        ( Giraph_driver.run
            ~label:(p.Giraph_profiles.name ^ " TeraHeap")
            s.Setups.rt ~mode:s.Setups.mode ?h2_device:s.Setups.g_h2_device
            ?faults:s.Setups.g_faults p,
          v )
    | other -> failwith ("unknown giraph system: " ^ other)
  in
  result

(* The streaming service always carries the resilience monitor: circuit
   breaker on the move-to-H2 path, watchdog-armed retry policy, SLO
   compliance over the pause tail. [--soak] upgrades the run to the
   chaos-soak configuration (wear-out fault schedule unless --faults was
   given). *)
let run_streaming ?tracer name threads faults verify slo soak :
    Run_result.t * Verify.t =
  let p =
    match Streaming_driver.by_name name with
    | Some p -> p
    | None -> failwith ("unknown streaming profile: " ^ name)
  in
  let costs = Costs.with_mutator_threads Setups.default_costs threads in
  let faults =
    match faults with
    | Some _ -> faults
    | None -> if soak then Some Fault.wearout else None
  in
  let s =
    Setups.streaming_teraheap ~costs ?faults
      ~h1_gb:p.Streaming_driver.h1_gb ~dr2_gb:p.Streaming_driver.dr2_gb ()
  in
  Clock.set_tracer s.Setups.s_clock tracer;
  let v = Verify.attach s.Setups.s_rt verify in
  let monitor =
    Monitor.attach ~slo:(Option.value slo ~default:Slo.default) s.Setups.s_rt
  in
  let label =
    Printf.sprintf "%s Streaming-TeraHeap" p.Streaming_driver.name
  in
  ( Streaming_driver.run ~label ?h2_device:s.Setups.s_h2_device
      ?faults:s.Setups.s_faults ~monitor s.Setups.s_rt p,
    v )

open Cmdliner

let framework =
  Arg.(
    required
    & pos 0
        (some
           (enum
              [
                ("spark", `Spark);
                ("giraph", `Giraph);
                ("streaming", `Streaming);
              ]))
        None
    & info [] ~docv:"FRAMEWORK" ~doc:"spark, giraph or streaming")

let workload =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"WORKLOAD"
        ~doc:"Spark: PR CC SSSP SVD TR LR LgR SVM BC RL KM; Giraph: PR CDLP \
              WCC BFS SSSP; Streaming: smoke soak. Comma-separate several \
              to run them on the domain pool (see $(b,--jobs)).")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"worker domains for multi-workload runs; 0 means the \
              machine's recommended domain count")

let system =
  Arg.(
    value & opt string "th"
    & info [ "s"; "system" ] ~docv:"SYSTEM"
        ~doc:"Spark: sd, sd-nvm, mo, ps11, g1, panthera, th, th-nvm. Giraph: \
              ooc, th.")

let threads =
  Arg.(
    value & opt int 8
    & info [ "t"; "threads" ] ~docv:"N" ~doc:"executor mutator threads")

let dram =
  Arg.(
    value & opt int 0
    & info [ "d"; "dram" ] ~docv:"GB"
        ~doc:"total DRAM (paper GB); 0 uses the workload's largest Figure-6 \
              configuration (Spark only)")

let fault_spec_conv =
  let parse s =
    match Fault.parse s with
    | Result.Ok plan -> Ok plan
    | Result.Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"SPEC"
    (parse, fun ppf p -> Format.fprintf ppf "%s" (Fault.plan_to_string p))

let faults =
  Arg.(
    value
    & opt (some fault_spec_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:"Fault-injection plan for the storage devices: 'default', \
              'harsh', or comma-separated key=value pairs (seed, read_err, \
              write_err, spike, spike_factor, spike_us, stall, stall_us, \
              full, full_us), e.g. 'default,seed=7'. Phased schedules \
              chain phase(...) groups with dur_us/dur_ms/dur_s durations \
              — e.g. 'phase(none,dur_ms=80),phase(harsh,dur_ms=20),cycle' \
              — and 'wearout'/'bursty' name preset schedules. Same seed, \
              same injected fault sequence.")

let slo_spec_conv =
  let parse s =
    match Slo.parse s with
    | Result.Ok spec -> Ok spec
    | Result.Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"SLO"
    (parse, fun ppf s -> Format.fprintf ppf "%s" (Slo.to_string s))

let slo =
  Arg.(
    value
    & opt (some slo_spec_conv) None
    & info [ "slo" ] ~docv:"SLO"
        ~doc:"Service-level objective for streaming runs, e.g. \
              'p99_ms=40,degraded_max=0.25': p99 GC-pause budget and the \
              largest acceptable fraction of run time with the H2 circuit \
              breaker open. The run report includes pause tails \
              (p50/p99/p999) and per-objective compliance.")

let soak =
  Arg.(
    value & flag
    & info [ "soak" ]
        ~doc:"Chaos-soak mode for streaming runs: applies the 'wearout' \
              phased fault schedule when $(b,--faults) is not given. \
              Combine with $(b,--verify) safepoint and $(b,--trace) for \
              the full soak harness.")

let verify_level =
  Arg.(
    value
    & opt
        (enum
           [
             ("off", Verify.Off);
             ("safepoint", Verify.Safepoint);
             ("paranoid", Verify.Paranoid);
           ])
        Verify.Off
    & info [ "verify" ] ~docv:"LEVEL"
        ~doc:
          "Heap-state sanitizer level: 'off', 'safepoint' (check H1/H2 \
           invariants at every GC safepoint) or 'paranoid' (additionally \
           run a from-scratch reachability census). Violations print to \
           stderr and make the run exit non-zero; stdout is byte-identical \
           to an unverified run.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a flight-recorder trace of the run (GC phases, \
           safepoints, H2 region/card activity, device I/O, faults, \
           framework stages) and write it to $(docv). Off by default; \
           when off, no recording happens and stdout is byte-identical. \
           With several workloads each gets its own trace lane, merged \
           in argument order — the file does not depend on $(b,--jobs).")

let trace_format =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("text", `Text) ]) `Chrome
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "'chrome' (trace-event JSON, loadable in Perfetto or \
           chrome://tracing) or 'text' (the compact deterministic form \
           used by the golden tests).")

let write_trace ~path ~format recorders =
  let events = Th_trace.Export.merge recorders in
  let data =
    match format with
    | `Chrome -> Th_trace.Export.to_chrome_json events
    | `Text -> Th_trace.Export.to_text events
  in
  let oc = open_out path in
  output_string oc data;
  close_out oc

(* Cost hint for the scheduler: the same heap-size × iteration heuristic
   the bench harness uses (bench/runners.ml). Unknown workload names get
   the default cost — the cell itself reports the error when it runs. *)
let cost_hint fw name dram =
  match fw with
  | `Spark -> (
      match Spark_profiles.by_name name with
      | p ->
          let dram =
            if dram > 0 then dram
            else List.fold_left max 0 p.Spark_profiles.sd_dram_gb
          in
          float_of_int (max 1 dram * max 1 p.Spark_profiles.iterations)
      | exception _ -> Th_exec.Cell.default_cost)
  | `Giraph -> (
      match Giraph_profiles.by_name name with
      | p ->
          float_of_int
            (max 1 p.Giraph_profiles.dram_gb
            * max 1 p.Giraph_profiles.dataset_gb)
      | exception _ -> Th_exec.Cell.default_cost)
  | `Streaming -> Th_exec.Cell.default_cost

(* Split the WORKLOAD argument on commas, run every cell on the
   work-stealing scheduler, then print the results serially in argument
   order. *)
let run_all fw workloads sys thr dram faults jobs verify trace trace_format
    slo soak =
  let names = String.split_on_char ',' workloads in
  let recorders =
    match trace with
    | None -> []
    | Some _ ->
        List.mapi (fun lane _ -> Th_trace.Recorder.create ~lane ()) names
  in
  let tracer_of lane =
    match recorders with [] -> None | rs -> Some (List.nth rs lane)
  in
  let cell lane name =
    Th_exec.Cell.make ~label:name ~cost:(cost_hint fw name dram) ~lane
      (fun () ->
        let tracer = tracer_of lane in
        match fw with
        | `Spark -> run_spark ?tracer name sys thr dram faults verify
        | `Giraph -> run_giraph ?tracer name sys thr faults verify
        | `Streaming -> run_streaming ?tracer name thr faults verify slo soak)
  in
  let cells = List.mapi cell names in
  let results =
    match cells with
    | [ c ] -> [ c.Th_exec.Cell.run () ]
    | _ ->
        let jobs =
          if jobs > 0 then jobs else Th_exec.Scheduler.default_jobs ()
        in
        Th_exec.Scheduler.with_scheduler ~jobs (fun sched ->
            Th_exec.Scheduler.run_cells sched cells)
  in
  List.iter (fun (r, _) -> print_result r) results;
  (match trace with
  | None -> ()
  | Some path -> write_trace ~path ~format:trace_format recorders);
  let total_violations =
    List.fold_left (fun acc (_, v) -> acc + Verify.violation_count v) 0 results
  in
  if total_violations > 0 then begin
    List.iter
      (fun ((r : Run_result.t), v) ->
        if Verify.violation_count v > 0 then
          Printf.eprintf "%s: %s" r.Run_result.label (Verify.report v))
      results;
    exit 1
  end

let cmd =
  let doc = "Run one big-data workload on the TeraHeap simulator" in
  Cmd.v
    (Cmd.info "teraheap_sim" ~doc)
    Term.(
      const run_all $ framework $ workload $ system $ threads $ dram $ faults
      $ jobs $ verify_level $ trace_file $ trace_format $ slo $ soak)

let () = exit (Cmd.eval cmd)
