(* Wall-clock perf tracker for the benchmark harness: records per-section
   and total wall/CPU time plus the worker count, and serialises them to
   BENCH_harness.json so the harness's own performance trajectory is
   versioned alongside the simulation results.

   Schema 2: every section is stamped with the jobs count it actually
   ran at, its cell count, the summed per-cell wall time (the
   serial-equivalent cost measured inside the scheduler) and its render
   time; the top level carries a *measured* speedup-vs-serial —
   serial-equivalent seconds over actual wall seconds — next to the
   older cpu/wall estimate. [write] merge-updates the existing file:
   sections are keyed by name, so `bench soak` refreshes the soak entry
   without clobbering the sections a previous full run recorded. *)

type section = {
  name : string;
  jobs : int;
  cells : int;
  cell_wall_s : float;  (* summed per-cell wall time: serial-equivalent *)
  render_wall_s : float;
}

type t = {
  jobs : int;
  sections : section list;
  total_wall_s : float;
  total_cpu_s : float;
}

let schema = "teraheap-bench-harness/2"

let default_path = "BENCH_harness.json"

let section_wall_s s = s.cell_wall_s +. s.render_wall_s

(* Serial-equivalent seconds of this run: what the same cells plus
   renders cost end to end, summed as if executed back to back. *)
let serial_equiv_s t =
  List.fold_left (fun acc s -> acc +. section_wall_s s) 0.0 t.sections

(* Measured speedup: serial-equivalent over actual wall. Unlike the
   cpu/wall estimate below, both terms are monotonic-clock measurements
   of this very run, so scheduler idle time and steal overhead show up
   honestly. *)
let speedup_vs_serial_measured t =
  if t.total_wall_s > 0.0 then serial_equiv_s t /. t.total_wall_s else 1.0

(* [Sys.time] sums CPU time over every domain, so on a CPU-bound harness
   it approximates what a serial run would need in wall time; the ratio
   to actual wall time estimates the speedup. Kept for continuity with
   schema 1. *)
let speedup_vs_serial_est t =
  if t.total_wall_s > 0.0 then t.total_cpu_s /. t.total_wall_s else 1.0

(* ------------------------------------------------------------------ *)
(* JSON writing                                                        *)

let json_float f =
  if not (Float.is_finite f) then "0.0" else Printf.sprintf "%.6f" f

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json_sections t ~sections =
  let section s =
    Printf.sprintf
      "    { \"name\": %s, \"jobs\": %d, \"cells\": %d, \"cell_wall_s\": %s, \
       \"render_wall_s\": %s, \"wall_s\": %s }"
      (json_string s.name) s.jobs s.cells
      (json_float s.cell_wall_s)
      (json_float s.render_wall_s)
      (json_float (section_wall_s s))
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"schema\": %s," (json_string schema);
      Printf.sprintf "  \"jobs\": %d," t.jobs;
      Printf.sprintf "  \"total_wall_s\": %s," (json_float t.total_wall_s);
      Printf.sprintf "  \"total_cpu_s\": %s," (json_float t.total_cpu_s);
      Printf.sprintf "  \"serial_equiv_s\": %s," (json_float (serial_equiv_s t));
      Printf.sprintf "  \"speedup_vs_serial_measured\": %s,"
        (json_float (speedup_vs_serial_measured t));
      Printf.sprintf "  \"speedup_vs_serial_est\": %s,"
        (json_float (speedup_vs_serial_est t));
      "  \"sections\": [";
      String.concat ",\n" (List.map section sections);
      "  ]";
      "}";
      "";
    ]

let to_json t = to_json_sections t ~sections:t.sections

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader — just enough to merge our own output back in.
   Tolerant: any parse failure yields no sections and the next write
   starts the file fresh.                                              *)

type jv =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of jv list
  | Jobj of (string * jv) list

exception Bad_json

let parse_json_res (s : string) : (jv, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance () else raise Bad_json
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else raise Bad_json
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise Bad_json;
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then raise Bad_json;
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then raise Bad_json;
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> raise Bad_json);
              pos := !pos + 4
          | _ -> raise Bad_json);
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> raise Bad_json
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if match peek () with Some '}' -> true | _ -> false then begin
          advance ();
          Jobj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> raise Bad_json
          in
          members ();
          Jobj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if match peek () with Some ']' -> true | _ -> false then begin
          advance ();
          Jarr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> raise Bad_json
          in
          elements ();
          Jarr (List.rev !items)
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> raise Bad_json
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos = n then Ok v
      else Error (Printf.sprintf "trailing bytes at offset %d" !pos)
  | exception Bad_json ->
      (* [pos] stopped where the parse gave up, so the offset in the
         error is the first malformed construct. *)
      Error (Printf.sprintf "malformed JSON at offset %d" !pos)

let field key = function
  | Jobj fields -> List.assoc_opt key fields
  | _ -> None

let as_float = function
  | Some (Jnum f) -> Some f
  | _ -> None

let as_int v = Option.map int_of_float (as_float v)

(* Accept both schema 1 ({ name, wall_s, cpu_s }, jobs only at the top
   level) and schema 2 sections. *)
let sections_of_json j =
  let top_jobs = Option.value ~default:1 (as_int (field "jobs" j)) in
  match field "sections" j with
  | Some (Jarr items) ->
      List.filter_map
        (fun item ->
          match field "name" item with
          | Some (Jstr name) ->
              let f key ~fallback =
                match as_float (field key item) with
                | Some v -> v
                | None -> fallback
              in
              Some
                {
                  name;
                  jobs =
                    Option.value ~default:top_jobs (as_int (field "jobs" item));
                  cells = Option.value ~default:0 (as_int (field "cells" item));
                  cell_wall_s =
                    f "cell_wall_s" ~fallback:(f "wall_s" ~fallback:0.0);
                  render_wall_s = f "render_wall_s" ~fallback:0.0;
                }
          | _ -> None)
        items
  | _ -> []

(* Total entry point for external callers: [Bad_json] never crosses
   this module's boundary (fault-barrier), and a malformed document
   comes back as a positioned error instead of a silent []. *)
let parse_sections contents =
  Result.map sections_of_json (parse_json_res contents)

let read_sections path =
  match
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))
    end
    else None
  with
  | None -> []
  | Some contents -> (
      match parse_sections contents with Ok sections -> sections | Error _ -> [])
  | exception Sys_error _ -> []

(* Sections from [previous] that this run did not re-record keep their
   old entry and relative order; re-run sections are updated in place
   and new ones are appended in run order. *)
let merge ~previous current =
  let kept_or_updated =
    List.map
      (fun old ->
        match List.find_opt (fun s -> s.name = old.name) current with
        | Some updated -> updated
        | None -> old)
      previous
  in
  let appended =
    List.filter (fun s -> not (List.exists (fun o -> o.name = s.name) previous))
      current
  in
  kept_or_updated @ appended

let write ?(path = default_path) t =
  let previous = read_sections path in
  let merged = merge ~previous t.sections in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json_sections t ~sections:merged))
