(* Wall-clock perf tracker for the benchmark harness: records per-section
   and total wall/CPU time plus the worker count, and serialises them to
   BENCH_harness.json so the harness's own performance trajectory is
   versioned alongside the simulation results. *)

type section = { name : string; wall_s : float; cpu_s : float }

type t = {
  jobs : int;
  sections : section list;
  total_wall_s : float;
  total_cpu_s : float;
}

let schema = "teraheap-bench-harness/1"

let default_path = "BENCH_harness.json"

(* [Sys.time] sums CPU time over every domain, so on a CPU-bound harness
   it approximates what a serial run would need in wall time; the ratio
   to actual wall time estimates the speedup without paying for a second,
   serial run of the whole suite. *)
let speedup_vs_serial_est t =
  if t.total_wall_s > 0.0 then t.total_cpu_s /. t.total_wall_s else 1.0

let json_float f =
  if not (Float.is_finite f) then "0.0" else Printf.sprintf "%.6f" f

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  let section s =
    Printf.sprintf "    { \"name\": %s, \"wall_s\": %s, \"cpu_s\": %s }"
      (json_string s.name) (json_float s.wall_s) (json_float s.cpu_s)
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"schema\": %s," (json_string schema);
      Printf.sprintf "  \"jobs\": %d," t.jobs;
      Printf.sprintf "  \"total_wall_s\": %s," (json_float t.total_wall_s);
      Printf.sprintf "  \"total_cpu_s\": %s," (json_float t.total_cpu_s);
      Printf.sprintf "  \"speedup_vs_serial_est\": %s,"
        (json_float (speedup_vs_serial_est t));
      "  \"sections\": [";
      String.concat ",\n" (List.map section t.sections);
      "  ]";
      "}";
      "";
    ]

let write ?(path = default_path) t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json t))
