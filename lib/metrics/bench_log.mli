(** Wall-clock perf tracker for the benchmark harness.

    Serialises per-section and total wall/CPU time plus the worker
    count to a small JSON file ([BENCH_harness.json] by default) so
    the harness's own performance trajectory accumulates per run/PR.

    Schema 2: sections are stamped with the jobs count they ran at,
    their cell count, the summed per-cell wall time measured inside the
    scheduler (the serial-equivalent cost) and their render time; the
    top level records a measured speedup-vs-serial. {!write}
    merge-updates the existing file keyed by section name, so a partial
    run (e.g. [bench soak]) refreshes its own sections without
    clobbering the rest. *)

type section = {
  name : string;
  jobs : int;  (** the jobs count this section actually ran at *)
  cells : int;
  cell_wall_s : float;
      (** summed per-cell wall seconds: the serial-equivalent cost *)
  render_wall_s : float;
}

type t = {
  jobs : int;
  sections : section list;  (** sections of {e this} run only *)
  total_wall_s : float;
  total_cpu_s : float;
}

val schema : string
(** Schema identifier embedded in the JSON ("teraheap-bench-harness/2"). *)

val default_path : string
(** "BENCH_harness.json". *)

val section_wall_s : section -> float
(** [cell_wall_s + render_wall_s]. *)

val serial_equiv_s : t -> float
(** Serial-equivalent seconds of this run: every cell and render summed
    as if executed back to back. *)

val speedup_vs_serial_measured : t -> float
(** [serial_equiv_s / total_wall_s] — both terms are monotonic-clock
    measurements of this very run, so this is a measured speedup, not
    an estimate. *)

val speedup_vs_serial_est : t -> float
(** [total_cpu_s / total_wall_s]: the schema-1 estimate ([Sys.time]
    sums CPU over all domains), kept for continuity. *)

val to_json : t -> string
(** This run only, without merging. *)

val parse_sections : string -> (section list, string) result
(** Total parse of a harness JSON document held in a string: [Ok]
    with its sections (schema 1 or 2; [[]] when the document has
    none), [Error] naming the byte offset of the first malformed
    construct. Never raises. *)

val read_sections : string -> section list
(** Parse the sections out of an existing harness JSON (schema 1 or 2);
    [[]] if the file is missing or unparsable. *)

val merge : previous:section list -> section list -> section list
(** Update [previous] with this run's sections keyed by name: re-run
    sections are replaced in place, new ones appended in run order. *)

val write : ?path:string -> t -> unit
(** Merge this run's sections into the existing file (if any) and
    rewrite it; top-level totals and speedups always describe this
    run. *)
