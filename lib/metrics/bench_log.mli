(** Wall-clock perf tracker for the benchmark harness.

    Serialises per-section and total wall/CPU time plus the worker count
    to a small JSON file ([BENCH_harness.json] by default) so the
    harness's own performance trajectory accumulates per run/PR. *)

type section = { name : string; wall_s : float; cpu_s : float }

type t = {
  jobs : int;
  sections : section list;
  total_wall_s : float;
  total_cpu_s : float;
}

val schema : string
(** Schema identifier embedded in the JSON ("teraheap-bench-harness/1"). *)

val default_path : string
(** "BENCH_harness.json". *)

val speedup_vs_serial_est : t -> float
(** [total_cpu_s / total_wall_s]: since [Sys.time] sums CPU over all
    domains and the harness is CPU-bound, this estimates the speedup over
    a serial run without re-running the suite serially. *)

val to_json : t -> string

val write : ?path:string -> t -> unit
