(** Cumulative-distribution helpers for Figure 10. *)

val points : ?buckets:int -> float list -> (float * float) list
(** [points samples] sorts the samples and returns [(x_pct, value)] pairs:
    the value at each cumulative percentile, downsampled to [buckets]
    (default 20) evenly spaced percentiles. *)

val percentile : float list -> float -> float
(** [percentile samples p] is the nearest-rank p-th percentile (p in
    [0, 100]): the smallest sample with at least p% of the distribution
    at or below it. 0.0 on an empty list. *)

val fraction_at_or_below : float list -> float -> float
(** [fraction_at_or_below samples v] is the CDF evaluated at [v]. *)
