open Th_sim
module Fault = Th_sim.Fault

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape cells)

let to_string ~header rows =
  String.concat "\n" (List.map row_to_string (header :: rows)) ^ "\n"

let to_channel oc ~header rows = output_string oc (to_string ~header rows)

let fault_header =
  [
    "configuration";
    "outcome";
    "faults_injected";
    "read_errors";
    "write_errors";
    "spiked_ops";
    "stalls";
    "enospc_rejections";
    "retries";
    "backoff_s";
    "penalty_s";
    "exhausted_retries";
    "recomputes";
    "h2_degraded_events";
    "h2_objects_deferred";
  ]

let fault_row ~label ~outcome (fs : Fault.stats) =
  let i = string_of_int in
  let s ns = Printf.sprintf "%.6f" (ns /. 1e9) in
  [
    label;
    outcome;
    i (Fault.faults_injected fs);
    i fs.Fault.read_errors;
    i fs.Fault.write_errors;
    i fs.Fault.spiked_ops;
    i fs.Fault.stalls;
    i fs.Fault.enospc_rejections;
    i fs.Fault.retries;
    s fs.Fault.backoff_ns;
    s fs.Fault.penalty_ns;
    i fs.Fault.exhausted_retries;
    i fs.Fault.recomputes;
    i fs.Fault.h2_degraded_events;
    i fs.Fault.h2_objects_deferred;
  ]

let breakdown_header =
  [ "configuration"; "other_s"; "serde_io_s"; "minor_gc_s"; "major_gc_s"; "total_s" ]

let breakdown_row ~label b =
  match b with
  | None -> [ label; "OOM"; "OOM"; "OOM"; "OOM"; "OOM" ]
  | Some b ->
      let s ns = Printf.sprintf "%.6f" (ns /. 1e9) in
      [
        label;
        s b.Clock.other_ns;
        s b.Clock.serde_io_ns;
        s b.Clock.minor_gc_ns;
        s b.Clock.major_gc_ns;
        s (Clock.total_ns b);
      ]
