(** Rendering of experiment results.

    The bench harness prints, for every figure of the paper, the same rows
    or series the figure plots: normalized execution-time breakdowns
    (other / S/D+I/O / minor GC / major GC), OOM markers, and CSV-ish
    tables. *)

type row = {
  label : string;
  breakdown : Th_sim.Clock.breakdown option;  (** [None] marks an OOM bar *)
}

val row : string -> Th_sim.Clock.breakdown -> row

val oom : string -> row

val print_breakdown_table :
  ?normalize_to:float -> title:string -> row list -> unit
(** Print rows with per-category fractions, normalized to
    [normalize_to] (default: the total of the first non-OOM row, as the
    paper normalizes each plot to its first bar). When the [TH_CSV_DIR]
    environment variable names a directory, the raw (un-normalized)
    breakdown is also written there as [<title>.csv]. *)

val first_total : row list -> float option

val print_series : title:string -> header:string list -> string list list -> unit
(** Generic aligned table for non-breakdown figures. *)

val print_fault_summary : label:string -> Th_sim.Fault.stats -> unit
(** Print a run's fault-injection and recovery counters: injected faults
    by kind, retry/backoff totals, exhausted retries, recomputations and
    H2 degraded-mode events. *)

val speedup : baseline:Th_sim.Clock.breakdown -> Th_sim.Clock.breakdown -> float
(** [speedup ~baseline b] is the fractional improvement of [b] over
    [baseline]: [(t_base - t) / t_base]. *)

val pct : float -> string
(** Format a fraction as a percentage string. *)
