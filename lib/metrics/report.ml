open Th_sim
module Fault = Th_sim.Fault

type row = { label : string; breakdown : Clock.breakdown option }

(* When TH_CSV_DIR is set, every breakdown table is also written as a CSV
   file there (the artifact-style output the paper's plotting scripts
   consume). *)
let csv_sink title rows =
  match Sys.getenv_opt "TH_CSV_DIR" with
  | None -> ()
  | Some dir ->
      let sanitized =
        String.map
          (fun c ->
            match c with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
            | _ -> '_')
          title
      in
      let path = Filename.concat dir (sanitized ^ ".csv") in
      let oc = open_out path in
      Csv.to_channel oc ~header:Csv.breakdown_header
        (List.map (fun r -> Csv.breakdown_row ~label:r.label r.breakdown) rows);
      close_out oc

let row label b = { label; breakdown = Some b }

let oom label = { label; breakdown = None }

let first_total rows =
  List.find_map
    (fun r -> Option.map Clock.total_ns r.breakdown)
    rows

let print_breakdown_table ?normalize_to ~title rows =
  let base =
    match normalize_to with
    | Some x -> x
    | None -> ( match first_total rows with Some x -> x | None -> 1.0)
  in
  let base = if base <= 0.0 then 1.0 else base in
  csv_sink title rows;
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-28s %9s %9s %9s %9s %9s\n" "configuration" "other"
    "s/d+io" "minorGC" "majorGC" "total";
  List.iter
    (fun r ->
      match r.breakdown with
      | None -> Printf.printf "%-28s %s\n" r.label "OOM"
      | Some b ->
          let n x = x /. base in
          Printf.printf "%-28s %9.3f %9.3f %9.3f %9.3f %9.3f\n" r.label
            (n b.Clock.other_ns) (n b.Clock.serde_io_ns)
            (n b.Clock.minor_gc_ns) (n b.Clock.major_gc_ns)
            (n (Clock.total_ns b)))
    rows

let print_series ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w r ->
            match List.nth_opt r i with
            | Some cell -> max w (String.length cell)
            | None -> w)
          (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Printf.printf "%-*s  " w cell)
      cells;
    print_newline ()
  in
  print_row header;
  List.iter print_row rows

let print_fault_summary ~label (fs : Fault.stats) =
  Printf.printf "  faults[%s]: %d injected (%dr/%dw err, %d spiked, %d stalls, %d enospc)\n"
    label
    (Fault.faults_injected fs)
    fs.Fault.read_errors fs.Fault.write_errors fs.Fault.spiked_ops
    fs.Fault.stalls fs.Fault.enospc_rejections;
  Printf.printf
    "    recovery: %d retries (%.3f ms backoff, %.3f ms penalty), %d exhausted, %d recomputes\n"
    fs.Fault.retries
    (fs.Fault.backoff_ns /. 1e6)
    (fs.Fault.penalty_ns /. 1e6)
    fs.Fault.exhausted_retries fs.Fault.recomputes;
  if fs.Fault.h2_degraded_events > 0 then
    Printf.printf "    h2 degraded mode: %d events, %d objects left in H1\n"
      fs.Fault.h2_degraded_events fs.Fault.h2_objects_deferred

let speedup ~baseline b =
  let tb = Clock.total_ns baseline and t = Clock.total_ns b in
  if tb <= 0.0 then 0.0 else (tb -. t) /. tb

let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
