(** Minimal CSV rendering for experiment results.

    The artifact workflow of the paper produces CSV files consumed by its
    plotting scripts; this module provides the same escape hatch:
    [to_channel] writes RFC-4180-style rows (quoting only when needed). *)

val escape : string -> string
(** Quote a field if it contains a comma, quote or newline. *)

val row_to_string : string list -> string

val to_string : header:string list -> string list list -> string

val to_channel : out_channel -> header:string list -> string list list -> unit

val breakdown_row :
  label:string -> Th_sim.Clock.breakdown option -> string list
(** [label, other_s, serde_io_s, minor_gc_s, major_gc_s, total_s] with
    ["OOM"] in every time column for failed runs. *)

val breakdown_header : string list

val fault_row :
  label:string -> outcome:string -> Th_sim.Fault.stats -> string list
(** One row of fault-injection counters for a run; [outcome] is the
    run-outcome name ("completed", "degraded", "oom"). *)

val fault_header : string list
