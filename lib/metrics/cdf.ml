let points ?(buckets = 20) samples =
  match samples with
  | [] -> []
  | _ ->
      let arr = Array.of_list samples in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      List.init (buckets + 1) (fun i ->
          let pct = float_of_int i /. float_of_int buckets in
          let idx =
            min (n - 1) (int_of_float (pct *. float_of_int (n - 1)))
          in
          (100.0 *. pct, arr.(idx)))

let percentile samples p =
  match samples with
  | [] -> 0.0
  | _ ->
      let arr = Array.of_list samples in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let p = Float.max 0.0 (Float.min 100.0 p) in
      (* Nearest-rank: the smallest sample with at least p% of the mass
         at or below it. *)
      let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
      arr.(max 0 (min (n - 1) (rank - 1)))

let fraction_at_or_below samples v =
  match samples with
  | [] -> 0.0
  | _ ->
      let below = List.length (List.filter (fun x -> x <= v) samples) in
      float_of_int below /. float_of_int (List.length samples)
