(** Simulated time.

    Every modelled operation charges simulated nanoseconds to one of four
    categories matching the paper's execution-time breakdowns (§6):
    mutator ("other") time, serialization + I/O wait time, minor-GC time and
    major-GC time. The clock is the single source of truth for a run's
    end-to-end time. *)

type category =
  | Other  (** mutator computation, including page-fault I/O wait *)
  | Serde_io  (** serialization/deserialization and explicit off-heap I/O *)
  | Minor_gc
  | Major_gc

type breakdown = {
  other_ns : float;
  serde_io_ns : float;
  minor_gc_ns : float;
  major_gc_ns : float;
}

type t

val create : unit -> t

val advance : t -> category -> float -> unit
(** [advance t cat ns] adds [ns] simulated nanoseconds to [cat].
    Negative charges are rejected with [Invalid_argument]. *)

val now_ns : t -> float
(** Total simulated time elapsed so far. *)

val breakdown : t -> breakdown

val total_ns : breakdown -> float

val category_ns : breakdown -> category -> float

val sub : breakdown -> breakdown -> breakdown
(** [sub later earlier] is the per-category difference; used for measuring
    a phase of a run. *)

val set_tracer : t -> Th_trace.Recorder.t option -> unit
(** Attach (or detach) a flight recorder. Components sharing this clock
    emit trace events through it when one is attached; with [None] (the
    default) every emission site reduces to a single [match] on this
    field, so tracing is free when off. *)

val tracer : t -> Th_trace.Recorder.t option

val reset : t -> unit
(** Zeroes the time categories; the attached tracer, if any, stays. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
