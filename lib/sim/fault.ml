type spec = {
  seed : int64;
  read_error_rate : float;
  write_error_rate : float;
  spike_rate : float;
  spike_factor : float;
  spike_duration_ns : float;
  stall_rate : float;
  stall_ns : float;
  full_rate : float;
  full_duration_ns : float;
}

let zero =
  {
    seed = 1L;
    read_error_rate = 0.0;
    write_error_rate = 0.0;
    spike_rate = 0.0;
    spike_factor = 1.0;
    spike_duration_ns = 0.0;
    stall_rate = 0.0;
    stall_ns = 0.0;
    full_rate = 0.0;
    full_duration_ns = 0.0;
  }

(* Rates are per device operation. A simulated run issues 1e5–1e7 device
   ops, so 1e-4 yields a steady trickle of transient errors while 1e-6
   windows stay rare events. Spike episodes model NVMe internal GC /
   thermal throttling: ~8x latency for a few hundred microseconds. *)
let default_plan =
  {
    zero with
    read_error_rate = 2e-4;
    write_error_rate = 2e-4;
    spike_rate = 5e-5;
    spike_factor = 8.0;
    spike_duration_ns = 200_000.0;
    stall_rate = 1e-4;
    stall_ns = 50_000.0;
    full_rate = 2e-6;
    full_duration_ns = 500_000.0;
  }

let harsh =
  {
    zero with
    read_error_rate = 2e-3;
    write_error_rate = 2e-3;
    spike_rate = 5e-4;
    spike_factor = 16.0;
    spike_duration_ns = 500_000.0;
    stall_rate = 1e-3;
    stall_ns = 100_000.0;
    full_rate = 5e-5;
    full_duration_ns = 2_000_000.0;
  }

(* ------------------------------------------------------------------ *)
(* Phased plans                                                        *)

type plan = { phases : (spec * float) list; cycle : bool }

let static s = { phases = [ (s, infinity) ]; cycle = false }

let scale_rates k s =
  {
    s with
    read_error_rate = Float.min 1.0 (s.read_error_rate *. k);
    write_error_rate = Float.min 1.0 (s.write_error_rate *. k);
    spike_rate = Float.min 1.0 (s.spike_rate *. k);
    stall_rate = Float.min 1.0 (s.stall_rate *. k);
    full_rate = Float.min 1.0 (s.full_rate *. k);
  }

(* A device aging over the run: a fresh drive injects a quarter of the
   moderate rates, then error clustering sets in and each later phase
   quadruples them, ending worn out (16x default, harsh-grade spikes)
   for the rest of the run. Durations are simulated seconds, sized for
   the long-horizon soak workloads rather than the batch jobs. *)
let wearout =
  {
    phases =
      [
        (scale_rates 0.25 default_plan, 2e9);
        (default_plan, 5e9);
        (scale_rates 4.0 default_plan, 10e9);
        ({ (scale_rates 16.0 default_plan) with spike_factor = 16.0 }, infinity);
      ];
    cycle = false;
  }

(* Clustered fault episodes: long quiet stretches with short storms of
   harsh-grade faults, repeating for the whole run. *)
let bursty =
  { phases = [ (zero, 80_000_000.0); (harsh, 20_000_000.0) ]; cycle = true }

let to_string s =
  Printf.sprintf
    "seed=%Ld,read_err=%g,write_err=%g,spike=%g,spike_factor=%g,spike_us=%g,\
     stall=%g,stall_us=%g,full=%g,full_us=%g"
    s.seed s.read_error_rate s.write_error_rate s.spike_rate s.spike_factor
    (s.spike_duration_ns /. 1e3)
    s.stall_rate
    (s.stall_ns /. 1e3)
    s.full_rate
    (s.full_duration_ns /. 1e3)

let plan_to_string p =
  match p with
  | { phases = [ (s, d) ]; cycle = false } when d = infinity -> to_string s
  | { phases; cycle } ->
      let phase_str (s, d) =
        if d = infinity then Printf.sprintf "phase(%s)" (to_string s)
        else Printf.sprintf "phase(%s,dur_us=%g)" (to_string s) (d /. 1e3)
      in
      String.concat "," (List.map phase_str phases)
      ^ if cycle then ",cycle" else ""

(* Split on commas at parenthesis depth 0, so a phase(...) field keeps
   its inner comma-separated spec intact. *)
let split_fields str =
  let out = ref [] and buf = Buffer.create 32 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          out := Buffer.contents buf :: !out;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    str;
  out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out

(* Per-key validation: rate keys are probabilities, durations are
   non-negative simulated time, and the spike factor is a latency
   multiplier of at least 1. *)
let apply_spec_field spec field =
  match field with
  | "" -> Result.Ok spec
  | "none" -> Result.Ok { zero with seed = spec.seed }
  | "default" -> Result.Ok { default_plan with seed = spec.seed }
  | "harsh" -> Result.Ok { harsh with seed = spec.seed }
  | _ -> (
      match String.index_opt field '=' with
      | None -> Result.Error (Printf.sprintf "fault spec: missing '=' in %S" field)
      | Some i -> (
          let key = String.sub field 0 i in
          let v = String.sub field (i + 1) (String.length field - i - 1) in
          let float_v () =
            match float_of_string_opt v with
            | Some f when f >= 0.0 -> Result.Ok f
            | _ ->
                Result.Error
                  (Printf.sprintf "fault spec: bad value %S for %s" v key)
          in
          let rate_v () =
            match float_of_string_opt v with
            | Some f when f >= 0.0 && f <= 1.0 -> Result.Ok f
            | Some f ->
                Result.Error
                  (Printf.sprintf
                     "fault spec: %s=%g is not a probability (want 0..1)" key f)
            | None ->
                Result.Error
                  (Printf.sprintf "fault spec: bad value %S for %s" v key)
          in
          let factor_v () =
            match float_of_string_opt v with
            | Some f when f >= 1.0 -> Result.Ok f
            | Some f ->
                Result.Error
                  (Printf.sprintf
                     "fault spec: %s=%g is not a slowdown factor (want >= 1)"
                     key f)
            | None ->
                Result.Error
                  (Printf.sprintf "fault spec: bad value %S for %s" v key)
          in
          let us_v () = Result.map (fun f -> f *. 1e3) (float_v ()) in
          match key with
          | "seed" -> (
              match Int64.of_string_opt v with
              | Some s -> Result.Ok { spec with seed = s }
              | None ->
                  Result.Error (Printf.sprintf "fault spec: bad seed %S" v))
          | "read_err" | "re" ->
              Result.map (fun f -> { spec with read_error_rate = f }) (rate_v ())
          | "write_err" | "we" ->
              Result.map (fun f -> { spec with write_error_rate = f }) (rate_v ())
          | "spike" ->
              Result.map (fun f -> { spec with spike_rate = f }) (rate_v ())
          | "spike_factor" ->
              Result.map (fun f -> { spec with spike_factor = f }) (factor_v ())
          | "spike_us" ->
              Result.map (fun f -> { spec with spike_duration_ns = f }) (us_v ())
          | "stall" ->
              Result.map (fun f -> { spec with stall_rate = f }) (rate_v ())
          | "stall_us" ->
              Result.map (fun f -> { spec with stall_ns = f }) (us_v ())
          | "full" ->
              Result.map (fun f -> { spec with full_rate = f }) (rate_v ())
          | "full_us" ->
              Result.map (fun f -> { spec with full_duration_ns = f }) (us_v ())
          | _ -> Result.Error (Printf.sprintf "fault spec: unknown key %S" key)))

(* One phase(...) field: the usual spec syntax plus a phase duration
   ([dur_us], [dur_ms] or [dur_s]); omitting the duration makes the
   phase hold to the end of the run (legal for the last phase only). *)
let parse_phase inner =
  let fields = split_fields inner in
  List.fold_left
    (fun acc field ->
      Result.bind acc (fun (spec, dur) ->
          let dur_of scale =
            let i = String.index field '=' in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            match float_of_string_opt v with
            | Some f when f > 0.0 -> Result.Ok (spec, f *. scale)
            | _ ->
                Result.Error
                  (Printf.sprintf "fault spec: bad phase duration %S" field)
          in
          if String.length field >= 7 && String.sub field 0 7 = "dur_us=" then
            dur_of 1e3
          else if String.length field >= 7 && String.sub field 0 7 = "dur_ms="
          then dur_of 1e6
          else if String.length field >= 6 && String.sub field 0 6 = "dur_s="
          then dur_of 1e9
          else
            Result.map (fun s -> (s, dur)) (apply_spec_field spec field)))
    (Result.Ok (zero, infinity))
    fields

let validate_plan (p : plan) =
  let n = List.length p.phases in
  if n = 0 then Result.Error "fault spec: empty plan"
  else
    let bad_inner =
      List.exists
        (fun (i, (_, d)) -> d = infinity && (p.cycle || i < n - 1))
        (List.mapi (fun i ph -> (i, ph)) p.phases)
    in
    if bad_inner then
      Result.Error
        (if p.cycle then
           "fault spec: a cycling plan needs a duration on every phase"
         else "fault spec: only the last phase may omit its duration")
    else Result.Ok p

let parse str =
  let is_phase f = String.length f > 6 && String.sub f 0 6 = "phase(" in
  let fields = split_fields (String.trim str) in
  let step acc field =
    Result.bind acc (fun (p : plan) ->
        if field = "" then Result.Ok p
        else if field = "cycle" then Result.Ok { p with cycle = true }
        else if field = "wearout" then Result.Ok wearout
        else if field = "bursty" then Result.Ok bursty
        else if is_phase field then begin
          if String.get field (String.length field - 1) <> ')' then
            Result.Error
              (Printf.sprintf "fault spec: unterminated phase in %S" field)
          else
            let inner = String.sub field 6 (String.length field - 7) in
            Result.map
              (fun ph ->
                match p.phases with
                (* The implicit all-zero head phase is replaced by the
                   first explicit phase(...) field. *)
                | [ (s, d) ] when s = zero && d = infinity && not p.cycle ->
                    { p with phases = [ ph ] }
                | phases -> { p with phases = phases @ [ ph ] })
              (parse_phase inner)
        end
        else
          (* A bare preset or key=value applies to every phase: that is
             what makes "wearout,seed=7" reseed the whole schedule. *)
          List.fold_left
            (fun acc (s, d) ->
              Result.bind acc (fun phases ->
                  Result.map
                    (fun s' -> phases @ [ (s', d) ])
                    (apply_spec_field s field)))
            (Result.Ok []) p.phases
          |> Result.map (fun phases -> { p with phases }))
  in
  Result.bind
    (List.fold_left step (Result.Ok (static zero)) fields)
    validate_plan

type outcome =
  | Ok
  | Transient_error
  | Spike of float
  | Stall of float
  | Device_full

type stats = {
  read_errors : int;
  write_errors : int;
  spiked_ops : int;
  stalls : int;
  enospc_rejections : int;
  retries : int;
  backoff_ns : float;
  penalty_ns : float;
  exhausted_retries : int;
  watchdog_timeouts : int;
  recomputes : int;
  h2_degraded_events : int;
  h2_objects_deferred : int;
}

let zero_stats =
  {
    read_errors = 0;
    write_errors = 0;
    spiked_ops = 0;
    stalls = 0;
    enospc_rejections = 0;
    retries = 0;
    backoff_ns = 0.0;
    penalty_ns = 0.0;
    exhausted_retries = 0;
    watchdog_timeouts = 0;
    recomputes = 0;
    h2_degraded_events = 0;
    h2_objects_deferred = 0;
  }

type t = {
  plan : (spec * float) array;
  cycle : bool;
  prng : Prng.t;
  (* Backoff jitter draws from its own stream, derived from the plan
     seed: jittered retries must not perturb the injected fault
     sequence, which stays a pure function of the plan seed. *)
  jitter_prng : Prng.t;
  enabled : bool;
  mutable phase_idx : int;
  mutable phase_end_ns : float;  (* absolute sim time the phase ends *)
  mutable phase_changes : int;
  (* Episode state: spikes slow every op and device-full windows reject
     every write until the window's simulated end time passes. *)
  mutable spike_until_ns : float;
  mutable full_until_ns : float;
  mutable s : stats;
}

let spec_enabled spec =
  spec.read_error_rate > 0.0
  || spec.write_error_rate > 0.0
  || spec.spike_rate > 0.0
  || spec.stall_rate > 0.0
  || spec.full_rate > 0.0

let plan_seed (p : plan) =
  match p.phases with (s, _) :: _ -> s.seed | [] -> zero.seed

let create_plan (p : plan) =
  match validate_plan p with
  | Result.Error msg -> invalid_arg ("Fault.create_plan: " ^ msg)
  | Result.Ok p ->
      let phases = Array.of_list p.phases in
      let seed = plan_seed p in
      {
        plan = phases;
        cycle = p.cycle;
        prng = Prng.create seed;
        jitter_prng = Prng.create (Int64.logxor seed 0x6A09E667F3BCC909L);
        enabled = Array.exists (fun (s, _) -> spec_enabled s) phases;
        phase_idx = 0;
        phase_end_ns = snd phases.(0);
        phase_changes = 0;
        spike_until_ns = neg_infinity;
        full_until_ns = neg_infinity;
        s = zero_stats;
      }

let create spec = create_plan (static spec)

(* Advance the active phase up to simulated time [now_ns]. Cycling plans
   wrap back to phase 0; terminal plans hold their last phase forever. *)
let refresh t ~now_ns =
  while now_ns >= t.phase_end_ns do
    let last = Array.length t.plan - 1 in
    if t.phase_idx >= last && not t.cycle then t.phase_end_ns <- infinity
    else begin
      t.phase_idx <- (if t.phase_idx >= last then 0 else t.phase_idx + 1);
      t.phase_end_ns <- t.phase_end_ns +. snd t.plan.(t.phase_idx);
      t.phase_changes <- t.phase_changes + 1
    end
  done

let active_spec t = fst t.plan.(t.phase_idx)

let spec t = active_spec t

let phase_index t = t.phase_idx

let phase_changes t = t.phase_changes

let enabled t = t.enabled

let jitter_unit t = Prng.float t.jitter_prng 1.0

let in_spike t ~now_ns = now_ns < t.spike_until_ns

let draw t rate = rate > 0.0 && Prng.float t.prng 1.0 < rate

let spike_outcome t =
  t.s <- { t.s with spiked_ops = t.s.spiked_ops + 1 };
  Spike (active_spec t).spike_factor

let on_read t ~now_ns =
  if not t.enabled then Ok
  else begin
    refresh t ~now_ns;
    let sp = active_spec t in
    if draw t sp.read_error_rate then begin
      t.s <- { t.s with read_errors = t.s.read_errors + 1 };
      Transient_error
    end
    else if in_spike t ~now_ns then spike_outcome t
    else if draw t sp.spike_rate then begin
      t.spike_until_ns <- now_ns +. sp.spike_duration_ns;
      spike_outcome t
    end
    else Ok
  end

let on_write t ~now_ns =
  if not t.enabled then Ok
  else begin
    refresh t ~now_ns;
    let sp = active_spec t in
    if now_ns < t.full_until_ns then begin
      t.s <- { t.s with enospc_rejections = t.s.enospc_rejections + 1 };
      Device_full
    end
    else if draw t sp.full_rate then begin
      t.full_until_ns <- now_ns +. sp.full_duration_ns;
      t.s <- { t.s with enospc_rejections = t.s.enospc_rejections + 1 };
      Device_full
    end
    else if draw t sp.write_error_rate then begin
      t.s <- { t.s with write_errors = t.s.write_errors + 1 };
      Transient_error
    end
    else if draw t sp.stall_rate then begin
      t.s <- { t.s with stalls = t.s.stalls + 1 };
      Stall sp.stall_ns
    end
    else if in_spike t ~now_ns then spike_outcome t
    else if draw t sp.spike_rate then begin
      t.spike_until_ns <- now_ns +. sp.spike_duration_ns;
      spike_outcome t
    end
    else Ok
  end

let note_retry t = t.s <- { t.s with retries = t.s.retries + 1 }

let note_backoff t ns = t.s <- { t.s with backoff_ns = t.s.backoff_ns +. ns }

let note_penalty t ns = t.s <- { t.s with penalty_ns = t.s.penalty_ns +. ns }

let note_exhausted t =
  t.s <- { t.s with exhausted_retries = t.s.exhausted_retries + 1 }

let note_watchdog t =
  t.s <- { t.s with watchdog_timeouts = t.s.watchdog_timeouts + 1 }

let note_recompute t = t.s <- { t.s with recomputes = t.s.recomputes + 1 }

let note_h2_degraded t ?(objects = 0) () =
  t.s <-
    {
      t.s with
      h2_degraded_events = t.s.h2_degraded_events + 1;
      h2_objects_deferred = t.s.h2_objects_deferred + objects;
    }

let stats t = t.s

let add_stats a b =
  {
    read_errors = a.read_errors + b.read_errors;
    write_errors = a.write_errors + b.write_errors;
    spiked_ops = a.spiked_ops + b.spiked_ops;
    stalls = a.stalls + b.stalls;
    enospc_rejections = a.enospc_rejections + b.enospc_rejections;
    retries = a.retries + b.retries;
    backoff_ns = a.backoff_ns +. b.backoff_ns;
    penalty_ns = a.penalty_ns +. b.penalty_ns;
    exhausted_retries = a.exhausted_retries + b.exhausted_retries;
    watchdog_timeouts = a.watchdog_timeouts + b.watchdog_timeouts;
    recomputes = a.recomputes + b.recomputes;
    h2_degraded_events = a.h2_degraded_events + b.h2_degraded_events;
    h2_objects_deferred = a.h2_objects_deferred + b.h2_objects_deferred;
  }

let faults_injected s =
  s.read_errors + s.write_errors + s.spiked_ops + s.stalls
  + s.enospc_rejections

let degraded s =
  faults_injected s > 0
  || s.exhausted_retries > 0
  || s.watchdog_timeouts > 0
  || s.recomputes > 0
  || s.h2_degraded_events > 0

let pp_stats f s =
  Format.fprintf f
    "faults injected %d (read err %d, write err %d, spiked %d, stalls %d, \
     enospc %d) | retries %d, backoff %.3fms, penalty %.3fms | exhausted %d, \
     watchdog timeouts %d, recomputes %d | H2 degraded events %d (%d objects \
     deferred)"
    (faults_injected s) s.read_errors s.write_errors s.spiked_ops s.stalls
    s.enospc_rejections s.retries (s.backoff_ns /. 1e6) (s.penalty_ns /. 1e6)
    s.exhausted_retries s.watchdog_timeouts s.recomputes s.h2_degraded_events
    s.h2_objects_deferred
