type spec = {
  seed : int64;
  read_error_rate : float;
  write_error_rate : float;
  spike_rate : float;
  spike_factor : float;
  spike_duration_ns : float;
  stall_rate : float;
  stall_ns : float;
  full_rate : float;
  full_duration_ns : float;
}

let zero =
  {
    seed = 1L;
    read_error_rate = 0.0;
    write_error_rate = 0.0;
    spike_rate = 0.0;
    spike_factor = 1.0;
    spike_duration_ns = 0.0;
    stall_rate = 0.0;
    stall_ns = 0.0;
    full_rate = 0.0;
    full_duration_ns = 0.0;
  }

(* Rates are per device operation. A simulated run issues 1e5–1e7 device
   ops, so 1e-4 yields a steady trickle of transient errors while 1e-6
   windows stay rare events. Spike episodes model NVMe internal GC /
   thermal throttling: ~8x latency for a few hundred microseconds. *)
let default_plan =
  {
    zero with
    read_error_rate = 2e-4;
    write_error_rate = 2e-4;
    spike_rate = 5e-5;
    spike_factor = 8.0;
    spike_duration_ns = 200_000.0;
    stall_rate = 1e-4;
    stall_ns = 50_000.0;
    full_rate = 2e-6;
    full_duration_ns = 500_000.0;
  }

let harsh =
  {
    zero with
    read_error_rate = 2e-3;
    write_error_rate = 2e-3;
    spike_rate = 5e-4;
    spike_factor = 16.0;
    spike_duration_ns = 500_000.0;
    stall_rate = 1e-3;
    stall_ns = 100_000.0;
    full_rate = 5e-5;
    full_duration_ns = 2_000_000.0;
  }

let to_string s =
  Printf.sprintf
    "seed=%Ld,read_err=%g,write_err=%g,spike=%g,spike_factor=%g,spike_us=%g,\
     stall=%g,stall_us=%g,full=%g,full_us=%g"
    s.seed s.read_error_rate s.write_error_rate s.spike_rate s.spike_factor
    (s.spike_duration_ns /. 1e3)
    s.stall_rate
    (s.stall_ns /. 1e3)
    s.full_rate
    (s.full_duration_ns /. 1e3)

let parse str =
  let apply spec field =
    match field with
    | "" -> Result.Ok spec
    | "none" -> Result.Ok { zero with seed = spec.seed }
    | "default" -> Result.Ok { default_plan with seed = spec.seed }
    | "harsh" -> Result.Ok { harsh with seed = spec.seed }
    | _ -> (
        match String.index_opt field '=' with
        | None -> Result.Error (Printf.sprintf "fault spec: missing '=' in %S" field)
        | Some i -> (
            let key = String.sub field 0 i in
            let v = String.sub field (i + 1) (String.length field - i - 1) in
            let float_v () =
              match float_of_string_opt v with
              | Some f when f >= 0.0 -> Result.Ok f
              | _ ->
                  Result.Error
                    (Printf.sprintf "fault spec: bad value %S for %s" v key)
            in
            let us_v () = Result.map (fun f -> f *. 1e3) (float_v ()) in
            match key with
            | "seed" -> (
                match Int64.of_string_opt v with
                | Some s -> Result.Ok { spec with seed = s }
                | None ->
                    Result.Error
                      (Printf.sprintf "fault spec: bad seed %S" v))
            | "read_err" | "re" ->
                Result.map (fun f -> { spec with read_error_rate = f }) (float_v ())
            | "write_err" | "we" ->
                Result.map (fun f -> { spec with write_error_rate = f }) (float_v ())
            | "spike" ->
                Result.map (fun f -> { spec with spike_rate = f }) (float_v ())
            | "spike_factor" ->
                Result.map (fun f -> { spec with spike_factor = f }) (float_v ())
            | "spike_us" ->
                Result.map (fun f -> { spec with spike_duration_ns = f }) (us_v ())
            | "stall" ->
                Result.map (fun f -> { spec with stall_rate = f }) (float_v ())
            | "stall_us" ->
                Result.map (fun f -> { spec with stall_ns = f }) (us_v ())
            | "full" ->
                Result.map (fun f -> { spec with full_rate = f }) (float_v ())
            | "full_us" ->
                Result.map (fun f -> { spec with full_duration_ns = f }) (us_v ())
            | _ ->
                Result.Error (Printf.sprintf "fault spec: unknown key %S" key)))
  in
  String.split_on_char ',' (String.trim str)
  |> List.fold_left
       (fun acc field ->
         Result.bind acc (fun spec -> apply spec (String.trim field)))
       (Result.Ok zero)

type outcome =
  | Ok
  | Transient_error
  | Spike of float
  | Stall of float
  | Device_full

type stats = {
  read_errors : int;
  write_errors : int;
  spiked_ops : int;
  stalls : int;
  enospc_rejections : int;
  retries : int;
  backoff_ns : float;
  penalty_ns : float;
  exhausted_retries : int;
  recomputes : int;
  h2_degraded_events : int;
  h2_objects_deferred : int;
}

let zero_stats =
  {
    read_errors = 0;
    write_errors = 0;
    spiked_ops = 0;
    stalls = 0;
    enospc_rejections = 0;
    retries = 0;
    backoff_ns = 0.0;
    penalty_ns = 0.0;
    exhausted_retries = 0;
    recomputes = 0;
    h2_degraded_events = 0;
    h2_objects_deferred = 0;
  }

type t = {
  spec : spec;
  prng : Prng.t;
  enabled : bool;
  (* Episode state: spikes slow every op and device-full windows reject
     every write until the window's simulated end time passes. *)
  mutable spike_until_ns : float;
  mutable full_until_ns : float;
  mutable s : stats;
}

let create spec =
  let enabled =
    spec.read_error_rate > 0.0
    || spec.write_error_rate > 0.0
    || spec.spike_rate > 0.0
    || spec.stall_rate > 0.0
    || spec.full_rate > 0.0
  in
  {
    spec;
    prng = Prng.create spec.seed;
    enabled;
    spike_until_ns = neg_infinity;
    full_until_ns = neg_infinity;
    s = zero_stats;
  }

let spec t = t.spec

let enabled t = t.enabled

let in_spike t ~now_ns = now_ns < t.spike_until_ns

let draw t rate = rate > 0.0 && Prng.float t.prng 1.0 < rate

let spike_outcome t =
  t.s <- { t.s with spiked_ops = t.s.spiked_ops + 1 };
  Spike t.spec.spike_factor

let on_read t ~now_ns =
  if not t.enabled then Ok
  else if draw t t.spec.read_error_rate then begin
    t.s <- { t.s with read_errors = t.s.read_errors + 1 };
    Transient_error
  end
  else if in_spike t ~now_ns then spike_outcome t
  else if draw t t.spec.spike_rate then begin
    t.spike_until_ns <- now_ns +. t.spec.spike_duration_ns;
    spike_outcome t
  end
  else Ok

let on_write t ~now_ns =
  if not t.enabled then Ok
  else if now_ns < t.full_until_ns then begin
    t.s <- { t.s with enospc_rejections = t.s.enospc_rejections + 1 };
    Device_full
  end
  else if draw t t.spec.full_rate then begin
    t.full_until_ns <- now_ns +. t.spec.full_duration_ns;
    t.s <- { t.s with enospc_rejections = t.s.enospc_rejections + 1 };
    Device_full
  end
  else if draw t t.spec.write_error_rate then begin
    t.s <- { t.s with write_errors = t.s.write_errors + 1 };
    Transient_error
  end
  else if draw t t.spec.stall_rate then begin
    t.s <- { t.s with stalls = t.s.stalls + 1 };
    Stall t.spec.stall_ns
  end
  else if in_spike t ~now_ns then spike_outcome t
  else if draw t t.spec.spike_rate then begin
    t.spike_until_ns <- now_ns +. t.spec.spike_duration_ns;
    spike_outcome t
  end
  else Ok

let note_retry t = t.s <- { t.s with retries = t.s.retries + 1 }

let note_backoff t ns = t.s <- { t.s with backoff_ns = t.s.backoff_ns +. ns }

let note_penalty t ns = t.s <- { t.s with penalty_ns = t.s.penalty_ns +. ns }

let note_exhausted t =
  t.s <- { t.s with exhausted_retries = t.s.exhausted_retries + 1 }

let note_recompute t = t.s <- { t.s with recomputes = t.s.recomputes + 1 }

let note_h2_degraded t ?(objects = 0) () =
  t.s <-
    {
      t.s with
      h2_degraded_events = t.s.h2_degraded_events + 1;
      h2_objects_deferred = t.s.h2_objects_deferred + objects;
    }

let stats t = t.s

let add_stats a b =
  {
    read_errors = a.read_errors + b.read_errors;
    write_errors = a.write_errors + b.write_errors;
    spiked_ops = a.spiked_ops + b.spiked_ops;
    stalls = a.stalls + b.stalls;
    enospc_rejections = a.enospc_rejections + b.enospc_rejections;
    retries = a.retries + b.retries;
    backoff_ns = a.backoff_ns +. b.backoff_ns;
    penalty_ns = a.penalty_ns +. b.penalty_ns;
    exhausted_retries = a.exhausted_retries + b.exhausted_retries;
    recomputes = a.recomputes + b.recomputes;
    h2_degraded_events = a.h2_degraded_events + b.h2_degraded_events;
    h2_objects_deferred = a.h2_objects_deferred + b.h2_objects_deferred;
  }

let faults_injected s =
  s.read_errors + s.write_errors + s.spiked_ops + s.stalls
  + s.enospc_rejections

let degraded s =
  faults_injected s > 0
  || s.exhausted_retries > 0
  || s.recomputes > 0
  || s.h2_degraded_events > 0

let pp_stats f s =
  Format.fprintf f
    "faults injected %d (read err %d, write err %d, spiked %d, stalls %d, \
     enospc %d) | retries %d, backoff %.3fms, penalty %.3fms | exhausted %d, \
     recomputes %d | H2 degraded events %d (%d objects deferred)"
    (faults_injected s) s.read_errors s.write_errors s.spiked_ops s.stalls
    s.enospc_rejections s.retries (s.backoff_ns /. 1e6) (s.penalty_ns /. 1e6)
    s.exhausted_retries s.recomputes s.h2_degraded_events
    s.h2_objects_deferred
