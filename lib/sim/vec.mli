(** Growable arrays.

    OCaml 5.1 does not ship [Dynarray]; this is the small subset the
    simulator needs. Elements are stored densely in [0, length) and the
    backing array doubles on demand. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] raises [Invalid_argument] when [i] is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at index [length v]. Amortised O(1). *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, or [None] if empty. *)

val clear : 'a t -> unit
(** [clear v] resets the length to 0. Keeps the backing storage. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** [filter_in_place p v] keeps only the elements satisfying [p],
    preserving order. *)

val shrink_to_fit : 'a t -> unit
(** [shrink_to_fit v] reallocates the backing array to exactly [length v]
    elements. [clear] and [filter_in_place] keep the old storage, so the
    slack still references dropped elements and keeps them reachable;
    call this after bulk removals (e.g. a GC sweep) to release them. *)

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val swap_remove : 'a t -> int -> unit
(** [swap_remove v i] removes element [i] by moving the last element into
    its slot. O(1), does not preserve order. *)
