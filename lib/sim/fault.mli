(** Deterministic fault injection for the simulated storage stack.

    Real block devices exhibit transient read/write errors, tail-latency
    spikes, writeback stalls and short device-full (ENOSPC) windows; the
    paper's whole argument rests on H2 living on such imperfect storage
    (§2, §7.2). A {!spec} describes a fault plan (per-operation rates plus
    episode durations), and a {!t} draws from a dedicated splitmix64 PRNG
    so equal seeds inject identical fault sequences: a run under a fault
    plan is exactly as reproducible as one without.

    The injector also aggregates every fault-related counter of a run —
    injected faults, retries, backoff and penalty time, degraded-mode
    events — so drivers can report them and classify the run outcome. *)

type spec = {
  seed : int64;
  read_error_rate : float;  (** transient-error probability per read op *)
  write_error_rate : float;  (** transient-error probability per write op *)
  spike_rate : float;
      (** probability per op of opening a tail-latency spike episode *)
  spike_factor : float;  (** latency/cost multiplier during an episode *)
  spike_duration_ns : float;  (** simulated length of a spike episode *)
  stall_rate : float;  (** writeback-stall probability per write op *)
  stall_ns : float;  (** extra charge of one writeback stall *)
  full_rate : float;
      (** probability per write op of opening a device-full window *)
  full_duration_ns : float;  (** simulated length of a device-full window *)
}

val zero : spec
(** All rates zero: a plan that never injects anything. *)

val default_plan : spec
(** A moderate plan: occasional transient errors and latency spikes, rare
    stalls and device-full windows. *)

val harsh : spec
(** An aggressive plan for stress experiments. *)

val parse : string -> (spec, string) result
(** [parse s] reads a fault plan from a comma-separated [key=value] spec,
    e.g. ["seed=7,read_err=1e-4,write_err=1e-4,spike=5e-5,spike_factor=8"].
    Keys: [seed], [read_err]/[re], [write_err]/[we], [spike],
    [spike_factor], [spike_us], [stall], [stall_us], [full], [full_us]
    (durations in simulated microseconds). The bare words [none],
    [default] and [harsh] name the preset plans; preset names may be
    followed by overrides ("default,seed=9"). *)

val to_string : spec -> string
(** Canonical [key=value] rendering of a plan (parseable by {!parse}). *)

type outcome =
  | Ok  (** no fault: the operation proceeds at its modelled cost *)
  | Transient_error
      (** the attempt fails after paying its latency; retryable *)
  | Spike of float  (** tail-latency episode: cost multiplied by factor *)
  | Stall of float  (** writeback stall: extra nanoseconds on top of cost *)
  | Device_full
      (** ENOSPC window: writes fail until the window closes; retryable *)

type stats = {
  read_errors : int;  (** transient read errors injected *)
  write_errors : int;  (** transient write errors injected *)
  spiked_ops : int;  (** operations charged at spike-episode cost *)
  stalls : int;
  enospc_rejections : int;  (** writes rejected inside device-full windows *)
  retries : int;  (** retry attempts performed by the I/O policy *)
  backoff_ns : float;  (** simulated time charged as retry backoff *)
  penalty_ns : float;
      (** every other fault-induced charge: failed-attempt latency, spike
          surcharge, stalls, retry-timeout waits *)
  exhausted_retries : int;  (** bounded retry loops that gave up *)
  recomputes : int;  (** lineage-style partition recomputations *)
  h2_degraded_events : int;
      (** degraded-mode episodes in H2: compactions that left tagged
          objects in H1, promotion-buffer flush deferrals *)
  h2_objects_deferred : int;  (** objects left in H1 by a full H2 *)
}

val zero_stats : stats

type t

val create : spec -> t
(** A fresh injector with its own PRNG stream seeded from [spec.seed]. *)

val spec : t -> spec

val enabled : t -> bool
(** False when every rate in the plan is zero; a disabled injector never
    draws from its PRNG, so a zero-rate run is byte-identical to a run
    with no injector at all. *)

(** {1 Injection points} (called by the device layer) *)

val on_read : t -> now_ns:float -> outcome
(** Draw the outcome of one read attempt at simulated time [now_ns]. *)

val on_write : t -> now_ns:float -> outcome
(** Draw the outcome of one write attempt: transient errors, spikes,
    stalls, and device-full windows (which reject every write until they
    close). *)

(** {1 Counter recording} (called by the retry policy and recovery sites) *)

val note_retry : t -> unit

val note_backoff : t -> float -> unit

val note_penalty : t -> float -> unit

val note_exhausted : t -> unit

val note_recompute : t -> unit

val note_h2_degraded : t -> ?objects:int -> unit -> unit

val stats : t -> stats

val add_stats : stats -> stats -> stats

val faults_injected : stats -> int
(** Total faults of any kind injected (reads + writes + spikes + stalls +
    ENOSPC rejections). *)

val degraded : stats -> bool
(** True when the run took any visible degraded-mode action: exhausted
    retries, recomputations, or H2 degraded events — or when any fault at
    all was injected (the run's timing no longer matches a fault-free
    device). *)

val pp_stats : Format.formatter -> stats -> unit
