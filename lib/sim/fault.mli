(** Deterministic fault injection for the simulated storage stack.

    Real block devices exhibit transient read/write errors, tail-latency
    spikes, writeback stalls and short device-full (ENOSPC) windows; the
    paper's whole argument rests on H2 living on such imperfect storage
    (§2, §7.2). A {!spec} describes one fault regime (per-operation rates
    plus episode durations) and a {!plan} sequences regimes over simulated
    time — phased wear-out schedules, cycling quiet/burst patterns — so
    long-horizon soak runs see the fault environment *change* mid-run. A
    {!t} draws from a dedicated splitmix64 PRNG so equal seeds inject
    identical fault sequences: a run under a fault plan is exactly as
    reproducible as one without.

    The injector also aggregates every fault-related counter of a run —
    injected faults, retries, backoff and penalty time, degraded-mode
    events — so drivers can report them and classify the run outcome. *)

type spec = {
  seed : int64;
  read_error_rate : float;  (** transient-error probability per read op *)
  write_error_rate : float;  (** transient-error probability per write op *)
  spike_rate : float;
      (** probability per op of opening a tail-latency spike episode *)
  spike_factor : float;  (** latency/cost multiplier during an episode *)
  spike_duration_ns : float;  (** simulated length of a spike episode *)
  stall_rate : float;  (** writeback-stall probability per write op *)
  stall_ns : float;  (** extra charge of one writeback stall *)
  full_rate : float;
      (** probability per write op of opening a device-full window *)
  full_duration_ns : float;  (** simulated length of a device-full window *)
}

val zero : spec
(** All rates zero: a regime that never injects anything. *)

val default_plan : spec
(** A moderate regime: occasional transient errors and latency spikes,
    rare stalls and device-full windows. *)

val harsh : spec
(** An aggressive regime for stress experiments. *)

type plan = {
  phases : (spec * float) list;
      (** each phase is a regime plus its simulated duration in ns; only
          the last phase of a non-cycling plan may be [infinity] (and a
          finite last phase holds past its end anyway) *)
  cycle : bool;  (** wrap back to the first phase when the last ends *)
}

val static : spec -> plan
(** [static s] is the single-phase plan holding [s] forever — the shape
    every pre-phased caller used implicitly. *)

val wearout : plan
(** A device aging over the run: gentle rates at first, escalating phase
    by phase, ending in a permanently worn-out regime. *)

val bursty : plan
(** Clustered fault episodes: long quiet stretches punctuated by short
    storms of harsh-grade faults, cycling for the whole run. *)

val parse : string -> (plan, string) result
(** [parse s] reads a fault plan from a comma-separated [key=value] spec,
    e.g. ["seed=7,read_err=1e-4,write_err=1e-4,spike=5e-5,spike_factor=8"].
    Keys: [seed], [read_err]/[re], [write_err]/[we], [spike],
    [spike_factor], [spike_us], [stall], [stall_us], [full], [full_us]
    (durations in simulated microseconds). The bare words [none],
    [default] and [harsh] name the preset regimes; preset names may be
    followed by overrides ("default,seed=9").

    Phased plans list [phase(...)] fields, each wrapping the same spec
    syntax plus a duration key [dur_us]/[dur_ms]/[dur_s]; a phase with no
    duration holds forever (legal for the last phase only). The bare word
    [cycle] makes the schedule wrap (every phase then needs a duration),
    and [wearout]/[bursty] name preset schedules. Top-level [key=value]
    fields apply to every phase, so ["wearout,seed=9"] reseeds the whole
    schedule. Rate keys must be probabilities in [0, 1], durations
    non-negative and [spike_factor >= 1]; anything else is a descriptive
    [Error]. *)

val to_string : spec -> string
(** Canonical [key=value] rendering of a regime (parseable by {!parse}). *)

val plan_to_string : plan -> string
(** Canonical rendering of a plan (parseable by {!parse}); a single-phase
    static plan prints as its bare spec. *)

type outcome =
  | Ok  (** no fault: the operation proceeds at its modelled cost *)
  | Transient_error
      (** the attempt fails after paying its latency; retryable *)
  | Spike of float  (** tail-latency episode: cost multiplied by factor *)
  | Stall of float  (** writeback stall: extra nanoseconds on top of cost *)
  | Device_full
      (** ENOSPC window: writes fail until the window closes; retryable *)

type stats = {
  read_errors : int;  (** transient read errors injected *)
  write_errors : int;  (** transient write errors injected *)
  spiked_ops : int;  (** operations charged at spike-episode cost *)
  stalls : int;
  enospc_rejections : int;  (** writes rejected inside device-full windows *)
  retries : int;  (** retry attempts performed by the I/O policy *)
  backoff_ns : float;  (** simulated time charged as retry backoff *)
  penalty_ns : float;
      (** every other fault-induced charge: failed-attempt latency, spike
          surcharge, stalls, retry-timeout waits *)
  exhausted_retries : int;  (** bounded retry loops that gave up *)
  watchdog_timeouts : int;
      (** checked-I/O episodes cut short by the retry watchdog deadline *)
  recomputes : int;  (** lineage-style partition recomputations *)
  h2_degraded_events : int;
      (** degraded-mode episodes in H2: compactions that left tagged
          objects in H1, promotion-buffer flush deferrals *)
  h2_objects_deferred : int;  (** objects left in H1 by a full H2 *)
}

val zero_stats : stats

type t

val create : spec -> t
(** A fresh injector with its own PRNG stream seeded from [spec.seed];
    equivalent to [create_plan (static spec)]. *)

val create_plan : plan -> t
(** A fresh injector following a phased plan; the PRNG is seeded from the
    first phase's [seed]. Raises [Invalid_argument] on a plan that
    {!parse} would reject (empty, or missing phase durations). *)

val spec : t -> spec
(** The regime active at the injector's current phase. *)

val phase_index : t -> int
(** Index into the plan of the phase active at the last injection. *)

val phase_changes : t -> int
(** Phase transitions taken so far (cycling wraps count once each). *)

val enabled : t -> bool
(** False when every rate in every phase is zero; a disabled injector
    never draws from its PRNG, so a zero-rate run is byte-identical to a
    run with no injector at all. *)

val jitter_unit : t -> float
(** One uniform draw in [0, 1) from the injector's dedicated jitter
    stream, used to de-synchronise retry backoff. The stream is derived
    from the plan seed but independent of the injection stream: drawing
    jitter never perturbs the injected fault sequence. *)

(** {1 Injection points} (called by the device layer) *)

val on_read : t -> now_ns:float -> outcome
(** Draw the outcome of one read attempt at simulated time [now_ns]. *)

val on_write : t -> now_ns:float -> outcome
(** Draw the outcome of one write attempt: transient errors, spikes,
    stalls, and device-full windows (which reject every write until they
    close). *)

(** {1 Counter recording} (called by the retry policy and recovery sites) *)

val note_retry : t -> unit

val note_backoff : t -> float -> unit

val note_penalty : t -> float -> unit

val note_exhausted : t -> unit

val note_watchdog : t -> unit

val note_recompute : t -> unit

val note_h2_degraded : t -> ?objects:int -> unit -> unit

val stats : t -> stats

val add_stats : stats -> stats -> stats

val faults_injected : stats -> int
(** Total faults of any kind injected (reads + writes + spikes + stalls +
    ENOSPC rejections). *)

val degraded : stats -> bool
(** True when the run took any visible degraded-mode action: exhausted
    retries, watchdog timeouts, recomputations, or H2 degraded events —
    or when any fault at all was injected (the run's timing no longer
    matches a fault-free device). *)

val pp_stats : Format.formatter -> stats -> unit
