type category = Other | Serde_io | Minor_gc | Major_gc

type breakdown = {
  other_ns : float;
  serde_io_ns : float;
  minor_gc_ns : float;
  major_gc_ns : float;
}

type t = {
  mutable other : float;
  mutable serde_io : float;
  mutable minor : float;
  mutable major : float;
  mutable tracer : Th_trace.Recorder.t option;
}

let create () =
  { other = 0.0; serde_io = 0.0; minor = 0.0; major = 0.0; tracer = None }

let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

let advance t cat ns =
  if ns < 0.0 then invalid_arg "Clock.advance: negative charge";
  match cat with
  | Other -> t.other <- t.other +. ns
  | Serde_io -> t.serde_io <- t.serde_io +. ns
  | Minor_gc -> t.minor <- t.minor +. ns
  | Major_gc -> t.major <- t.major +. ns

let now_ns t = t.other +. t.serde_io +. t.minor +. t.major

let breakdown t =
  {
    other_ns = t.other;
    serde_io_ns = t.serde_io;
    minor_gc_ns = t.minor;
    major_gc_ns = t.major;
  }

let total_ns b = b.other_ns +. b.serde_io_ns +. b.minor_gc_ns +. b.major_gc_ns

let category_ns b = function
  | Other -> b.other_ns
  | Serde_io -> b.serde_io_ns
  | Minor_gc -> b.minor_gc_ns
  | Major_gc -> b.major_gc_ns

let sub a b =
  {
    other_ns = a.other_ns -. b.other_ns;
    serde_io_ns = a.serde_io_ns -. b.serde_io_ns;
    minor_gc_ns = a.minor_gc_ns -. b.minor_gc_ns;
    major_gc_ns = a.major_gc_ns -. b.major_gc_ns;
  }

let reset t =
  t.other <- 0.0;
  t.serde_io <- 0.0;
  t.minor <- 0.0;
  t.major <- 0.0

let pp_breakdown f b =
  let s ns = ns /. 1e9 in
  Format.fprintf f
    "other %.3fs | s/d+io %.3fs | minor gc %.3fs | major gc %.3fs | total %.3fs"
    (s b.other_ns) (s b.serde_io_ns) (s b.minor_gc_ns) (s b.major_gc_ns)
    (s (total_ns b))
