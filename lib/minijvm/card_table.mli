(** H1 card table with a card-indexed remembered set.

    One dirty bit per fixed-size card covering the old generation's address
    space, as in vanilla Parallel Scavenge (512 B cards). The post-write
    barrier marks the card holding an updated old-generation object; minor
    GC scans dirty cards for old-to-young references.

    In addition to the dirty bits, the table keeps per-card object buckets
    (the remembered-set index): every old-generation object is registered
    under the card of its start address, so the minor-GC card scan visits
    only the objects of dirty cards instead of sweeping the whole old
    generation. Dirtiness and membership are orthogonal: {!clear_all}
    clears dirty bits only, {!rebuild_index} resets membership. *)

type t

val create : ?card_size:int -> capacity_bytes:int -> unit -> t
(** [card_size] defaults to 512 bytes. *)

val card_size : t -> int

val num_cards : t -> int

val card_of_addr : t -> int -> int

val mark_dirty : t -> addr:int -> unit

val is_dirty : t -> card:int -> bool

val dirty_count : t -> int

val clear_all : t -> unit

val clear_card : t -> card:int -> unit

(** {1 Remembered-set index} *)

val register : t -> Th_objmodel.Heap_object.t -> unit
(** Add an object to the bucket of the card holding its start address.
    Out-of-range addresses (transiently possible during major-GC
    precompaction) are silently skipped. *)

val clear_index : t -> unit
(** Drop every bucket, releasing all object references held by the index. *)

val rebuild_index : t -> Th_objmodel.Heap_object.t Th_sim.Vec.t -> unit
(** [rebuild_index t objs] is {!clear_index} followed by {!register} for
    each element of [objs] in order. Called after major-GC compaction,
    when every old-generation address has been reassigned. *)

val iter_card_objects :
  t -> card:int -> (Th_objmodel.Heap_object.t -> unit) -> unit
(** Iterate the bucket of [card] in registration (= address) order.
    Out-of-range cards iterate nothing. *)

val card_object_count : t -> card:int -> int

val iter_dirty_buckets :
  t -> (int -> Th_objmodel.Heap_object.t Th_sim.Vec.t -> unit) -> unit
(** [iter_dirty_buckets t f] calls [f card bucket] for every dirty card
    with a non-empty bucket, in ascending card order. The callback must
    not change card dirtiness. *)
