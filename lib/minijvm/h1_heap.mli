(** The regular managed heap (H1), DRAM-backed.

    Parallel-Scavenge layout: a young generation split into an eden space
    and two survivor spaces, plus an old generation (§2). Capacities follow
    the HotSpot defaults ([NewRatio] = 2, [SurvivorRatio] = 8) unless
    overridden. The record is transparent: the collector ({!Th_psgc})
    manipulates spaces directly; invariant-sensitive moves go through the
    helpers below. *)

type t = {
  eden_capacity : int;
  survivor_capacity : int;  (** one of the two survivor semi-spaces *)
  old_capacity : int;
  mutable eden_used : int;
  mutable survivor_used : int;
  mutable old_used : int;  (** live + dead-but-not-yet-compacted bytes *)
  mutable old_top : int;  (** old-generation bump pointer *)
  eden : Th_objmodel.Heap_object.t Th_sim.Vec.t;
  survivor : Th_objmodel.Heap_object.t Th_sim.Vec.t;
  old_objs : Th_objmodel.Heap_object.t Th_sim.Vec.t;
  cards : Card_table.t;
  mutable next_id : int;
  tenure_threshold : int;  (** minor GCs survived before promotion *)
}

type alloc_result =
  | Allocated of Th_objmodel.Heap_object.t
  | Eden_full  (** caller must run a minor GC and retry *)
  | Old_full  (** large-object path exhausted; caller must run a major GC *)

val create :
  ?new_ratio:int ->
  ?survivor_ratio:int ->
  ?tenure_threshold:int ->
  ?card_size:int ->
  heap_bytes:int ->
  unit ->
  t

val heap_bytes : t -> int
(** Total capacity: eden + 2 survivors + old. *)

val young_bytes : t -> int

val alloc : t -> kind:Th_objmodel.Heap_object.kind -> size:int -> alloc_result
(** Bump allocation in eden. Objects larger than half of eden go directly
    to the old generation, as PS does. *)

val old_alloc_addr : t -> int -> int option
(** [old_alloc_addr t bytes] bumps the old-generation pointer, returning
    the new object's address, or [None] if the old generation is full. *)

val promote : t -> Th_objmodel.Heap_object.t -> addr:int -> unit
(** Move a young object into the old generation at [addr]. The caller must
    have obtained [addr] from {!old_alloc_addr}. Registers the object in
    the card table's remembered-set index. *)

val push_old : t -> Th_objmodel.Heap_object.t -> unit
(** Append an externally initialised old-generation object (location,
    address and accounting already done by the caller) to [old_objs] and
    the remembered-set index. Used by the G1 humongous-allocation path. *)

val rebuild_card_index : t -> unit
(** Rebuild the card table's remembered-set index from [old_objs]. Must
    run after major-GC compaction reassigns old-generation addresses. *)

val compact_after_major : t -> unit
(** Drop [Freed] entries from the space vectors and shrink their backing
    arrays, releasing the references that keep dead objects reachable. *)

val to_survivor : t -> Th_objmodel.Heap_object.t -> unit
(** Copy a live eden/survivor object into the target survivor space. *)

val free_object : t -> Th_objmodel.Heap_object.t -> unit
(** Mark an object [Freed] and release its space accounting. The caller is
    responsible for removing it from the space vectors (batch filtering). *)

val live_bytes : t -> int
(** Current used bytes across all spaces. *)

val old_occupancy : t -> float
(** [old_used / old_capacity]. *)

val occupancy : t -> float
(** Whole-heap usage fraction. *)

val fresh_id : t -> int
