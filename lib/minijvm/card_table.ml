open Th_sim
module Obj_ = Th_objmodel.Heap_object

type t = {
  card_size : int;
  cards : Bytes.t;
  mutable dirty : int;
  (* Remembered-set index: per-card buckets of old-generation objects
     keyed by the card of their start address. Maintained on promotion
     and direct old allocation, rebuilt from scratch after each major GC
     (compaction reassigns every address). Minor GC then visits only the
     dirty cards' buckets instead of sweeping the whole old generation. *)
  buckets : Obj_.t Vec.t option array;
}

let create ?(card_size = 512) ~capacity_bytes () =
  if card_size <= 0 then invalid_arg "Card_table.create: card_size";
  let n = max 1 ((capacity_bytes + card_size - 1) / card_size) in
  { card_size; cards = Bytes.make n '\000'; dirty = 0; buckets = Array.make n None }

let card_size t = t.card_size

let num_cards t = Bytes.length t.cards

let card_of_addr t addr =
  let c = addr / t.card_size in
  if c < 0 || c >= Bytes.length t.cards then
    invalid_arg "Card_table.card_of_addr: address out of range";
  c

let mark_dirty t ~addr =
  let c = card_of_addr t addr in
  if Bytes.unsafe_get t.cards c = '\000' then begin
    Bytes.unsafe_set t.cards c '\001';
    t.dirty <- t.dirty + 1
  end

let is_dirty t ~card = Bytes.get t.cards card <> '\000'

let dirty_count t = t.dirty

let clear_all t =
  Bytes.fill t.cards 0 (Bytes.length t.cards) '\000';
  t.dirty <- 0

let clear_card t ~card =
  if Bytes.get t.cards card <> '\000' then begin
    Bytes.set t.cards card '\000';
    t.dirty <- t.dirty - 1
  end

(* ------------------------------------------------------------------ *)
(* Remembered-set index                                                *)

let register t (o : Obj_.t) =
  let c = o.Obj_.addr / t.card_size in
  (* During major-GC precompaction an object's new address may exceed the
     old generation (the OOM is only raised in the epilogue); skip rather
     than fail so the index never changes which exception surfaces. *)
  if c >= 0 && c < Array.length t.buckets then begin
    let bucket =
      match t.buckets.(c) with
      | Some v -> v
      | None ->
          let v = Vec.create () in
          t.buckets.(c) <- Some v;
          v
    in
    Vec.push bucket o
  end

let clear_index t = Array.fill t.buckets 0 (Array.length t.buckets) None

let rebuild_index t objs =
  clear_index t;
  Vec.iter (register t) objs

let iter_card_objects t ~card f =
  if card >= 0 && card < Array.length t.buckets then
    match t.buckets.(card) with Some v -> Vec.iter f v | None -> ()

let card_object_count t ~card =
  if card >= 0 && card < Array.length t.buckets then
    match t.buckets.(card) with Some v -> Vec.length v | None -> 0
  else 0

let iter_dirty_buckets t f =
  (* Ascending card order, each bucket in insertion (= address) order:
     exactly the visit order of a linear sweep of the address-sorted old
     generation, so the replacement is observationally identical. The
     card-byte walk stops once every dirty card has been seen. *)
  let remaining = ref t.dirty in
  let n = Bytes.length t.cards in
  let c = ref 0 in
  while !remaining > 0 && !c < n do
    if Bytes.unsafe_get t.cards !c <> '\000' then begin
      decr remaining;
      match t.buckets.(!c) with
      | Some v when Vec.length v > 0 -> f !c v
      | Some _ | None -> ()
    end;
    incr c
  done
