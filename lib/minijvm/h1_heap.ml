open Th_sim
module Obj_ = Th_objmodel.Heap_object

type t = {
  eden_capacity : int;
  survivor_capacity : int;
  old_capacity : int;
  mutable eden_used : int;
  mutable survivor_used : int;
  mutable old_used : int;
  mutable old_top : int;
  eden : Obj_.t Vec.t;
  survivor : Obj_.t Vec.t;
  old_objs : Obj_.t Vec.t;
  cards : Card_table.t;
  mutable next_id : int;
  tenure_threshold : int;
}

type alloc_result = Allocated of Obj_.t | Eden_full | Old_full

let create ?(new_ratio = 2) ?(survivor_ratio = 8) ?(tenure_threshold = 3)
    ?card_size ~heap_bytes () =
  if heap_bytes <= 0 then invalid_arg "H1_heap.create: heap_bytes";
  let young = heap_bytes / (new_ratio + 1) in
  let survivor_capacity = young / (survivor_ratio + 2) in
  let eden_capacity = young - (2 * survivor_capacity) in
  let old_capacity = heap_bytes - young in
  {
    eden_capacity;
    survivor_capacity;
    old_capacity;
    eden_used = 0;
    survivor_used = 0;
    old_used = 0;
    old_top = 0;
    eden = Vec.create ();
    survivor = Vec.create ();
    old_objs = Vec.create ();
    cards = Card_table.create ?card_size ~capacity_bytes:old_capacity ();
    next_id = 0;
    tenure_threshold;
  }

let heap_bytes t = t.eden_capacity + (2 * t.survivor_capacity) + t.old_capacity

let young_bytes t = t.eden_capacity + (2 * t.survivor_capacity)

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let old_alloc_addr t bytes =
  if t.old_top + bytes > t.old_capacity then None
  else begin
    let addr = t.old_top in
    t.old_top <- t.old_top + bytes;
    t.old_used <- t.old_used + bytes;
    Some addr
  end

let alloc t ~kind ~size =
  let id = fresh_id t in
  let o = Obj_.create ~kind ~id ~size () in
  let bytes = Obj_.total_size o in
  if bytes > t.eden_capacity / 2 then begin
    (* PS allocates large objects directly in the old generation. *)
    match old_alloc_addr t bytes with
    | None -> Old_full
    | Some addr ->
        o.Obj_.loc <- Obj_.Old;
        o.Obj_.addr <- addr;
        Vec.push t.old_objs o;
        Card_table.register t.cards o;
        Allocated o
  end
  else if t.eden_used + bytes > t.eden_capacity then Eden_full
  else begin
    t.eden_used <- t.eden_used + bytes;
    Vec.push t.eden o;
    Allocated o
  end

let promote t o ~addr =
  let bytes = Obj_.total_size o in
  (match o.Obj_.loc with
  | Obj_.Eden -> t.eden_used <- t.eden_used - bytes
  | Obj_.Survivor -> t.survivor_used <- t.survivor_used - bytes
  | Obj_.Old | Obj_.In_h2 | Obj_.Freed ->
      invalid_arg "H1_heap.promote: object is not young");
  o.Obj_.loc <- Obj_.Old;
  o.Obj_.addr <- addr;
  Vec.push t.old_objs o;
  Card_table.register t.cards o

(* Register an externally initialised old-generation object (the caller
   has already set [loc], [addr] and done the space accounting via
   {!old_alloc_addr}); keeps the remembered-set index in sync. *)
let push_old t o =
  Vec.push t.old_objs o;
  Card_table.register t.cards o

let rebuild_card_index t = Card_table.rebuild_index t.cards t.old_objs

(* After a full collection the space vectors hold only live entries, but
   the slack of their backing arrays still references every object
   filtered out since the last reallocation — dead objects would stay
   reachable from the OCaml heap forever. Major GCs are rare, so the
   reallocation cost is negligible. *)
let compact_after_major t =
  Vec.filter_in_place (fun (o : Obj_.t) -> o.Obj_.loc <> Obj_.Freed) t.old_objs;
  Vec.shrink_to_fit t.old_objs;
  Vec.shrink_to_fit t.eden;
  Vec.shrink_to_fit t.survivor

let to_survivor t o =
  let bytes = Obj_.total_size o in
  (match o.Obj_.loc with
  | Obj_.Eden -> t.eden_used <- t.eden_used - bytes
  | Obj_.Survivor -> ()
  | Obj_.Old | Obj_.In_h2 | Obj_.Freed ->
      invalid_arg "H1_heap.to_survivor: object is not young");
  if o.Obj_.loc = Obj_.Eden then begin
    o.Obj_.loc <- Obj_.Survivor;
    t.survivor_used <- t.survivor_used + bytes;
    Vec.push t.survivor o
  end

let free_object t o =
  let bytes =
    match o.Obj_.loc with
    | Obj_.Old -> Obj_.footprint o
    | _ -> Obj_.total_size o
  in
  (match o.Obj_.loc with
  | Obj_.Eden -> t.eden_used <- t.eden_used - bytes
  | Obj_.Survivor -> t.survivor_used <- t.survivor_used - bytes
  | Obj_.Old -> t.old_used <- t.old_used - bytes
  | Obj_.In_h2 -> invalid_arg "H1_heap.free_object: object lives in H2"
  | Obj_.Freed -> invalid_arg "H1_heap.free_object: double free");
  o.Obj_.loc <- Obj_.Freed

let live_bytes t = t.eden_used + t.survivor_used + t.old_used

let old_occupancy t =
  if t.old_capacity = 0 then 0.0
  else float_of_int t.old_used /. float_of_int t.old_capacity

let occupancy t =
  float_of_int (live_bytes t) /. float_of_int (heap_bytes t)
