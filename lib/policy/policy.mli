(** First-class H2 placement policies.

    A policy answers the two questions {!Th_psgc.Ps_gc} used to
    hard-code at each major GC: {e which tagged roots move this cycle}
    and {e in what order/grouping they stream into H2 regions}. The
    collector keeps the guards (mark/label validity, the pressure
    budget, promotion-failure retention, the resilience move gate), so
    every policy inherits the same safety envelope.

    Policies learn from the mutator through {!observe}. Observations are
    host-side bookkeeping only: they never advance the simulated clock,
    draw randomness, or emit trace events, so installing a policy cannot
    perturb the simulation it watches. Policies measure time in
    {e mutator operations} (observed accesses) — a logical clock
    identical across runs of the same workload regardless of GC cadence,
    which is what makes the two-pass {!oracle}'s future knowledge
    transferable between its passes.

    A policy value owns unsynchronised mutable state: create one per
    runtime, inside the benchmark cell that uses it. The analyzer's
    escape-capture rule watches {!make} call sites for captured mutable
    locals. *)

module Obj_ = Th_objmodel.Heap_object
module H2 = Th_core.H2

type move_class =
  | Advised  (** moves unconditionally (group is immutable per h2_move) *)
  | Budgeted
      (** pressure move: the collector re-checks the low/high-threshold
          budget before each closure *)

type pick = { root : Obj_.t; cls : move_class; group : int }
(** [group] keys the H2 allocator bucket the root's closure streams
    into; policies that co-locate labels return a shared group key
    (defaults to the root's label). *)

type pressure = No_pressure | Move_all_tagged | Move_until_low
(** Mirror of {!Th_psgc.Rt.move_pressure} (the policy library sits
    below the collector). *)

type ctx = {
  epoch : int;
  pressure : pressure;
  live_bytes : int;
  old_capacity : int;
  h2 : H2.t;
}

type obs =
  | Tagged of { label : int; site : int; bytes : int }
  | Advice of { label : int }
  | Access of {
      label : int;
      site : int;
      bytes : int;
      write : bool;
      in_h2 : bool;
    }
  | Moved of { label : int; site : int; bytes : int }
  | Death of { label : int; site : int; bytes : int }
  | Major_start of { epoch : int }

type t = {
  name : string;
  select : ctx -> roots:Obj_.t list -> pick list;
  observe : obs -> unit;
  trace_decisions : bool;
      (** emit a [policy/select] trace instant per major GC; off for
          {!threshold} so pre-policy trace goldens stay byte-identical *)
}

val make :
  name:string ->
  ?trace_decisions:bool ->
  select:(ctx -> roots:Obj_.t list -> pick list) ->
  observe:(obs -> unit) ->
  unit ->
  t
(** Assemble a custom policy. Callbacks run on whichever domain owns the
    runtime; captured mutable state is flagged by the analyzer unless
    blessed. *)

val threshold : t
(** The paper's high/low-threshold behavior, bit-for-bit identical to
    the former inline move passes: advised roots in tag order, then —
    under pressure — unadvised roots in tag order up to the budget.
    Stateless ([observe] ignores), so the single value is safe to share. *)

val lifetime : Profile.t -> t
(** Deca-style allocation-site lifetime placement: sites the profiling
    run saw long-lived and rarely touched after tagging move eagerly
    (advice or not); under pressure the remaining roots move
    coldest-first. *)

val profiler : unit -> t * Profile.t
(** The profiling pre-run for {!lifetime}: selects exactly like
    {!threshold} while filling the returned profile. *)

val gang_locality : unit -> t
(** Gang-GC-style affinity placement: labels co-accessed repeatedly are
    fused into gangs (union-find, smallest label as the stable
    representative) and stream into the same H2 region via a shared
    placement group. *)

val two_q : unit -> t
(** 2Q-style frequency/recency scoring fed by the page-cache model:
    recently/frequently touched labels stay in H1 even when advised —
    until pressure forces them out, hottest last. The recency window
    widens when the page cache is thrashing. *)

module Future : sig
  type t

  val create : unit -> t

  val record : t -> label:int -> op:int -> bytes:int -> unit

  val future_bytes : t -> label:int -> op:int -> int
  (** Bytes of labelled accesses recorded strictly after logical time
      [op] — the read-back traffic a move at [op] would expose. *)
end

val recording : unit -> t * Future.t
(** First oracle pass: behaves exactly like {!threshold} while
    recording every labelled access against the logical op clock. *)

val oracle : Future.t -> t
(** Second oracle pass: with the first pass's future knowledge, move
    exactly the labels the mutator never touches again (zero future
    read-back by construction) plus — only when pressure forces more —
    the least-consulted of the rest. The upper bound a placement policy
    can reach. *)
