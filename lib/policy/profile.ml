(* Allocation-site lifetime profiles (Deca-style): the statistics a
   profiling run gathers per tag site, serialized so a later run — or a
   later process — can replay them as placement advice. Sites are small
   integers chosen by the frameworks (RDD ids, "edges"/"messages"
   stores), stable across runs of the same workload. *)

type site_stats = {
  site : int;
  mutable tags : int;  (* h2_tag_root calls crediting this site *)
  mutable moves : int;  (* objects the GC moved to H2 *)
  mutable deaths : int;  (* labelled objects freed *)
  mutable lifetime_ops : int;
      (* sum over deaths of (death op - tag op): mutator operations the
         object group outlived *)
  mutable accesses_after_tag : int;  (* mutator touches after tagging *)
  mutable access_bytes : int;  (* bytes of those touches *)
}

type t = { sites : (int, site_stats) Hashtbl.t }

let create () = { sites = Hashtbl.create 16 }

let find t ~site = Hashtbl.find_opt t.sites site

let touch t ~site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s
  | None ->
      let s =
        {
          site;
          tags = 0;
          moves = 0;
          deaths = 0;
          lifetime_ops = 0;
          accesses_after_tag = 0;
          access_bytes = 0;
        }
      in
      Hashtbl.replace t.sites site s;
      s

(* Average mutator operations a group tagged at [site] stays live after
   tagging; [max_int] when no death was ever observed (immortal within
   the profiled run — the best H2 candidate of all). *)
let avg_lifetime_ops (s : site_stats) =
  if s.deaths = 0 then max_int else s.lifetime_ops / s.deaths

(* Expected mutator touches per tagging — the read-back risk of placing
   this site's groups on the device. *)
let reads_per_tag (s : site_stats) =
  float_of_int s.accesses_after_tag /. float_of_int (max 1 s.tags)

let sorted_sites t =
  List.sort
    (fun (a : site_stats) b -> Int.compare a.site b.site)
    (* Order-insensitive: the fold only accumulates, and the sort above
       fixes the order by the unique site id, so the result never
       depends on hash iteration. th-lint: allow hashtbl-order *)
    (Hashtbl.fold (fun _ s acc -> s :: acc) t.sites [])

(* ------------------------------------------------------------------ *)
(* Serialization: one header line, then one line per site in ascending
   site order — deterministic output for any insertion history.        *)

let magic = "teraheap-lifetime-profile v1"

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %d %d %d %d %d\n" s.site s.tags s.moves
           s.deaths s.lifetime_ops s.accesses_after_tag s.access_bytes))
    (sorted_sites t);
  Buffer.contents b

let of_string str =
  match String.split_on_char '\n' str with
  | header :: rest when header = magic -> (
      let t = create () in
      let parse_line line =
        if line = "" then Ok ()
        else
          match
            List.filter_map int_of_string_opt (String.split_on_char ' ' line)
          with
          | [ site; tags; moves; deaths; lifetime_ops; accesses; bytes ]
            when site >= 0 ->
              let s = touch t ~site in
              s.tags <- tags;
              s.moves <- moves;
              s.deaths <- deaths;
              s.lifetime_ops <- lifetime_ops;
              s.accesses_after_tag <- accesses;
              s.access_bytes <- bytes;
              Ok ()
          | _ -> Error (Printf.sprintf "Profile.of_string: bad line %S" line)
      in
      let rec go = function
        | [] -> Ok t
        | l :: ls -> ( match parse_line l with Ok () -> go ls | Error _ as e -> e)
      in
      go rest)
  | _ -> Error "Profile.of_string: missing profile header"

(* The serialized form is canonical (sorted, exhaustive), so string
   equality is profile equality. *)
let equal a b = String.equal (to_string a) (to_string b)
