(* First-class H2 placement policies.

   The major GC hard-coded two decisions: *which tagged roots move this
   cycle* and *in what order/grouping they stream into H2 regions*. A
   policy answers both through [select]; everything else — closure
   computation, the pressure budget, promotion-failure retention, the
   resilience gate — stays in the collector, so every policy inherits
   the same safety envelope.

   Policies learn from the mutator through [observe]: the runtime feeds
   tag/advice/access/move/death events (host-side bookkeeping only — an
   observation never advances the simulated clock, draws randomness, or
   emits trace events, so installing a policy cannot perturb the
   simulation it watches). Policies measure time in *mutator operations*
   (observed accesses), a logical clock that is identical across runs of
   the same workload regardless of GC cadence — which is what makes the
   two-pass oracle's future knowledge transferable between passes.

   Each policy value owns unsynchronised mutable state: create one per
   runtime, inside the benchmark cell that uses it (the analyzer's
   escape-capture rule watches [make] for captured mutable locals). *)

module Obj_ = Th_objmodel.Heap_object
module H2 = Th_core.H2
module Page_cache = Th_device.Page_cache
module Vec = Th_sim.Vec

(* [Advised] picks move unconditionally (their group is immutable, per
   the h2_move contract); [Budgeted] picks are pressure moves, subject
   to the collector's low/high-threshold budget check before each
   closure. *)
type move_class = Advised | Budgeted

type pick = { root : Obj_.t; cls : move_class; group : int }
(** [group] keys the H2 allocator bucket the root's closure streams
    into; defaults to the root's label. Policies that co-locate labels
    (gang placement) return a shared group key. *)

(* Mirror of {!Rt.move_pressure}: the policy library sits below the
   collector, so it cannot import Rt's type. *)
type pressure = No_pressure | Move_all_tagged | Move_until_low

type ctx = {
  epoch : int;  (* current mark epoch *)
  pressure : pressure;  (* pending move pressure for this cycle *)
  live_bytes : int;  (* marked-live H1 bytes this cycle *)
  old_capacity : int;  (* old-generation capacity, bytes *)
  h2 : H2.t;  (* advice table, thresholds, page-cache stats *)
}

type obs =
  | Tagged of { label : int; site : int; bytes : int }
  | Advice of { label : int }
  | Access of {
      label : int;
      site : int;
      bytes : int;
      write : bool;
      in_h2 : bool;
    }
  | Moved of { label : int; site : int; bytes : int }
  | Death of { label : int; site : int; bytes : int }
  | Major_start of { epoch : int }

type t = {
  name : string;
  select : ctx -> roots:Obj_.t list -> pick list;
  observe : obs -> unit;
  trace_decisions : bool;
      (* emit a policy/select trace instant per major GC; off for the
         default policy so pre-policy trace goldens stay byte-identical *)
}

let make ~name ?(trace_decisions = true) ~select ~observe () =
  { name; select; observe; trace_decisions }

(* ------------------------------------------------------------------ *)
(* Threshold: the paper's high/low-threshold behavior, bit-for-bit.    *)

let is_advised ctx (r : Obj_.t) =
  r.Obj_.label >= 0 && H2.move_advised ctx.h2 ~label:r.Obj_.label

let own_group cls (r : Obj_.t) = { root = r; cls; group = r.Obj_.label }

(* Pass 1 of the old collector: advised roots in tag order. Pass 2:
   under pressure, unadvised roots in tag order, budget-checked. The
   collector re-applies the label/mark/closure-mark guards, so this
   selection is equivalent to the former inline passes. *)
let threshold_select ctx ~roots =
  let advised = List.map (own_group Advised) (List.filter (is_advised ctx) roots) in
  let forced =
    if ctx.pressure = No_pressure then []
    else
      List.map (own_group Budgeted)
        (List.filter
           (fun (r : Obj_.t) -> r.Obj_.label >= 0 && not (is_advised ctx r))
           roots)
  in
  advised @ forced

let threshold =
  {
    name = "threshold";
    select = threshold_select;
    observe = ignore;
    trace_decisions = false;
  }

(* ------------------------------------------------------------------ *)
(* Lifetime (Deca-style): replay an allocation-site profile.           *)

(* A site is a device-placement candidate when its groups outlive this
   many mutator operations on average; below it, moving wastes device
   writes on data about to die. *)
let lifetime_floor_ops = 64

(* ... and when the mutator rarely touches its groups after tagging
   (read-backs per tag at or below this). *)
let lifetime_max_reads_per_tag = 0.5

let lifetime profile =
  let stats (r : Obj_.t) = Profile.find profile ~site:r.Obj_.site in
  let reads r =
    match stats r with Some s -> Profile.reads_per_tag s | None -> infinity
  in
  let eager r =
    match stats r with
    | Some s ->
        Profile.avg_lifetime_ops s >= lifetime_floor_ops
        && Profile.reads_per_tag s <= lifetime_max_reads_per_tag
    | None -> false
  in
  let coldest_first l =
    List.stable_sort (fun a b -> Float.compare (reads a) (reads b)) l
  in
  let select ctx ~roots =
    let candidates = List.filter (fun (r : Obj_.t) -> r.Obj_.label >= 0) roots in
    (* Advised groups are immutable — always safe; profiled cold,
       long-lived sites move eagerly without waiting for advice. *)
    let up = List.filter (fun r -> is_advised ctx r || eager r) candidates in
    let rest = List.filter (fun r -> not (is_advised ctx r || eager r)) candidates in
    List.map (own_group Advised) (coldest_first up)
    @
    if ctx.pressure = No_pressure then []
    else List.map (own_group Budgeted) (coldest_first rest)
  in
  { name = "lifetime"; select; observe = ignore; trace_decisions = true }

(* The profiling pre-run: behaves exactly like [threshold] while
   filling a {!Profile.t} from the observation stream. *)
let profiler () =
  let prof = Profile.create () in
  let ops = ref 0 in
  let tag_op : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let observe = function
    | Tagged { label; site; _ } ->
        let s = Profile.touch prof ~site in
        s.Profile.tags <- s.Profile.tags + 1;
        Hashtbl.replace tag_op label !ops
    | Access { label; site; bytes; _ } ->
        incr ops;
        if site >= 0 && Hashtbl.mem tag_op label then begin
          let s = Profile.touch prof ~site in
          s.Profile.accesses_after_tag <- s.Profile.accesses_after_tag + 1;
          s.Profile.access_bytes <- s.Profile.access_bytes + bytes
        end
    | Moved { site; _ } ->
        if site >= 0 then begin
          let s = Profile.touch prof ~site in
          s.Profile.moves <- s.Profile.moves + 1
        end
    | Death { label; site; _ } ->
        if site >= 0 then begin
          let s = Profile.touch prof ~site in
          s.Profile.deaths <- s.Profile.deaths + 1;
          let born =
            match Hashtbl.find_opt tag_op label with
            | Some op -> op
            | None -> !ops
          in
          s.Profile.lifetime_ops <- s.Profile.lifetime_ops + (!ops - born)
        end
    | Advice _ | Major_start _ -> ()
  in
  ( {
      name = "profiler";
      select = threshold_select;
      observe;
      trace_decisions = false;
    },
    prof )

(* ------------------------------------------------------------------ *)
(* GangLocality (Gang-GC-style): co-accessed labels share regions.     *)

let gang_locality () =
  (* Union-find over labels; the representative (smallest label of the
     gang, so group keys are order-independent) is the placement group. *)
  let parent : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let rec find l =
    match Hashtbl.find_opt parent l with
    | None -> l
    | Some p ->
        if p = l then l
        else begin
          let r = find p in
          Hashtbl.replace parent l r;
          r
        end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then
      if ra < rb then Hashtbl.replace parent rb ra
      else Hashtbl.replace parent ra rb
  in
  let edge_hits : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_label = ref (-1) in
  let observe = function
    | Access { label; _ } ->
        let prev = !last_label in
        if prev >= 0 && prev <> label then begin
          let key = (min prev label, max prev label) in
          let n =
            1 + Option.value (Hashtbl.find_opt edge_hits key) ~default:0
          in
          Hashtbl.replace edge_hits key n;
          (* One adjacency may be a fluke; a repeat makes an affinity
             edge and fuses the gangs. *)
          if n = 2 then union prev label
        end;
        last_label := label
    | Tagged _ | Advice _ | Moved _ | Death _ | Major_start _ -> ()
  in
  let select ctx ~roots =
    let with_group cls (r : Obj_.t) =
      { root = r; cls; group = find r.Obj_.label }
    in
    let by_gang picks =
      (* Gang members stream adjacently into their shared open region;
         stable sort keeps tag order within and between gangs. *)
      List.stable_sort (fun a b -> Int.compare a.group b.group) picks
    in
    let advised =
      by_gang (List.map (with_group Advised) (List.filter (is_advised ctx) roots))
    in
    let forced =
      if ctx.pressure = No_pressure then []
      else
        by_gang
          (List.map (with_group Budgeted)
             (List.filter
                (fun (r : Obj_.t) ->
                  r.Obj_.label >= 0 && not (is_advised ctx r))
                roots))
    in
    advised @ forced
  in
  { name = "gang"; select; observe; trace_decisions = true }

(* ------------------------------------------------------------------ *)
(* TwoQ: frequency/recency scoring fed by the page-cache model.        *)

let two_q () =
  let ops = ref 0 in
  let last_access : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let freq : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let observe = function
    | Access { label; _ } ->
        incr ops;
        Hashtbl.replace last_access label !ops;
        Hashtbl.replace freq label
          (1 + Option.value (Hashtbl.find_opt freq label) ~default:0)
    | Tagged _ | Advice _ | Moved _ | Death _ | Major_start _ -> ()
  in
  let select ctx ~roots =
    (* Recency window: when the page cache is already thrashing (misses
       dominate), protect a longer tail of recently-touched labels from
       device placement. *)
    let pc = Page_cache.stats (H2.page_cache ctx.h2) in
    let total = pc.Page_cache.hits + pc.Page_cache.misses in
    let window =
      if total > 0 && pc.Page_cache.misses * 2 > total then !ops / 4
      else !ops / 8
    in
    let recency (r : Obj_.t) =
      Option.value (Hashtbl.find_opt last_access r.Obj_.label) ~default:0
    in
    let frequency (r : Obj_.t) =
      Option.value (Hashtbl.find_opt freq r.Obj_.label) ~default:0
    in
    let hot r = !ops - recency r < window in
    let coldest_first l =
      List.stable_sort
        (fun a b ->
          match Int.compare (frequency a) (frequency b) with
          | 0 -> Int.compare (recency a) (recency b)
          | c -> c)
        l
    in
    let candidates = List.filter (fun (r : Obj_.t) -> r.Obj_.label >= 0) roots in
    let cold_advised =
      coldest_first (List.filter (fun r -> is_advised ctx r && not (hot r)) candidates)
    in
    (* 2Q's deviation from the paper policy: hot labels stay in H1 even
       when advised, until pressure forces them out (hottest last). *)
    let forced =
      if ctx.pressure = No_pressure then []
      else
        coldest_first
          (List.filter
             (fun r -> (not (is_advised ctx r)) || hot r)
             candidates)
    in
    List.map (own_group Advised) cold_advised
    @ List.map (own_group Budgeted) forced
  in
  { name = "2q"; select; observe; trace_decisions = true }

(* ------------------------------------------------------------------ *)
(* Oracle: two-pass replay with perfect future knowledge.              *)

module Future = struct
  (* Per label: the op-indexed cumulative access-byte curve recorded by
     the first pass. [future_bytes] reads the tail of the curve — the
     read-back traffic a move at logical time [op] would expose. *)
  type per_label = { ops : int Vec.t; cum : int Vec.t; mutable total : int }

  type t = { labels : (int, per_label) Hashtbl.t }

  let create () = { labels = Hashtbl.create 32 }

  let record t ~label ~op ~bytes =
    let e =
      match Hashtbl.find_opt t.labels label with
      | Some e -> e
      | None ->
          let e = { ops = Vec.create (); cum = Vec.create (); total = 0 } in
          Hashtbl.replace t.labels label e;
          e
    in
    e.total <- e.total + bytes;
    Vec.push e.ops op;
    Vec.push e.cum e.total

  let future_bytes t ~label ~op =
    match Hashtbl.find_opt t.labels label with
    | None -> 0
    | Some e ->
        (* Binary search for the first recorded access after [op]. *)
        let n = Vec.length e.ops in
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if Vec.get e.ops mid <= op then lo := mid + 1 else hi := mid
        done;
        let consumed = if !lo = 0 then 0 else Vec.get e.cum (!lo - 1) in
        e.total - consumed
end

(* First pass: run the workload under the default policy, recording
   every labelled access against the logical op clock. *)
let recording () =
  let fut = Future.create () in
  let ops = ref 0 in
  let observe = function
    | Access { label; bytes; _ } ->
        incr ops;
        Future.record fut ~label ~op:!ops ~bytes
    | Tagged _ | Advice _ | Moved _ | Death _ | Major_start _ -> ()
  in
  ( {
      name = "recording";
      select = threshold_select;
      observe;
      trace_decisions = false;
    },
    fut )

(* Second pass: at each major GC the oracle moves exactly the labels the
   mutator will never touch again (zero future read-back by
   construction) and, only when pressure forces more, the least-consulted
   of the rest. The logical op clock keeps the two passes aligned: the
   mutator issues the same operations in the same order whatever the GC
   does between them. *)
let oracle fut =
  let ops = ref 0 in
  let observe = function
    | Access _ -> incr ops
    | Tagged _ | Advice _ | Moved _ | Death _ | Major_start _ -> ()
  in
  let select ctx ~roots =
    let future (r : Obj_.t) =
      Future.future_bytes fut ~label:r.Obj_.label ~op:!ops
    in
    let candidates = List.filter (fun (r : Obj_.t) -> r.Obj_.label >= 0) roots in
    let cold = List.filter (fun r -> future r = 0) candidates in
    let warm =
      if ctx.pressure = No_pressure then []
      else
        List.stable_sort
          (fun a b -> Int.compare (future a) (future b))
          (List.filter (fun r -> future r > 0) candidates)
    in
    List.map (own_group Advised) cold @ List.map (own_group Budgeted) warm
  in
  { name = "oracle"; select; observe; trace_decisions = true }
