(** Allocation-site lifetime profiles (Deca-style).

    A profiling run records, per tag site, how long labelled groups
    live and how often the mutator touches them after tagging; the
    {!Policy.lifetime} policy replays the serialized profile as
    placement advice in a later run. *)

type site_stats = {
  site : int;
  mutable tags : int;
  mutable moves : int;
  mutable deaths : int;
  mutable lifetime_ops : int;
  mutable accesses_after_tag : int;
  mutable access_bytes : int;
}

type t = { sites : (int, site_stats) Hashtbl.t }

val create : unit -> t

val find : t -> site:int -> site_stats option

val touch : t -> site:int -> site_stats
(** Existing statistics for [site], or a fresh zeroed entry. *)

val avg_lifetime_ops : site_stats -> int
(** Average mutator operations a group outlives its tagging; [max_int]
    when the site's groups never died in the profiled run. *)

val reads_per_tag : site_stats -> float
(** Expected mutator touches per tagging — the read-back risk of
    device placement. *)

val sorted_sites : t -> site_stats list
(** All entries in ascending site order (deterministic). *)

val to_string : t -> string
(** Serialize: a header line, then one line per site in ascending site
    order. Deterministic for any insertion history. *)

val of_string : string -> (t, string) result

val equal : t -> t -> bool
