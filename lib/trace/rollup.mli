(** Re-derive a run's GC and device breakdown from its event stream.

    The rollup is the recorder's cross-check: it recomputes, from events
    alone, the numbers the simulator also maintains as live counters
    ([Gc_stats] cycle counts and per-phase totals, [Device.stats]
    traffic). Span-end events carry the exact measured duration the
    collector recorded, and device events carry the exact charged bytes,
    so a complete stream (no ring-buffer drops) reproduces the live
    counters bit-for-bit — summed in the same order the simulator summed
    them. Tests enforce the equality; a mismatch means an emission site
    and its counter have diverged. *)

type t = {
  minor_gcs : int;
  major_gcs : int;
  minor_total_ns : float;
  major_total_ns : float;
  marking_ns : float;
  precompact_ns : float;
  adjust_ns : float;
  compact_ns : float;
  bytes_moved_to_h2 : int;
  regions_freed : int;
  device_bytes_read : int;
  device_bytes_written : int;
  device_read_ops : int;
  device_write_ops : int;
  faults_injected : int;
      (** injection instants: read/write errors, spikes, stalls, ENOSPC
          rejections — one event per fault the injector charged *)
  watchdog_timeouts : int;
      (** checked-I/O episodes the retry watchdog cut short *)
  breaker_opens : int;  (** circuit-breaker open transitions *)
  breaker_closes : int;  (** circuit-breaker recoveries *)
  slo_violations : int;  (** pauses flagged over the SLO budget *)
}

val of_events : Event.t list -> t

val check_against : t -> final:Snapshot.t -> string list
(** Compare the rolled-up device traffic with a final counter snapshot
    of the same run ({!Snapshot.t}, captured by [Th_verify.Counters]).
    Each returned string names one disagreeing counter; empty means the
    event stream accounts for every device byte and operation exactly. *)
