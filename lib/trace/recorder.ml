type t = {
  lane : int;
  slots : Event.t array;  (* fixed-size ring; preallocated at creation *)
  capacity : int;
  mutable written : int;  (* events ever recorded; next slot = written mod capacity *)
}

let default_capacity = 1 lsl 18

let dummy_event =
  {
    Event.ts = 0.0;
    lane = 0;
    kind = Event.Instant;
    cat = "";
    name = "";
    args = [];
  }

let create ?(capacity = default_capacity) ~lane () =
  let capacity = max 16 capacity in
  { lane; slots = Array.make capacity dummy_event; capacity; written = 0 }

let lane t = t.lane

let record t ~ts ~kind ~cat ~name ~args =
  t.slots.(t.written mod t.capacity) <-
    { Event.ts; lane = t.lane; kind; cat; name; args };
  t.written <- t.written + 1

let span_begin t ~ts ~cat ~name ?(args = []) () =
  record t ~ts ~kind:Event.Span_begin ~cat ~name ~args

let span_end t ~ts ~cat ~name ?(args = []) () =
  record t ~ts ~kind:Event.Span_end ~cat ~name ~args

let complete t ~ts ~dur_ns ~cat ~name ?(args = []) () =
  record t ~ts ~kind:(Event.Complete dur_ns) ~cat ~name ~args

let instant t ~ts ~cat ~name ?(args = []) () =
  record t ~ts ~kind:Event.Instant ~cat ~name ~args

let counter t ~ts ~cat ~name ~args =
  record t ~ts ~kind:Event.Counter ~cat ~name ~args

let length t = min t.written t.capacity

let total t = t.written

let dropped t = max 0 (t.written - t.capacity)

let events t =
  let n = length t in
  let first = t.written - n in
  List.init n (fun i -> t.slots.((first + i) mod t.capacity))

let clear t = t.written <- 0
