type device = {
  bytes_read : int;
  bytes_written : int;
  read_ops : int;
  write_ops : int;
}

type cache = { hits : int; misses : int; evictions : int; writebacks : int }

type t = {
  now_ns : float;
  other_ns : float;
  serde_io_ns : float;
  minor_gc_ns : float;
  major_gc_ns : float;
  device : device option;
  cache : cache option;
}

let monotone ~earlier ~later =
  let out = ref [] in
  let flag msg = out := msg :: !out in
  if later.now_ns < earlier.now_ns then flag "simulated clock moved backwards";
  if
    later.other_ns < earlier.other_ns
    || later.serde_io_ns < earlier.serde_io_ns
    || later.minor_gc_ns < earlier.minor_gc_ns
    || later.major_gc_ns < earlier.major_gc_ns
  then flag "a clock category's time decreased between safepoints";
  (match (earlier.device, later.device) with
  | Some prev, Some s ->
      if
        s.bytes_read < prev.bytes_read
        || s.bytes_written < prev.bytes_written
        || s.read_ops < prev.read_ops
        || s.write_ops < prev.write_ops
      then flag "device traffic counters decreased between safepoints"
  | (Some _ | None), _ -> ());
  (match (earlier.cache, later.cache) with
  | Some prev, Some s ->
      if
        s.hits < prev.hits || s.misses < prev.misses
        || s.evictions < prev.evictions
        || s.writebacks < prev.writebacks
      then flag "page-cache counters decreased between safepoints"
  | (Some _ | None), _ -> ());
  List.rev !out
