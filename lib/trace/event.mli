(** Typed flight-recorder events over simulated time.

    An event is a point (or span) on one {e lane} — one simulated
    runtime stack, so traces of independent runs interleave cleanly when
    merged — stamped with the simulated-clock nanosecond at which it was
    recorded. The vocabulary mirrors the Chrome trace-event format so the
    {!Export} module can emit Perfetto-loadable JSON without translation:
    paired begin/end span markers, self-contained complete spans with a
    duration, instants, and counter samples. *)

type arg = Int of int | Float of float | Str of string

type kind =
  | Span_begin  (** opens a span on the lane's stack (Chrome [ph:"B"]) *)
  | Span_end
      (** closes the innermost open span of the lane ([ph:"E"]); carries
          the span's exact measured duration and summary values in
          [args] *)
  | Complete of float
      (** a self-contained span of the given simulated duration in
          nanoseconds ([ph:"X"]); used for device operations, which never
          nest *)
  | Instant  (** a point event ([ph:"i"]) *)
  | Counter
      (** a sample of one or more monotone or gauge series; every [args]
          entry is one series ([ph:"C"]) *)

type t = {
  ts : float;  (** simulated nanoseconds since the run's clock started *)
  lane : int;
  kind : kind;
  cat : string;  (** subsystem: "gc", "h2", "card", "device", ... *)
  name : string;
  args : (string * arg) list;
}

val pp_arg : Format.formatter -> arg -> unit
(** Deterministic rendering used by the compact text exporter: integers
    as-is, floats with three decimals, strings verbatim. *)
