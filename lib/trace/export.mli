(** Trace exporters.

    Both exporters are deterministic functions of the event list: equal
    simulated runs yield byte-identical output, which is what the golden
    tests and the [--jobs] determinism checks rely on. No host state
    (wall clock, hash order, locale) reaches the output. *)

val merge : Recorder.t list -> Event.t list
(** Events of several recorders concatenated in the given (lane) order;
    each recorder's own events stay in recording order. *)

val to_chrome_json : Event.t list -> string
(** Chrome trace-event JSON ({"traceEvents": [...]}), loadable in
    Perfetto and chrome://tracing. Timestamps convert to microseconds
    ([ts], and [dur] for complete events); the lane becomes [tid] under a
    single [pid] 0. *)

val to_text : Event.t list -> string
(** The compact deterministic text form used by golden tests: one line
    per event — [lane ts kind cat name k=v ...] — with timestamps in
    nanoseconds at fixed precision. *)
