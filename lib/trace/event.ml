type arg = Int of int | Float of float | Str of string

type kind =
  | Span_begin
  | Span_end
  | Complete of float
  | Instant
  | Counter

type t = {
  ts : float;
  lane : int;
  kind : kind;
  cat : string;
  name : string;
  args : (string * arg) list;
}

let pp_arg f = function
  | Int n -> Format.fprintf f "%d" n
  | Float x -> Format.fprintf f "%.3f" x
  | Str s -> Format.fprintf f "%s" s
