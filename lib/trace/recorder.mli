(** JFR-style flight recorder: a preallocated ring buffer of events.

    A recorder belongs to one lane (one simulated runtime stack). The
    slot array is allocated up front, so steady-state recording never
    grows the heap: when the buffer is full the oldest events are
    overwritten, keeping the most recent window of the run — the flight-
    recorder discipline. [dropped] reports how many events fell out of
    the window; exact stream analyses ({!Rollup}) require it to be zero,
    so size the buffer for the run (the default holds 2^18 events).

    Recording is purely observational: it never touches the simulated
    clock, so a traced run's timing, stdout and CSV output are
    byte-identical to an untraced one. *)

type t

val default_capacity : int

val create : ?capacity:int -> lane:int -> unit -> t
(** [capacity] is clamped below at 16 slots. *)

val lane : t -> int

val span_begin :
  t -> ts:float -> cat:string -> name:string ->
  ?args:(string * Event.arg) list -> unit -> unit

val span_end :
  t -> ts:float -> cat:string -> name:string ->
  ?args:(string * Event.arg) list -> unit -> unit

val complete :
  t -> ts:float -> dur_ns:float -> cat:string -> name:string ->
  ?args:(string * Event.arg) list -> unit -> unit

val instant :
  t -> ts:float -> cat:string -> name:string ->
  ?args:(string * Event.arg) list -> unit -> unit

val counter :
  t -> ts:float -> cat:string -> name:string ->
  args:(string * Event.arg) list -> unit

val length : t -> int
(** Events currently held (at most the capacity). *)

val total : t -> int
(** Events ever recorded, dropped ones included. *)

val dropped : t -> int

val events : t -> Event.t list
(** Retained events, oldest first. *)

val clear : t -> unit
