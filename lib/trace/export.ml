let merge recorders = List.concat_map Recorder.events recorders

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)

let escape_json b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_json_arg b (k, v) =
  Buffer.add_char b '"';
  escape_json b k;
  Buffer.add_string b "\":";
  match v with
  | Event.Int n -> Buffer.add_string b (string_of_int n)
  | Event.Float x -> Buffer.add_string b (Printf.sprintf "%.3f" x)
  | Event.Str s ->
      Buffer.add_char b '"';
      escape_json b s;
      Buffer.add_char b '"'

let us ns = Printf.sprintf "%.3f" (ns /. 1e3)

let add_chrome_event b (e : Event.t) =
  let ph =
    match e.Event.kind with
    | Event.Span_begin -> "B"
    | Event.Span_end -> "E"
    | Event.Complete _ -> "X"
    | Event.Instant -> "i"
    | Event.Counter -> "C"
  in
  Buffer.add_string b "{\"name\":\"";
  escape_json b e.Event.name;
  Buffer.add_string b "\",\"cat\":\"";
  escape_json b e.Event.cat;
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"ts\":";
  Buffer.add_string b (us e.Event.ts);
  (match e.Event.kind with
  | Event.Complete dur ->
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b (us dur)
  | Event.Span_begin | Event.Span_end | Event.Instant | Event.Counter -> ());
  (match e.Event.kind with
  | Event.Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Event.Span_begin | Event.Span_end | Event.Complete _ | Event.Counter -> ());
  Buffer.add_string b ",\"pid\":0,\"tid\":";
  Buffer.add_string b (string_of_int e.Event.lane);
  (match e.Event.args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_char b ',';
          add_json_arg b a)
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_chrome_json events =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      add_chrome_event b e)
    events;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Compact deterministic text                                          *)

let kind_tag = function
  | Event.Span_begin -> "B"
  | Event.Span_end -> "E"
  | Event.Complete _ -> "X"
  | Event.Instant -> "I"
  | Event.Counter -> "C"

let to_text events =
  let b = Buffer.create 65536 in
  List.iter
    (fun (e : Event.t) ->
      Buffer.add_string b
        (Printf.sprintf "%d %.3f %s %s %s" e.Event.lane e.Event.ts
           (kind_tag e.Event.kind) e.Event.cat e.Event.name);
      (match e.Event.kind with
      | Event.Complete dur -> Buffer.add_string b (Printf.sprintf " dur=%.3f" dur)
      | Event.Span_begin | Event.Span_end | Event.Instant | Event.Counter -> ());
      List.iter
        (fun (k, v) ->
          Buffer.add_string b
            (Format.asprintf " %s=%a" k Event.pp_arg v))
        e.Event.args;
      Buffer.add_char b '\n')
    events;
  Buffer.contents b
