type t = {
  minor_gcs : int;
  major_gcs : int;
  minor_total_ns : float;
  major_total_ns : float;
  marking_ns : float;
  precompact_ns : float;
  adjust_ns : float;
  compact_ns : float;
  bytes_moved_to_h2 : int;
  regions_freed : int;
  device_bytes_read : int;
  device_bytes_written : int;
  device_read_ops : int;
  device_write_ops : int;
  faults_injected : int;
  watchdog_timeouts : int;
  breaker_opens : int;
  breaker_closes : int;
  slo_violations : int;
}

let zero =
  {
    minor_gcs = 0;
    major_gcs = 0;
    minor_total_ns = 0.0;
    major_total_ns = 0.0;
    marking_ns = 0.0;
    precompact_ns = 0.0;
    adjust_ns = 0.0;
    compact_ns = 0.0;
    bytes_moved_to_h2 = 0;
    regions_freed = 0;
    device_bytes_read = 0;
    device_bytes_written = 0;
    device_read_ops = 0;
    device_write_ops = 0;
    faults_injected = 0;
    watchdog_timeouts = 0;
    breaker_opens = 0;
    breaker_closes = 0;
    slo_violations = 0;
  }

let arg_float args k =
  match List.assoc_opt k args with
  | Some (Event.Float x) -> x
  | Some (Event.Int n) -> float_of_int n
  | Some (Event.Str _) | None -> 0.0

let arg_int args k =
  match List.assoc_opt k args with
  | Some (Event.Int n) -> n
  | Some (Event.Float x) -> int_of_float x
  | Some (Event.Str _) | None -> 0

let injection_names =
  [ "read_error"; "write_error"; "spike"; "stall"; "device_full" ]

let of_events events =
  (* The outer match lists every [Event.kind] constructor explicitly so
     that adding a kind forces a revisit here; the inner matches are
     over (cat, name) strings, where an open catch-all is the point. *)
  List.fold_left
    (fun acc (e : Event.t) ->
      match e.Event.kind with
      | Event.Span_begin | Event.Counter -> acc
      | Event.Span_end -> (
          match (e.Event.cat, e.Event.name) with
          | "gc", "minor_gc" ->
              {
                acc with
                minor_gcs = acc.minor_gcs + 1;
                minor_total_ns =
                  acc.minor_total_ns +. arg_float e.Event.args "dur_ns";
              }
          | "gc", "major_gc" ->
              {
                acc with
                major_gcs = acc.major_gcs + 1;
                major_total_ns =
                  acc.major_total_ns +. arg_float e.Event.args "dur_ns";
                bytes_moved_to_h2 =
                  acc.bytes_moved_to_h2 + arg_int e.Event.args "bytes_moved";
                regions_freed =
                  acc.regions_freed + arg_int e.Event.args "regions_freed";
              }
          | "gc", "marking" ->
              {
                acc with
                marking_ns = acc.marking_ns +. arg_float e.Event.args "dur_ns";
              }
          | "gc", "precompact" ->
              {
                acc with
                precompact_ns =
                  acc.precompact_ns +. arg_float e.Event.args "dur_ns";
              }
          | "gc", "adjust" ->
              {
                acc with
                adjust_ns = acc.adjust_ns +. arg_float e.Event.args "dur_ns";
              }
          | "gc", "compact" ->
              {
                acc with
                compact_ns = acc.compact_ns +. arg_float e.Event.args "dur_ns";
              }
          | _ -> acc)
      | Event.Complete _ -> (
          match (e.Event.cat, e.Event.name) with
          | "device", "read" ->
              {
                acc with
                device_bytes_read =
                  acc.device_bytes_read + arg_int e.Event.args "bytes";
                device_read_ops = acc.device_read_ops + 1;
              }
          | "device", "write" ->
              {
                acc with
                device_bytes_written =
                  acc.device_bytes_written + arg_int e.Event.args "bytes";
                device_write_ops = acc.device_write_ops + 1;
              }
          | _ -> acc)
      | Event.Instant -> (
          match (e.Event.cat, e.Event.name) with
          | "fault", name when List.mem name injection_names ->
              { acc with faults_injected = acc.faults_injected + 1 }
          | "fault", "watchdog_timeout" ->
              { acc with watchdog_timeouts = acc.watchdog_timeouts + 1 }
          | "resilience", "breaker_open" ->
              { acc with breaker_opens = acc.breaker_opens + 1 }
          | "resilience", "breaker_close" ->
              { acc with breaker_closes = acc.breaker_closes + 1 }
          | "resilience", "slo_violation" ->
              { acc with slo_violations = acc.slo_violations + 1 }
          | _ -> acc))
    zero events

let check_against t ~(final : Snapshot.t) =
  match final.Snapshot.device with
  | None -> []
  | Some d ->
      let out = ref [] in
      let check name rolled live =
        if rolled <> live then
          out :=
            Printf.sprintf "%s: rollup %d <> live counter %d" name rolled live
            :: !out
      in
      check "device bytes_read" t.device_bytes_read d.Snapshot.bytes_read;
      check "device bytes_written" t.device_bytes_written d.Snapshot.bytes_written;
      check "device read_ops" t.device_read_ops d.Snapshot.read_ops;
      check "device write_ops" t.device_write_ops d.Snapshot.write_ops;
      List.rev !out
