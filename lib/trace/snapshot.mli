(** One snapshot of a run's monotone counters: the simulated clock's
    per-category breakdown plus the H2 device and page-cache statistics,
    as plain data.

    This is the single counter-reading shared between the
    [Th_verify] conservation rule (which compares successive safepoint
    snapshots for monotonicity) and {!Rollup.check_against} (which
    compares an event-stream rollup against the final snapshot) — the
    capture function itself lives in [Th_verify.Counters], next to the
    runtime it reads. *)

type device = {
  bytes_read : int;
  bytes_written : int;
  read_ops : int;
  write_ops : int;
}

type cache = { hits : int; misses : int; evictions : int; writebacks : int }

type t = {
  now_ns : float;
  other_ns : float;
  serde_io_ns : float;
  minor_gc_ns : float;
  major_gc_ns : float;
  device : device option;
  cache : cache option;
}

val monotone : earlier:t -> later:t -> string list
(** The conservation violations between two snapshots of the same run:
    each returned string describes one counter family that moved
    backwards. An empty list means every counter is monotone. *)
