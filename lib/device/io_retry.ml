module Clock = Th_sim.Clock
module Fault = Th_sim.Fault

type policy = {
  max_retries : int;
  base_backoff_ns : float;
  backoff_multiplier : float;
  max_backoff_ns : float;
  timeout_ns : float;
  jitter : float;
  episode_deadline_ns : float;
}

let default =
  {
    max_retries = 4;
    base_backoff_ns = 20_000.0;
    backoff_multiplier = 2.0;
    max_backoff_ns = 1_000_000.0;
    timeout_ns = 5_000_000.0;
    jitter = 0.25;
    episode_deadline_ns = infinity;
  }

let backoff_ns p ~attempt =
  if attempt <= 0 then 0.0
  else
    Float.min p.max_backoff_ns
      (p.base_backoff_ns *. (p.backoff_multiplier ** float_of_int (attempt - 1)))

exception Io_error of { op : string; attempts : int }

let run policy ~clock ~cat ~faults ~op attempt =
  let recovery_instant name args =
    match Clock.tracer clock with
    | None -> ()
    | Some tr ->
        Th_trace.Recorder.instant tr ~ts:(Clock.now_ns clock) ~cat:"fault"
          ~name ~args ()
  in
  let started_ns = Clock.now_ns clock in
  let watchdog_timeout n =
    Fault.note_watchdog faults;
    recovery_instant "watchdog_timeout"
      [
        ("op", Th_trace.Event.Str op);
        ("attempts", Th_trace.Event.Int (n + 1));
        ("waited_ns", Th_trace.Event.Float (Clock.now_ns clock -. started_ns));
      ];
    raise (Io_error { op; attempts = n + 1 })
  in
  let rec go n =
    match attempt n with
    | Ok v -> v
    | Error `Transient ->
        let elapsed = Clock.now_ns clock -. started_ns in
        (* The watchdog bounds the whole episode, not one attempt: slow
           faulty attempts alone can blow the deadline before the retry
           budget runs out. *)
        if elapsed > policy.episode_deadline_ns then watchdog_timeout n
        else if n >= policy.max_retries then begin
          Fault.note_exhausted faults;
          recovery_instant "retry_exhausted"
            [
              ("op", Th_trace.Event.Str op);
              ("attempts", Th_trace.Event.Int (n + 1));
            ];
          raise (Io_error { op; attempts = n + 1 })
        end
        else begin
          let base = backoff_ns policy ~attempt:(n + 1) in
          (* Jitter spreads the backoff to +/- [jitter] of nominal so
             concurrent episodes don't retry in lockstep. The draw comes
             from the injector's dedicated stream and only happens on an
             actual retry, so fault-free runs never touch it. *)
          let wait =
            if policy.jitter > 0.0 then
              base
              *. (1.0 +. (policy.jitter *. ((2.0 *. Fault.jitter_unit faults) -. 1.0)))
            else base
          in
          if elapsed +. wait > policy.episode_deadline_ns then
            watchdog_timeout n
          else begin
            Fault.note_retry faults;
            Fault.note_backoff faults wait;
            recovery_instant "retry"
              [
                ("op", Th_trace.Event.Str op);
                ("attempt", Th_trace.Event.Int (n + 1));
                ("backoff_ns", Th_trace.Event.Float wait);
              ];
            Clock.advance clock cat wait;
            go (n + 1)
          end
        end
  in
  go 0
[@@th.raises "Io_error"]
