(** LRU page cache in front of a device.

    Models the kernel page cache backing memory-mapped I/O: the DR2 portion
    of DRAM in the paper's configurations (Tables 3 and 4). Hits cost DRAM
    time; misses fault the page in from the device; evicting a dirty page
    writes it back. Runs of consecutive missing pages are charged as one
    sequential device read, modelling OS readahead. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
}

type t

val create :
  ?page_size:int -> capacity_bytes:int -> Th_sim.Clock.t -> Device.t -> t
(** [create ~capacity_bytes clock device] caches [device] pages, charging
    hit costs to [clock]. [page_size] defaults to the device's page size;
    pass {!Th_sim.Size.mib}[ 2] to model huge-page mappings (HugeMap [31]). *)

val page_size : t -> int

val device : t -> Device.t

val capacity_pages : t -> int

val access :
  ?checked:bool ->
  t -> cat:Th_sim.Clock.category -> write:bool -> offset:int -> len:int -> unit
(** [access t ~cat ~write ~offset ~len] touches the byte range, faulting
    missing pages and charging the clock. A whole-page-aligned write skips
    the fetch (write-allocate without read). With [checked] (default
    false), a miss whose device read exhausts its fault retries raises
    {!Io_retry.Io_error}; callers recover by recomputing the lost data.
    Unchecked accesses never fail (the kernel fault path waits instead). *)

val invalidate_range : t -> offset:int -> len:int -> unit
(** Drop pages without writeback; used when the backing region is freed
    (dead H2 regions need no flush). *)

val flush : t -> cat:Th_sim.Clock.category -> unit
(** Write back all dirty pages. *)

val resident_pages : t -> int

val stats : t -> stats

val reset_stats : t -> unit

val hit_ratio : stats -> float
