module Fault = Th_sim.Fault

type kind = Dram | Nvme_ssd | Nvm_app_direct | Nvm_memory_mode

type params = {
  kind : kind;
  page_size : int;
  read_latency_ns : float;
  write_latency_ns : float;
  read_bw_gbps : float;
  write_bw_gbps : float;
}

type stats = {
  bytes_read : int;
  bytes_written : int;
  read_ops : int;
  write_ops : int;
}

type t = {
  params : params;
  clock : Th_sim.Clock.t;
  faults : Fault.t option;
  retry : Io_retry.policy;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable read_ops : int;
  mutable write_ops : int;
}

(* Presets. DRAM: ~80 ns loads, ~12 GB/s streaming. PM983 NVMe: ~3.2/2.0 GB/s
   read/write, queued 4 KiB request ~ 2.5/6 us. Optane App-Direct: 300 ns
   read, 100 ns buffered write at 256 B granularity, 6.0/2.0 GB/s
   (Izraelevitz et al. [24]). Memory mode pays an extra DRAM-cache-miss
   penalty, modelled at the access site. *)
let params_of_kind = function
  | Dram ->
      {
        kind = Dram;
        page_size = 64;
        read_latency_ns = 80.0;
        write_latency_ns = 80.0;
        read_bw_gbps = 12.0;
        write_bw_gbps = 12.0;
      }
  | Nvme_ssd ->
      {
        kind = Nvme_ssd;
        page_size = 4096;
        read_latency_ns = 2_500.0;
        write_latency_ns = 6_000.0;
        read_bw_gbps = 3.2;
        write_bw_gbps = 2.0;
      }
  | Nvm_app_direct ->
      {
        kind = Nvm_app_direct;
        page_size = 256;
        read_latency_ns = 300.0;
        write_latency_ns = 100.0;
        read_bw_gbps = 6.0;
        write_bw_gbps = 2.0;
      }
  | Nvm_memory_mode ->
      {
        kind = Nvm_memory_mode;
        page_size = 64;
        read_latency_ns = 300.0;
        write_latency_ns = 300.0;
        read_bw_gbps = 6.0;
        write_bw_gbps = 2.0;
      }

let create ?params ?faults ?(retry = Io_retry.default) clock kind =
  let params =
    match params with Some p -> p | None -> params_of_kind kind
  in
  {
    params;
    clock;
    faults;
    retry;
    bytes_read = 0;
    bytes_written = 0;
    read_ops = 0;
    write_ops = 0;
  }

let kind t = t.params.kind

let faults t = t.faults

let page_size t = t.params.page_size

let round_to_pages t bytes =
  let p = t.params.page_size in
  (bytes + p - 1) / p * p

let transfer_ns bytes bw_gbps = float_of_int bytes /. bw_gbps

(* bw in GB/s = bytes/ns, so transfer time in ns is bytes / bw. *)

let read_cost_ns t ~random bytes =
  if bytes <= 0 then 0.0
  else if random then begin
    let amplified = round_to_pages t bytes in
    let requests = amplified / t.params.page_size in
    (float_of_int requests *. t.params.read_latency_ns)
    +. transfer_ns amplified t.params.read_bw_gbps
  end
  else t.params.read_latency_ns +. transfer_ns bytes t.params.read_bw_gbps

let write_cost_ns t ~random bytes =
  if bytes <= 0 then 0.0
  else if random then begin
    let amplified = round_to_pages t bytes in
    let requests = amplified / t.params.page_size in
    (float_of_int requests *. t.params.write_latency_ns)
    +. transfer_ns amplified t.params.write_bw_gbps
  end
  else t.params.write_latency_ns +. transfer_ns bytes t.params.write_bw_gbps

(* Perform one request of pure cost [cost_ns], drawing fault outcomes from
   the injector. A failed attempt pays one request latency before the
   error comes back; spike/stall surcharges and timeout waits are recorded
   as fault penalty so a run satisfies
   [total = pure costs + backoff + penalty]. Checked operations propagate
   {!Io_retry.Io_error} after bounded retries; unchecked operations
   (the kernel mmap path) classify exhaustion as a timeout, wait it out
   and complete — the mutator never sees EIO. *)
let perform t ~cat ~checked ~op ~cost_ns =
  match t.faults with
  | Some f when Fault.enabled f ->
      let latency_ns, opname, outcome_of =
        match op with
        | `Read -> (t.params.read_latency_ns, "read", Fault.on_read)
        | `Write -> (t.params.write_latency_ns, "write", Fault.on_write)
      in
      let fault_instant name args =
        match Th_sim.Clock.tracer t.clock with
        | None -> ()
        | Some tr ->
            Th_trace.Recorder.instant tr
              ~ts:(Th_sim.Clock.now_ns t.clock)
              ~cat:"fault" ~name ~args ()
      in
      let fail_attempt name =
        fault_instant name [];
        Th_sim.Clock.advance t.clock cat latency_ns;
        Fault.note_penalty f latency_ns;
        Result.Error `Transient
      in
      let attempt _n =
        match outcome_of f ~now_ns:(Th_sim.Clock.now_ns t.clock) with
        | Fault.Ok ->
            Th_sim.Clock.advance t.clock cat cost_ns;
            Result.Ok ()
        | Fault.Spike m ->
            fault_instant "spike" [ ("factor", Th_trace.Event.Float m) ];
            Th_sim.Clock.advance t.clock cat (cost_ns *. m);
            Fault.note_penalty f (cost_ns *. (m -. 1.0));
            Result.Ok ()
        | Fault.Stall extra ->
            fault_instant "stall" [ ("extra_ns", Th_trace.Event.Float extra) ];
            Th_sim.Clock.advance t.clock cat (cost_ns +. extra);
            Fault.note_penalty f extra;
            Result.Ok ()
        | Fault.Transient_error -> fail_attempt (opname ^ "_error")
        | Fault.Device_full -> fail_attempt "device_full"
      in
      let go () =
        Io_retry.run t.retry ~clock:t.clock ~cat ~faults:f ~op:opname attempt
      in
      if checked then go ()
      else begin
        try go ()
        with Io_retry.Io_error _ ->
          Th_sim.Clock.advance t.clock cat
            (t.retry.Io_retry.timeout_ns +. cost_ns);
          Fault.note_penalty f t.retry.Io_retry.timeout_ns
      end
  | Some _ | None -> Th_sim.Clock.advance t.clock cat cost_ns
[@@th.raises "Io_error(checked)"]

(* One complete event per operation, spanning queueing, fault penalties
   and retries. [bytes] is the exact amount charged to the traffic
   counter, so {!Rollup} reproduces [stats] from the stream. *)
let traced_op t ~name ~bytes run =
  match Th_sim.Clock.tracer t.clock with
  | None -> run ()
  | Some tr ->
      let ts = Th_sim.Clock.now_ns t.clock in
      (* finally: the counters were already charged, so the event must be
         recorded even when a checked operation escapes with Io_error. *)
      Fun.protect run ~finally:(fun () ->
          Th_trace.Recorder.complete tr ~ts
            ~dur_ns:(Th_sim.Clock.now_ns t.clock -. ts)
            ~cat:"device" ~name
            ~args:[ ("bytes", Th_trace.Event.Int bytes) ]
            ())

let read ?(checked = false) t ~cat ~random bytes =
  if bytes > 0 then begin
    let charged = if random then round_to_pages t bytes else bytes in
    t.bytes_read <- t.bytes_read + charged;
    t.read_ops <- t.read_ops + 1;
    traced_op t ~name:"read" ~bytes:charged (fun () ->
        perform t ~cat ~checked ~op:`Read
          ~cost_ns:(read_cost_ns t ~random bytes))
  end
[@@th.raises "Io_error(checked)"]

let read_continuation ?(overlap = 1.0) ?(checked = false) t ~cat bytes =
  if bytes > 0 then begin
    t.bytes_read <- t.bytes_read + bytes;
    t.read_ops <- t.read_ops + 1;
    traced_op t ~name:"read" ~bytes (fun () ->
        perform t ~cat ~checked ~op:`Read
          ~cost_ns:(overlap *. transfer_ns bytes t.params.read_bw_gbps))
  end
[@@th.raises "Io_error(checked)"]

let write ?(checked = false) t ~cat ~random bytes =
  if bytes > 0 then begin
    let charged = if random then round_to_pages t bytes else bytes in
    t.bytes_written <- t.bytes_written + charged;
    t.write_ops <- t.write_ops + 1;
    traced_op t ~name:"write" ~bytes:charged (fun () ->
        perform t ~cat ~checked ~op:`Write
          ~cost_ns:(write_cost_ns t ~random bytes))
  end
[@@th.raises "Io_error(checked)"]

let read_modify_write t ~cat bytes =
  read t ~cat ~random:true bytes;
  write t ~cat ~random:true bytes

let stats t =
  {
    bytes_read = t.bytes_read;
    bytes_written = t.bytes_written;
    read_ops = t.read_ops;
    write_ops = t.write_ops;
  }

let reset_stats t =
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  t.read_ops <- 0;
  t.write_ops <- 0

let pp_stats f (s : stats) =
  Format.fprintf f "read %s in %d ops | wrote %s in %d ops"
    (Th_sim.Size.to_string s.bytes_read)
    s.read_ops
    (Th_sim.Size.to_string s.bytes_written)
    s.write_ops
