(** Storage-device models.

    A device charges simulated time per access and keeps traffic counters.
    Requests are charged as [latency + size / bandwidth]; sequential streams
    amortise the latency over the stream (modern NVMe queues and OS
    readahead hide per-page latency for sequential access, cf. paper §2 and
    [41]). Byte-addressable devices (DRAM, NVM App-Direct) use their access
    granularity instead of a 4 KiB page.

    A device may carry a {!Th_sim.Fault} injector: each request then draws
    a fault outcome — transient errors retried with exponential backoff
    through the {!Io_retry} policy, tail-latency spike episodes, writeback
    stalls, device-full windows — and every fault-induced wait is charged
    to the simulated clock. Unchecked operations (the kernel mmap path)
    never fail: exhausted retries are classified as a timeout, charged,
    and the request completes. [~checked:true] operations instead raise
    {!Io_retry.Io_error} after bounded retries, for callers that can
    recover (lineage recomputation, deferred flushes). *)

type kind =
  | Dram
  | Nvme_ssd  (** Samsung PM983-like: block-addressable, 4 KiB pages *)
  | Nvm_app_direct  (** Optane DC in App-Direct mode: byte-addressable *)
  | Nvm_memory_mode
      (** Optane DC in Memory mode: CPU-managed DRAM cache in front of NVM *)

type params = {
  kind : kind;
  page_size : int;  (** access granularity in bytes *)
  read_latency_ns : float;  (** effective queued latency per request *)
  write_latency_ns : float;
  read_bw_gbps : float;  (** GB/s *)
  write_bw_gbps : float;
}

type stats = {
  bytes_read : int;
  bytes_written : int;
  read_ops : int;
  write_ops : int;
}

type t

val params_of_kind : kind -> params
(** Datasheet-derived presets; see DESIGN.md. *)

val create :
  ?params:params ->
  ?faults:Th_sim.Fault.t ->
  ?retry:Io_retry.policy ->
  Th_sim.Clock.t ->
  kind ->
  t
(** [create clock kind] is a device charging its accesses to [clock].
    [faults] attaches a fault injector; [retry] overrides the
    {!Io_retry.default} policy. *)

val kind : t -> kind

val faults : t -> Th_sim.Fault.t option
(** The device's fault injector, if any — also the aggregation point for
    retry/recompute counters recorded by layers above the device. *)

val page_size : t -> int

val read :
  ?checked:bool ->
  t -> cat:Th_sim.Clock.category -> random:bool -> int -> unit
(** [read t ~cat ~random bytes] charges one read request of [bytes] bytes.
    [random] requests pay the full per-request latency and round the
    transfer up to page granularity (the paper's I/O amplification);
    sequential requests are charged at bandwidth. With [checked] (default
    false), exhausted fault retries raise {!Io_retry.Io_error} instead of
    being absorbed as a charged timeout. *)

val write :
  ?checked:bool ->
  t -> cat:Th_sim.Clock.category -> random:bool -> int -> unit

val read_continuation :
  ?overlap:float -> ?checked:bool ->
  t -> cat:Th_sim.Clock.category -> int -> unit
(** Continuation of a detected sequential stream (OS readahead): charged
    at pure transfer bandwidth, without the per-request latency.
    [overlap] scales the charge below 1.0 when the transfer proceeds
    concurrently with useful work. *)

val read_modify_write :
  t -> cat:Th_sim.Clock.category -> int -> unit
(** In-place update of device-resident data: a page-granularity read
    followed by a write of the same pages (§7.2: "large cost of
    read-modify-write operations on an I/O device"). *)

val stats : t -> stats

val reset_stats : t -> unit

val read_cost_ns : t -> random:bool -> int -> float
(** Pure cost query without charging; used by cache layers. *)

val write_cost_ns : t -> random:bool -> int -> float

val pp_stats : Format.formatter -> stats -> unit
