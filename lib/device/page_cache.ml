type stats = { hits : int; misses : int; evictions : int; writebacks : int }

type node = {
  page : int;
  mutable dirty : bool;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  device : Device.t;
  clock : Th_sim.Clock.t;
  page_size : int;
  capacity : int;  (* pages *)
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable last_miss_page : int;  (* readahead stream detection *)
}

let create ?page_size ~capacity_bytes clock device =
  let page_size =
    match page_size with Some p -> p | None -> Device.page_size device
  in
  if page_size <= 0 then invalid_arg "Page_cache.create: page_size";
  let capacity = max 1 (capacity_bytes / page_size) in
  {
    device;
    clock;
    page_size;
    capacity;
    table = Hashtbl.create 4096;
    head = None;
    tail = None;
    resident = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    last_miss_page = min_int;
  }

let page_size t = t.page_size

let device t = t.device

let capacity_pages t = t.capacity

(* Doubly-linked LRU list maintenance. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch_lru t n =
  (* [t.head != Some n] was always true — physical inequality against a
     freshly allocated [Some] cell — so every touch relinked. Compare
     the payload nodes physically instead. *)
  let already_front = match t.head with Some h -> h == n | None -> false in
  if not already_front then begin
    unlink t n;
    push_front t n
  end

let evict_one t ~cat =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.page;
      t.resident <- t.resident - 1;
      t.evictions <- t.evictions + 1;
      if n.dirty then begin
        t.writebacks <- t.writebacks + 1;
        Device.write t.device ~cat ~random:true t.page_size
      end

let insert t ~cat page ~dirty =
  while t.resident >= t.capacity do
    evict_one t ~cat
  done;
  let n = { page; dirty; prev = None; next = None } in
  Hashtbl.replace t.table page n;
  push_front t n;
  t.resident <- t.resident + 1

(* A cached mmap access is an ordinary DRAM load; most of its cost is already
   accounted as mutator compute, so only a small residual is charged. *)
let hit_cost_ns _t = 10.0

let access ?(checked = false) t ~cat ~write ~offset ~len =
  if len > 0 then begin
    let first = offset / t.page_size in
    let last = (offset + len - 1) / t.page_size in
    (* Accumulate runs of consecutive misses so sequential faults are
       charged as one streaming read. A miss continuing the previous
       call's stream is charged at transfer bandwidth only: OS readahead
       has already queued it. *)
    let miss_run = ref 0 in
    let run_start = ref 0 in
    let flush_miss_run () =
      if !miss_run > 0 then begin
        let bytes = !miss_run * t.page_size in
        if !run_start = t.last_miss_page + 1 then
          (* Mutator-side streaming faults overlap with computation
             (readahead prefetches while the application works); GC-side
             scans stall the collector. *)
          let overlap =
            match cat with Th_sim.Clock.Other -> 0.35 | _ -> 1.0
          in
          Device.read_continuation t.device ~cat ~overlap ~checked bytes
        else Device.read t.device ~cat ~random:(!miss_run = 1) ~checked bytes;
        t.last_miss_page <- !run_start + !miss_run - 1;
        miss_run := 0
      end
    in
    for page = first to last do
      match Hashtbl.find_opt t.table page with
      | Some n ->
          flush_miss_run ();
          t.hits <- t.hits + 1;
          if write then n.dirty <- true;
          touch_lru t n;
          Th_sim.Clock.advance t.clock cat (hit_cost_ns t)
      | None ->
          t.misses <- t.misses + 1;
          let whole_page_write =
            write && offset <= page * t.page_size
            && offset + len >= (page + 1) * t.page_size
          in
          if not whole_page_write then begin
            if !miss_run = 0 then run_start := page;
            miss_run := !miss_run + 1
          end
          else flush_miss_run ();
          insert t ~cat page ~dirty:write
    done;
    flush_miss_run ()
  end
[@@th.raises "Io_error(checked)"]

let invalidate_range t ~offset ~len =
  if len > 0 then begin
    let first = offset / t.page_size in
    let last = (offset + len - 1) / t.page_size in
    for page = first to last do
      match Hashtbl.find_opt t.table page with
      | Some n ->
          unlink t n;
          Hashtbl.remove t.table page;
          t.resident <- t.resident - 1
      | None -> ()
    done
  end

let flush t ~cat =
  let dirty = ref 0 in
  (* Order-insensitive: only counts and clears each page's dirty flag.
     th-lint: allow hashtbl-order *)
  Hashtbl.iter (fun _ n -> if n.dirty then begin incr dirty; n.dirty <- false end) t.table;
  if !dirty > 0 then begin
    (match Th_sim.Clock.tracer t.clock with
    | None -> ()
    | Some tr ->
        Th_trace.Recorder.instant tr
          ~ts:(Th_sim.Clock.now_ns t.clock)
          ~cat:"cache" ~name:"flush"
          ~args:[ ("pages", Th_trace.Event.Int !dirty) ]
          ());
    t.writebacks <- t.writebacks + !dirty;
    Device.write t.device ~cat ~random:false (!dirty * t.page_size)
  end

let resident_pages t = t.resident

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writebacks = t.writebacks;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.writebacks <- 0

let hit_ratio (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 1.0 else float_of_int s.hits /. float_of_int total
