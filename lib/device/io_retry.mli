(** Retry policy for device I/O under fault injection.

    Transient device errors are retried a bounded number of times with
    exponential backoff; every backoff wait is charged to the simulated
    {!Th_sim.Clock} under the category of the failed operation, so retries
    show up in the §6 execution-time breakdowns exactly where a real
    system would lose the time. Backoff is jittered from the fault
    injector's dedicated PRNG stream so concurrent retry episodes spread
    out instead of hammering the device in lockstep — and, being seeded,
    the jitter is exactly as reproducible as the faults themselves.

    Two bounds can end an episode early. When the attempt budget is
    exhausted the loop raises {!Io_error}; checked callers recover by
    recomputation or deferral, while the device's unchecked (kernel
    mmap-path) operations catch it, classify the episode as a timeout,
    charge the timeout wait and complete — the kernel page-fault path
    never returns EIO to the mutator in this model, it waits. A finite
    [episode_deadline_ns] additionally arms an I/O watchdog: an episode
    whose cumulative duration would exceed the deadline is classified as
    a watchdog timeout (counted and traced separately from retry
    exhaustion) and raises {!Io_error} without waiting out the remaining
    budget, bounding how long any one checked operation can wedge. *)

type policy = {
  max_retries : int;  (** attempts beyond the first *)
  base_backoff_ns : float;  (** backoff before the first retry *)
  backoff_multiplier : float;  (** exponential growth per retry *)
  max_backoff_ns : float;  (** backoff cap *)
  timeout_ns : float;
      (** wait charged when an unchecked operation exhausts its attempts
          and the episode is classified as a timeout rather than an
          error *)
  jitter : float;
      (** backoff spread: each wait is scaled by a seeded uniform draw in
          [1 - jitter, 1 + jitter); 0 restores deterministic lockstep *)
  episode_deadline_ns : float;
      (** watchdog bound on one retry episode's total simulated duration;
          [infinity] disarms the watchdog *)
}

val default : policy
(** 4 retries, 20 us base backoff doubling to a 1 ms cap, 5 ms timeout,
    25% jitter, watchdog disarmed. *)

val backoff_ns : policy -> attempt:int -> float
(** Nominal (pre-jitter) backoff charged before retry number [attempt]
    (1-based), capped at [max_backoff_ns]. *)

exception Io_error of { op : string; attempts : int }
(** Raised when every attempt of a retry loop failed, or the watchdog cut
    the episode short. *)

val run :
  policy ->
  clock:Th_sim.Clock.t ->
  cat:Th_sim.Clock.category ->
  faults:Th_sim.Fault.t ->
  op:string ->
  (int -> ('a, [ `Transient ]) result) ->
  'a
(** [run policy ~clock ~cat ~faults ~op attempt] calls [attempt n] with
    n = 0, 1, ... until it succeeds, for at most [1 + max_retries]
    attempts. Each failure charges jittered exponential backoff to
    [clock] under [cat] and records the retry and its backoff in
    [faults]; exhaustion raises {!Io_error}, as does blowing the
    watchdog deadline (recorded via [Fault.note_watchdog] and a
    ["watchdog_timeout"] trace instant). The [attempt] callback charges
    its own device time. *)
