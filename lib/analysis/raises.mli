(** Interprocedural raises-effect analysis.

    Infers, for every definition in the analyzed sources, the set of
    typed exception constructors that may escape a call to it —
    syntactic [raise (C ...)] forms introduce constructors, [try] and
    [match ... with exception] handlers subtract what they catch
    (re-raising the bound exception puts it back), and identifier
    occurrences contribute the callee's summary at the occurrence
    site, so a handler around the call absorbs it. Summaries
    propagate over {!Callgraph} to fixpoint across library and
    nested-module boundaries.

    [[@th.raises "Exn ..."]] on a binding fixes the summary callers
    see; inference never widens a declared summary. Three rules
    consume the results: [fault-barrier] (undeclared escapes of fault
    exceptions; [Out_of_h2_space] may never leave [Ps_gc]),
    [cell-boundary] (thunks at scheduler sinks may only leak
    [Out_of_memory]/[Invalid_heap_state]) and [pure-render]
    ([Plan.seal ~render] callbacks must be exception- and
    effect-free). *)

type raw = {
  loc : Location.t;
  rule : string;
  message : string;
  allows : string list;  (** th.allow tokens in scope at the site *)
}

type t

val build : Callgraph.t -> Source.t list -> t
(** Infer summaries for every definition and run the fixpoint.
    Deterministic: defs are visited in canonical key order. *)

val summary : t -> Callgraph.key -> string list
(** The published summary of a definition — the [@th.raises]
    declaration when one exists, the inferred escape set otherwise.
    Sorted; [[]] for unknown keys. *)

val of_expr :
  t -> lib:string -> modname:string -> Parsetree.expression -> string list
(** Escape set of a standalone expression evaluated in the given
    module's scope, resolving free identifiers through the call
    graph. Sorted. *)

val check_file : t -> Source.t -> raw list
(** The fault-barrier / cell-boundary / pure-render findings for one
    file, in source order. The caller funnels them through
    {!Engine}-style emission so waivers apply uniformly. *)
