(* Interprocedural raises-effect analysis.

   Every definition in the analyzed sources gets a summary: the set of
   typed exception constructors that may escape a call to it. Summaries
   are inferred from the bodies — syntactic [raise (C ...)] forms
   introduce a constructor, [try]/[match ... with exception] handlers
   subtract the constructors they catch (and re-raising the bound
   exception puts them back) — and propagate through the cross-library
   call graph to fixpoint, so an [Io_error] born three libraries down
   in [Io_retry.run] is visible at a [Block_manager.get] call site.

   The domain is deliberately the repo's own fault vocabulary: only
   exceptions the analyzed sources raise by constructor name are
   tracked. Stdlib helpers ([failwith], [invalid_arg], [Not_found]
   from containers) model programmer errors, not the fault protocol,
   and contribute nothing — tracking them would drown the barrier
   rules in assertion noise.

   A [[@th.raises "Exn ..."]] declaration on a binding fixes the
   summary callers see: inference never widens a declared summary
   (qcheck-tested), and the fault-barrier rule fires when the body's
   inferred set exceeds the declaration.

   Three rule families consume the summaries:
   - fault-barrier: a definition must not leak a tracked exception it
     neither handles nor declares; [Out_of_h2_space] must never escape
     [Ps_gc]'s move passes, declared or not.
   - cell-boundary: thunks handed to Cell/Plan/Scheduler/Pool sinks may
     only let [Out_of_memory]/[Invalid_heap_state] escape — the
     scheduler's documented re-raise set.
   - pure-render: [Plan.seal ~render] callbacks must be exception-free
     and effect-free (no mutable globals reachable). *)

open Parsetree
module SS = Syntax.SS
module SM = Map.Make (String)

type raw = {
  loc : Location.t;
  rule : string;
  message : string;
  allows : string list;  (** th.allow tokens in scope at the site *)
}

(* Where a constructor entered a summary: the first raise site or
   callee occurrence seen, for actionable finding messages. *)
type witness = { wloc : Location.t; via : Callgraph.key option }

type t = {
  db : Callgraph.t;
  (* what callers observe: the declaration when one exists, the
     inferred set otherwise *)
  published : (Callgraph.key, SS.t) Hashtbl.t;
  (* what the body can actually raise, with witnesses *)
  inferred : (Callgraph.key, witness SM.t) Hashtbl.t;
  declared : (Callgraph.key, SS.t) Hashtbl.t;
  (* conditional contracts: (def, ctor) -> labelled-argument guard.
     [Device.read]'s Io_error only escapes applications that pass
     [~checked] as something other than a literal [false]. *)
  guards : (Callgraph.key * string, string) Hashtbl.t;
}

(* The scheduler re-raises the first cell failure after the batch
   drains; Out_of_memory and Invalid_heap_state are its documented
   vocabulary — everything else crossing a cell boundary is a bug. *)
let cell_allowed = SS.of_list [ "Out_of_memory"; "Invalid_heap_state" ]

let merge a b = SM.union (fun _ w _ -> Some w) a b

let domain m = SM.fold (fun c _ acc -> SS.add c acc) m SS.empty

(* ------------------------------------------------------------------ *)
(* Handler patterns: which exception constructors does a case catch?   *)

type handler_info = {
  ctors : SS.t;  (** named constructors the pattern matches *)
  catch_all : bool;  (** [_] or a variable: catches everything *)
  bound : string option;  (** variable bound to the caught exception *)
}

let rec handler_of_pat p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) ->
      let ctors =
        match List.rev (Syntax.flatten_lid txt) with
        | n :: _ -> SS.singleton n
        | [] -> SS.empty
      in
      { ctors; catch_all = false; bound = None }
  | Ppat_any -> { ctors = SS.empty; catch_all = true; bound = None }
  | Ppat_var { txt; _ } ->
      { ctors = SS.empty; catch_all = true; bound = Some txt }
  | Ppat_alias (inner, { txt; _ }) ->
      { (handler_of_pat inner) with bound = Some txt }
  | Ppat_or (a, b) ->
      let ha = handler_of_pat a and hb = handler_of_pat b in
      {
        ctors = SS.union ha.ctors hb.ctors;
        catch_all = ha.catch_all || hb.catch_all;
        bound = (match ha.bound with Some _ as v -> v | None -> hb.bound);
      }
  | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_exception p ->
      handler_of_pat p
  | _ -> { ctors = SS.empty; catch_all = false; bound = None }

let rec pat_has_exception p =
  match p.ppat_desc with
  | Ppat_exception _ -> true
  | Ppat_or (a, b) -> pat_has_exception a || pat_has_exception b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
      pat_has_exception p
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

type env = {
  t : t;
  cur_lib : string;
  cur_mod : string;
  shadow : (string, int) Hashtbl.t;
  (* let-bound lambdas: raising is latent, attributed at occurrences *)
  latent : (string, SS.t list) Hashtbl.t;
  (* handler-bound exception variables: what a re-raise reintroduces *)
  reraise : (string, SS.t list) Hashtbl.t;
}

let shadow_count env n =
  Option.value ~default:0 (Hashtbl.find_opt env.shadow n)

let stack_top tbl n =
  match Hashtbl.find_opt tbl n with Some (s :: _) -> Some s | _ -> None

let push tbl n v =
  Hashtbl.replace tbl n (v :: Option.value ~default:[] (Hashtbl.find_opt tbl n))

let pop tbl n =
  match Hashtbl.find_opt tbl n with
  | Some (_ :: rest) -> Hashtbl.replace tbl n rest
  | _ -> ()

let with_vars env vars k =
  List.iter (fun n -> Hashtbl.replace env.shadow n (shadow_count env n + 1)) vars;
  let r = k () in
  List.iter (fun n -> Hashtbl.replace env.shadow n (shadow_count env n - 1)) vars;
  r

let singleton ctor loc = SM.singleton ctor { wloc = loc; via = None }

let published env key =
  Option.value ~default:SS.empty (Hashtbl.find_opt env.t.published key)

(* Does an application's argument list activate a conditional
   contract? Omitting the guard label takes the default (unguarded)
   path; passing a literal [false] explicitly declines it; anything
   else — literal [true] or a forwarded variable — activates it. *)
let arg_passes_guard args label =
  match
    List.find_opt
      (fun (l, _) ->
        match l with
        | Asttypes.Labelled n | Asttypes.Optional n -> String.equal n label
        | Asttypes.Nolabel -> false)
      args
  with
  | None -> false
  | Some (_, e) -> (
      match e.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> false
      | _ -> true)

(* The contribution of referring to [lid] at [loc]: the published
   summary of whatever it resolves to, witnessed at the occurrence.
   [apply_args] is the argument list when the reference is the head
   of an application — the only position where conditional contracts
   can be discharged; a bare occurrence keeps the full set. *)
let ident_contrib ?apply_args env lid (loc : Location.t) =
  match lid with
  | Longident.Lident n when shadow_count env n > 0 -> (
      match stack_top env.latent n with
      | Some latent ->
          SS.fold
            (fun c acc -> SM.add c { wloc = loc; via = None } acc)
            latent SM.empty
      | None -> SM.empty)
  | _ ->
      List.fold_left
        (fun acc key ->
          SS.fold
            (fun c acc ->
              let active =
                match (Hashtbl.find_opt env.t.guards (key, c), apply_args) with
                | Some label, Some args -> arg_passes_guard args label
                | Some _, None | None, _ -> true
              in
              if active then SM.add c { wloc = loc; via = Some key } acc
              else acc)
            (published env key) acc)
        SM.empty
        (Callgraph.resolve env.t.db ~cur_lib:env.cur_lib ~cur_mod:env.cur_mod
           lid)

let is_raise env fn =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Syntax.flatten_lid txt with
      | [ ("raise" | "raise_notrace") ] ->
          shadow_count env "raise" = 0 && shadow_count env "raise_notrace" = 0
      | [ "Stdlib"; ("raise" | "raise_notrace") ] -> true
      | _ -> false)
  | _ -> false

(* Thunks handed to these callees run later, on a worker domain — their
   raises are not the enclosing definition's to answer for (the
   cell-boundary and pure-render rules audit them instead), so [eval]
   skips function-valued arguments at these applications. *)
let deferral_sink env fn =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let path = Syntax.flatten_lid txt in
      match path with
      | [ ("pmap" | "pmap_grouped") ] when shadow_count env (List.hd path) = 0
        ->
          Some (String.concat "." path)
      | _ -> (
          match Syntax.last2 path with
          | Some ("Pool", ("run" | "map"))
          | Some ("Runners", ("pmap" | "pmap_grouped"))
          | Some ("Scheduler", ("run_cells" | "run_thunks"))
          | Some
              ( "Plan",
                ( "cell" | "cell_list" | "costed_list" | "grouped"
                | "grouped_costed" | "seal" ) )
          | Some ("Cell", ("make" | "of_thunk"))
          | Some ("Policy", "make")
          | Some ("Domain", "spawn") ->
              Some (String.concat "." path)
          | _ -> None))
  | _ -> None

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> is_function e
  | _ -> false

(* Subtract what the handlers catch; a handler RHS re-raising the bound
   exception reintroduces the caught set (handled by the caller via
   [reraise] bindings). Guarded cases may decline to match, so they
   subtract nothing. *)
let filter_handled raised cases ~only_exception_cases =
  List.fold_left
    (fun acc c ->
      let relevant =
        (not only_exception_cases) || pat_has_exception c.pc_lhs
      in
      if (not relevant) || c.pc_guard <> None then acc
      else
        let h = handler_of_pat c.pc_lhs in
        if h.catch_all then SM.empty
        else SS.fold SM.remove h.ctors acc)
    raised cases

let rec eval env e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ident_contrib env txt e.pexp_loc
  | Pexp_apply (fn, args) when is_raise env fn -> (
      match args with
      | (_, arg) :: _ -> (
          match arg.pexp_desc with
          | Pexp_construct ({ txt; _ }, payload) -> (
              let payload_raises =
                match payload with Some p -> eval env p | None -> SM.empty
              in
              match List.rev (Syntax.flatten_lid txt) with
              | ctor :: _ ->
                  merge (singleton ctor arg.pexp_loc) payload_raises
              | [] -> payload_raises)
          | Pexp_ident { txt = Longident.Lident n; _ }
            when shadow_count env n > 0 -> (
              (* [raise e] where [e] was bound by a handler: the
                 original set flows onward. *)
              match stack_top env.reraise n with
              | Some set ->
                  SS.fold
                    (fun c acc ->
                      SM.add c { wloc = e.pexp_loc; via = None } acc)
                    set SM.empty
              | None -> SM.empty)
          | _ -> eval env arg)
      | [] -> SM.empty)
  | Pexp_apply (fn, args) -> (
      let fn_contrib () =
        match fn.pexp_desc with
        | Pexp_ident { txt; _ } ->
            ident_contrib ~apply_args:args env txt fn.pexp_loc
        | _ -> eval env fn
      in
      match deferral_sink env fn with
      | Some _ ->
          (* Non-function arguments still evaluate here and now. *)
          List.fold_left
            (fun acc (_, a) ->
              if is_function a then acc else merge acc (eval env a))
            (fn_contrib ()) args
      | None ->
          List.fold_left
            (fun acc (_, a) -> merge acc (eval env a))
            (fn_contrib ()) args)
  | Pexp_fun (_, dflt, pat, body) ->
      let d = match dflt with Some d -> eval env d | None -> SM.empty in
      merge d
        (with_vars env (Syntax.pat_vars pat) (fun () -> eval env body))
  | Pexp_function cases -> eval_cases env cases ~reraise:None
  | Pexp_try (body, cases) ->
      let raised = eval env body in
      let survives = filter_handled raised cases ~only_exception_cases:false in
      merge survives
        (eval_cases env cases ~reraise:(Some (domain raised)))
  | Pexp_match (scrut, cases) ->
      let raised = eval env scrut in
      let survives = filter_handled raised cases ~only_exception_cases:true in
      let handler_reraise =
        if List.exists (fun c -> pat_has_exception c.pc_lhs) cases then
          Some (domain raised)
        else None
      in
      merge survives (eval_cases env cases ~reraise:handler_reraise)
  | Pexp_let (rf, vbs, body) -> eval_let env rf vbs body
  | Pexp_letop _ ->
      (* Binding operators thread effects opaquely; fall through to the
         structural walk below. *)
      eval_children env e
  | _ -> eval_children env e

and eval_cases env cases ~reraise =
  List.fold_left
    (fun acc c ->
      let h = handler_of_pat c.pc_lhs in
      let vars = Syntax.pat_vars c.pc_lhs in
      let contribution =
        with_vars env vars (fun () ->
            let bind_reraise k =
              match (h.bound, reraise) with
              | Some v, Some full ->
                  let set = if h.catch_all then full else h.ctors in
                  push env.reraise v set;
                  let r = k () in
                  pop env.reraise v;
                  r
              | _ -> k ()
            in
            bind_reraise (fun () ->
                let g =
                  match c.pc_guard with
                  | Some g -> eval env g
                  | None -> SM.empty
                in
                merge g (eval env c.pc_rhs)))
      in
      merge acc contribution)
    SM.empty cases

and eval_let env rf vbs body =
  let lambda_vb vb =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } when is_function vb.pvb_expr -> Some txt
    | _ -> None
  in
  let lambdas = List.filter_map lambda_vb vbs in
  let plain_vars =
    List.concat_map
      (fun vb ->
        match lambda_vb vb with
        | Some _ -> []
        | None -> Syntax.pat_vars vb.pvb_pat)
      vbs
  in
  (* Latent sets for let-bound lambdas: the lambda's raises belong to
     its occurrences (inside whatever [try] encloses them), not to the
     [let] itself. Recursive groups iterate a small local fixpoint. *)
  let eval_lambda_bodies () =
    List.filter_map
      (fun vb ->
        match lambda_vb vb with
        | Some n -> Some (n, domain (eval env vb.pvb_expr))
        | None -> None)
      vbs
  in
  let eager, latents =
    match rf with
    | Nonrecursive ->
        let eager =
          List.fold_left
            (fun acc vb ->
              match lambda_vb vb with
              | Some _ -> acc
              | None -> merge acc (eval env vb.pvb_expr))
            SM.empty vbs
        in
        (eager, eval_lambda_bodies ())
    | Recursive ->
        with_vars env (lambdas @ plain_vars) (fun () ->
            List.iter (fun n -> push env.latent n SS.empty) lambdas;
            let rec iterate sets budget =
              List.iter
                (fun (n, s) ->
                  pop env.latent n;
                  push env.latent n s)
                sets;
              let next = eval_lambda_bodies () in
              if budget = 0 || List.equal (fun (a, sa) (b, sb) ->
                  String.equal a b && SS.equal sa sb) next sets
              then next
              else iterate next (budget - 1)
            in
            let latents = iterate (List.map (fun n -> (n, SS.empty)) lambdas) 8 in
            let eager =
              List.fold_left
                (fun acc vb ->
                  match lambda_vb vb with
                  | Some _ -> acc
                  | None -> merge acc (eval env vb.pvb_expr))
                SM.empty vbs
            in
            List.iter (fun n -> pop env.latent n) lambdas;
            (eager, latents))
  in
  let body_raises =
    with_vars env (lambdas @ plain_vars) (fun () ->
        List.iter (fun (n, s) -> push env.latent n s) latents;
        let r = eval env body in
        List.iter (fun (n, _) -> pop env.latent n) latents;
        r)
  in
  merge eager body_raises

and eval_children env e =
  let acc = ref SM.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ child -> acc := merge !acc (eval env child));
    }
  in
  Ast_iterator.default_iterator.expr it e;
  !acc

(* ------------------------------------------------------------------ *)
(* Whole-project fixpoint                                              *)

let build db (_sources : Source.t list) =
  let t =
    {
      db;
      published = Hashtbl.create 256;
      inferred = Hashtbl.create 256;
      declared = Hashtbl.create 64;
      guards = Hashtbl.create 16;
    }
  in
  Callgraph.fold_defs db ~init:() ~f:(fun () key _ attrs ->
      match Syntax.attr_raises attrs with
      | Some decl ->
          let names =
            List.fold_left (fun acc (c, _) -> SS.add c acc) SS.empty decl
          in
          Hashtbl.replace t.declared key names;
          Hashtbl.replace t.published key names;
          List.iter
            (fun (c, guard) ->
              match guard with
              | Some label -> Hashtbl.replace t.guards (key, c) label
              | None -> ())
            decl
      | None -> ());
  let eval_def key body =
    let env =
      {
        t;
        cur_lib = key.Callgraph.lib;
        cur_mod = key.Callgraph.modname;
        shadow = Hashtbl.create 16;
        latent = Hashtbl.create 8;
        reraise = Hashtbl.create 8;
      }
    in
    eval env body
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Callgraph.fold_defs db ~init:() ~f:(fun () key body _ ->
        let inferred = eval_def key body in
        Hashtbl.replace t.inferred key inferred;
        let next =
          match Hashtbl.find_opt t.declared key with
          | Some decl -> decl
          | None -> domain inferred
        in
        let cur =
          Option.value ~default:SS.empty (Hashtbl.find_opt t.published key)
        in
        if not (SS.equal next cur) then begin
          Hashtbl.replace t.published key next;
          changed := true
        end)
  done;
  t

let summary t key =
  SS.elements
    (Option.value ~default:SS.empty (Hashtbl.find_opt t.published key))

let of_expr t ~lib ~modname e =
  let env =
    {
      t;
      cur_lib = lib;
      cur_mod = modname;
      shadow = Hashtbl.create 16;
      latent = Hashtbl.create 8;
      reraise = Hashtbl.create 8;
    }
  in
  SS.elements (domain (eval env e))

(* ------------------------------------------------------------------ *)
(* Rule checks over one file                                           *)

let describe_witness w =
  match w.via with
  | None -> ""
  | Some k ->
      Printf.sprintf " (via %s)" (Callgraph.key_to_string k)

let fault_barrier_message ~def ctor w =
  match ctor with
  | "Io_error" ->
      Printf.sprintf
        "Io_error may escape %s%s; device faults must be absorbed by an \
         Io_retry episode or an explicit handler — wrap the call, or \
         declare the contract with [@@th.raises \"Io_error\"] so callers \
         inherit the obligation"
        def (describe_witness w)
  | "Out_of_h2_space" ->
      Printf.sprintf
        "Out_of_h2_space may escape %s%s; H2 exhaustion must degrade \
         gracefully (defer the object, fall back to H1), not propagate — \
         handle it at the move pass, or declare [@@th.raises \
         \"Out_of_h2_space\"] outside Ps_gc"
        def (describe_witness w)
  | _ ->
      Printf.sprintf
        "%s may escape %s%s, which neither handles it nor declares it; \
         add a handler or state the contract with [@@th.raises %S]"
        ctor def (describe_witness w) ctor

(* Fault exceptions whose undeclared escape is a fault-barrier finding.
   Out_of_memory/Invalid_heap_state are ambient by design — the
   scheduler re-raises them and every driver's top level owns them —
   so they are audited at cell and render boundaries instead. *)
let barrier_checked ctor = not (SS.mem ctor cell_allowed)

let check_def t ~lib acc ~modname ~prefix ~allows vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } ->
      let name =
        match prefix with [] -> txt | _ -> String.concat "." (prefix @ [ txt ])
      in
      let key = { Callgraph.lib; modname; name } in
      let inferred =
        Option.value ~default:SM.empty (Hashtbl.find_opt t.inferred key)
      in
      let declared =
        Option.value ~default:SS.empty (Hashtbl.find_opt t.declared key)
      in
      let vb_allows = Syntax.attr_allows vb.pvb_attributes @ allows in
      SM.fold
        (fun ctor w acc ->
          let undeclared = not (SS.mem ctor declared) in
          (* Out_of_h2_space must not cross Ps_gc's boundary even when
             declared: the move passes own the degradation contract. *)
          let h2_escape_from_psgc =
            String.equal ctor "Out_of_h2_space" && String.equal modname "Ps_gc"
          in
          if barrier_checked ctor && (undeclared || h2_escape_from_psgc) then
            {
              loc = w.wloc;
              rule = "fault-barrier";
              message =
                fault_barrier_message
                  ~def:(Printf.sprintf "%s.%s" modname name)
                  ctor w;
              allows = vb_allows;
            }
            :: acc
          else acc)
        inferred acc
  | _ ->
      (* Module-initialisation code ([let () = ...], destructuring):
         anything escaping here aborts at load/startup time. *)
      let inferred = of_expr t ~lib ~modname vb.pvb_expr in
      List.fold_left
        (fun acc ctor ->
          if barrier_checked ctor then
            {
              loc = vb.pvb_loc;
              rule = "fault-barrier";
              message =
                Printf.sprintf
                  "%s may escape module initialisation of %s; nothing above \
                   this code can handle it — absorb it here"
                  ctor modname;
              allows = Syntax.attr_allows vb.pvb_attributes @ allows;
            }
            :: acc
          else acc)
        acc inferred

(* The sinks whose thunk arguments cross onto worker domains, audited
   by cell-boundary. Policy.make callbacks run during GC on whichever
   domain owns the runtime — same discipline. *)
let cell_sink fn shadow_count =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let path = Syntax.flatten_lid txt in
      match path with
      | [ ("pmap" | "pmap_grouped") ] when shadow_count (List.hd path) = 0 ->
          Some (List.hd path)
      | _ -> (
          match Syntax.last2 path with
          | Some ("Pool", ("run" | "map"))
          | Some ("Runners", ("pmap" | "pmap_grouped"))
          | Some ("Scheduler", ("run_cells" | "run_thunks"))
          | Some
              ( "Plan",
                ( "cell" | "cell_list" | "costed_list" | "grouped"
                | "grouped_costed" ) )
          | Some ("Cell", ("make" | "of_thunk"))
          | Some ("Policy", "make")
          | Some ("Domain", "spawn") ->
              Some (String.concat "." path)
          | _ -> None))
  | _ -> None

let render_sink fn =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Syntax.last2 (Syntax.flatten_lid txt) with
      | Some ("Plan", "seal") -> Some "Plan.seal"
      | _ -> None)
  | _ -> None

let check_file t (s : Source.t) =
  match s.ast with
  | Source.Signature _ -> []
  | Source.Structure str ->
      let acc = ref [] in
      let env =
        {
          t;
          cur_lib = s.library;
          cur_mod = s.modname;
          shadow = Hashtbl.create 16;
          latent = Hashtbl.create 8;
          reraise = Hashtbl.create 8;
        }
      in
      let check_cell_site ~allows callee args =
        List.iter
          (fun (_, arg) ->
            let escapes = eval env arg in
            SM.iter
              (fun ctor w ->
                if not (SS.mem ctor cell_allowed) then
                  acc :=
                    {
                      loc = w.wloc;
                      rule = "cell-boundary";
                      message =
                        Printf.sprintf
                          "%s%s can escape a thunk handed to %s; the \
                           scheduler only re-raises \
                           Out_of_memory/Invalid_heap_state across the \
                           batch — handle %s inside the cell and fold it \
                           into the result value"
                          ctor (describe_witness w) callee ctor;
                      allows;
                    }
                    :: !acc)
              escapes)
          args
      in
      let check_render_site ~allows args =
        List.iter
          (fun (label, arg) ->
            let is_render =
              match label with
              | Asttypes.Labelled "render" | Asttypes.Optional "render" ->
                  true
              | _ -> false
            in
            if is_render then begin
              let escapes = eval env arg in
              SM.iter
                (fun ctor w ->
                  acc :=
                    {
                      loc = w.wloc;
                      rule = "pure-render";
                      message =
                        Printf.sprintf
                          "%s%s can escape a Plan render function; renders \
                           must be exception-free — resolve failures in \
                           the cells and render the resolved values"
                          ctor (describe_witness w);
                      allows;
                    }
                    :: !acc)
                escapes;
              (* Effect-freedom: no mutable global reachable from the
                 render, directly or through calls. *)
              Syntax.iter_unshadowed_idents arg ~f:(fun lid loc ->
                  List.iter
                    (fun key ->
                      let globals =
                        if Option.is_some (Callgraph.global_info t.db key)
                        then [ (key, None) ]
                        else
                          List.map
                            (fun g -> (g, Some key))
                            (Callgraph.def_effects t.db key)
                      in
                      List.iter
                        (fun (g, via) ->
                          let via_s =
                            match via with
                            | None -> ""
                            | Some k ->
                                Printf.sprintf " (via %s)"
                                  (Callgraph.key_to_string k)
                          in
                          acc :=
                            {
                              loc;
                              rule = "pure-render";
                              message =
                                Printf.sprintf
                                  "mutable global %s is reachable from a \
                                   Plan render function%s; renders must be \
                                   effect-free — accumulate on the serial \
                                   path after the batch, then render the \
                                   result"
                                  (Callgraph.key_to_string g) via_s;
                              allows;
                            }
                            :: !acc)
                        globals)
                    (Callgraph.resolve t.db ~cur_lib:s.library
                       ~cur_mod:s.modname lid))
            end)
          args
      in
      (* Walk the structure: value bindings get the def-level
         fault-barrier check; applications get the sink checks. The
         allow stack mirrors Engine's so expression-level waivers
         reach the raw findings. *)
      let rec walk_expr ~allows e =
        let allows = Syntax.attr_allows e.pexp_attributes @ allows in
        (match e.pexp_desc with
        | Pexp_apply (fn, args) -> (
            (match cell_sink fn (shadow_count env) with
            | Some callee -> check_cell_site ~allows callee args
            | None -> ());
            match render_sink fn with
            | Some _ -> check_render_site ~allows args
            | None -> ())
        | _ -> ());
        iter_children ~allows e
      and iter_children ~allows e =
        (* Maintain the same shadow discipline as [eval] so bare sink
           names ([pmap]) are only matched when unshadowed. *)
        match e.pexp_desc with
        | Pexp_fun (_, dflt, pat, body) ->
            Option.iter (walk_expr ~allows) dflt;
            with_vars env (Syntax.pat_vars pat) (fun () ->
                walk_expr ~allows body)
        | Pexp_function cases -> List.iter (walk_case ~allows) cases
        | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
            walk_expr ~allows scrut;
            List.iter (walk_case ~allows) cases
        | Pexp_let (rf, vbs, body) ->
            let vars = List.concat_map (fun vb -> Syntax.pat_vars vb.pvb_pat) vbs in
            let visit_vb vb =
              walk_expr
                ~allows:(Syntax.attr_allows vb.pvb_attributes @ allows)
                vb.pvb_expr
            in
            (match rf with
            | Recursive ->
                with_vars env vars (fun () ->
                    List.iter visit_vb vbs;
                    walk_expr ~allows body)
            | Nonrecursive ->
                List.iter visit_vb vbs;
                with_vars env vars (fun () -> walk_expr ~allows body))
        | Pexp_for (pat, a, b, _, body) ->
            walk_expr ~allows a;
            walk_expr ~allows b;
            with_vars env (Syntax.pat_vars pat) (fun () ->
                walk_expr ~allows body)
        | _ ->
            let it =
              {
                Ast_iterator.default_iterator with
                expr = (fun _ child -> walk_expr ~allows child);
              }
            in
            Ast_iterator.default_iterator.expr it e
      and walk_case ~allows c =
        with_vars env (Syntax.pat_vars c.pc_lhs) (fun () ->
            Option.iter (walk_expr ~allows) c.pc_guard;
            walk_expr ~allows c.pc_rhs)
      in
      let rec walk_items ~prefix ~modname items =
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.iter
                  (fun vb ->
                    acc :=
                      check_def t ~lib:s.library !acc ~modname ~prefix
                        ~allows:[] vb;
                    walk_expr
                      ~allows:(Syntax.attr_allows vb.pvb_attributes)
                      vb.pvb_expr)
                  vbs
            | Pstr_module mb -> walk_mod ~prefix ~modname mb
            | Pstr_recmodule mbs ->
                List.iter (walk_mod ~prefix ~modname) mbs
            | Pstr_eval (e, attrs) ->
                List.iter
                  (fun ctor ->
                    if barrier_checked ctor then
                      acc :=
                        {
                          loc = e.pexp_loc;
                          rule = "fault-barrier";
                          message =
                            Printf.sprintf
                              "%s may escape module initialisation of %s; \
                               nothing above this code can handle it — \
                               absorb it here"
                              ctor modname;
                          allows = Syntax.attr_allows attrs;
                        }
                        :: !acc)
                  (of_expr t ~lib:s.library ~modname e);
                walk_expr ~allows:(Syntax.attr_allows attrs) e
            | _ -> ())
          items
      and walk_mod ~prefix ~modname mb =
        match mb.pmb_name.txt with
        | None -> ()
        | Some m ->
            let rec body me =
              match me.pmod_desc with
              | Pmod_structure items ->
                  walk_items ~prefix:(prefix @ [ m ]) ~modname items
              | Pmod_constraint (me, _) -> body me
              | _ -> ()
            in
            body mb.pmb_expr
      in
      walk_items ~prefix:[] ~modname:s.modname str;
      List.rev !acc
