type case = { rule : string; positive : string; negative : string }

(* Keep these snippets in sync with test/fixtures/analysis/: the
   alcotest suite asserts that each fixture file equals the embedded
   snippet, so the two can never drift apart. *)
let cases =
  [
    {
      rule = "hashtbl-order";
      positive =
        "let dump tbl =\n\
        \  Hashtbl.iter (fun k v -> Printf.printf \"%s=%d\\n\" k v) tbl\n";
      negative =
        "(* Prose mentioning Hashtbl.iter must not trip the AST pass. *)\n\
         let note = \"calling Hashtbl.fold inside a string is harmless\"\n\
         let sorted_keys keys = List.sort String.compare keys\n";
    };
    {
      rule = "wall-clock";
      positive = "let stamp () = Sys.time ()\n";
      negative = "let stamp clock = Th_sim.Clock.now_ns clock\n";
    };
    {
      rule = "ambient-entropy";
      positive =
        "let pick xs = List.nth xs (Random.int (List.length xs))\n\
         let me () = Domain.self ()\n";
      negative =
        "let pick prng xs = List.nth xs (Th_sim.Prng.int prng (List.length xs))\n";
    };
    {
      rule = "poly-compare";
      positive =
        "let sort_names names = List.sort compare names\n\
         let h x = Hashtbl.hash x\n";
      negative =
        "let sort_names names = List.sort String.compare names\n\n\
         let with_local_compare x y =\n\
        \  let compare a b = Int.compare a b in\n\
        \  compare x y\n";
    };
    {
      rule = "float-equality";
      positive = "let is_unit x = x = 1.0\n";
      negative =
        "let is_unit x = Float.compare x 1.0 = 0\n\
         let close a b = abs_float (a -. b) < 1e-9\n";
    };
    {
      rule = "pmap-mutable-global";
      positive =
        "let total = ref 0\n\n\
         let bump n = total := !total + n\n\n\
         let run pool xs =\n\
        \  Th_exec.Pool.map pool (fun x -> bump x; total := !total + x; x) xs\n";
      negative =
        "let run pool xs =\n\
        \  let results =\n\
        \    Th_exec.Pool.map pool (fun x -> let acc = ref 0 in acc := x; !acc) xs\n\
        \  in\n\
        \  let total = ref 0 in\n\
        \  List.iter (fun r -> total := !total + r) results;\n\
        \  !total\n";
    };
    {
      rule = "escape-capture";
      positive =
        "let run pool xs =\n\
        \  let acc = ref 0 in\n\
        \  Th_exec.Pool.map pool (fun x -> acc := !acc + x; x) xs\n";
      negative =
        "let run pool xs =\n\
        \  let hits = Atomic.make 0 [@th.atomic \"shared hit counter\"] in\n\
        \  Th_exec.Pool.map pool (fun x -> Atomic.incr hits; x) xs\n";
    };
    {
      rule = "atomic-missing-role";
      positive =
        "let pending = Atomic.make 0\n\nlet bump () = Atomic.incr pending\n";
      negative =
        "let pending =\n\
        \  Atomic.make 0 [@th.atomic \"outstanding cells, bumped via RMW\"]\n\n\
         let bump () = Atomic.incr pending\n";
    };
    {
      rule = "atomic-plain-write";
      positive =
        "type t = { top : int Atomic.t [@th.atomic \"cursor, claimed via CAS\"] }\n\n\
         let steal t =\n\
        \  let v = Atomic.get t.top in\n\
        \  if Atomic.compare_and_set t.top v (v + 1) then Some v else None\n\n\
         let reset t = Atomic.set t.top 0\n";
      negative =
        "type t = { top : int Atomic.t [@th.atomic \"cursor, claimed via CAS\"] }\n\n\
         let steal t =\n\
        \  let v = Atomic.get t.top in\n\
        \  if Atomic.compare_and_set t.top v (v + 1) then Some v else None\n";
    };
    {
      rule = "atomic-plain-read";
      positive =
        "type t = { size : int Atomic.t [@th.atomic \"count, reconciled via CAS\"] }\n\n\
         let rec add t n =\n\
        \  let v = Atomic.get t.size in\n\
        \  if not (Atomic.compare_and_set t.size v (v + n)) then add t n\n\n\
         let peek t = Atomic.get t.size\n";
      negative =
        "type t = { size : int Atomic.t [@th.atomic \"count, reconciled via CAS\"] }\n\n\
         let rec add t n =\n\
        \  let v = Atomic.get t.size in\n\
        \  if not (Atomic.compare_and_set t.size v (v + n)) then add t n\n";
    };
    {
      rule = "atomic-check-then-act";
      positive =
        "let closed = Atomic.make false [@th.atomic \"one-shot shutdown latch\"]\n\n\
         let shutdown () = if not (Atomic.get closed) then Atomic.set closed true\n";
      negative =
        "let closed = Atomic.make false [@th.atomic \"one-shot shutdown latch\"]\n\n\
         let shutdown () = ignore (Atomic.compare_and_set closed false true)\n";
    };
    {
      rule = "catch-all-match";
      positive =
        "type state = Clean | Dirty | Young_gen | Old_gen\n\n\
         let scan s = match s with Clean -> 0 | _ -> 1\n";
      negative =
        "type state = Clean | Dirty | Young_gen | Old_gen\n\n\
         let scan s =\n\
        \  match s with Clean -> 0 | Dirty -> 1 | Young_gen -> 2 | Old_gen -> 3\n\n\
         let unrelated x = match x with None -> 0 | _ -> 1\n";
    };
    {
      rule = "fault-barrier";
      positive =
        "exception Io_error of string\n\n\
         let fetch () = raise (Io_error \"disk\")\n";
      negative =
        "exception Io_error of string\n\n\
         let fetch () = raise (Io_error \"disk\") [@@th.raises \"Io_error\"]\n\n\
         let total () = try fetch () with Io_error _ -> ()\n";
    };
    {
      rule = "cell-boundary";
      positive =
        "exception Io_error of string\n\n\
         let risky () = raise (Io_error \"disk\") [@@th.raises \"Io_error\"]\n\n\
         let run pool xs = Th_exec.Pool.map pool (fun x -> risky (); x) xs\n";
      negative =
        "exception Io_error of string\n\n\
         let risky () = raise (Io_error \"disk\") [@@th.raises \"Io_error\"]\n\n\
         let run pool xs =\n\
        \  Th_exec.Pool.map pool\n\
        \    (fun x ->\n\
        \      (try risky () with Io_error _ -> ());\n\
        \      x)\n\
        \    xs\n";
    };
    {
      rule = "pure-render";
      positive =
        "exception Bad of string\n\n\
         let plan p =\n\
        \  Th_exec.Plan.seal p ~render:(fun v ->\n\
        \      if v < 0 then raise (Bad \"negative\") else string_of_int v)\n";
      negative =
        "let plan p =\n\
        \  Th_exec.Plan.seal p ~render:(fun v ->\n\
        \      let b = Buffer.create 16 in\n\
        \      Buffer.add_string b (string_of_int v);\n\
        \      Buffer.contents b)\n";
    };
    {
      rule = "obj-magic";
      positive = "let coerce x = Obj.magic x\n";
      negative =
        "(* Obj.magic is discussed in prose only. *)\n\
         let magic = \"Obj.magic\"\n\
         let id x = x\n";
    };
    {
      rule = "assert-false";
      positive = "let impossible () = assert false\n";
      negative =
        "let check n = assert (n >= 0)\n\
         let prose = \"assert false inside a string\"\n";
    };
  ]

let fixture_basename ~polarity rule =
  String.map (fun c -> if c = '-' then '_' else c) rule
  ^ (match polarity with `Pos -> "_pos.ml" | `Neg -> "_neg.ml")

let analyze_snippet ~file src =
  match Source.parse_string ~file src with
  | Ok s -> Ok (Engine.analyze [ s ])
  | Error m -> Error m

let has_rule rule fs = List.exists (fun f -> String.equal f.Finding.rule rule) fs

let run () =
  let failures = ref [] and passed = ref 0 in
  let check name cond =
    if cond then incr passed else failures := name :: !failures
  in
  let all_findings = ref [] in
  List.iter
    (fun c ->
      (match
         analyze_snippet ~file:(fixture_basename ~polarity:`Pos c.rule) c.positive
       with
      | Ok r ->
          all_findings := r.Engine.findings @ !all_findings;
          check
            (Printf.sprintf "%s: positive snippet triggers" c.rule)
            (has_rule c.rule r.Engine.findings)
      | Error m ->
          failures :=
            Printf.sprintf "%s: positive snippet does not parse: %s" c.rule m
            :: !failures);
      match
        analyze_snippet ~file:(fixture_basename ~polarity:`Neg c.rule) c.negative
      with
      | Ok r ->
          check
            (Printf.sprintf "%s: negative snippet is clean" c.rule)
            (not
               (has_rule c.rule r.Engine.findings
               || has_rule c.rule r.Engine.waived))
      | Error m ->
          failures :=
            Printf.sprintf "%s: negative snippet does not parse: %s" c.rule m
            :: !failures)
    cases;
  (* Waivers must divert findings to the waived list, never drop them. *)
  (match
     analyze_snippet ~file:"waiver_probe.ml"
       "(* th-lint: allow hashtbl-order — self-test probe *)\n\
        let dump tbl = Hashtbl.iter (fun _ v -> print_int v) tbl\n"
   with
  | Ok r ->
      check "comment waiver suppresses the finding"
        (not (has_rule "hashtbl-order" r.Engine.findings));
      check "comment waiver preserves the finding as waived"
        (has_rule "hashtbl-order" r.Engine.waived)
  | Error m -> failures := ("waiver probe does not parse: " ^ m) :: !failures);
  (* The JSON report of everything we just produced must round-trip. *)
  let fs = List.sort Finding.compare !all_findings in
  (match Report.of_json (Report.to_json ~waived:fs fs) with
  | Ok (fs', ws') ->
      check "JSON report round-trips" (fs' = fs && ws' = fs)
  | Error m -> failures := ("JSON round-trip failed: " ^ m) :: !failures);
  (match Report.of_sarif (Report.to_sarif ~waived:fs fs) with
  | Ok (fs', ws') ->
      check "SARIF report round-trips" (fs' = fs && ws' = fs)
  | Error m -> failures := ("SARIF round-trip failed: " ^ m) :: !failures);
  (* The bounded-interleaving harness: the real deque must pass the
     quick configurations, and the seeded-bug variant must fail at
     least one — otherwise the harness has lost its teeth. *)
  check "interleave: deque linearizable under quick configs"
    (List.for_all
       (fun (r : Deque_check.report) -> r.violations = [])
       (Deque_check.check ()));
  check "interleave: seeded-bug deque rejected"
    (List.exists
       (fun (r : Deque_check.report) -> r.violations <> [])
       (Deque_check.check_buggy ()));
  match !failures with
  | [] -> Ok !passed
  | msgs -> Error (List.rev msgs)
