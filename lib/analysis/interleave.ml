(* Bounded-interleaving explorer, dscheck-style: run a small
   multi-threaded program under instrumented atomics that yield to a
   scheduler before every operation, and exhaustively enumerate every
   schedule of those operations by re-executing the program once per
   schedule with one-shot effect continuations.

   A "thread" is a plain closure over the instrumented state; the
   explorer runs them all in a single domain, so the only
   nondeterminism is the schedule itself, which the explorer owns. A
   schedule is the sequence of thread ids chosen at each step; a step
   executes exactly one atomic operation of the chosen thread (the
   [Yield] is performed immediately before each operation, so a paused
   thread is always parked right in front of its next atomic access).

   Enumeration is lexicographic depth-first: execute the schedule that
   extends the forced prefix by always picking the smallest runnable
   thread, record the runnable set at every step, then branch on every
   position past the prefix where a larger thread id was runnable.
   Each complete schedule is executed exactly once; with per-thread
   operation counts l_0..l_k the schedule count is the multinomial
   (sum l_i)! / prod (l_i !), which is why callers keep programs to a
   handful of operations. *)

type _ Effect.t += Yield : unit Effect.t

(* Instrumentation is process-global but only armed while the explorer
   is stepping threads: program setup and result collection run with
   [active = false] so their atomic accesses perform no effects. The
   explorer is strictly single-domain and non-reentrant. *)
let active = ref false

module Instrumented : Th_exec.Atomic_intf.S = struct
  type 'a t = 'a Atomic.t

  let yield () = if !active then Effect.perform Yield

  let make v = Atomic.make v

  (* Delegation wrappers: the [Atomic] protocol rules see a CAS and
     plain accesses on the same polymorphic cell here, but every call
     is a pass-through on behalf of the instrumented program. *)
  (* th-lint: allow atomic-plain-read atomic-plain-write *)
  let get a =
    yield ();
    Atomic.get a

  (* th-lint: allow atomic-plain-read atomic-plain-write *)
  let set a v =
    yield ();
    Atomic.set a v

  let compare_and_set a old next =
    yield ();
    Atomic.compare_and_set a old next
end

exception Schedule_limit of int

(* Execute one schedule: follow [forced], then always the smallest
   runnable thread. Returns the step trace (choice, runnable set) in
   execution order, plus the program's collected outcome. *)
let execute (program : unit -> (unit -> unit) array * (unit -> 'r)) forced =
  let open Effect.Deep in
  let threads, collect = program () in
  let n = Array.length threads in
  let conts : (unit, unit) continuation option array = Array.make n None in
  let handler i =
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some (fun (k : (a, unit) continuation) -> conts.(i) <- Some k)
          | _ -> None);
    }
  in
  let steps = ref [] in
  Fun.protect
    ~finally:(fun () -> active := false)
    (fun () ->
      active := true;
      (* Start every thread: it runs its pure prefix and parks at its
         first atomic operation (or completes if it has none). *)
      Array.iteri (fun i f -> match_with f () (handler i)) threads;
      let rec loop forced =
        let runnable = ref [] in
        for i = n - 1 downto 0 do
          if Option.is_some conts.(i) then runnable := i :: !runnable
        done;
        match !runnable with
        | [] -> ()
        | smallest :: _ ->
            let choice, rest =
              match forced with c :: tl -> (c, tl) | [] -> (smallest, [])
            in
            steps := (choice, !runnable) :: !steps;
            (match conts.(choice) with
            | Some k ->
                conts.(choice) <- None;
                continue k ()
            | None -> invalid_arg "Interleave.execute: forced choice not runnable");
            loop rest
      in
      loop forced;
      active := false);
  (List.rev !steps, collect ())

let explore ?(max_schedules = 2_000_000) program =
  let count = ref 0 in
  let outcomes = ref [] in
  let rec go prefix =
    if !count >= max_schedules then raise (Schedule_limit !count);
    incr count;
    let steps, outcome = execute program prefix in
    outcomes := outcome :: !outcomes;
    let arr = Array.of_list steps in
    let plen = List.length prefix in
    (* Branch on every position past the forced prefix where a larger
       thread id was runnable; smaller ids were covered by schedules
       enumerated earlier (the greedy default picks the smallest). *)
    for i = Array.length arr - 1 downto plen do
      let chosen, runnable = arr.(i) in
      let stem =
        Array.to_list (Array.sub arr 0 i) |> List.map (fun (c, _) -> c)
      in
      List.iter
        (fun alt -> if alt > chosen then go (stem @ [ alt ]))
        runnable
    done
  in
  go [];
  (List.rev !outcomes, !count)
[@@th.raises "Schedule_limit"]
