type ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

type t = {
  file : string;
  modname : string;
  library : string;
  ast : ast;
  comments : (string * Location.t) list;
}

let modname_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

(* Library tag from the path, mirroring the dune layout: lib/<d>/x.ml
   belongs to library th_<d> (whose wrapper module is Th_<d>); bin/ and
   bench/ hold unwrapped executables; anything else (tests, fixtures,
   snippets fed to [parse_string]) gets the anonymous library "". *)
let library_of_file file =
  let segs =
    String.split_on_char '/' file |> List.filter (fun s -> s <> "" && s <> ".")
  in
  let rec find = function
    | "lib" :: d :: _ :: _ -> "th_" ^ d
    | "bin" :: _ :: _ -> "bin"
    | "bench" :: _ :: _ -> "bench"
    | _ :: rest -> find rest
    | [] -> ""
  in
  find segs

let parse_string ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  (* [Lexer.init] resets the global comment accumulator that
     [Lexer.comments] reads back after the parse. *)
  Lexer.init ();
  match
    if Filename.check_suffix file ".mli" then
      Signature (Parse.interface lexbuf)
    else Structure (Parse.implementation lexbuf)
  with
  | ast ->
      Ok
        {
          file;
          modname = modname_of_file file;
          library = library_of_file file;
          ast;
          comments = Lexer.comments ();
        }
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          Error (Format.asprintf "%s: %a" file Location.print_report report)
      | Some `Already_displayed | None ->
          Error (Printf.sprintf "%s: %s" file (Printexc.to_string exn)))

let parse_file file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | source -> parse_string ~file source
  | exception Sys_error msg -> Error msg

(* A waiver comment is [(* th-lint: allow rule1 rule2 ... *)]; the
   marker may sit anywhere inside the comment so prose explaining the
   waiver can share it. *)
let waiver_marker = "th-lint:"

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun w -> w <> "")

let find_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let line_waivers t =
  List.filter_map
    (fun (text, (loc : Location.t)) ->
      match find_sub text waiver_marker with
      | None -> None
      | Some i -> (
          let rest =
            String.sub text
              (i + String.length waiver_marker)
              (String.length text - i - String.length waiver_marker)
          in
          match split_words rest with
          | "allow" :: rules when rules <> [] ->
              Some (loc.loc_end.pos_lnum, rules)
          | _ -> None))
    t.comments
