(** Reporters: compiler-style text and a stable JSON document.

    The JSON schema (version 1):
    {v
    { "version": 1,
      "findings": [ { "file": "...", "line": 3, "col": 2,
                      "rule": "hashtbl-order", "severity": "error",
                      "message": "..." }, ... ],
      "waived":   [ ... same shape ... ] }
    v}

    Output is deterministic — fixed key order, findings pre-sorted by
    the engine — and {!of_json} parses exactly this schema back, so
    reports round-trip (a qcheck property in the test suite) and CI
    artifacts can be post-processed without a JSON library. *)

val to_text : ?waived:Finding.t list -> Finding.t list -> string
(** One finding per line via {!Finding.to_string}, then a summary line.
    Waived findings are listed (marked) only when [waived] is given. *)

val to_json : ?waived:Finding.t list -> Finding.t list -> string

val of_json : string -> (Finding.t list * Finding.t list, string) result
(** Parse {!to_json} output back into [(findings, waived)]. *)

val to_sarif : ?waived:Finding.t list -> Finding.t list -> string
(** SARIF 2.1.0 (minimal profile): one run, driver ["th-lint"] with the
    full rule registry as rule metadata, one result per finding. Waived
    findings become results carrying an [inSource] suppression, so
    SARIF viewers show them as deliberately accepted rather than
    dropping them. Deterministic output; only strings and integers. *)

val of_sarif : string -> (Finding.t list * Finding.t list, string) result
(** Parse {!to_sarif} output back into [(findings, waived)] — waived
    are the suppressed results. Round-trips like {!of_json}. *)
