(** Linearizability harness for the work-stealing deque.

    Runs small owner/thief programs over
    [Th_exec.Deque.Make (Interleave.Instrumented)] under every schedule
    ({!Interleave.explore}) and checks each distinct outcome against a
    sequential deque specification: owner pops LIFO and sees [None]
    only on empty, thief steals FIFO and may spuriously return [None]
    (lost race), and the drained leftover must match exactly. *)

type report = {
  config : string;  (** config name, e.g. ["seed2-pop2-steal1"] *)
  schedules : int;  (** complete schedules executed (exhaustive) *)
  distinct : int;  (** distinct outcomes across those schedules *)
  violations : string list;
      (** rendered outcomes no specification interleaving can produce *)
}

val check : ?full:bool -> unit -> report list
(** Check the real deque. [full] adds the larger configurations (owner
    plus two thieves, up to six deque operations); the default quick
    set is small enough for the embedded self-test. All [violations]
    lists must come back empty. *)

val check_buggy : unit -> report list
(** Check a deliberately broken variant whose steal claims the top slot
    with a plain write instead of a CAS. At least one configuration
    must report a violation — asserting that the harness can actually
    reject a racy deque. *)
