(* Linearizability harness for the work-stealing deque: run small
   owner/thief programs over [Th_exec.Deque.Make (Interleave.Instrumented)]
   under every schedule, and check each distinct outcome against a
   sequential deque specification.

   The specification: the deque holds the seeded items; the owner's
   [pop] takes the back item (LIFO) and returns [None] only on an empty
   deque; a thief's [steal] takes the front item (FIFO) and may return
   [None] at any time (the interface lets a steal fail on a lost race
   even when items remain — callers rescan). An outcome is linearizable
   when some interleaving that respects each thread's program order
   reproduces every observed result and leaves exactly the observed
   leftover (drained front-to-back after all threads join). Seeds use
   distinct values so results identify slots unambiguously.

   [check_buggy] runs the same harness over a deliberately broken
   variant whose steal claims the top slot with a plain write instead
   of a CAS; two thieves can then take the same item, which no
   interleaving of the specification can produce — the harness must
   reject it, and that rejection is itself asserted by the self-test. *)

type observed = {
  pops : int option list;
  steals : int option list list;
  leftover : int list;
}

let compare_int_opt a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> Int.compare x y

let rec compare_list cmp a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys -> (
      match cmp x y with 0 -> compare_list cmp xs ys | c -> c)

let compare_observed a b =
  match compare_list compare_int_opt a.pops b.pops with
  | 0 -> (
      match
        compare_list (compare_list compare_int_opt) a.steals b.steals
      with
      | 0 -> compare_list Int.compare a.leftover b.leftover
      | c -> c)
  | c -> c

let string_of_int_opt = function
  | None -> "-"
  | Some x -> string_of_int x

let observed_to_string o =
  Printf.sprintf "pops:[%s] steals:[%s] leftover:[%s]"
    (String.concat " " (List.map string_of_int_opt o.pops))
    (String.concat "|"
       (List.map
          (fun s -> String.concat " " (List.map string_of_int_opt s))
          o.steals))
    (String.concat " " (List.map string_of_int o.leftover))

(* Sequential-specification search: does some program-order-respecting
   interleaving over the model reproduce the outcome? The model is the
   window [front, back) into the seed array. *)
let linearizable ~seed o =
  let arr = Array.of_list seed in
  let rec go front back pops thieves =
    let done_ =
      pops = []
      && List.for_all (fun t -> t = []) thieves
    in
    if done_ then
      (* Leftover must be exactly the remaining window, front-to-back. *)
      compare_list Int.compare o.leftover
        (Array.to_list (Array.sub arr front (back - front)))
      = 0
    else
      let owner_step () =
        match pops with
        | [] -> false
        | Some x :: rest ->
            front < back && arr.(back - 1) = x && go front (back - 1) rest thieves
        | None :: rest -> front >= back && go front back rest thieves
      in
      let thief_step () =
        let rec try_thieves before = function
          | [] -> false
          | t :: after -> (
              let rebuilt rest = List.rev_append before (rest :: after) in
              (match t with
              | Some x :: rest ->
                  front < back && arr.(front) = x
                  && go (front + 1) back pops (rebuilt rest)
              | None :: rest ->
                  (* A steal may fail at any point: lost-race None. *)
                  go front back pops (rebuilt rest)
              | [] -> false)
              || try_thieves (t :: before) after)
        in
        try_thieves [] thieves
      in
      owner_step () || thief_step ()
  in
  go 0 (Array.length arr) o.pops o.steals

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)

type config = { cname : string; seed : int list; pops : int; steals : int list }

(* Schedule counts are the multinomial over per-thread atomic-op
   counts; the quick set stays in the low thousands (cheap enough for
   the embedded self-test), the full set tops out around 750k schedules
   (seed3-pop1-steal2x2: six deque ops across an owner and two
   thieves), a couple of seconds end to end. *)
let quick_configs =
  [
    { cname = "seed2-pop2-steal1"; seed = [ 1; 2 ]; pops = 2; steals = [ 1 ] };
    {
      cname = "seed1-pop1-steal1x2";
      seed = [ 1 ];
      pops = 1;
      steals = [ 1; 1 ];
    };
  ]

let full_configs =
  quick_configs
  @ [
      {
        cname = "seed2-pop1-steal1x2";
        seed = [ 1; 2 ];
        pops = 1;
        steals = [ 1; 1 ];
      };
      {
        cname = "seed3-pop2-steal1x2";
        seed = [ 1; 2; 3 ];
        pops = 2;
        steals = [ 1; 1 ];
      };
      {
        cname = "seed2-pop2-steal2";
        seed = [ 1; 2 ];
        pops = 2;
        steals = [ 2 ];
      };
      {
        cname = "seed3-pop3-steal1";
        seed = [ 1; 2; 3 ];
        pops = 3;
        steals = [ 1 ];
      };
      {
        cname = "seed3-pop1-steal2x2";
        seed = [ 1; 2; 3 ];
        pops = 1;
        steals = [ 2; 2 ];
      };
    ]

module Good = Th_exec.Deque.Make (Interleave.Instrumented)

(* The seeded-bug variant: steal publishes top with a plain write
   instead of claiming the slot via CAS, so two thieves that read the
   same top both take the same item. Everything else mirrors the real
   deque closely enough that only the interleaving harness can tell
   them apart. *)
module Buggy = struct
  module A = Interleave.Instrumented

  type t = {
    buf : int array;
    top : int A.t; [@th.atomic "next slot thieves claim; the bug: stolen WITHOUT a CAS"]
    bottom : int A.t; [@th.atomic "next free slot; owner-written, thief-read"]
  }

  let create ~capacity =
    { buf = Array.make (max 1 capacity) (-1); top = A.make 0; bottom = A.make 0 }

  let push t x =
    let b = A.get t.bottom in
    t.buf.(b) <- x;
    A.set t.bottom (b + 1)

  let pop t =
    let b = A.get t.bottom - 1 in
    A.set t.bottom b;
    let tp = A.get t.top in
    if b > tp then Some t.buf.(b)
    else if b = tp then begin
      let won = A.compare_and_set t.top tp (tp + 1) in
      A.set t.bottom (tp + 1);
      if won then Some t.buf.(b) else None
    end
    else begin
      A.set t.bottom (b + 1);
      None
    end

  let steal t =
    let tp = A.get t.top in
    let b = A.get t.bottom in
    if tp >= b then None
    else begin
      let x = t.buf.(tp) in
      A.set t.top (tp + 1);
      Some x
    end
  [@@th.allow
    "atomic-plain-read atomic-plain-write atomic-check-then-act — the \
     deliberate bug under test: claiming the slot without a CAS"]

  let size t = max 0 (A.get t.bottom - A.get t.top)
  [@@th.allow
    "atomic-plain-read — advisory snapshot, mirrors the real deque's size"]

  let is_empty t = size t = 0

  let reset t =
    A.set t.top 0;
    A.set t.bottom 0
  [@@th.allow
    "atomic-plain-write — harness-only reset between sequential runs"]
end

type report = {
  config : string;
  schedules : int;
  distinct : int;
  violations : string list;
}

let run_config (module D : Th_exec.Deque.S) cfg =
  let program () =
    let d = D.create ~capacity:(List.length cfg.seed) in
    List.iter (D.push d) cfg.seed;
    let pop_res = Array.make (max cfg.pops 1) None in
    let steal_res =
      List.map (fun k -> Array.make (max k 1) None) cfg.steals
    in
    let owner () =
      for i = 0 to cfg.pops - 1 do
        pop_res.(i) <- D.pop d
      done
    in
    let thief arr k () =
      for i = 0 to k - 1 do
        arr.(i) <- D.steal d
      done
    in
    let threads =
      Array.of_list
        (owner :: List.map2 (fun arr k -> thief arr k) steal_res cfg.steals)
    in
    let collect () =
      let rec drain acc =
        match D.steal d with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      {
        pops = Array.to_list (Array.sub pop_res 0 cfg.pops);
        steals =
          List.map2
            (fun arr k -> Array.to_list (Array.sub arr 0 k))
            steal_res cfg.steals;
        leftover = drain [];
      }
    in
    (threads, collect)
  in
  let outcomes, schedules =
    try Interleave.explore program
    with Interleave.Schedule_limit n ->
      (* The quick/full configs are sized orders of magnitude under the
         budget; hitting the limit means a config grew. Fail loudly
         rather than report a truncated exploration as exhaustive. *)
      failwith
        (Printf.sprintf
           "Deque_check.%s: schedule budget exhausted after %d schedules"
           cfg.cname n)
  in
  let distinct = List.sort_uniq compare_observed outcomes in
  let violations =
    List.filter_map
      (fun o ->
        if linearizable ~seed:cfg.seed o then None
        else Some (observed_to_string o))
      distinct
  in
  {
    config = cfg.cname;
    schedules;
    distinct = List.length distinct;
    violations;
  }

let check ?(full = false) () =
  let configs = if full then full_configs else quick_configs in
  List.map (run_config (module Good)) configs

let check_buggy () = List.map (run_config (module Buggy)) quick_configs
