(** Bounded-interleaving explorer (dscheck-style).

    Programs are written against {!Instrumented} (an
    {!Th_exec.Atomic_intf.S}) and handed to {!explore} as a thunk that
    performs setup, returns the thread closures, and a collector that
    reads the outcome after all threads finish. The explorer re-executes
    the program once per schedule and enumerates {e every} interleaving
    of the threads' atomic operations — exhaustive, no partial-order
    reduction, so keep programs to a handful of operations. Setup and
    collection run uninstrumented (no schedule points). Single-domain
    and non-reentrant. *)

type _ Effect.t += Yield : unit Effect.t

module Instrumented : Th_exec.Atomic_intf.S
(** Stdlib [Atomic] that performs {!Yield} before every operation while
    an exploration is stepping threads. *)

exception Schedule_limit of int
(** Raised when enumeration exceeds [max_schedules] — the program is
    too big to check exhaustively, which should fail loudly rather than
    silently truncate coverage. *)

val explore :
  ?max_schedules:int ->
  (unit -> (unit -> unit) array * (unit -> 'r)) ->
  'r list * int
(** [explore program] returns the outcome of every complete schedule
    (in enumeration order, duplicates included — callers dedupe with
    their own comparator) and the number of schedules executed.
    [max_schedules] defaults to 2_000_000. *)
