(** Atomic-protocol checker over a module's [Atomic.t] usage.

    Locations are identified syntactically per module ([t.top] is
    [".top"], a bare identifier is its name); a functor parameter that
    performs CAS-class operations anywhere in the file is treated as an
    atomics module alongside [Atomic]. Four rules:
    [atomic-missing-role] (declarations must carry
    [[@th.atomic "role"]]), [atomic-plain-write] ([Atomic.set] on a
    CAS/RMW-contended location), [atomic-plain-read] ([Atomic.get] of a
    CAS-contended location in a definition performing no CAS on it),
    and [atomic-check-then-act] (a get guarding a set to the same
    location with no interposing CAS). *)

type raw = {
  loc : Location.t;
  rule : string;
  message : string;
  allows : string list;
      (** [[@th.allow]] tokens in scope at the site; the engine diverts
          the finding to the waived list if the rule is among them *)
}

val analyze : Parsetree.structure -> raw list
(** All atomic-protocol findings for one module, in emission order
    (missing roles, plain writes, plain reads, check-then-act). *)

val roles : Parsetree.structure -> (string * string) list
(** [(location, role)] for every [[@th.atomic]]-annotated declaration;
    surfaced by [--explain] and used in finding messages. *)
