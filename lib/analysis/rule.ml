type family =
  | Determinism
  | Domain_safety
  | Atomic_protocol
  | Exception_flow
  | Hygiene

type t = {
  name : string;
  family : family;
  severity : Finding.severity;
  synopsis : string;
  explain : string;
}

let family_to_string = function
  | Determinism -> "determinism"
  | Domain_safety -> "domain-safety"
  | Atomic_protocol -> "atomic-protocol"
  | Exception_flow -> "exception-flow"
  | Hygiene -> "invariant-hygiene"

let all =
  [
    {
      name = "hashtbl-order";
      family = Determinism;
      severity = Finding.Error;
      synopsis =
        "Hashtbl.iter/fold/to_seq visit bindings in unspecified hash order";
      explain =
        "The reproduction's validity rests on byte-identical stdout, CSV and \n\
         traces for any --jobs and any machine. Hashtbl iteration order \n\
         depends on the hash function and insertion history, so any \n\
         observable result built by Hashtbl.iter, Hashtbl.fold or \n\
         Hashtbl.to_seq* can differ between runs. Iterate a sorted view \n\
         (collect keys, sort with a typed comparator, then look up), or \n\
         waive the site when the body is provably order-insensitive \n\
         (commutative accumulation, independent per-key updates) and say \n\
         why in the waiver comment.";
    };
    {
      name = "wall-clock";
      family = Determinism;
      severity = Finding.Error;
      synopsis = "real time read outside Th_exec.Wall (Sys.time, Unix.gettimeofday)";
      explain =
        "Simulated results must never depend on host time: every duration \n\
         in reports and traces comes from Th_sim.Clock. Sys.time, \n\
         Unix.gettimeofday, Unix.time and friends leak host-machine state \n\
         into the run. Harness self-timing (BENCH_harness.json, stderr \n\
         progress) is the one legitimate consumer and routes through \n\
         Th_exec.Wall or carries an explicit waiver stating the value \n\
         never reaches deterministic output.";
    };
    {
      name = "ambient-entropy";
      family = Determinism;
      severity = Finding.Error;
      synopsis = "stdlib Random or Domain.self used as data";
      explain =
        "All stochastic choices must draw from an explicitly seeded \n\
         Th_sim.Prng stream so equal seeds give equal runs. Stdlib Random \n\
         (seeded or not — its state is global and shared across domains) \n\
         and Domain.self (an allocation-order-dependent token) smuggle \n\
         ambient nondeterminism into results. Thread a Th_sim.Prng.t, or \n\
         key per-domain state by submission index instead of domain id.";
    };
    {
      name = "poly-compare";
      family = Determinism;
      severity = Finding.Error;
      synopsis = "polymorphic compare/hash where a typed comparator exists";
      explain =
        "Polymorphic compare walks runtime representations: it is slow on \n\
         the sort-heavy render paths, raises on functional values, and \n\
         orders floats with NaN traps. Structural equality on composite \n\
         literals has the same failure modes. Use the typed comparator \n\
         (Int.compare, String.compare, Float.compare, or a hand-written \n\
         lexicographic one) so the ordering is explicit in the source.";
    };
    {
      name = "float-equality";
      family = Determinism;
      severity = Finding.Error;
      synopsis = "= or <> on floating-point operands";
      explain =
        "Float equality is a correctness trap: NaN compares unequal to \n\
         itself and accumulated rounding makes equality contingent on \n\
         evaluation order — exactly what changes when work is re-batched \n\
         across domains. Compare against an epsilon, use Float.compare's \n\
         total order, or restructure to integer nanoseconds/bytes as the \n\
         simulator clock does.";
    };
    {
      name = "pmap-mutable-global";
      family = Domain_safety;
      severity = Finding.Error;
      synopsis =
        "mutable top-level state reachable from a closure run on a worker \
         domain";
      explain =
        "Benchmark cells submitted to the work-stealing scheduler \n\
         (Scheduler.run_cells/run_thunks, Cell.make/of_thunk, \n\
         Plan.cell/cell_list/costed_list/grouped/grouped_costed, \n\
         Pool.run/map, Runners.pmap/pmap_grouped) execute on worker \n\
         domains, and the select/observe callbacks assembled by \n\
         Policy.make run on whichever worker domain owns the runtime \n\
         that installs the policy. Any \n\
         top-level ref, Hashtbl, Vec, Buffer or array they touch — \n\
         directly or through a called function, which this rule resolves \n\
         over the intra-library call graph — is shared across domains \n\
         without synchronisation: a data race, and even when benign the \n\
         interleaving is nondeterministic. Confine mutable state to the \n\
         cell (create it inside the closure) and mutate shared structures \n\
         only on the serial render path after the pool returns.";
    };
    {
      name = "escape-capture";
      family = Domain_safety;
      severity = Finding.Error;
      synopsis =
        "local mutable value captured by a closure handed to a worker domain";
      explain =
        "Closures passed to Cell.make/of_thunk, Plan.cell*, \n\
         Scheduler.run_cells/run_thunks, Pool.run/map, Runners.pmap*, \n\
         Policy.make (placement-policy callbacks run on the domain that \n\
         owns the runtime — build each policy inside its cell), or \n\
         Domain.spawn execute on worker domains. A captured local ref, \n\
         array, Hashtbl, Buffer or record with mutable fields becomes \n\
         cross-domain shared state with no synchronisation — the OCaml \n\
         memory model makes the racing accesses themselves well-defined, \n\
         but the values observed are not, and torn protocols (index \n\
         published before payload) follow. Allocate the state inside the \n\
         closure so it is domain-local, switch to Atomic.t (which the rule \n\
         recognises and never flags), or — when the sharing is by design, \n\
         e.g. a single-writer result slot read only after the pool joins, \n\
         or disjoint array indices per cell — bless the capture with \n\
         [@th.allow \"domain_shared <why it is safe>\"]. The justification \n\
         is mandatory: a bare \"domain_shared\" token waives nothing, and \n\
         a blessed finding is diverted to the waived list, never dropped.";
    };
    {
      name = "atomic-missing-role";
      family = Atomic_protocol;
      severity = Finding.Error;
      synopsis = "Atomic.t declaration without a [@th.atomic \"role\"] annotation";
      explain =
        "Every Atomic.t in this codebase participates in a protocol the \n\
         type system cannot express: the deque's top is stolen via CAS, \n\
         the scheduler's remaining counter is only Atomic.set while \n\
         workers are quiesced. The [@th.atomic \"...\"] annotation states \n\
         that protocol next to the declaration — who writes the location, \n\
         through which primitives, in which phase — so the atomic-protocol \n\
         rules can cite it in findings and --explain can surface it. \n\
         Annotate record fields as \n\
         [top : int Atomic.t [@th.atomic \"top pointer, stolen via CAS\"]] \n\
         and top-level bindings as \n\
         [let hits = Atomic.make 0 [@th.atomic \"shared hit counter\"]].";
    };
    {
      name = "atomic-plain-write";
      family = Atomic_protocol;
      severity = Finding.Error;
      synopsis = "Atomic.set on a location elsewhere updated by CAS-class ops";
      explain =
        "A location that other code claims with compare_and_set, \n\
         fetch_and_add or exchange is contended by construction; a plain \n\
         Atomic.set to it can overwrite a concurrent RMW that already \n\
         succeeded — the lost-update race. Reach the new value through \n\
         compare_and_set (retrying from a fresh read), or, when the store \n\
         is protocol-safe because no rival can be running (e.g. the \n\
         scheduler resets counters while every worker is quiesced at the \n\
         epoch barrier), waive the site stating that phase argument.";
    };
    {
      name = "atomic-plain-read";
      family = Atomic_protocol;
      severity = Finding.Error;
      synopsis =
        "Atomic.get of a CAS-contended location with no CAS in the reader";
      explain =
        "Reading a CAS-contended location is only meaningful as the input \n\
         to a CAS that validates the value is still current — the \n\
         retry-loop idiom, which this rule never flags. A definition that \n\
         reads such a location and performs no compare_and_set on it is \n\
         acting on a snapshot that may be stale before the next \n\
         instruction. Either feed the read into a compare_and_set, or \n\
         waive the site stating why staleness is acceptable (monitoring \n\
         counters, size hints like Deque.size that are advisory by \n\
         contract).";
    };
    {
      name = "atomic-check-then-act";
      family = Atomic_protocol;
      severity = Finding.Error;
      synopsis = "Atomic.get guarding an Atomic.set to the same location";
      explain =
        "if Atomic.get x = v then Atomic.set x v' is the check-then-act \n\
         race: between the read and the write any other domain can change \n\
         x, and the set then clobbers that update based on a stale \n\
         premise. compare_and_set exists precisely to close this window — \n\
         it re-validates the check and the act as one atomic step. The \n\
         rule fires on a get of a location guarding a plain set to the \n\
         same location (through if or while) with no interposing CAS on \n\
         it; rewrite with compare_and_set, or waive with the protocol \n\
         phase that rules out rivals.";
    };
    {
      name = "fault-barrier";
      family = Exception_flow;
      severity = Finding.Error;
      synopsis =
        "a fault exception escapes a definition that neither handles nor \
         declares it";
      explain =
        "The TeraHeap contract assumes device and H2 faults surface at the \n\
         barriers built to absorb them: Io_retry episodes retry and \n\
         degrade Io_error, ps_gc's move passes defer objects when H2.alloc \n\
         raises Out_of_h2_space. The raises analysis infers, per \n\
         definition and to fixpoint over the cross-library call graph, \n\
         which typed exception constructors can escape; this rule fires \n\
         when a fault exception leaks from a definition with no handler \n\
         and no [@@th.raises \"Exn\"] declaration — the silent conversion \n\
         of a Degraded outcome into a crash. Out_of_memory and \n\
         Invalid_heap_state are exempt (the scheduler's documented \n\
         ambient pair, audited at cell boundaries instead), and \n\
         Out_of_h2_space may never escape a Ps_gc definition, declared or \n\
         not. Fix by handling the exception where the fallback lives, or \n\
         declare the contract with [@@th.raises \"Exn ...\"] so every \n\
         caller inherits the obligation; inference never widens a \n\
         declared summary.";
    };
    {
      name = "cell-boundary";
      family = Exception_flow;
      severity = Finding.Error;
      synopsis =
        "a thunk handed to Cell/Plan/Scheduler/Pool can leak beyond \
         Out_of_memory/Invalid_heap_state";
      explain =
        "The work-stealing scheduler captures a cell's exception, drains \n\
         the batch, and re-raises the first failure on the submitting \n\
         domain — a protocol documented for Out_of_memory and \n\
         Invalid_heap_state only. Any other exception crossing the cell \n\
         boundary (an Io_error that skipped its retry episode, a \n\
         Not_serializable from a fallback path) aborts the whole batch \n\
         and loses the per-cell outcome the benchmarks record. The rule \n\
         evaluates the raises summary of every closure handed to \n\
         Cell.make/of_thunk, Plan.cell*, Scheduler.run_cells/run_thunks, \n\
         Pool.run/map, Runners.pmap*, Policy.make or Domain.spawn and \n\
         flags each constructor outside the allowed pair. Handle the \n\
         exception inside the cell and fold it into the result value \n\
         (Run_result's Degraded/Failed outcomes exist for this).";
    };
    {
      name = "pure-render";
      family = Exception_flow;
      severity = Finding.Error;
      synopsis = "a Plan render function can raise or touch mutable globals";
      explain =
        "Plan.seal ~render registers the serial epilogue that formats a \n\
         section's results after its cells complete; the batching \n\
         refactor's byte-identical-output guarantee rests on renders \n\
         being pure functions of the futures they read. A render that \n\
         raises tears down the bench loop mid-report, and one that \n\
         mutates a global couples sections whose execution order is a \n\
         scheduling accident. The rule evaluates the render's raises \n\
         summary (every constructor is a finding — failures belong in \n\
         cell results, resolved before rendering) and walks its \n\
         reachable definitions for mutable top-level state, flagging \n\
         any it finds. Accumulate on the serial path after the batch \n\
         returns, then render the accumulated values.";
    };
    {
      name = "catch-all-match";
      family = Hygiene;
      severity = Finding.Error;
      synopsis = "wildcard branch in a match over card states or trace events";
      explain =
        "Matches over H2_card_table.state/event and Th_trace.Event \n\
         constructors must stay exhaustive by listing every constructor: \n\
         a catch-all branch silently absorbs any card state or trace \n\
         event added later, so the consumer (sanitizer rule, rollup, \n\
         exporter) keeps compiling but no longer audits the new case. \n\
         Replace `_` with the explicit constructors it stands for; adding \n\
         a constructor then breaks every consumer at compile time, which \n\
         is the point.";
    };
    {
      name = "obj-magic";
      family = Hygiene;
      severity = Finding.Error;
      synopsis = "Obj.magic defeats the type system";
      explain =
        "Obj.magic turns a type error into memory corruption the \n\
         Th_verify sanitizer can only catch at runtime, if a seed happens \n\
         to trigger it. There is no legitimate use in this codebase.";
    };
    {
      name = "assert-false";
      family = Hygiene;
      severity = Finding.Error;
      synopsis = "bare `assert false` carries no diagnostic context";
      explain =
        "A bare `assert false` reports only a file and line when the \n\
         impossible happens — in a seeded simulator the seed, heap phase \n\
         and offending value are all available and all lost. Raise a \n\
         contextful exception instead (Rt.Invalid_heap_state, invalid_arg \n\
         with the unexpected shape, failwith with the seed).";
    };
  ]

let names = List.map (fun r -> r.name) all

let find name = List.find_opt (fun r -> String.equal r.name name) all

let explain_text r =
  Printf.sprintf
    "%s (%s, %s)\n  %s\n\n%s\n\nWaive a specific site with [@th.allow %S] on \
     the expression, a\nwhole definition with [@@th.allow %S], a file with \
     [@@@th.allow %S],\nor a comment (* th-lint: allow %s *) on the line or \
     up to three lines\nabove the finding. Every waiver should say why the \
     site is safe.\n"
    r.name
    (family_to_string r.family)
    (Finding.severity_to_string r.severity)
    r.synopsis r.explain r.name r.name r.name r.name
