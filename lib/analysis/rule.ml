type family = Determinism | Domain_safety | Hygiene

type t = {
  name : string;
  family : family;
  severity : Finding.severity;
  synopsis : string;
  explain : string;
}

let family_to_string = function
  | Determinism -> "determinism"
  | Domain_safety -> "domain-safety"
  | Hygiene -> "invariant-hygiene"

let all =
  [
    {
      name = "hashtbl-order";
      family = Determinism;
      severity = Finding.Error;
      synopsis =
        "Hashtbl.iter/fold/to_seq visit bindings in unspecified hash order";
      explain =
        "The reproduction's validity rests on byte-identical stdout, CSV and \n\
         traces for any --jobs and any machine. Hashtbl iteration order \n\
         depends on the hash function and insertion history, so any \n\
         observable result built by Hashtbl.iter, Hashtbl.fold or \n\
         Hashtbl.to_seq* can differ between runs. Iterate a sorted view \n\
         (collect keys, sort with a typed comparator, then look up), or \n\
         waive the site when the body is provably order-insensitive \n\
         (commutative accumulation, independent per-key updates) and say \n\
         why in the waiver comment.";
    };
    {
      name = "wall-clock";
      family = Determinism;
      severity = Finding.Error;
      synopsis = "real time read outside Th_exec.Wall (Sys.time, Unix.gettimeofday)";
      explain =
        "Simulated results must never depend on host time: every duration \n\
         in reports and traces comes from Th_sim.Clock. Sys.time, \n\
         Unix.gettimeofday, Unix.time and friends leak host-machine state \n\
         into the run. Harness self-timing (BENCH_harness.json, stderr \n\
         progress) is the one legitimate consumer and routes through \n\
         Th_exec.Wall or carries an explicit waiver stating the value \n\
         never reaches deterministic output.";
    };
    {
      name = "ambient-entropy";
      family = Determinism;
      severity = Finding.Error;
      synopsis = "stdlib Random or Domain.self used as data";
      explain =
        "All stochastic choices must draw from an explicitly seeded \n\
         Th_sim.Prng stream so equal seeds give equal runs. Stdlib Random \n\
         (seeded or not — its state is global and shared across domains) \n\
         and Domain.self (an allocation-order-dependent token) smuggle \n\
         ambient nondeterminism into results. Thread a Th_sim.Prng.t, or \n\
         key per-domain state by submission index instead of domain id.";
    };
    {
      name = "poly-compare";
      family = Determinism;
      severity = Finding.Error;
      synopsis = "polymorphic compare/hash where a typed comparator exists";
      explain =
        "Polymorphic compare walks runtime representations: it is slow on \n\
         the sort-heavy render paths, raises on functional values, and \n\
         orders floats with NaN traps. Structural equality on composite \n\
         literals has the same failure modes. Use the typed comparator \n\
         (Int.compare, String.compare, Float.compare, or a hand-written \n\
         lexicographic one) so the ordering is explicit in the source.";
    };
    {
      name = "float-equality";
      family = Determinism;
      severity = Finding.Error;
      synopsis = "= or <> on floating-point operands";
      explain =
        "Float equality is a correctness trap: NaN compares unequal to \n\
         itself and accumulated rounding makes equality contingent on \n\
         evaluation order — exactly what changes when work is re-batched \n\
         across domains. Compare against an epsilon, use Float.compare's \n\
         total order, or restructure to integer nanoseconds/bytes as the \n\
         simulator clock does.";
    };
    {
      name = "pmap-mutable-global";
      family = Domain_safety;
      severity = Finding.Error;
      synopsis =
        "mutable top-level state reachable from a closure run on a worker \
         domain";
      explain =
        "Benchmark cells submitted to the work-stealing scheduler \n\
         (Scheduler.run_cells/run_thunks, Cell.make/of_thunk, \n\
         Plan.cell/cell_list/costed_list/grouped/grouped_costed, \n\
         Pool.run/map, Runners.pmap/pmap_grouped) execute on worker \n\
         domains. Any \n\
         top-level ref, Hashtbl, Vec, Buffer or array they touch — \n\
         directly or through a called function, which this rule resolves \n\
         over the intra-library call graph — is shared across domains \n\
         without synchronisation: a data race, and even when benign the \n\
         interleaving is nondeterministic. Confine mutable state to the \n\
         cell (create it inside the closure) and mutate shared structures \n\
         only on the serial render path after the pool returns.";
    };
    {
      name = "catch-all-match";
      family = Hygiene;
      severity = Finding.Error;
      synopsis = "wildcard branch in a match over card states or trace events";
      explain =
        "Matches over H2_card_table.state/event and Th_trace.Event \n\
         constructors must stay exhaustive by listing every constructor: \n\
         a catch-all branch silently absorbs any card state or trace \n\
         event added later, so the consumer (sanitizer rule, rollup, \n\
         exporter) keeps compiling but no longer audits the new case. \n\
         Replace `_` with the explicit constructors it stands for; adding \n\
         a constructor then breaks every consumer at compile time, which \n\
         is the point.";
    };
    {
      name = "obj-magic";
      family = Hygiene;
      severity = Finding.Error;
      synopsis = "Obj.magic defeats the type system";
      explain =
        "Obj.magic turns a type error into memory corruption the \n\
         Th_verify sanitizer can only catch at runtime, if a seed happens \n\
         to trigger it. There is no legitimate use in this codebase.";
    };
    {
      name = "assert-false";
      family = Hygiene;
      severity = Finding.Error;
      synopsis = "bare `assert false` carries no diagnostic context";
      explain =
        "A bare `assert false` reports only a file and line when the \n\
         impossible happens — in a seeded simulator the seed, heap phase \n\
         and offending value are all available and all lost. Raise a \n\
         contextful exception instead (Rt.Invalid_heap_state, invalid_arg \n\
         with the unexpected shape, failwith with the seed).";
    };
  ]

let names = List.map (fun r -> r.name) all

let find name = List.find_opt (fun r -> String.equal r.name name) all

let explain_text r =
  Printf.sprintf
    "%s (%s, %s)\n  %s\n\n%s\n\nWaive a specific site with [@th.allow %S] on \
     the expression, a\nwhole definition with [@@th.allow %S], a file with \
     [@@@th.allow %S],\nor a comment (* th-lint: allow %s *) on the line or \
     up to three lines\nabove the finding. Every waiver should say why the \
     site is safe.\n"
    r.name
    (family_to_string r.family)
    (Finding.severity_to_string r.severity)
    r.synopsis r.explain r.name r.name r.name r.name
