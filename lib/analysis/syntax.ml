(* Shared AST helpers for the analysis passes: longident flattening,
   waiver-attribute parsing, pattern utilities. Factored out of Engine
   so the atomic-protocol pass (Atomics) and the call-graph builder
   (Callgraph) speak the same dialect. *)

open Parsetree
module SS = Set.Make (String)

let flatten_lid lid =
  (* [Longident.flatten] raises on functor applications; those can never
     match a rule pattern, so map them to the empty path. *)
  match Longident.flatten lid with l -> l | exception _ -> []

(* Last two components of a path: [Th_exec.Pool.map] and [Pool.map] both
   resolve to [("Pool", "map")], which is how rules name stdlib and
   intra-repo modules regardless of library wrapping. *)
let last2 path =
  match List.rev path with n :: m :: _ -> Some (m, n) | _ -> None

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun w -> w <> "")

let string_payload (payload : payload) =
  match payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* The [domain_shared] token blesses an escape-capture site, but only
   when the waiver string carries a justification beyond the bare
   token — an unexplained blessing is no blessing at all. *)
let escape_bless_token = "domain_shared"

let attr_allows (attrs : attributes) =
  List.concat_map
    (fun a ->
      if String.equal a.attr_name.txt "th.allow" then
        match string_payload a.attr_payload with
        | Some s -> (
            match split_words s with
            | [ tok ] when String.equal tok escape_bless_token ->
                (* Bare domain_shared with no justification: reject. *)
                []
            | words -> words)
        | None -> []
      else [])
    attrs

(* [@th.raises "Exn ..."] — the declared exception contract of a
   definition: the typed exception constructors (unqualified names)
   the definition is allowed to let escape. A token may carry a guard
   argument, ["Io_error(checked)"]: the exception only escapes
   applications that pass the labelled argument [~checked] with
   something other than a literal [false] — the conditional-contract
   idiom of the checked-I/O device API. [Some []] — written as
   [[@@th.raises ""]] or [[@@th.raises "none"]] — declares that
   nothing escapes. [None] means the binding carries no declaration
   and the inferred summary stands. *)
let attr_raises (attrs : attributes) =
  let parse_token w =
    match String.index_opt w '(' with
    | Some i when String.length w > i + 1 && w.[String.length w - 1] = ')' ->
        let ctor = String.sub w 0 i in
        let guard = String.sub w (i + 1) (String.length w - i - 2) in
        if ctor = "" || guard = "" then None else Some (ctor, Some guard)
    | _ -> if String.equal w "none" then None else Some (w, None)
  in
  List.fold_left
    (fun acc a ->
      if String.equal a.attr_name.txt "th.raises" then
        match string_payload a.attr_payload with
        | Some s ->
            let ctors = List.filter_map parse_token (split_words s) in
            Some (Option.value ~default:[] acc @ ctors)
        | None -> acc
      else acc)
    None attrs

(* [@th.atomic "role"] — the role annotation required on every Atomic.t
   declaration. Returns the role string when present and non-empty. *)
let attr_atomic_role (attrs : attributes) =
  List.find_map
    (fun a ->
      if String.equal a.attr_name.txt "th.atomic" then
        match string_payload a.attr_payload with
        | Some s when String.trim s <> "" -> Some (String.trim s)
        | _ -> None
      else None)
    attrs

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pat_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p))
  | Ppat_variant (_, Some p)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_exception p
  | Ppat_open (_, p) ->
      pat_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_vars p) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | Ppat_any | Ppat_constant _ | Ppat_interval _ | Ppat_construct (_, None)
  | Ppat_variant (_, None)
  | Ppat_type _ | Ppat_unpack _ | Ppat_extension _ ->
      []

let rec pat_constructors p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      let here =
        match List.rev (flatten_lid txt) with n :: _ -> [ n ] | [] -> []
      in
      here @ (match arg with Some (_, p) -> pat_constructors p | None -> [])
  | Ppat_alias (p, _)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_exception p
  | Ppat_open (_, p)
  | Ppat_variant (_, Some p) ->
      pat_constructors p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_constructors ps
  | Ppat_record (fields, _) ->
      List.concat_map (fun (_, p) -> pat_constructors p) fields
  | Ppat_or (a, b) -> pat_constructors a @ pat_constructors b
  | Ppat_any | Ppat_var _ | Ppat_constant _ | Ppat_interval _
  | Ppat_variant (_, None)
  | Ppat_type _ | Ppat_unpack _ | Ppat_extension _ ->
      []

let rec is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_catch_all p
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

(* Walk an expression calling [f lid loc] for every identifier
   reference whose unqualified name is not bound locally — the scope
   and shadowing awareness the old char-level linter lacked. Qualified
   references ([M.x]) are always reported. *)
let iter_unshadowed_idents ~f root =
  let shadow : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let count n = Option.value ~default:0 (Hashtbl.find_opt shadow n) in
  let with_vars vars k =
    List.iter (fun n -> Hashtbl.replace shadow n (count n + 1)) vars;
    k ();
    List.iter (fun n -> Hashtbl.replace shadow n (count n - 1)) vars
  in
  let open Ast_iterator in
  let expr it e =
    let sub e = it.expr it e in
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match txt with
        | Longident.Lident n when count n > 0 -> ()
        | _ -> f txt e.pexp_loc)
    | Pexp_let (rf, vbs, body) ->
        let vars = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
        let visit () = List.iter (fun vb -> sub vb.pvb_expr) vbs in
        (match rf with
        | Recursive -> with_vars vars (fun () -> visit (); sub body)
        | Nonrecursive -> visit (); with_vars vars (fun () -> sub body))
    | Pexp_fun (_, dflt, pat, body) ->
        Option.iter sub dflt;
        with_vars (pat_vars pat) (fun () -> sub body)
    | Pexp_function cases ->
        List.iter
          (fun c ->
            with_vars (pat_vars c.pc_lhs) (fun () ->
                Option.iter sub c.pc_guard;
                sub c.pc_rhs))
          cases
    | Pexp_match (s, cases) | Pexp_try (s, cases) ->
        sub s;
        List.iter
          (fun c ->
            with_vars (pat_vars c.pc_lhs) (fun () ->
                Option.iter sub c.pc_guard;
                sub c.pc_rhs))
          cases
    | Pexp_for (pat, a, b, _, body) ->
        sub a;
        sub b;
        with_vars (pat_vars pat) (fun () -> sub body)
    | _ -> default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it root
