open Parsetree
module SS = Set.Make (String)

type result = { findings : Finding.t list; waived : Finding.t list }

let parse_error_rule = "parse-error"

(* ------------------------------------------------------------------ *)
(* Small syntax helpers                                                *)

let flatten_lid lid =
  (* [Longident.flatten] raises on functor applications; those can never
     match a rule pattern, so map them to the empty path. *)
  match Longident.flatten lid with l -> l | exception _ -> []

(* Last two components of a path: [Th_exec.Pool.map] and [Pool.map] both
   resolve to [("Pool", "map")], which is how rules name stdlib and
   intra-repo modules regardless of library wrapping. *)
let last2 path =
  match List.rev path with n :: m :: _ -> Some (m, n) | _ -> None

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun w -> w <> "")

let attr_allows (attrs : attributes) =
  List.concat_map
    (fun a ->
      if String.equal a.attr_name.txt "th.allow" then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
            split_words s
        | _ -> []
      else [])
    attrs

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pat_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p))
  | Ppat_variant (_, Some p)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_exception p
  | Ppat_open (_, p) ->
      pat_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_vars p) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | Ppat_any | Ppat_constant _ | Ppat_interval _ | Ppat_construct (_, None)
  | Ppat_variant (_, None)
  | Ppat_type _ | Ppat_unpack _ | Ppat_extension _ ->
      []

let rec pat_constructors p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      let here =
        match List.rev (flatten_lid txt) with n :: _ -> [ n ] | [] -> []
      in
      here @ (match arg with Some (_, p) -> pat_constructors p | None -> [])
  | Ppat_alias (p, _)
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_exception p
  | Ppat_open (_, p)
  | Ppat_variant (_, Some p) ->
      pat_constructors p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_constructors ps
  | Ppat_record (fields, _) ->
      List.concat_map (fun (_, p) -> pat_constructors p) fields
  | Ppat_or (a, b) -> pat_constructors a @ pat_constructors b
  | Ppat_any | Ppat_var _ | Ppat_constant _ | Ppat_interval _
  | Ppat_variant (_, None)
  | Ppat_type _ | Ppat_unpack _ | Ppat_extension _ ->
      []

let rec is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_catch_all p
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Scoped ident iteration                                              *)

(* Walk an expression calling [f lid loc] for every identifier
   reference whose unqualified name is not bound locally — the scope
   and shadowing awareness the old char-level linter lacked. Qualified
   references ([M.x]) are always reported. *)
let iter_unshadowed_idents ~f root =
  let shadow : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let count n = Option.value ~default:0 (Hashtbl.find_opt shadow n) in
  let with_vars vars k =
    List.iter (fun n -> Hashtbl.replace shadow n (count n + 1)) vars;
    k ();
    List.iter (fun n -> Hashtbl.replace shadow n (count n - 1)) vars
  in
  let open Ast_iterator in
  let expr it e =
    let sub e = it.expr it e in
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match txt with
        | Longident.Lident n when count n > 0 -> ()
        | _ -> f txt e.pexp_loc)
    | Pexp_let (rf, vbs, body) ->
        let vars = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
        let visit () = List.iter (fun vb -> sub vb.pvb_expr) vbs in
        (match rf with
        | Recursive -> with_vars vars (fun () -> visit (); sub body)
        | Nonrecursive -> visit (); with_vars vars (fun () -> sub body))
    | Pexp_fun (_, dflt, pat, body) ->
        Option.iter sub dflt;
        with_vars (pat_vars pat) (fun () -> sub body)
    | Pexp_function cases ->
        List.iter
          (fun c ->
            with_vars (pat_vars c.pc_lhs) (fun () ->
                Option.iter sub c.pc_guard;
                sub c.pc_rhs))
          cases
    | Pexp_match (s, cases) | Pexp_try (s, cases) ->
        sub s;
        List.iter
          (fun c ->
            with_vars (pat_vars c.pc_lhs) (fun () ->
                Option.iter sub c.pc_guard;
                sub c.pc_rhs))
          cases
    | Pexp_for (pat, a, b, _, body) ->
        sub a;
        sub b;
        with_vars (pat_vars pat) (fun () -> sub body)
    | _ -> default_iterator.expr it e
  in
  let it = { default_iterator with expr } in
  it.expr it root

(* ------------------------------------------------------------------ *)
(* Effect analysis: mutable top-level state and its reachability       *)

module Effects = struct
  type key = string * string (* module, value name *)

  let compare_key (ma, na) (mb, nb) =
    match String.compare ma mb with 0 -> String.compare na nb | c -> c

  module KS = Set.Make (struct
    type t = key

    let compare = compare_key
  end)

  type db = {
    globals : (key, Location.t * bool (* blessed *)) Hashtbl.t;
        (* blessed: the definition carries [@@th.allow
           "pmap-mutable-global"], declaring the global is only written
           on the serial path; reachability findings become waived. *)
    defs : (key, expression) Hashtbl.t;
    mutable effects : (key * KS.t) list; (* fixpoint result, assoc *)
  }

  let mutable_ctor_modules =
    SS.of_list
      [
        "Hashtbl"; "Array"; "Bytes"; "Buffer"; "Queue"; "Stack"; "Atomic";
        "Vec"; "Dynarray"; "Weak";
      ]

  (* Does a top-level binding allocate mutable state? Covers [ref e],
     [Hashtbl.create n], [Array.make ...], [Vec.create ()], array
     literals — the shapes that appear at module top level. Mutable
     records are invisible without type information; the rule's docs
     call that out. *)
  let rec is_mutable_init e =
    match e.pexp_desc with
    | Pexp_array _ -> true
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
        match List.rev (flatten_lid txt) with
        | [ "ref" ] -> true
        | fn :: m :: _ ->
            SS.mem m mutable_ctor_modules
            && List.mem fn [ "create"; "make"; "init"; "copy"; "of_list"; "of_seq" ]
        | _ -> false)
    | Pexp_constraint (e, _) | Pexp_open (_, e) -> is_mutable_init e
    | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> is_mutable_init body
    | _ -> false

  (* Resolve an identifier to candidate top-level keys. Unqualified
     names resolve to the current module when it defines them; otherwise
     — a reference through [open] — to whichever single analyzed module
     defines the name (ambiguous names resolve to nothing rather than
     guess). *)
  let resolve_all db current_mod lid =
    match flatten_lid lid with
    | [ n ] ->
        let home = (current_mod, n) in
        if Hashtbl.mem db.globals home || Hashtbl.mem db.defs home then
          [ home ]
        else begin
          let hits = ref [] in
          (* th-lint: allow hashtbl-order — membership collection only;
             the result is used only when it is a singleton. *)
          Hashtbl.iter
            (fun ((_, gn) as k) _ ->
              if String.equal gn n then hits := k :: !hits)
            db.globals;
          (* th-lint: allow hashtbl-order — as above: membership only. *)
          Hashtbl.iter
            (fun ((_, dn) as k) _ ->
              if String.equal dn n then hits := k :: !hits)
            db.defs;
          match !hits with [ k ] -> [ k ] | _ -> []
        end
    | path -> ( match last2 path with Some k -> [ k ] | None -> [])

  let build (sources : Source.t list) =
    let db =
      { globals = Hashtbl.create 64; defs = Hashtbl.create 256; effects = [] }
    in
    (* Pass 1: top-level bindings — mutable globals and function defs. *)
    List.iter
      (fun (s : Source.t) ->
        match s.ast with
        | Source.Signature _ -> ()
        | Source.Structure str ->
            List.iter
              (fun item ->
                match item.pstr_desc with
                | Pstr_value (_, vbs) ->
                    List.iter
                      (fun vb ->
                        match vb.pvb_pat.ppat_desc with
                        | Ppat_var { txt; _ } ->
                            let key = (s.modname, txt) in
                            if is_mutable_init vb.pvb_expr then
                              let blessed =
                                List.mem "pmap-mutable-global"
                                  (attr_allows vb.pvb_attributes)
                              in
                              Hashtbl.replace db.globals key (vb.pvb_loc, blessed)
                            else Hashtbl.replace db.defs key vb.pvb_expr
                        | _ -> ())
                      vbs
                | _ -> ())
              str)
      sources;
    (* Pass 2: direct effects and call edges per def. *)
    let direct : (key * (KS.t * KS.t)) list =
      (* th-lint: allow hashtbl-order — collected into a list and sorted
         by compare_key immediately after the fold. *)
      Hashtbl.fold
        (fun ((dmod, _) as key) body acc ->
          let eff = ref KS.empty and calls = ref KS.empty in
          iter_unshadowed_idents body ~f:(fun lid _loc ->
              List.iter
                (fun k ->
                  if Hashtbl.mem db.globals k then eff := KS.add k !eff
                  else if Hashtbl.mem db.defs k then calls := KS.add k !calls)
                (resolve_all db dmod lid));
          (key, (!eff, !calls)) :: acc)
        db.defs []
    in
    let direct = List.sort (fun (a, _) (b, _) -> compare_key a b) direct in
    (* Pass 3: transitive closure over the call graph. *)
    let table = Hashtbl.create 256 in
    List.iter (fun (k, (eff, _)) -> Hashtbl.replace table k eff) direct;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (k, (_, calls)) ->
          let cur = Hashtbl.find table k in
          let next =
            KS.fold
              (fun callee acc ->
                match Hashtbl.find_opt table callee with
                | Some e -> KS.union acc e
                | None -> acc)
              calls cur
          in
          if not (KS.equal next cur) then begin
            Hashtbl.replace table k next;
            changed := true
          end)
        direct
    done;
    db.effects <- List.map (fun (k, _) -> (k, Hashtbl.find table k)) direct;
    db

  let global_info db key = Hashtbl.find_opt db.globals key

  let global_site db key =
    match Hashtbl.find_opt db.globals key with
    | Some ((loc : Location.t), _) ->
        Printf.sprintf "%s:%d" loc.loc_start.pos_fname loc.loc_start.pos_lnum
    | None -> "?"

  let def_effects db key =
    match List.find_opt (fun (k, _) -> compare_key k key = 0) db.effects with
    | Some (_, e) -> KS.elements e
    | None -> []
end

(* ------------------------------------------------------------------ *)
(* Per-file analysis context                                           *)

type ctx = {
  file : string;
  modname : string;
  enabled : string -> bool;
  module_defs : SS.t;  (** top-level value names — they shadow stdlib *)
  file_allowed : SS.t;
  comment_allow : (int * SS.t) list;
  mutable allow_stack : string list list;
  shadow : (string, int) Hashtbl.t;
  db : Effects.db;
  mutable findings : Finding.t list;
  mutable waived : Finding.t list;
}

let shadow_count ctx n = Option.value ~default:0 (Hashtbl.find_opt ctx.shadow n)

let comment_waived ctx line rule =
  List.exists
    (fun (l, rules) -> l <= line && line - l <= 3 && SS.mem rule rules)
    ctx.comment_allow

let emit ?(force_waive = false) ctx ~(loc : Location.t) ~rule message =
  if ctx.enabled rule then begin
    let severity =
      match Rule.find rule with
      | Some r -> r.Rule.severity
      | None -> Finding.Error
    in
    let line = loc.loc_start.pos_lnum in
    let f =
      {
        Finding.file = ctx.file;
        line;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        rule;
        severity;
        message;
      }
    in
    let allowed =
      force_waive
      || SS.mem rule ctx.file_allowed
      || List.exists (List.mem rule) ctx.allow_stack
      || comment_waived ctx line rule
    in
    if allowed then ctx.waived <- f :: ctx.waived
    else ctx.findings <- f :: ctx.findings
  end

(* ------------------------------------------------------------------ *)
(* Rule: identifier vocabularies                                       *)

let hashtbl_order_fns =
  SS.of_list [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let wall_clock_idents =
  [
    ("Sys", "time");
    ("Unix", "gettimeofday");
    ("Unix", "time");
    ("Unix", "gmtime");
    ("Unix", "localtime");
  ]

let check_ident ctx lid (loc : Location.t) =
  let path = flatten_lid lid in
  (match path with
  | [ "compare" ]
    when shadow_count ctx "compare" = 0
         && not (SS.mem "compare" ctx.module_defs) ->
      emit ctx ~loc ~rule:"poly-compare"
        "polymorphic compare; use a typed comparator (Int.compare, \
         String.compare, Float.compare, ...)"
  | [ "Stdlib"; "compare" ] ->
      emit ctx ~loc ~rule:"poly-compare"
        "polymorphic Stdlib.compare; use a typed comparator"
  | _ -> ());
  if List.exists (String.equal "Random") path && not (String.equal ctx.modname "Prng")
  then
    emit ctx ~loc ~rule:"ambient-entropy"
      "stdlib Random draws from global, cross-domain shared state; use a \
       seeded Th_sim.Prng stream";
  match last2 path with
  | Some ("Hashtbl", fn) when SS.mem fn hashtbl_order_fns ->
      emit ctx ~loc ~rule:"hashtbl-order"
        (Printf.sprintf
           "Hashtbl.%s visits bindings in unspecified hash order; iterate a \
            sorted view or waive with a justification"
           fn)
  | Some ("Hashtbl", ("hash" | "seeded_hash")) ->
      emit ctx ~loc ~rule:"poly-compare"
        "polymorphic Hashtbl.hash walks the runtime representation; hash a \
         canonical key instead"
  | Some ("Obj", "magic") ->
      emit ctx ~loc ~rule:"obj-magic"
        "Obj.magic defeats the type system; fix the types instead"
  | Some ("Domain", "self") ->
      emit ctx ~loc ~rule:"ambient-entropy"
        "Domain.self is an allocation-order-dependent token; key per-domain \
         state by submission index instead"
  | Some ((m, fn) as q) when List.mem q wall_clock_idents ->
      if not (String.equal ctx.modname "Wall") then
        emit ctx ~loc ~rule:"wall-clock"
          (Printf.sprintf
             "%s.%s reads host time; simulated results must come from \
              Th_sim.Clock (harness self-timing goes through Th_exec.Wall)"
             m fn)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Rule: float equality / composite equality                           *)

let float_non_float_results =
  SS.of_list
    [
      "compare"; "equal"; "hash"; "to_int"; "to_string"; "is_nan"; "is_finite";
      "is_integer"; "sign_bit";
    ]

let float_ops =
  SS.of_list [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let rec is_floaty e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (e', t) -> (
      is_floaty e'
      ||
      match t.ptyp_desc with
      | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
      | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flatten_lid txt with
      | [ op ] when SS.mem op float_ops -> true
      | [ ("float_of_int" | "float_of_string") ] -> true
      | path -> (
          match last2 path with
          | Some ("Float", fn) -> not (SS.mem fn float_non_float_results)
          | _ -> false))
  | _ -> false

let is_composite_literal e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rule: catch-all matches over sensitive constructor vocabularies     *)

let sensitive_constructors =
  SS.of_list
    [
      (* H2_card_table.state *)
      "Clean"; "Dirty"; "Young_gen"; "Old_gen";
      (* H2_card_table.event *)
      "Barrier_dirty"; "Recompute"; "Bulk_clear";
      (* Th_trace.Event.kind *)
      "Span_begin"; "Span_end"; "Complete"; "Instant"; "Counter";
    ]

let check_catch_all ctx cases =
  let mentions_sensitive =
    List.exists
      (fun c ->
        List.exists
          (fun n -> SS.mem n sensitive_constructors)
          (pat_constructors c.pc_lhs))
      cases
  in
  if mentions_sensitive then
    List.iter
      (fun c ->
        if is_catch_all c.pc_lhs then
          emit ctx ~loc:c.pc_lhs.ppat_loc ~rule:"catch-all-match"
            "catch-all branch in a match over card states or trace events; \
             list the constructors explicitly so new ones force a revisit")
      cases

(* ------------------------------------------------------------------ *)
(* Rule: mutable globals reachable from Domain-pool closures           *)

let pmap_callee ctx fn =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let path = flatten_lid txt in
      match path with
      | [ ("pmap" | "pmap_grouped") ] when shadow_count ctx (List.hd path) = 0
        ->
          Some (List.hd path)
      | _ -> (
          match last2 path with
          | Some ("Pool", ("run" | "map"))
          | Some ("Runners", ("pmap" | "pmap_grouped"))
          | Some ("Scheduler", ("run_cells" | "run_thunks"))
          | Some
              ( "Plan",
                ( "cell" | "cell_list" | "costed_list" | "grouped"
                | "grouped_costed" ) )
          | Some ("Cell", ("make" | "of_thunk")) ->
              Some (String.concat "." path)
          | _ -> None))
  | _ -> None

let check_pmap_site ctx callee args =
  let seen = Hashtbl.create 8 in
  let report (loc : Location.t) ((gmod, gname) as key) ~via ~blessed =
    if not (Hashtbl.mem seen (key, loc.loc_start.pos_lnum)) then begin
      Hashtbl.replace seen (key, loc.loc_start.pos_lnum) ();
      let via_s =
        match via with
        | None -> ""
        | Some (cm, cn) -> Printf.sprintf " (via %s.%s)" cm cn
      in
      emit ~force_waive:blessed ctx ~loc ~rule:"pmap-mutable-global"
        (Printf.sprintf
           "mutable global %s.%s (defined at %s) is reachable from a closure \
            passed to %s%s; cells run on worker domains, so confine mutable \
            state to the cell or the serial render path"
           gmod gname
           (Effects.global_site ctx.db key)
           callee via_s)
    end
  in
  let blessed_of key =
    match Effects.global_info ctx.db key with
    | Some (_, b) -> b
    | None -> false
  in
  List.iter
    (fun (_, arg) ->
      iter_unshadowed_idents arg ~f:(fun lid loc ->
          (* The iterator's own table covers bindings inside [arg]; the
             ctx table covers locals of the enclosing scope, which are
             not top-level state either. *)
          let enclosing_local =
            match lid with
            | Longident.Lident n -> shadow_count ctx n > 0
            | _ -> false
          in
          if not enclosing_local then
            List.iter
              (fun key ->
                match Effects.global_info ctx.db key with
                | Some (_, blessed) -> report loc key ~via:None ~blessed
                | None ->
                    List.iter
                      (fun g ->
                        report loc g ~via:(Some key) ~blessed:(blessed_of g))
                      (Effects.def_effects ctx.db key))
              (Effects.resolve_all ctx.db ctx.modname lid)))
    args

(* ------------------------------------------------------------------ *)
(* Main per-file pass                                                  *)

let run_structure ctx str =
  let open Ast_iterator in
  let with_vars ctx vars k =
    List.iter
      (fun n -> Hashtbl.replace ctx.shadow n (shadow_count ctx n + 1))
      vars;
    k ();
    List.iter
      (fun n -> Hashtbl.replace ctx.shadow n (shadow_count ctx n - 1))
      vars
  in
  let with_allows allows k =
    match allows with
    | [] -> k ()
    | _ ->
        ctx.allow_stack <- allows :: ctx.allow_stack;
        k ();
        ctx.allow_stack <- List.tl ctx.allow_stack
  in
  let rec expr it e =
    let sub e = expr it e in
    let visit_case c =
      with_vars ctx (pat_vars c.pc_lhs) (fun () ->
          Option.iter sub c.pc_guard;
          sub c.pc_rhs)
    in
    with_allows (attr_allows e.pexp_attributes) (fun () ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } -> check_ident ctx txt e.pexp_loc
        | Pexp_apply (fn, args) ->
            (match fn.pexp_desc with
            | Pexp_ident { txt = Longident.Lident (("=" | "<>" | "==" | "!=") as op); _ }
              -> (
                match args with
                | [ (_, a); (_, b) ] ->
                    if is_floaty a || is_floaty b then
                      emit ctx ~loc:e.pexp_loc ~rule:"float-equality"
                        (Printf.sprintf
                           "(%s) on floating-point operands; compare with an \
                            epsilon or Float.compare's total order"
                           op)
                    else if is_composite_literal a || is_composite_literal b
                    then
                      emit ctx ~loc:e.pexp_loc ~rule:"poly-compare"
                        (Printf.sprintf
                           "structural (%s) against a composite literal; use \
                            a typed equality"
                           op)
                | _ -> ())
            | _ -> ());
            (match pmap_callee ctx fn with
            | Some callee -> check_pmap_site ctx callee args
            | None -> ());
            sub fn;
            List.iter (fun (_, a) -> sub a) args
        | Pexp_assert
            { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
          ->
            emit ctx ~loc:e.pexp_loc ~rule:"assert-false"
              "bare `assert false`; raise a contextful exception \
               (invalid_arg, Rt.Invalid_heap_state, failwith with the \
               unexpected value)"
        | Pexp_let (rf, vbs, body) ->
            let vars = List.concat_map (fun vb -> pat_vars vb.pvb_pat) vbs in
            let visit_vb vb =
              with_allows (attr_allows vb.pvb_attributes) (fun () ->
                  sub vb.pvb_expr)
            in
            (match rf with
            | Recursive ->
                with_vars ctx vars (fun () ->
                    List.iter visit_vb vbs;
                    sub body)
            | Nonrecursive ->
                List.iter visit_vb vbs;
                with_vars ctx vars (fun () -> sub body))
        | Pexp_fun (_, dflt, pat, body) ->
            Option.iter sub dflt;
            with_vars ctx (pat_vars pat) (fun () -> sub body)
        | Pexp_function cases ->
            check_catch_all ctx cases;
            List.iter visit_case cases
        | Pexp_match (s, cases) ->
            sub s;
            check_catch_all ctx cases;
            List.iter visit_case cases
        | Pexp_try (s, cases) ->
            sub s;
            List.iter visit_case cases
        | Pexp_for (pat, a, b, _, body) ->
            sub a;
            sub b;
            with_vars ctx (pat_vars pat) (fun () -> sub body)
        | _ -> default_iterator.expr it e)
  in
  let structure_item it si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            with_allows (attr_allows vb.pvb_attributes) (fun () ->
                default_iterator.value_binding it vb))
          vbs
    | _ -> default_iterator.structure_item it si
  in
  let it = { default_iterator with expr; structure_item } in
  it.structure it str

let file_level_allows str =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_attribute a ->
          List.fold_left (fun acc r -> SS.add r acc) acc (attr_allows [ a ])
      | _ -> acc)
    SS.empty str

let analyze ?rules sources =
  let enabled r =
    String.equal r parse_error_rule
    || match rules with None -> true | Some l -> List.mem r l
  in
  let db = Effects.build sources in
  let findings = ref [] and waived = ref [] in
  List.iter
    (fun (s : Source.t) ->
      match s.ast with
      | Source.Signature _ ->
          (* Interfaces carry no expressions; every current rule is about
             runtime behaviour, so a parse is all they need. *)
          ()
      | Source.Structure str ->
          let module_defs =
            List.fold_left
              (fun acc item ->
                match item.pstr_desc with
                | Pstr_value (_, vbs) ->
                    List.fold_left
                      (fun acc vb ->
                        List.fold_left
                          (fun acc n -> SS.add n acc)
                          acc (pat_vars vb.pvb_pat))
                      acc vbs
                | _ -> acc)
              SS.empty str
          in
          let ctx =
            {
              file = s.file;
              modname = s.modname;
              enabled;
              module_defs;
              file_allowed = file_level_allows str;
              comment_allow =
                List.map
                  (fun (l, rs) -> (l, SS.of_list rs))
                  (Source.line_waivers s);
              allow_stack = [];
              shadow = Hashtbl.create 16;
              db;
              findings = [];
              waived = [];
            }
          in
          run_structure ctx str;
          findings := ctx.findings @ !findings;
          waived := ctx.waived @ !waived)
    sources;
  {
    findings = List.sort Finding.compare !findings;
    waived = List.sort Finding.compare !waived;
  }

let analyze_files ?rules files =
  let parsed, errors =
    List.fold_left
      (fun (ok, errs) file ->
        match Source.parse_file file with
        | Ok s -> (s :: ok, errs)
        | Error msg ->
            ( ok,
              {
                Finding.file;
                line = 1;
                col = 0;
                rule = parse_error_rule;
                severity = Finding.Error;
                message = msg;
              }
              :: errs ))
      ([], []) files
  in
  let r = analyze ?rules (List.rev parsed) in
  { r with findings = List.sort Finding.compare (errors @ r.findings) }
