open Parsetree
module SS = Syntax.SS

type result = { findings : Finding.t list; waived : Finding.t list }

let parse_error_rule = "parse-error"

(* ------------------------------------------------------------------ *)
(* Per-file analysis context                                           *)

(* Classification of a local binding for the escape analysis: what does
   capturing it hand to a worker domain? *)
type local_class =
  | Mut  (** ref / array / Hashtbl / record with mutable fields *)
  | Safe  (** Atomic.t, Mutex, Condition — shareable by construction *)
  | Unknown

type ctx = {
  file : string;
  modname : string;
  lib : string;
  enabled : string -> bool;
  module_defs : SS.t;  (** top-level value names — they shadow stdlib *)
  file_allowed : SS.t;
  comment_allow : (int * SS.t) list;
  mutable allow_stack : string list list;
  shadow : (string, int) Hashtbl.t;
  locals : (string, local_class list) Hashtbl.t;
      (** innermost-first classification stack per name, maintained in
          lockstep with [shadow] *)
  db : Callgraph.t;
  mutable findings : Finding.t list;
  mutable waived : Finding.t list;
}

let shadow_count ctx n = Option.value ~default:0 (Hashtbl.find_opt ctx.shadow n)

let local_class ctx n =
  match Hashtbl.find_opt ctx.locals n with
  | Some (c :: _) -> c
  | _ -> Unknown

let comment_waived ctx line rule =
  List.exists
    (fun (l, rules) -> l <= line && line - l <= 3 && SS.mem rule rules)
    ctx.comment_allow

(* Is a waiver token (a rule name, or a bless token like
   [domain_shared]) in scope at [line] through any waiver channel? *)
let token_in_scope ctx line tok =
  SS.mem tok ctx.file_allowed
  || List.exists (List.mem tok) ctx.allow_stack
  || comment_waived ctx line tok

let emit ?(force_waive = false) ctx ~(loc : Location.t) ~rule message =
  if ctx.enabled rule then begin
    let severity =
      match Rule.find rule with
      | Some r -> r.Rule.severity
      | None -> Finding.Error
    in
    let line = loc.loc_start.pos_lnum in
    let f =
      {
        Finding.file = ctx.file;
        line;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        rule;
        severity;
        message;
      }
    in
    let allowed = force_waive || token_in_scope ctx line rule in
    if allowed then ctx.waived <- f :: ctx.waived
    else ctx.findings <- f :: ctx.findings
  end

(* ------------------------------------------------------------------ *)
(* Rule: identifier vocabularies                                       *)

let hashtbl_order_fns =
  SS.of_list [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let wall_clock_idents =
  [
    ("Sys", "time");
    ("Unix", "gettimeofday");
    ("Unix", "time");
    ("Unix", "gmtime");
    ("Unix", "localtime");
  ]

let check_ident ctx lid (loc : Location.t) =
  let path = Syntax.flatten_lid lid in
  (match path with
  | [ "compare" ]
    when shadow_count ctx "compare" = 0
         && not (SS.mem "compare" ctx.module_defs) ->
      emit ctx ~loc ~rule:"poly-compare"
        "polymorphic compare; use a typed comparator (Int.compare, \
         String.compare, Float.compare, ...)"
  | [ "Stdlib"; "compare" ] ->
      emit ctx ~loc ~rule:"poly-compare"
        "polymorphic Stdlib.compare; use a typed comparator"
  | _ -> ());
  if List.exists (String.equal "Random") path && not (String.equal ctx.modname "Prng")
  then
    emit ctx ~loc ~rule:"ambient-entropy"
      "stdlib Random draws from global, cross-domain shared state; use a \
       seeded Th_sim.Prng stream";
  match Syntax.last2 path with
  | Some ("Hashtbl", fn) when SS.mem fn hashtbl_order_fns ->
      emit ctx ~loc ~rule:"hashtbl-order"
        (Printf.sprintf
           "Hashtbl.%s visits bindings in unspecified hash order; iterate a \
            sorted view or waive with a justification"
           fn)
  | Some ("Hashtbl", ("hash" | "seeded_hash")) ->
      emit ctx ~loc ~rule:"poly-compare"
        "polymorphic Hashtbl.hash walks the runtime representation; hash a \
         canonical key instead"
  | Some ("Obj", "magic") ->
      emit ctx ~loc ~rule:"obj-magic"
        "Obj.magic defeats the type system; fix the types instead"
  | Some ("Domain", "self") ->
      emit ctx ~loc ~rule:"ambient-entropy"
        "Domain.self is an allocation-order-dependent token; key per-domain \
         state by submission index instead"
  | Some ((m, fn) as q) when List.mem q wall_clock_idents ->
      if not (String.equal ctx.modname "Wall") then
        emit ctx ~loc ~rule:"wall-clock"
          (Printf.sprintf
             "%s.%s reads host time; simulated results must come from \
              Th_sim.Clock (harness self-timing goes through Th_exec.Wall)"
             m fn)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Rule: float equality / composite equality                           *)

let float_non_float_results =
  SS.of_list
    [
      "compare"; "equal"; "hash"; "to_int"; "to_string"; "is_nan"; "is_finite";
      "is_integer"; "sign_bit";
    ]

let float_ops =
  SS.of_list [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let rec is_floaty e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (e', t) -> (
      is_floaty e'
      ||
      match t.ptyp_desc with
      | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
      | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Syntax.flatten_lid txt with
      | [ op ] when SS.mem op float_ops -> true
      | [ ("float_of_int" | "float_of_string") ] -> true
      | path -> (
          match Syntax.last2 path with
          | Some ("Float", fn) -> not (SS.mem fn float_non_float_results)
          | _ -> false))
  | _ -> false

let is_composite_literal e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rule: catch-all matches over sensitive constructor vocabularies     *)

let sensitive_constructors =
  SS.of_list
    [
      (* H2_card_table.state *)
      "Clean"; "Dirty"; "Young_gen"; "Old_gen";
      (* H2_card_table.event *)
      "Barrier_dirty"; "Recompute"; "Bulk_clear";
      (* Th_trace.Event.kind *)
      "Span_begin"; "Span_end"; "Complete"; "Instant"; "Counter";
    ]

let check_catch_all ctx cases =
  let mentions_sensitive =
    List.exists
      (fun c ->
        List.exists
          (fun n -> SS.mem n sensitive_constructors)
          (Syntax.pat_constructors c.pc_lhs))
      cases
  in
  if mentions_sensitive then
    List.iter
      (fun c ->
        if Syntax.is_catch_all c.pc_lhs then
          emit ctx ~loc:c.pc_lhs.ppat_loc ~rule:"catch-all-match"
            "catch-all branch in a match over card states or trace events; \
             list the constructors explicitly so new ones force a revisit")
      cases

(* ------------------------------------------------------------------ *)
(* Rules at domain-crossing sinks: mutable globals reachable from the  *)
(* closure (pmap-mutable-global) and captured mutable locals           *)
(* (escape-capture)                                                    *)

let pmap_callee ctx fn =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      let path = Syntax.flatten_lid txt in
      match path with
      | [ ("pmap" | "pmap_grouped") ] when shadow_count ctx (List.hd path) = 0
        ->
          Some (List.hd path)
      | _ -> (
          match Syntax.last2 path with
          | Some ("Pool", ("run" | "map"))
          | Some ("Runners", ("pmap" | "pmap_grouped"))
          | Some ("Scheduler", ("run_cells" | "run_thunks"))
          | Some
              ( "Plan",
                ( "cell" | "cell_list" | "costed_list" | "grouped"
                | "grouped_costed" ) )
          | Some ("Cell", ("make" | "of_thunk"))
          (* Placement-policy callbacks run on whichever worker domain
             owns the runtime that installs the policy, so a capture at
             construction time is a cross-domain escape. *)
          | Some ("Policy", "make")
          | Some ("Domain", "spawn") ->
              Some (String.concat "." path)
          | _ -> None))
  | _ -> None

let check_pmap_site ctx callee args =
  let seen = Hashtbl.create 8 in
  let seen_escape = Hashtbl.create 8 in
  let report (loc : Location.t) key ~via ~blessed =
    if not (Hashtbl.mem seen (key, loc.loc_start.pos_lnum)) then begin
      Hashtbl.replace seen (key, loc.loc_start.pos_lnum) ();
      let via_s =
        match via with
        | None -> ""
        | Some k -> Printf.sprintf " (via %s.%s)" k.Callgraph.modname k.name
      in
      emit ~force_waive:blessed ctx ~loc ~rule:"pmap-mutable-global"
        (Printf.sprintf
           "mutable global %s (defined at %s) is reachable from a closure \
            passed to %s%s; cells run on worker domains, so confine mutable \
            state to the cell or the serial render path"
           (Callgraph.key_to_string key)
           (Callgraph.global_site ctx.db key)
           callee via_s)
    end
  in
  let blessed_of key =
    match Callgraph.global_info ctx.db key with
    | Some (_, b) -> b
    | None -> false
  in
  List.iter
    (fun (_, arg) ->
      Syntax.iter_unshadowed_idents arg ~f:(fun lid loc ->
          (* The iterator's own table covers bindings inside [arg]; the
             ctx tables cover locals of the enclosing scope. An
             enclosing local is never top-level state, but if it is
             classified mutable, capturing it ships unsynchronised
             state to a worker domain: the escape-capture rule. *)
          match lid with
          | Longident.Lident n when shadow_count ctx n > 0 -> (
              match local_class ctx n with
              | Mut when not (Hashtbl.mem seen_escape n) ->
                  Hashtbl.replace seen_escape n ();
                  let line = loc.loc_start.pos_lnum in
                  emit ctx ~loc ~rule:"escape-capture"
                    ~force_waive:
                      (token_in_scope ctx line Syntax.escape_bless_token)
                    (Printf.sprintf
                       "local mutable value %S is captured by a closure \
                        passed to %s and escapes to a worker domain; make it \
                        domain-local (allocate inside the closure), switch \
                        to Atomic.t, or bless the capture with [@th.allow \
                        \"domain_shared <why it is safe>\"]"
                       n callee)
              | Mut | Safe | Unknown -> ())
          | _ ->
              List.iter
                (fun key ->
                  match Callgraph.global_info ctx.db key with
                  | Some (_, blessed) -> report loc key ~via:None ~blessed
                  | None ->
                      List.iter
                        (fun g ->
                          report loc g ~via:(Some key) ~blessed:(blessed_of g))
                        (Callgraph.def_effects ctx.db key))
                (Callgraph.resolve ctx.db ~cur_lib:ctx.lib ~cur_mod:ctx.modname
                   lid)))
    args

(* ------------------------------------------------------------------ *)
(* Main per-file pass                                                  *)

let classify_rhs ctx e =
  if Callgraph.is_domain_safe_init e then Safe
  else if Callgraph.is_mutable_init ctx.db ~lib:ctx.lib ~modname:ctx.modname e
  then Mut
  else Unknown

let run_structure ctx str =
  let open Ast_iterator in
  (* [vars] carries (name, classification) pairs so the escape analysis
     knows what a captured name aliases. *)
  let with_vars ctx vars k =
    List.iter
      (fun (n, c) ->
        Hashtbl.replace ctx.shadow n (shadow_count ctx n + 1);
        let prev = Option.value ~default:[] (Hashtbl.find_opt ctx.locals n) in
        Hashtbl.replace ctx.locals n (c :: prev))
      vars;
    k ();
    List.iter
      (fun (n, _) ->
        Hashtbl.replace ctx.shadow n (shadow_count ctx n - 1);
        match Hashtbl.find_opt ctx.locals n with
        | Some (_ :: rest) -> Hashtbl.replace ctx.locals n rest
        | _ -> ())
      vars
  in
  let unknowns vars = List.map (fun n -> (n, Unknown)) vars in
  let with_allows allows k =
    match allows with
    | [] -> k ()
    | _ ->
        ctx.allow_stack <- allows :: ctx.allow_stack;
        k ();
        ctx.allow_stack <- List.tl ctx.allow_stack
  in
  (* Binding vars with classification: a simple [let x = rhs] gets its
     RHS classified; destructuring patterns stay Unknown. *)
  let vb_vars vb =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> [ (txt, classify_rhs ctx vb.pvb_expr) ]
    | _ -> unknowns (Syntax.pat_vars vb.pvb_pat)
  in
  let rec expr it e =
    let sub e = expr it e in
    let visit_case c =
      with_vars ctx (unknowns (Syntax.pat_vars c.pc_lhs)) (fun () ->
          Option.iter sub c.pc_guard;
          sub c.pc_rhs)
    in
    with_allows (Syntax.attr_allows e.pexp_attributes) (fun () ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } -> check_ident ctx txt e.pexp_loc
        | Pexp_apply (fn, args) ->
            (match fn.pexp_desc with
            | Pexp_ident { txt = Longident.Lident (("=" | "<>" | "==" | "!=") as op); _ }
              -> (
                match args with
                | [ (_, a); (_, b) ] ->
                    if is_floaty a || is_floaty b then
                      emit ctx ~loc:e.pexp_loc ~rule:"float-equality"
                        (Printf.sprintf
                           "(%s) on floating-point operands; compare with an \
                            epsilon or Float.compare's total order"
                           op)
                    else if is_composite_literal a || is_composite_literal b
                    then
                      emit ctx ~loc:e.pexp_loc ~rule:"poly-compare"
                        (Printf.sprintf
                           "structural (%s) against a composite literal; use \
                            a typed equality"
                           op)
                | _ -> ())
            | _ -> ());
            (match pmap_callee ctx fn with
            | Some callee -> check_pmap_site ctx callee args
            | None -> ());
            sub fn;
            List.iter (fun (_, a) -> sub a) args
        | Pexp_assert
            { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
          ->
            emit ctx ~loc:e.pexp_loc ~rule:"assert-false"
              "bare `assert false`; raise a contextful exception \
               (invalid_arg, Rt.Invalid_heap_state, failwith with the \
               unexpected value)"
        | Pexp_let (rf, vbs, body) ->
            let vars = List.concat_map vb_vars vbs in
            let visit_vb vb =
              with_allows (Syntax.attr_allows vb.pvb_attributes) (fun () ->
                  sub vb.pvb_expr)
            in
            (match rf with
            | Recursive ->
                with_vars ctx vars (fun () ->
                    List.iter visit_vb vbs;
                    sub body)
            | Nonrecursive ->
                List.iter visit_vb vbs;
                with_vars ctx vars (fun () -> sub body))
        | Pexp_fun (_, dflt, pat, body) ->
            Option.iter sub dflt;
            with_vars ctx (unknowns (Syntax.pat_vars pat)) (fun () -> sub body)
        | Pexp_function cases ->
            check_catch_all ctx cases;
            List.iter visit_case cases
        | Pexp_match (s, cases) ->
            sub s;
            check_catch_all ctx cases;
            List.iter visit_case cases
        | Pexp_try (s, cases) ->
            sub s;
            List.iter visit_case cases
        | Pexp_for (pat, a, b, _, body) ->
            sub a;
            sub b;
            with_vars ctx (unknowns (Syntax.pat_vars pat)) (fun () -> sub body)
        | _ -> default_iterator.expr it e)
  in
  let structure_item it si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            with_allows (Syntax.attr_allows vb.pvb_attributes) (fun () ->
                default_iterator.value_binding it vb))
          vbs
    | _ -> default_iterator.structure_item it si
  in
  let it = { default_iterator with expr; structure_item } in
  it.structure it str

let file_level_allows str =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_attribute a ->
          List.fold_left
            (fun acc r -> SS.add r acc)
            acc
            (Syntax.attr_allows [ a ])
      | _ -> acc)
    SS.empty str

let analyze ?rules sources =
  let enabled r =
    String.equal r parse_error_rule
    || match rules with None -> true | Some l -> List.mem r l
  in
  let db = Callgraph.build sources in
  let rdb = Raises.build db sources in
  let findings = ref [] and waived = ref [] in
  List.iter
    (fun (s : Source.t) ->
      match s.ast with
      | Source.Signature _ ->
          (* Interfaces carry no expressions; every current rule is about
             runtime behaviour, so a parse is all they need. *)
          ()
      | Source.Structure str ->
          let module_defs =
            List.fold_left
              (fun acc item ->
                match item.pstr_desc with
                | Pstr_value (_, vbs) ->
                    List.fold_left
                      (fun acc vb ->
                        List.fold_left
                          (fun acc n -> SS.add n acc)
                          acc
                          (Syntax.pat_vars vb.pvb_pat))
                      acc vbs
                | _ -> acc)
              SS.empty str
          in
          let ctx =
            {
              file = s.file;
              modname = s.modname;
              lib = s.library;
              enabled;
              module_defs;
              file_allowed = file_level_allows str;
              comment_allow =
                List.map
                  (fun (l, rs) -> (l, SS.of_list rs))
                  (Source.line_waivers s);
              allow_stack = [];
              shadow = Hashtbl.create 16;
              locals = Hashtbl.create 16;
              db;
              findings = [];
              waived = [];
            }
          in
          run_structure ctx str;
          (* Atomic-protocol pass: its own traversal (it needs
             whole-module views of each location), findings funnel
             through the same emit so file- and comment-level waivers
             apply uniformly. *)
          List.iter
            (fun (r : Atomics.raw) ->
              emit ctx ~loc:r.loc ~rule:r.rule
                ~force_waive:(List.mem r.rule r.allows)
                r.message)
            (Atomics.analyze str);
          (* Raises pass: summaries were computed project-wide up
             front; per-file rule checks funnel through emit the same
             way, so [@th.allow]/comment waivers divert uniformly. *)
          List.iter
            (fun (r : Raises.raw) ->
              emit ctx ~loc:r.loc ~rule:r.rule
                ~force_waive:(List.mem r.rule r.allows)
                r.message)
            (Raises.check_file rdb s);
          findings := ctx.findings @ !findings;
          waived := ctx.waived @ !waived)
    sources;
  {
    findings = List.sort Finding.compare !findings;
    waived = List.sort Finding.compare !waived;
  }

let analyze_files ?rules files =
  let parsed, errors =
    List.fold_left
      (fun (ok, errs) file ->
        match Source.parse_file file with
        | Ok s -> (s :: ok, errs)
        | Error msg ->
            ( ok,
              {
                Finding.file;
                line = 1;
                col = 0;
                rule = parse_error_rule;
                severity = Finding.Error;
                message = msg;
              }
              :: errs ))
      ([], []) files
  in
  let r = analyze ?rules (List.rev parsed) in
  { r with findings = List.sort Finding.compare (errors @ r.findings) }

let callgraph_dump sources = Callgraph.dump (Callgraph.build sources)
