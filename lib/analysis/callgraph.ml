(* Cross-library call graph with mutable-state effect summaries.

   PR 5's Effects analysis keyed every top-level definition by
   (module, name) alone, so two modules with the same name in different
   libraries — lib/analysis/report.ml and lib/metrics/report.ml, or the
   two Engine modules — clobbered each other in the tables, and effect
   summaries silently stopped at the boundary: a bench/ helper mutating
   a lib/metrics global through two hops was invisible. Keys here carry
   the owning library (derived from the dune layout by Source), and
   resolution understands wrapped access paths (Th_metrics.Bench_log.x),
   sibling access within a library (Bench_log.x from another th_metrics
   module), and open-scoped unqualified names, so the fixpoint is a
   genuine whole-project one.

   The graph also records, per module, which record fields are declared
   [mutable] and which type declarations carry Atomic.t fields — the
   escape analysis classifies captured record literals with it. *)

open Parsetree
module SS = Syntax.SS

type key = { lib : string; modname : string; name : string }

let compare_key a b =
  match String.compare a.lib b.lib with
  | 0 -> (
      match String.compare a.modname b.modname with
      | 0 -> String.compare a.name b.name
      | c -> c)
  | c -> c

let key_to_string k =
  let lib = if k.lib = "" then "?" else k.lib in
  Printf.sprintf "%s/%s.%s" lib k.modname k.name

module KS = Set.Make (struct
  type t = key

  let compare = compare_key
end)

type global = { site : Location.t; blessed : bool }

type t = {
  globals : (key, global) Hashtbl.t;
  defs : (key, expression) Hashtbl.t;
  (* binding attributes per def, so downstream passes (the raises
     analysis) can read [@th.raises]/[@th.allow] declarations without
     re-walking every structure *)
  def_attrs : (key, attributes) Hashtbl.t;
  (* module name -> libraries defining a module of that name *)
  mod_libs : (string, SS.t) Hashtbl.t;
  (* wrapper module name (Th_metrics) -> library tag (th_metrics) *)
  wrappers : (string, string) Hashtbl.t;
  (* (lib, modname) -> record field names declared mutable there *)
  mutable_fields : (string * string, SS.t) Hashtbl.t;
  mutable effects : (key * KS.t) list; (* fixpoint result, assoc *)
  mutable edges : (key * KS.t) list; (* direct call edges, assoc *)
}

let wrapper_of_lib lib = String.capitalize_ascii lib

let mutable_ctor_modules =
  SS.of_list
    [
      "Hashtbl"; "Array"; "Bytes"; "Buffer"; "Queue"; "Stack"; "Atomic";
      "Vec"; "Dynarray"; "Weak";
    ]

(* Does an expression allocate mutable state? Covers [ref e],
   [Hashtbl.create n], [Array.make ...], [Vec.create ()], array
   literals, and — via the collected type information — record literals
   that set a field some analyzed module declares [mutable]. *)
let rec is_mutable_init t ~lib ~modname e =
  match e.pexp_desc with
  | Pexp_array _ -> true
  | Pexp_record (fields, _) ->
      List.exists
        (fun ((flid : Longident.t Location.loc), _) ->
          match List.rev (Syntax.flatten_lid flid.txt) with
          | fname :: rest ->
              let owner =
                match rest with
                | [] -> (lib, modname)
                | m :: more -> (
                    match more with
                    | w :: _ when Hashtbl.mem t.wrappers w ->
                        (Hashtbl.find t.wrappers w, m)
                    | _ ->
                        (* Unqualified-library module: same library
                           first, else unique across all. *)
                        (match Hashtbl.find_opt t.mod_libs m with
                        | Some libs when SS.mem lib libs -> (lib, m)
                        | Some libs when SS.cardinal libs = 1 ->
                            (SS.choose libs, m)
                        | _ -> ("", m)))
              in
              (match Hashtbl.find_opt t.mutable_fields owner with
              | Some fs -> SS.mem fname fs
              | None -> false)
          | [] -> false)
        fields
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match List.rev (Syntax.flatten_lid txt) with
      | [ "ref" ] -> true
      | fn :: m :: _ ->
          SS.mem m mutable_ctor_modules
          && List.mem fn [ "create"; "make"; "init"; "copy"; "of_list"; "of_seq" ]
      | _ -> false)
  | Pexp_constraint (e, _) | Pexp_open (_, e) ->
      is_mutable_init t ~lib ~modname e
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) ->
      is_mutable_init t ~lib ~modname body
  | _ -> false

(* A captured Atomic.t or synchronisation primitive is domain-safe by
   construction; the escape rule must not flag it. *)
let is_domain_safe_init e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
        match Syntax.last2 (Syntax.flatten_lid txt) with
        | Some (("Atomic" | "Mutex" | "Condition" | "Semaphore"), "create")
        | Some (("Atomic" | "Mutex" | "Condition" | "Semaphore"), "make") ->
            true
        | _ -> false)
    | Pexp_constraint (e, _) | Pexp_open (_, e) -> go e
    | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> go body
    | _ -> false
  in
  go e

(* Resolve an identifier reference made from module [cur_mod] of library
   [cur_lib] to candidate keys among the analyzed definitions.

   - [n]           : the current module if it defines [n]; otherwise the
                     unique analyzed definition of that name (a reference
                     through [open]); ambiguity resolves to nothing.
   - [M.n]         : module M of the current library when it exists
                     there (OCaml's scoping inside a wrapped library);
                     otherwise the unique library defining module M.
   - [W.M.n]       : library wrapper W (e.g. Th_metrics) pins the
                     library exactly.
   - deeper paths  : the trailing [W.M.n] / [M.n] window, so paths
                     through functor-free nesting still land. *)
let resolve t ~cur_lib ~cur_mod lid =
  let exists k = Hashtbl.mem t.globals k || Hashtbl.mem t.defs k in
  let by_module m n =
    match Hashtbl.find_opt t.mod_libs m with
    | None -> []
    | Some libs ->
        if SS.mem cur_lib libs && exists { lib = cur_lib; modname = m; name = n }
        then [ { lib = cur_lib; modname = m; name = n } ]
        else
          let hits =
            SS.fold
              (fun lib acc ->
                let k = { lib; modname = m; name = n } in
                if exists k then k :: acc else acc)
              libs []
          in
          (match hits with [ k ] -> [ k ] | _ -> [])
  in
  match Syntax.flatten_lid lid with
  | [] -> []
  | [ n ] -> (
      let home = { lib = cur_lib; modname = cur_mod; name = n } in
      if exists home then [ home ]
      else
        let hits = ref [] in
        (* th-lint: allow hashtbl-order — membership collection only;
           the result is used only when it is a singleton. *)
        Hashtbl.iter
          (fun k _ -> if String.equal k.name n then hits := k :: !hits)
          t.globals;
        (* th-lint: allow hashtbl-order — as above: membership only. *)
        Hashtbl.iter
          (fun k _ -> if String.equal k.name n then hits := k :: !hits)
          t.defs;
        match !hits with [ k ] -> [ k ] | _ -> [])
  | path -> (
      (* A module nested in the current unit shadows every compilation
         unit of the same name — its bindings are keyed by dotted path. *)
      let local =
        { lib = cur_lib; modname = cur_mod; name = String.concat "." path }
      in
      if exists local then [ local ]
      else
        match List.rev path with
        | n :: m :: rest -> (
            match rest with
            | w :: _ when Hashtbl.mem t.wrappers w ->
                let lib = Hashtbl.find t.wrappers w in
                let k = { lib; modname = m; name = n } in
                if exists k then [ k ] else []
            | _ -> by_module m n)
        | _ -> [])

let build (sources : Source.t list) =
  let t =
    {
      globals = Hashtbl.create 64;
      defs = Hashtbl.create 256;
      def_attrs = Hashtbl.create 256;
      mod_libs = Hashtbl.create 64;
      wrappers = Hashtbl.create 16;
      mutable_fields = Hashtbl.create 32;
      effects = [];
      edges = [];
    }
  in
  (* Pass 0: module/library landscape and mutable record fields, so the
     later passes can resolve wrapped paths and classify record
     literals. *)
  List.iter
    (fun (s : Source.t) ->
      let prev =
        Option.value ~default:SS.empty (Hashtbl.find_opt t.mod_libs s.modname)
      in
      Hashtbl.replace t.mod_libs s.modname (SS.add s.library prev);
      if s.library <> "" then
        Hashtbl.replace t.wrappers (wrapper_of_lib s.library) s.library;
      match s.ast with
      | Source.Signature _ -> ()
      | Source.Structure str ->
          let muts = ref SS.empty in
          List.iter
            (fun item ->
              match item.pstr_desc with
              | Pstr_type (_, decls) ->
                  List.iter
                    (fun d ->
                      match d.ptype_kind with
                      | Ptype_record labels ->
                          List.iter
                            (fun l ->
                              if l.pld_mutable = Mutable then
                                muts := SS.add l.pld_name.txt !muts)
                            labels
                      | _ -> ())
                    decls
              | _ -> ())
            str;
          if not (SS.is_empty !muts) then
            Hashtbl.replace t.mutable_fields (s.library, s.modname) !muts)
    sources;
  (* Pass 1: bindings — mutable globals and function defs. Nested
     modules are walked too, their bindings keyed by the dotted path
     inside the unit (["Recorder.note"]), so a unit-local module that
     happens to share its name with another library's compilation unit
     shadows it during resolution instead of aliasing into it. *)
  List.iter
    (fun (s : Source.t) ->
      match s.ast with
      | Source.Signature _ -> ()
      | Source.Structure str ->
          let record ~prefix vb =
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } ->
                let name =
                  match prefix with [] -> txt | _ -> String.concat "." (prefix @ [ txt ])
                in
                let key = { lib = s.library; modname = s.modname; name } in
                if is_mutable_init t ~lib:s.library ~modname:s.modname vb.pvb_expr
                then
                  let blessed =
                    List.mem "pmap-mutable-global"
                      (Syntax.attr_allows vb.pvb_attributes)
                  in
                  Hashtbl.replace t.globals key { site = vb.pvb_loc; blessed }
                else begin
                  Hashtbl.replace t.defs key vb.pvb_expr;
                  Hashtbl.replace t.def_attrs key vb.pvb_attributes
                end
            | _ -> ()
          in
          let rec walk ~prefix items =
            List.iter
              (fun item ->
                match item.pstr_desc with
                | Pstr_value (_, vbs) -> List.iter (record ~prefix) vbs
                | Pstr_module mb -> walk_mod ~prefix mb
                | Pstr_recmodule mbs -> List.iter (walk_mod ~prefix) mbs
                | _ -> ())
              items
          and walk_mod ~prefix mb =
            match mb.pmb_name.txt with
            | None -> ()
            | Some m -> (
                let rec body me =
                  match me.pmod_desc with
                  | Pmod_structure items ->
                      walk ~prefix:(prefix @ [ m ]) items
                  | Pmod_constraint (me, _) -> body me
                  | _ -> ()
                in
                body mb.pmb_expr)
          in
          walk ~prefix:[] str)
    sources;
  (* Pass 2: direct effects and call edges per def. *)
  let direct : (key * (KS.t * KS.t)) list =
    (* th-lint: allow hashtbl-order — collected into a list and sorted
       by compare_key immediately after the fold. *)
    Hashtbl.fold
      (fun key body acc ->
        let eff = ref KS.empty and calls = ref KS.empty in
        Syntax.iter_unshadowed_idents body ~f:(fun lid _loc ->
            List.iter
              (fun k ->
                if Hashtbl.mem t.globals k then eff := KS.add k !eff
                else if Hashtbl.mem t.defs k then calls := KS.add k !calls)
              (resolve t ~cur_lib:key.lib ~cur_mod:key.modname lid));
        (key, (!eff, !calls)) :: acc)
      t.defs []
  in
  let direct = List.sort (fun (a, _) (b, _) -> compare_key a b) direct in
  (* Pass 3: transitive closure over the call graph. *)
  let table = Hashtbl.create 256 in
  List.iter (fun (k, (eff, _)) -> Hashtbl.replace table k eff) direct;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (k, (_, calls)) ->
        let cur = Hashtbl.find table k in
        let next =
          KS.fold
            (fun callee acc ->
              match Hashtbl.find_opt table callee with
              | Some e -> KS.union acc e
              | None -> acc)
            calls cur
        in
        if not (KS.equal next cur) then begin
          Hashtbl.replace table k next;
          changed := true
        end)
      direct
  done;
  t.effects <- List.map (fun (k, _) -> (k, Hashtbl.find table k)) direct;
  t.edges <- List.map (fun (k, (_, calls)) -> (k, calls)) direct;
  t

let global_info t key =
  Option.map (fun g -> (g.site, g.blessed)) (Hashtbl.find_opt t.globals key)

let global_site t key =
  match Hashtbl.find_opt t.globals key with
  | Some g ->
      Printf.sprintf "%s:%d" g.site.loc_start.pos_fname
        g.site.loc_start.pos_lnum
  | None -> "?"

let is_def t key = Hashtbl.mem t.defs key

let def_attrs t key =
  Option.value ~default:[] (Hashtbl.find_opt t.def_attrs key)

let fold_defs t ~init ~f =
  let keys =
    (* th-lint: allow hashtbl-order — collected then sorted by
       compare_key before the fold, so iteration order is canonical. *)
    Hashtbl.fold (fun k _ acc -> k :: acc) t.defs []
    |> List.sort compare_key
  in
  List.fold_left
    (fun acc k -> f acc k (Hashtbl.find t.defs k) (def_attrs t k))
    init keys

let def_effects t key =
  match List.find_opt (fun (k, _) -> compare_key k key = 0) t.effects with
  | Some (_, e) -> KS.elements e
  | None -> []

let mutable_field t ~lib ~modname fname =
  match Hashtbl.find_opt t.mutable_fields (lib, modname) with
  | Some fs -> SS.mem fname fs
  | None -> false

let dump t =
  let b = Buffer.create 4096 in
  let globals =
    (* th-lint: allow hashtbl-order — sorted immediately below. *)
    Hashtbl.fold (fun k g acc -> (k, g) :: acc) t.globals []
    |> List.sort (fun (a, _) (b, _) -> compare_key a b)
  in
  Buffer.add_string b
    (Printf.sprintf "callgraph: %d defs, %d mutable globals\n"
       (List.length t.edges) (List.length globals));
  List.iter
    (fun (k, g) ->
      Buffer.add_string b
        (Printf.sprintf "global %s (%s:%d)%s\n" (key_to_string k)
           g.site.loc_start.pos_fname g.site.loc_start.pos_lnum
           (if g.blessed then " [blessed]" else "")))
    globals;
  List.iter2
    (fun (k, calls) (k', effs) ->
      assert (compare_key k k' = 0);
      let show set =
        KS.elements set |> List.map key_to_string |> String.concat " "
      in
      if not (KS.is_empty calls && KS.is_empty effs) then
        Buffer.add_string b
          (Printf.sprintf "def %s\n  calls:   %s\n  effects: %s\n"
             (key_to_string k) (show calls) (show effs)))
    t.edges t.effects;
  Buffer.contents b
