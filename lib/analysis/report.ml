(* ------------------------------------------------------------------ *)
(* Text                                                                *)

let to_text ?waived findings =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    findings;
  (match waived with
  | None | Some [] -> ()
  | Some ws ->
      List.iter
        (fun f ->
          Buffer.add_string b "(waived) ";
          Buffer.add_string b (Finding.to_string f);
          Buffer.add_char b '\n')
        ws);
  let n = List.length findings in
  Buffer.add_string b
    (if n = 0 then
       Printf.sprintf "analysis: clean%s\n"
         (match waived with
         | Some ws when ws <> [] ->
             Printf.sprintf " (%d waived)" (List.length ws)
         | _ -> "")
     else Printf.sprintf "analysis: %d finding(s)\n" n);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON writing                                                        *)

let escape_json b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_finding b (f : Finding.t) =
  Buffer.add_string b "{\"file\":\"";
  escape_json b f.file;
  Buffer.add_string b "\",\"line\":";
  Buffer.add_string b (string_of_int f.line);
  Buffer.add_string b ",\"col\":";
  Buffer.add_string b (string_of_int f.col);
  Buffer.add_string b ",\"rule\":\"";
  escape_json b f.rule;
  Buffer.add_string b "\",\"severity\":\"";
  Buffer.add_string b (Finding.severity_to_string f.severity);
  Buffer.add_string b "\",\"message\":\"";
  escape_json b f.message;
  Buffer.add_string b "\"}"

let add_list b fs =
  Buffer.add_char b '[';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n ";
      add_finding b f)
    fs;
  Buffer.add_char b ']'

let to_json ?(waived = []) findings =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"version\":1,\n\"findings\":";
  add_list b findings;
  Buffer.add_string b ",\n\"waived\":";
  add_list b waived;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0 (minimal profile)                                       *)

(* One run, one driver, every registry rule in the driver's rule
   metadata; waived findings are emitted as results carrying an
   inSource suppression, which is how SARIF viewers (and the GitHub
   code-scanning UI) display "found but deliberately accepted". Only
   strings and integers are emitted so [of_sarif] can reuse the same
   dependency-free tokenizer as [of_json]. *)
let add_sarif_result b ~suppressed (f : Finding.t) =
  Buffer.add_string b "{\"ruleId\":\"";
  escape_json b f.rule;
  Buffer.add_string b "\",\"level\":\"";
  Buffer.add_string b (Finding.severity_to_string f.severity);
  Buffer.add_string b "\",\"message\":{\"text\":\"";
  escape_json b f.message;
  Buffer.add_string b
    "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"";
  escape_json b f.file;
  Buffer.add_string b "\"},\"region\":{\"startLine\":";
  Buffer.add_string b (string_of_int f.line);
  Buffer.add_string b ",\"startColumn\":";
  (* SARIF columns are 1-based; findings carry 0-based columns. *)
  Buffer.add_string b (string_of_int (f.col + 1));
  Buffer.add_string b "}}}]";
  if suppressed then
    Buffer.add_string b ",\"suppressions\":[{\"kind\":\"inSource\"}]";
  Buffer.add_string b "}"

let to_sarif ?(waived = []) findings =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "{\"version\":\"2.1.0\",\n\
     \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\n\
     \"runs\":[{\"tool\":{\"driver\":{\"name\":\"th-lint\",\"rules\":[";
  List.iteri
    (fun i (r : Rule.t) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "{\"id\":\"";
      escape_json b r.name;
      Buffer.add_string b "\",\"shortDescription\":{\"text\":\"";
      escape_json b r.synopsis;
      Buffer.add_string b "\"}}")
    Rule.all;
  Buffer.add_string b "]}},\n\"results\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n";
      add_sarif_result b ~suppressed:false f)
    findings;
  List.iteri
    (fun i f ->
      if i > 0 || findings <> [] then Buffer.add_string b ",\n";
      add_sarif_result b ~suppressed:true f)
    waived;
  Buffer.add_string b "]}]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON reading (exactly the subset written above: objects, arrays,    *)
(* strings with the escapes we emit, and non-negative integers)        *)

exception Bad of string

type tok =
  | Lbrace | Rbrace | Lbrack | Rbrack | Colon | Comma
  | Str of string
  | Num of int

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\n' | '\t' | '\r' -> incr i
    | '{' -> toks := Lbrace :: !toks; incr i
    | '}' -> toks := Rbrace :: !toks; incr i
    | '[' -> toks := Lbrack :: !toks; incr i
    | ']' -> toks := Rbrack :: !toks; incr i
    | ':' -> toks := Colon :: !toks; incr i
    | ',' -> toks := Comma :: !toks; incr i
    | '"' ->
        let b = Buffer.create 32 in
        incr i;
        let fin = ref false in
        while not !fin do
          if !i >= n then raise (Bad "unterminated string");
          (match s.[!i] with
          | '"' -> fin := true
          | '\\' ->
              if !i + 1 >= n then raise (Bad "bad escape");
              (match s.[!i + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if !i + 5 >= n then raise (Bad "bad \\u escape");
                  let code =
                    try int_of_string ("0x" ^ String.sub s (!i + 2) 4)
                    with _ -> raise (Bad "bad \\u escape")
                  in
                  if code > 0xff then raise (Bad "non-latin \\u escape")
                  else Buffer.add_char b (Char.chr code);
                  i := !i + 4
              | c -> raise (Bad (Printf.sprintf "unknown escape \\%c" c)));
              incr i
          | c -> Buffer.add_char b c);
          incr i
        done;
        toks := Str (Buffer.contents b) :: !toks
    | '0' .. '9' | '-' ->
        let j = ref !i in
        if s.[!j] = '-' then incr j;
        while !j < n && (match s.[!j] with '0' .. '9' -> true | _ -> false) do
          incr j
        done;
        let num =
          try int_of_string (String.sub s !i (!j - !i))
          with _ -> raise (Bad "bad number")
        in
        toks := Num num :: !toks;
        i := !j
    | c -> raise (Bad (Printf.sprintf "unexpected character %C" c)));
  done;
  List.rev !toks
[@@th.raises "Bad"]

let parse_finding toks =
  let expect t = function
    | x :: rest when x = t -> rest
    | _ -> raise (Bad "malformed finding object")
  in
  let rec fields acc toks =
    match toks with
    | Rbrace :: rest -> (acc, rest)
    | Comma :: rest -> fields acc rest
    | Str k :: Colon :: v :: rest ->
        let acc =
          match (k, v) with
          | "file", Str s -> { acc with Finding.file = s }
          | "line", Num n -> { acc with Finding.line = n }
          | "col", Num n -> { acc with Finding.col = n }
          | "rule", Str s -> { acc with Finding.rule = s }
          | "severity", Str s -> (
              match Finding.severity_of_string s with
              | Some sv -> { acc with Finding.severity = sv }
              | None -> raise (Bad ("unknown severity " ^ s)))
          | "message", Str s -> { acc with Finding.message = s }
          | _ -> raise (Bad ("unexpected field " ^ k))
        in
        fields acc rest
    | _ -> raise (Bad "malformed finding object")
  in
  let zero =
    {
      Finding.file = "";
      line = 0;
      col = 0;
      rule = "";
      severity = Finding.Error;
      message = "";
    }
  in
  fields zero (expect Lbrace toks)
[@@th.raises "Bad"]

let parse_array toks =
  let rec items acc toks =
    match toks with
    | Rbrack :: rest -> (List.rev acc, rest)
    | Comma :: rest -> items acc rest
    | Lbrace :: _ ->
        let f, rest = parse_finding toks in
        items (f :: acc) rest
    | _ -> raise (Bad "malformed finding array")
  in
  match toks with
  | Lbrack :: rest -> items [] rest
  | _ -> raise (Bad "expected array")
[@@th.raises "Bad"]

let of_json s =
  match tokenize s with
  | exception Bad m -> Error m
  | toks -> (
      try
        match toks with
        | Lbrace :: Str "version" :: Colon :: Num 1 :: Comma
          :: Str "findings" :: Colon :: rest -> (
            let findings, rest = parse_array rest in
            match rest with
            | Comma :: Str "waived" :: Colon :: rest -> (
                let waived, rest = parse_array rest in
                match rest with
                | [ Rbrace ] -> Ok (findings, waived)
                | _ -> Error "trailing tokens")
            | _ -> Error "missing waived array")
        | _ -> Error "missing version/findings header"
      with Bad m -> Error m)

(* ------------------------------------------------------------------ *)
(* SARIF reading: a generic value parser over the same tokens, then    *)
(* navigation down to runs[0].results                                  *)

type json = Obj of (string * json) list | Arr of json list | JStr of string | JNum of int

let rec parse_value = function
  | Lbrace :: rest -> parse_obj [] rest
  | Lbrack :: rest -> parse_arr [] rest
  | Str s :: rest -> (JStr s, rest)
  | Num n :: rest -> (JNum n, rest)
  | _ -> raise (Bad "malformed value")
[@@th.raises "Bad"]

and parse_obj acc = function
  | Rbrace :: rest -> (Obj (List.rev acc), rest)
  | Comma :: rest -> parse_obj acc rest
  | Str k :: Colon :: rest ->
      let v, rest = parse_value rest in
      parse_obj ((k, v) :: acc) rest
  | _ -> raise (Bad "malformed object")
[@@th.raises "Bad"]

and parse_arr acc = function
  | Rbrack :: rest -> (Arr (List.rev acc), rest)
  | Comma :: rest -> parse_arr acc rest
  | toks ->
      let v, rest = parse_value toks in
      parse_arr (v :: acc) rest
[@@th.raises "Bad"]

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let of_sarif s =
  match tokenize s with
  | exception Bad m -> Error m
  | toks -> (
      try
        let doc, rest = parse_value toks in
        if rest <> [] then raise (Bad "trailing tokens");
        (match member "version" doc with
        | Some (JStr "2.1.0") -> ()
        | _ -> raise (Bad "not a SARIF 2.1.0 document"));
        let run =
          match member "runs" doc with
          | Some (Arr (run :: _)) -> run
          | _ -> raise (Bad "missing runs")
        in
        let results =
          match member "results" run with
          | Some (Arr rs) -> rs
          | _ -> raise (Bad "missing results")
        in
        let finding r =
          let str path = match path with Some (JStr s) -> s | _ -> raise (Bad "missing string") in
          let rule = str (member "ruleId" r) in
          let severity =
            match Finding.severity_of_string (str (member "level" r)) with
            | Some s -> s
            | None -> raise (Bad "unknown level")
          in
          let message = str (member "message" r |> Option.map (member "text") |> Option.join) in
          let phys =
            match member "locations" r with
            | Some (Arr (l :: _)) -> (
                match member "physicalLocation" l with
                | Some p -> p
                | None -> raise (Bad "missing physicalLocation"))
            | _ -> raise (Bad "missing locations")
          in
          let file =
            str
              (member "artifactLocation" phys
              |> Option.map (member "uri")
              |> Option.join)
          in
          let num path = match path with Some (JNum n) -> n | _ -> raise (Bad "missing number") in
          let region =
            match member "region" phys with
            | Some rg -> rg
            | None -> raise (Bad "missing region")
          in
          let suppressed =
            match member "suppressions" r with
            | Some (Arr (_ :: _)) -> true
            | _ -> false
          in
          ( {
              Finding.file;
              line = num (member "startLine" region);
              col = num (member "startColumn" region) - 1;
              rule;
              severity;
              message;
            },
            suppressed )
        in
        let fs, ws =
          List.fold_left
            (fun (fs, ws) r ->
              let f, suppressed = finding r in
              if suppressed then (fs, f :: ws) else (f :: fs, ws))
            ([], []) results
        in
        Ok (List.rev fs, List.rev ws)
      with Bad m -> Error m)
