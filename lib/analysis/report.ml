(* ------------------------------------------------------------------ *)
(* Text                                                                *)

let to_text ?waived findings =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    findings;
  (match waived with
  | None | Some [] -> ()
  | Some ws ->
      List.iter
        (fun f ->
          Buffer.add_string b "(waived) ";
          Buffer.add_string b (Finding.to_string f);
          Buffer.add_char b '\n')
        ws);
  let n = List.length findings in
  Buffer.add_string b
    (if n = 0 then
       Printf.sprintf "analysis: clean%s\n"
         (match waived with
         | Some ws when ws <> [] ->
             Printf.sprintf " (%d waived)" (List.length ws)
         | _ -> "")
     else Printf.sprintf "analysis: %d finding(s)\n" n);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON writing                                                        *)

let escape_json b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_finding b (f : Finding.t) =
  Buffer.add_string b "{\"file\":\"";
  escape_json b f.file;
  Buffer.add_string b "\",\"line\":";
  Buffer.add_string b (string_of_int f.line);
  Buffer.add_string b ",\"col\":";
  Buffer.add_string b (string_of_int f.col);
  Buffer.add_string b ",\"rule\":\"";
  escape_json b f.rule;
  Buffer.add_string b "\",\"severity\":\"";
  Buffer.add_string b (Finding.severity_to_string f.severity);
  Buffer.add_string b "\",\"message\":\"";
  escape_json b f.message;
  Buffer.add_string b "\"}"

let add_list b fs =
  Buffer.add_char b '[';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n ";
      add_finding b f)
    fs;
  Buffer.add_char b ']'

let to_json ?(waived = []) findings =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"version\":1,\n\"findings\":";
  add_list b findings;
  Buffer.add_string b ",\n\"waived\":";
  add_list b waived;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON reading (exactly the subset written above: objects, arrays,    *)
(* strings with the escapes we emit, and non-negative integers)        *)

exception Bad of string

type tok =
  | Lbrace | Rbrace | Lbrack | Rbrack | Colon | Comma
  | Str of string
  | Num of int

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\n' | '\t' | '\r' -> incr i
    | '{' -> toks := Lbrace :: !toks; incr i
    | '}' -> toks := Rbrace :: !toks; incr i
    | '[' -> toks := Lbrack :: !toks; incr i
    | ']' -> toks := Rbrack :: !toks; incr i
    | ':' -> toks := Colon :: !toks; incr i
    | ',' -> toks := Comma :: !toks; incr i
    | '"' ->
        let b = Buffer.create 32 in
        incr i;
        let fin = ref false in
        while not !fin do
          if !i >= n then raise (Bad "unterminated string");
          (match s.[!i] with
          | '"' -> fin := true
          | '\\' ->
              if !i + 1 >= n then raise (Bad "bad escape");
              (match s.[!i + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if !i + 5 >= n then raise (Bad "bad \\u escape");
                  let code =
                    try int_of_string ("0x" ^ String.sub s (!i + 2) 4)
                    with _ -> raise (Bad "bad \\u escape")
                  in
                  if code > 0xff then raise (Bad "non-latin \\u escape")
                  else Buffer.add_char b (Char.chr code);
                  i := !i + 4
              | c -> raise (Bad (Printf.sprintf "unknown escape \\%c" c)));
              incr i
          | c -> Buffer.add_char b c);
          incr i
        done;
        toks := Str (Buffer.contents b) :: !toks
    | '0' .. '9' | '-' ->
        let j = ref !i in
        if s.[!j] = '-' then incr j;
        while !j < n && (match s.[!j] with '0' .. '9' -> true | _ -> false) do
          incr j
        done;
        let num =
          try int_of_string (String.sub s !i (!j - !i))
          with _ -> raise (Bad "bad number")
        in
        toks := Num num :: !toks;
        i := !j
    | c -> raise (Bad (Printf.sprintf "unexpected character %C" c)));
  done;
  List.rev !toks

let parse_finding toks =
  let expect t = function
    | x :: rest when x = t -> rest
    | _ -> raise (Bad "malformed finding object")
  in
  let rec fields acc toks =
    match toks with
    | Rbrace :: rest -> (acc, rest)
    | Comma :: rest -> fields acc rest
    | Str k :: Colon :: v :: rest ->
        let acc =
          match (k, v) with
          | "file", Str s -> { acc with Finding.file = s }
          | "line", Num n -> { acc with Finding.line = n }
          | "col", Num n -> { acc with Finding.col = n }
          | "rule", Str s -> { acc with Finding.rule = s }
          | "severity", Str s -> (
              match Finding.severity_of_string s with
              | Some sv -> { acc with Finding.severity = sv }
              | None -> raise (Bad ("unknown severity " ^ s)))
          | "message", Str s -> { acc with Finding.message = s }
          | _ -> raise (Bad ("unexpected field " ^ k))
        in
        fields acc rest
    | _ -> raise (Bad "malformed finding object")
  in
  let zero =
    {
      Finding.file = "";
      line = 0;
      col = 0;
      rule = "";
      severity = Finding.Error;
      message = "";
    }
  in
  fields zero (expect Lbrace toks)

let parse_array toks =
  let rec items acc toks =
    match toks with
    | Rbrack :: rest -> (List.rev acc, rest)
    | Comma :: rest -> items acc rest
    | Lbrace :: _ ->
        let f, rest = parse_finding toks in
        items (f :: acc) rest
    | _ -> raise (Bad "malformed finding array")
  in
  match toks with
  | Lbrack :: rest -> items [] rest
  | _ -> raise (Bad "expected array")

let of_json s =
  match tokenize s with
  | exception Bad m -> Error m
  | toks -> (
      try
        match toks with
        | Lbrace :: Str "version" :: Colon :: Num 1 :: Comma
          :: Str "findings" :: Colon :: rest -> (
            let findings, rest = parse_array rest in
            match rest with
            | Comma :: Str "waived" :: Colon :: rest -> (
                let waived, rest = parse_array rest in
                match rest with
                | [ Rbrace ] -> Ok (findings, waived)
                | _ -> Error "trailing tokens")
            | _ -> Error "missing waived array")
        | _ -> Error "missing version/findings header"
      with Bad m -> Error m)
