type severity = Error | Warning

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s/%s] %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message
