(** Shared AST helpers for the analysis passes.

    Everything here is purely syntactic: longident flattening, waiver
    attribute parsing ([[@th.allow "..."]], [[@th.atomic "..."]]),
    pattern variable/constructor collection, and a scope-aware
    identifier iterator. *)

module SS : Set.S with type elt = string

val flatten_lid : Longident.t -> string list
(** [Longident.flatten] that maps functor applications to []. *)

val last2 : string list -> (string * string) option
(** Last two components of a path, e.g. [Th_exec.Pool.map] and
    [Pool.map] both give [("Pool", "map")]. *)

val split_words : string -> string list
(** Split on spaces, tabs, newlines and commas, dropping empties. *)

val string_payload : Parsetree.payload -> string option
(** The string constant of a [PStr] payload, if that is its shape. *)

val escape_bless_token : string
(** ["domain_shared"] — the waiver token that blesses an
    [escape-capture] finding. It only counts when the waiver string
    carries a justification beyond the bare token. *)

val attr_allows : Parsetree.attributes -> string list
(** Rule names (and bless tokens) allowed by [[@th.allow "..."]]
    attributes. A bare ["domain_shared"] payload with no justification
    words yields nothing. *)

val attr_raises :
  Parsetree.attributes -> (string * string option) list option
(** Exception constructors declared by [[@th.raises "Exn ..."]]
    attributes, each with its optional guard argument —
    ["Io_error(checked)"] parses to [("Io_error", Some "checked")]
    and only escapes applications passing [~checked] as other than a
    literal [false]. [Some []] (payload [""] or ["none"]) declares
    that nothing escapes; [None] means no declaration at all. *)

val attr_atomic_role : Parsetree.attributes -> string option
(** The role string of a [[@th.atomic "role"]] attribute, trimmed;
    [None] when absent or empty. *)

val pat_vars : Parsetree.pattern -> string list

val pat_constructors : Parsetree.pattern -> string list

val is_catch_all : Parsetree.pattern -> bool

val iter_unshadowed_idents :
  f:(Longident.t -> Location.t -> unit) -> Parsetree.expression -> unit
(** Call [f lid loc] for every identifier reference in the expression
    whose unqualified name is not bound within it. *)
