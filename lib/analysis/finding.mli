(** A structured static-analysis finding.

    Findings are value types shared by the {!Engine} (which produces
    them), the {!Report} renderers (text and JSON) and the test suite;
    they carry everything needed to locate, explain and gate on a rule
    violation without re-reading the source. *)

type severity = Error | Warning

type t = {
  file : string;  (** path as given to the analyzer *)
  line : int;  (** 1-based line of the offending node *)
  col : int;  (** 0-based column, matching compiler convention *)
  rule : string;  (** rule name, e.g. ["hashtbl-order"] *)
  severity : severity;
  message : string;  (** one-line explanation specific to the site *)
}

val severity_to_string : severity -> string

val severity_of_string : string -> severity option

val compare : t -> t -> int
(** Total order: file, line, col, rule, message — gives reports a
    deterministic layout independent of discovery order. *)

val to_string : t -> string
(** [file:line:col: [severity/rule] message] — compiler-style, so
    editors can jump to the site. *)
