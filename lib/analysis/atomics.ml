(* Atomic-protocol checker: a per-module protocol analysis over
   Atomic.t usage.

   The hand-rolled atomics in lib/exec (the Chase-Lev deque, the
   scheduler's batch counters) follow publication protocols that the
   type system cannot see: the deque's [top] index must only move
   forward via CAS once thieves are active, the scheduler's counters
   are only [Atomic.set] while workers are quiesced. This pass makes
   those protocols checkable:

   - every Atomic.t declaration (record field of type [_ Atomic.t], or
     top-level [let x = Atomic.make _]) must carry a role annotation
     [[@th.atomic "role"]] stating its protocol in prose
     (atomic-missing-role);
   - a plain [Atomic.set] on a location that is elsewhere operated on
     by CAS-class primitives (compare_and_set / fetch_and_add / incr /
     decr / exchange) can overwrite a concurrent RMW and is flagged
     (atomic-plain-write);
   - a plain [Atomic.get] of a CAS-contended location in a definition
     that performs no CAS on it is a racy snapshot and is flagged
     (atomic-plain-read) — reads that feed a CAS in the same
     definition, the retry-loop idiom, are the protocol working as
     intended and stay silent;
   - an [Atomic.get] whose result guards an [Atomic.set] to the same
     location with no interposing CAS is a check-then-act window
     (atomic-check-then-act): the state can change between the read
     and the write, which is what [compare_and_set] exists to close.

   Locations are identified syntactically and per module: [t.top]
   anywhere in a module is the location [".top"], a bare identifier is
   its name. Functor-parameter atomics are recognised by usage: any
   module prefix that performs a CAS-class operation somewhere in the
   file (e.g. the [A] of [Deque.Make (A : Atomic_intf.S)]) is treated
   as an atomics module alongside [Atomic] itself. *)

open Parsetree
module SS = Syntax.SS

type raw = {
  loc : Location.t;
  rule : string;
  message : string;
  allows : string list;
      (* [@th.allow] tokens in scope at the site, innermost included;
         the engine diverts the finding if the rule is among them *)
}

type op_kind = Read | Write | Cas | Rmw

let op_kind_of_name = function
  | "get" -> Some Read
  | "set" -> Some Write
  | "compare_and_set" -> Some Cas
  | "fetch_and_add" | "exchange" | "incr" | "decr" -> Some Rmw
  | _ -> None

let atomic_op_names =
  SS.of_list
    [ "get"; "set"; "compare_and_set"; "fetch_and_add"; "exchange"; "incr"; "decr" ]

let cas_class_names = SS.of_list [ "compare_and_set"; "fetch_and_add"; "exchange"; "incr"; "decr" ]

(* Location identity of an atomic value expression, if recognisable:
   field access -> ".field", identifier -> its unqualified name. *)
let loc_id_of_expr e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_field (_, { txt; _ }) -> (
        match List.rev (Syntax.flatten_lid txt) with
        | f :: _ -> Some ("." ^ f)
        | [] -> None)
    | Pexp_ident { txt; _ } -> (
        match List.rev (Syntax.flatten_lid txt) with
        | n :: _ -> Some n
        | [] -> None)
    | Pexp_constraint (e, _) | Pexp_open (_, e) -> go e
    | _ -> None
  in
  go e

(* ------------------------------------------------------------------ *)
(* Pass A: which module prefixes are atomics modules in this file?     *)

let atomic_modules str =
  let mods = ref (SS.singleton "Atomic") in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              match Syntax.last2 (Syntax.flatten_lid txt) with
              | Some (m, fn) when SS.mem fn cas_class_names ->
                  mods := SS.add m !mods
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str;
  !mods

(* ------------------------------------------------------------------ *)
(* Pass B: collect every atomic op with location identity              *)

type op = {
  kind : op_kind;
  locid : string;
  op_loc : Location.t;
  op_allows : string list;
}

(* All atomic ops in an expression subtree, with the allow-tokens in
   scope. [base_allows] seeds the stack (binding-level waivers). *)
let ops_in ~mods ~base_allows root =
  let acc = ref [] in
  let rec walk allows e =
    let allows =
      match Syntax.attr_allows e.pexp_attributes with
      | [] -> allows
      | more -> more @ allows
    in
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        match Syntax.last2 (Syntax.flatten_lid txt) with
        | Some (m, fn) when SS.mem m mods && SS.mem fn atomic_op_names -> (
            match (op_kind_of_name fn, args) with
            | Some kind, (_, target) :: _ -> (
                match loc_id_of_expr target with
                | Some locid ->
                    acc :=
                      { kind; locid; op_loc = e.pexp_loc; op_allows = allows }
                      :: !acc
                | None -> ())
            | _ -> ())
        | _ -> ())
    | _ -> ());
    iter_children allows e
  and iter_children allows e =
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ e' -> walk allows e');
      }
    in
    Ast_iterator.default_iterator.expr it e
  in
  walk base_allows root;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Check-then-act: get of L guards a set of L with no interposing CAS  *)

let check_then_act ~mods ~base_allows body k =
  (* Variables bound to [Atomic.get L] results, per walk. *)
  let bound : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let get_locid e =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, tgt) :: _) -> (
        match Syntax.last2 (Syntax.flatten_lid txt) with
        | Some (m, "get") when SS.mem m mods -> loc_id_of_expr tgt
        | _ -> None)
    | _ -> None
  in
  (* Does [e] mention a read of [l]: a direct get, or a variable bound
     to one, anywhere in the subtree? *)
  let mentions_read l e =
    let hit = ref false in
    let is_read e' =
      (match get_locid e' with Some l' -> String.equal l l' | None -> false)
      ||
      match e'.pexp_desc with
      | Pexp_ident { txt = Longident.Lident n; _ } -> (
          match Hashtbl.find_opt bound n with
          | Some l' -> String.equal l l'
          | None -> false)
      | _ -> false
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e' ->
            if not !hit then
              if is_read e' then hit := true
              else Ast_iterator.default_iterator.expr it e');
      }
    in
    if is_read e then true
    else (
      it.expr it e;
      !hit)
  in
  let branch_ops branch =
    ops_in ~mods ~base_allows branch
  in
  let rec walk allows e =
    let allows =
      match Syntax.attr_allows e.pexp_attributes with
      | [] -> allows
      | more -> more @ allows
    in
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, get_locid vb.pvb_expr) with
            | Ppat_var { txt; _ }, Some l -> Hashtbl.replace bound txt l
            | _ -> ())
          vbs
    | Pexp_ifthenelse (cond, thn, els) ->
        let branches = thn :: Option.to_list els in
        List.iter
          (fun branch ->
            let ops = branch_ops branch in
            List.iter
              (fun o ->
                if
                  o.kind = Write
                  && mentions_read o.locid cond
                  && not
                       (List.exists
                          (fun o' ->
                            (o'.kind = Cas || o'.kind = Rmw)
                            && String.equal o'.locid o.locid)
                          ops)
                then k { o with op_allows = o.op_allows @ allows })
              ops)
          branches
    | Pexp_while (cond, body) ->
        let ops = branch_ops body in
        List.iter
          (fun o ->
            if
              o.kind = Write
              && mentions_read o.locid cond
              && not
                   (List.exists
                      (fun o' ->
                        (o'.kind = Cas || o'.kind = Rmw)
                        && String.equal o'.locid o.locid)
                      ops)
            then k { o with op_allows = o.op_allows @ allows })
          ops
    | _ -> ());
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ e' -> walk allows e');
      }
    in
    Ast_iterator.default_iterator.expr it e
  in
  walk base_allows body

(* ------------------------------------------------------------------ *)
(* Declarations that need [@th.atomic] roles                           *)

type decl = {
  decl_name : string;  (* locid form: ".field" or "name" *)
  decl_loc : Location.t;
  decl_role : string option;
  decl_allows : string list;
}

let is_atomic_type ~mods t =
  let rec go t =
    match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, args) -> (
        (match List.rev (Syntax.flatten_lid txt) with
        | "t" :: m :: _ -> SS.mem m mods
        | _ -> false)
        || List.exists go args)
    | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> go t
    | _ -> false
  in
  go t

let decls ~mods str =
  let out = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, tds) ->
          List.iter
            (fun td ->
              match td.ptype_kind with
              | Ptype_record labels ->
                  List.iter
                    (fun l ->
                      if is_atomic_type ~mods l.pld_type then
                        out :=
                          {
                            decl_name = "." ^ l.pld_name.txt;
                            decl_loc = l.pld_loc;
                            decl_role = Syntax.attr_atomic_role l.pld_attributes;
                            decl_allows = Syntax.attr_allows l.pld_attributes;
                          }
                          :: !out)
                    labels
              | _ -> ())
            tds
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> (
                  let rec is_make e =
                    match e.pexp_desc with
                    | Pexp_apply
                        ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, _) -> (
                        match Syntax.last2 (Syntax.flatten_lid f) with
                        | Some (m, "make") -> SS.mem m mods
                        | _ -> false)
                    | Pexp_constraint (e, _) | Pexp_open (_, e) -> is_make e
                    | _ -> false
                  in
                  match is_make vb.pvb_expr with
                  | true ->
                      out :=
                        {
                          decl_name = txt;
                          decl_loc = vb.pvb_loc;
                          decl_role =
                            (match Syntax.attr_atomic_role vb.pvb_attributes with
                            | Some r -> Some r
                            | None ->
                                Syntax.attr_atomic_role
                                  vb.pvb_expr.pexp_attributes);
                          decl_allows = Syntax.attr_allows vb.pvb_attributes;
                        }
                        :: !out
                  | false -> ())
              | _ -> ())
            vbs
      | _ -> ())
    str;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Scopes: the file's top level plus every nested module/functor body. *)
(* Location identity is per scope, so [Deque.Make]'s [.top] and a      *)
(* sibling module's [.top] never merge. A functor parameter whose      *)
(* module type names [Atomic_intf] is an atomics module inside that    *)
(* body even if the body never CASes (the broken-variant case).        *)

let mty_is_atomics (mty : module_type) =
  match mty.pmty_desc with
  | Pmty_ident { txt; _ } ->
      List.exists (String.equal "Atomic_intf") (Syntax.flatten_lid txt)
  | _ -> false

let file_attr_allows items =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute a -> Syntax.attr_allows [ a ]
      | _ -> [])
    items

let rec scopes ~extra_mods ~inherited items =
  let here_allows = inherited @ file_attr_allows items in
  (extra_mods, here_allows, items)
  :: List.concat_map
       (fun item ->
         match item.pstr_desc with
         | Pstr_module mb ->
             mod_scopes ~extra_mods ~inherited:here_allows mb.pmb_expr
         | Pstr_recmodule mbs ->
             List.concat_map
               (fun mb ->
                 mod_scopes ~extra_mods ~inherited:here_allows mb.pmb_expr)
               mbs
         | _ -> [])
       items

and mod_scopes ~extra_mods ~inherited me =
  match me.pmod_desc with
  | Pmod_structure s -> scopes ~extra_mods ~inherited s
  | Pmod_functor (param, body) ->
      let extra_mods =
        match param with
        | Named ({ txt = Some a; _ }, mty) when mty_is_atomics mty ->
            SS.add a extra_mods
        | _ -> extra_mods
      in
      mod_scopes ~extra_mods ~inherited body
  | Pmod_constraint (me, _) -> mod_scopes ~extra_mods ~inherited me
  | _ -> []

let roles str =
  List.concat_map
    (fun (extra_mods, _, items) ->
      let mods = SS.union extra_mods (atomic_modules items) in
      List.filter_map
        (fun d -> Option.map (fun r -> (d.decl_name, r)) d.decl_role)
        (decls ~mods items))
    (scopes ~extra_mods:SS.empty ~inherited:[] str)

(* ------------------------------------------------------------------ *)
(* Whole-module analysis                                               *)

(* Top-level defs with their binding-level allow tokens. *)
let top_defs str =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.map
            (fun vb -> (Syntax.attr_allows vb.pvb_attributes, vb.pvb_expr))
            vbs
      | _ -> [])
    str

let analyze_scope ~mods ~file_allows items =
  let str = items in
  let defs = top_defs str in
  let per_def_ops =
    List.map
      (fun (allows, body) ->
        (allows, ops_in ~mods ~base_allows:(allows @ file_allows) body, body))
      defs
  in
  let all_ops = List.concat_map (fun (_, ops, _) -> ops) per_def_ops in
  (* Per-location access classes across the whole module. *)
  let contended locid kinds =
    List.exists
      (fun o -> String.equal o.locid locid && List.mem o.kind kinds)
      all_ops
  in
  let role_of =
    let rs = roles str in
    fun locid ->
      match List.find_opt (fun (n, _) -> String.equal n locid) rs with
      | Some (_, r) -> Printf.sprintf " (role: %S)" r
      | None -> ""
  in
  let out = ref [] in
  let push loc rule message allows =
    out := { loc; rule; message; allows } :: !out
  in
  (* Missing roles. *)
  List.iter
    (fun d ->
      if d.decl_role = None then
        push d.decl_loc "atomic-missing-role"
          (Printf.sprintf
             "Atomic.t declaration %S has no [@th.atomic \"role\"] \
              annotation; state its protocol (who writes it, how it is \
              published, e.g. \"top pointer, stolen via CAS\")"
             d.decl_name)
          (d.decl_allows @ file_allows))
    (decls ~mods str);
  (* Plain writes to CAS/RMW-contended locations. *)
  List.iter
    (fun o ->
      if o.kind = Write && contended o.locid [ Cas; Rmw ] then
        push o.op_loc "atomic-plain-write"
          (Printf.sprintf
             "plain Atomic.set on %S%s, which is elsewhere updated by \
              CAS-class operations; a plain store can overwrite a concurrent \
              RMW — use compare_and_set, or waive with the protocol phase \
              that makes the store safe (e.g. workers quiesced)"
             o.locid (role_of o.locid))
          o.op_allows)
    all_ops;
  (* Plain reads of CAS-contended locations in defs with no CAS on them. *)
  List.iter
    (fun (_, ops, _) ->
      List.iter
        (fun o ->
          if
            o.kind = Read
            && contended o.locid [ Cas ]
            && not
                 (List.exists
                    (fun o' ->
                      o'.kind = Cas && String.equal o'.locid o.locid)
                    ops)
          then
            push o.op_loc "atomic-plain-read"
              (Printf.sprintf
                 "plain Atomic.get of %S%s, which other code claims via CAS; \
                  this definition performs no CAS on it, so the value is a \
                  racy snapshot — feed the read into a compare_and_set, or \
                  waive stating why staleness is acceptable"
                 o.locid (role_of o.locid))
              o.op_allows)
        ops)
    per_def_ops;
  (* Check-then-act windows. *)
  List.iter
    (fun (allows, _, body) ->
      check_then_act ~mods ~base_allows:(allows @ file_allows) body (fun o ->
          push o.op_loc "atomic-check-then-act"
            (Printf.sprintf
               "Atomic.get of %S%s guards this Atomic.set to the same \
                location with no interposing CAS: the location can change \
                between the read and the write — close the window with \
                compare_and_set"
               o.locid (role_of o.locid))
            o.op_allows))
    per_def_ops;
  List.rev !out

let analyze str =
  List.concat_map
    (fun (extra_mods, file_allows, items) ->
      let mods = SS.union extra_mods (atomic_modules items) in
      analyze_scope ~mods ~file_allows items)
    (scopes ~extra_mods:SS.empty ~inherited:[] str)
