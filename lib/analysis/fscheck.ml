(* File-system checks — the one rule family the AST passes cannot
   express. Lives in the library (rather than the CLI) so the pos/neg
   fixture trees under test/fixtures/missing_mli/ can exercise it. *)

let collect_files root =
  let rec go path acc =
    match Sys.is_directory path with
    | true ->
        let entries =
          List.sort String.compare (Array.to_list (Sys.readdir path))
        in
        List.fold_left
          (fun acc entry ->
            (* fixtures/ and golden/ trees hold deliberate rule
               violations and non-source data; analyzing them would
               report the analyzer's own test corpus. *)
            if
              List.mem entry [ "_build"; ".git"; "fixtures"; "golden" ]
            then acc
            else go (Filename.concat path entry) acc)
          acc entries
    | false ->
        if
          Filename.check_suffix path ".ml"
          || Filename.check_suffix path ".mli"
        then path :: acc
        else acc
    | exception Sys_error _ -> acc
  in
  go root []

(* Every library compilation unit must be sealed by an interface. Only
   applies to .ml files with a "lib" path segment — bin/, bench/ and
   test/ hold executables and test runners. *)
let missing_mli files =
  List.filter_map
    (fun path ->
      let in_lib =
        List.exists
          (String.equal "lib")
          (String.split_on_char '/' (Filename.dirname path))
        || String.equal (Filename.dirname path) "lib"
      in
      if
        in_lib
        && Filename.check_suffix path ".ml"
        && not (Sys.file_exists (path ^ "i"))
      then
        Some
          {
            Finding.file = path;
            line = 1;
            col = 0;
            rule = "missing-mli";
            severity = Finding.Error;
            message = "compilation unit has no sealing .mli interface";
          }
      else None)
    files
