(** Parsing front-end: one compilation unit, parsed with the compiler's
    own lexer and parser ([compiler-libs.common]), plus the comment
    stream the parser normally discards (needed for comment waivers). *)

type ast =
  | Structure of Parsetree.structure  (** a [.ml] implementation *)
  | Signature of Parsetree.signature  (** a [.mli] interface *)

type t = {
  file : string;  (** path as given; used verbatim in findings *)
  modname : string;  (** capitalized basename, e.g. ["Ps_gc"] *)
  library : string;
      (** dune library tag from the path: [lib/metrics/x.ml] is
          ["th_metrics"] (wrapper module [Th_metrics]), [bin/]/[bench/]
          files are ["bin"]/["bench"], everything else [""] *)
  ast : ast;
  comments : (string * Location.t) list;
      (** every comment with its location, in source order *)
}

val parse_string : file:string -> string -> (t, string) result
(** Parse [source] as the contents of [file] ([.mli] suffix selects the
    signature grammar). [Error msg] carries a located syntax-error
    description. *)

val parse_file : string -> (t, string) result

val line_waivers : t -> (int * string list) list
(** Comment waivers: for each [(* th-lint: allow r1 r2 ... *)] comment,
    the line it ends on and the rule names it allows. *)
