(** Embedded per-rule fixtures and the [--self-test] runner.

    Each case pairs one minimal positive snippet (must produce at least
    one finding of its rule) with one negative snippet (must produce
    none — typically the idiomatic fix, or prose/strings that fooled
    the old char-level linter). The same snippets are mirrored as files
    under [test/fixtures/analysis/] for the alcotest suite; embedding
    them here lets [lint.exe --self-test] run anywhere, including from
    [dune runtest] sandboxes, without filesystem dependencies. *)

type case = {
  rule : string;
  positive : string;  (** source that must trigger [rule] *)
  negative : string;  (** source that must not trigger [rule] *)
}

val cases : case list
(** One case per rule in {!Rule.all} order. *)

val fixture_basename : polarity:[ `Pos | `Neg ] -> string -> string
(** The on-disk fixture file name for a rule's snippet, e.g.
    [fixture_basename ~polarity:`Pos "hashtbl-order"] is
    ["hashtbl_order_pos.ml"]. *)

val run : unit -> (int, string list) result
(** Run every case plus a JSON round-trip check over the accumulated
    findings. [Ok n] is the number of checks passed; [Error msgs] lists
    every failed expectation. *)
