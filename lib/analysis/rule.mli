(** The rule registry.

    Every check the {!Engine} can perform is described here: its stable
    name (used in waivers, [--rules] filters and JSON output), family,
    default severity, one-line synopsis and a longer [--explain] text
    that says what the rule catches, why it matters for bit-exact
    reproduction, and how to waive it. *)

type family =
  | Determinism
  | Domain_safety
  | Atomic_protocol
  | Exception_flow
  | Hygiene

type t = {
  name : string;
  family : family;
  severity : Finding.severity;
  synopsis : string;  (** one line, shown in rule listings *)
  explain : string;  (** multi-line body for [--explain] *)
}

val all : t list
(** Every rule, in stable documentation order. *)

val names : string list

val find : string -> t option

val family_to_string : family -> string

val explain_text : t -> string
(** Rendered [--explain] block: header, synopsis, body, waiver recipe. *)
