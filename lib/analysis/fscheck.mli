(** File-system checks the AST passes cannot express. *)

val collect_files : string -> string list
(** All .ml/.mli files under a path (or the path itself when it is a
    file), skipping [_build], [.git], [fixtures] and [golden]
    directories. Unreadable directories contribute nothing. *)

val missing_mli : string list -> Finding.t list
(** A [missing-mli] finding for every .ml file under a [lib] path
    segment with no sibling .mli. *)
