(** The rule engine: one pass of syntactic rules per file, a
    cross-library effect analysis (mutable globals and escaping
    captures at domain-crossing sinks), and the atomic-protocol pass —
    all with uniform waiver handling.

    The escape-capture rule has a dedicated bless token: [@th.allow
    "domain_shared <justification>"] diverts the finding to [waived].
    The justification is mandatory — a bare ["domain_shared"] payload
    waives nothing.

    Waivers, from narrowest to widest scope:
    - [[@th.allow "rule"]] on an expression covers that subtree;
    - [[@@th.allow "rule"]] on a value binding covers the definition;
    - [[@@@th.allow "rule"]] anywhere in a file covers the whole file;
    - [(* th-lint: allow rule *)] covers findings on the comment's last
      line and the three lines below it (so the comment sits above the
      site, like the old char-level linter's waivers).

    A waived finding is still produced — it lands in [waived] instead of
    [findings] — so reports can show what was suppressed and tests can
    assert that waiving never invents or destroys findings. *)

type result = {
  findings : Finding.t list;  (** unwaived, sorted by {!Finding.compare} *)
  waived : Finding.t list;  (** suppressed by a waiver, same order *)
}

val parse_error_rule : string
(** Pseudo-rule name ["parse-error"] used for files the compiler's
    parser rejects. Not waivable and not disabled by [?rules]. *)

val analyze : ?rules:string list -> Source.t list -> result
(** Run the engine over already-parsed units. [?rules] restricts checks
    to the given rule names (default: all). The whole list is analyzed
    together: cross-module effect propagation for the
    [pmap-mutable-global] rule only sees modules in the list. *)

val analyze_files : ?rules:string list -> string list -> result
(** Parse then {!analyze}. A file that fails to parse contributes a
    [parse-error] finding carrying the parser's message. *)

val callgraph_dump : Source.t list -> string
(** Deterministic text dump of the cross-library call graph the
    domain-safety rules resolve over: every mutable global with its
    definition site, every definition's direct call edges and
    transitive effect summary. Exposed as [--callgraph-dump]. *)
