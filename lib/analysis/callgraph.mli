(** Cross-library call graph with mutable-state effect summaries.

    Keys carry the owning dune library (from {!Source.t.library}), so
    same-named modules in different libraries — the two [Report]s, the
    two [Engine]s — no longer collide, and effect summaries propagate
    to fixpoint across library boundaries: a [bench/] helper mutating a
    [lib/metrics] global through any number of hops is visible at the
    scheduler call site that captures the helper. *)

type key = { lib : string; modname : string; name : string }

val compare_key : key -> key -> int

val key_to_string : key -> string
(** ["th_metrics/Bench_log.state"]; the anonymous library prints ["?"]. *)

type t

val build : Source.t list -> t
(** Whole-project build: module landscape, mutable globals, per-def
    direct effects and call edges, then the transitive fixpoint. *)

val resolve :
  t -> cur_lib:string -> cur_mod:string -> Longident.t -> key list
(** Candidate definitions a reference may denote, honouring library
    wrappers ([Th_metrics.Bench_log.x]), same-library sibling modules,
    and unique unqualified names. Ambiguity resolves to []. *)

val global_info : t -> key -> (Location.t * bool) option
(** [(definition site, blessed)] for a mutable global. [blessed] means
    the definition carries [[@@th.allow "pmap-mutable-global"]]. *)

val global_site : t -> key -> string
(** ["file:line"] of a global's definition, or ["?"]. *)

val def_effects : t -> key -> key list
(** Mutable globals transitively reachable from a definition. *)

val is_def : t -> key -> bool
(** Is the key an analyzed (non-global) definition? *)

val def_attrs : t -> key -> Parsetree.attributes
(** Binding attributes of a definition ([[@th.raises]], [[@th.allow]]);
    [[]] for unknown keys. *)

val fold_defs :
  t ->
  init:'a ->
  f:('a -> key -> Parsetree.expression -> Parsetree.attributes -> 'a) ->
  'a
(** Fold over every definition in canonical ({!compare_key}) order —
    the deterministic iteration the raises fixpoint relies on. *)

val mutable_field : t -> lib:string -> modname:string -> string -> bool
(** Does [modname] (of [lib]) declare a record field of this name
    [mutable]? Used to classify captured record literals. *)

val is_mutable_init :
  t -> lib:string -> modname:string -> Parsetree.expression -> bool
(** Does the expression allocate mutable state ([ref], [Hashtbl.create],
    array literals, record literals with a known-[mutable] field, ...)?
    Classification is syntactic; plain record types without [mutable]
    fields and opaque constructor calls are not covered. *)

val is_domain_safe_init : Parsetree.expression -> bool
(** [Atomic.make]/[Mutex.create]/[Condition.create]/[Semaphore.make]:
    mutable but safe to share across domains by construction. *)

val dump : t -> string
(** Deterministic text dump (sorted by key): every mutable global with
    its definition site, then every def with direct call edges and its
    transitive effect summary. *)
