open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Runtime = Th_psgc.Runtime

type mode = In_memory | Out_of_core of { threshold : float } | Teraheap

(* Giraph's per-message and per-edge framework overhead (dispatch,
   combiner, synchronization) dwarfs the raw byte cost: roughly 200 ns
   per 8-byte message and ~5 ns per edge byte on the paper's hardware.
   Expressed as byte multipliers over the base compute cost model. *)
let msg_compute_factor = 24

let edge_compute_factor = 6

type algorithm = {
  name : string;
  supersteps : int;
  message_bytes : superstep:int -> total_edges:int -> int;
      (* raw per-edge sends, before combining *)
  combine_factor : float;
      (* message combiner reduction: stored volume = sends / factor *)
  active_fraction : superstep:int -> float;
  update_fraction : float;
}

type params = {
  partitions : int;
  vertices : int;
  avg_degree : int;
  edge_bytes : int;
}

type result = {
  supersteps_run : int;
  total_messages_bytes : int;
  graph : Graph.t;
}

(* Giraph's maxPartitionsInMemory policy: as many partitions' edges as fit
   in the old generation next to the vertex values and a message-store
   reserve. *)
let ooc_max_resident rt (params : params) =
  let heap = Th_psgc.Runtime.heap rt in
  let old = heap.Th_minijvm.H1_heap.old_capacity in
  let vertex_bytes = params.vertices * (Graph.vertex_value_bytes + 24) in
  let per_partition_edges =
    params.vertices * ((params.avg_degree * params.edge_bytes) + 56)
    / params.partitions
  in
  let budget = (old * 70 / 100) - vertex_bytes in
  max 2 (budget / max 1 per_partition_edges)


let edges_label = 0

(* Allocation sites for lifetime-profiling placement policies: labels
   alone cannot key a profile here because message-store chunks are
   labelled by superstep number (a fresh label every superstep), so the
   two logical sites get fixed ids — stable across runs and policies. *)
let edges_site = 0

let messages_site = 1

let run rt ~mode ?ooc_device ?(ooc_dr2 = Size.paper_gb 15) ~prng ~algo params =
  let teraheap = mode = Teraheap in
  let max_resident = ooc_max_resident rt params in
  let ooc =
    match mode with
    | Out_of_core { threshold } ->
        let device =
          match ooc_device with
          | Some d -> d
          | None -> invalid_arg "Engine.run: out-of-core needs a device"
        in
        Some (Ooc.create rt ~device ~dr2_bytes:ooc_dr2 ~threshold)
    | In_memory | Teraheap -> None
  in
  (* Input superstep: load and partition the graph; TeraHeap tags each
     vertex's out-edges map as it materialises (Figure 5, step 1), while
     the out-of-core scheduler starts offloading as soon as the partially
     loaded graph pressures the heap. *)
  let loaded = ref [] in
  let graph =
    Graph.load rt ~prng ~partitions:params.partitions
      ~vertices:params.vertices ~avg_degree:params.avg_degree
      ~edge_bytes:params.edge_bytes
      ~on_vertex_loaded:(fun v ->
        if teraheap then
          Runtime.h2_tag_root rt ~site:edges_site v.Graph.edges_obj
            ~label:edges_label)
      ~on_partition_loaded:(fun p ->
        loaded := p :: !loaded;
        match ooc with
        | Some o ->
            Ooc.note_processed o p;
            Ooc.enforce_budget_list o !loaded ~max_resident
        | None -> ())
      ()
  in
  (* End of the input superstep: advise moving the (now immutable) edges
     to H2 (Figure 5, step 2). *)
  if teraheap then Runtime.h2_move rt ~label:edges_label;
  (* Engine-level anchor for the message stores. *)
  let anchor = Runtime.alloc rt ~size:128 () in
  Runtime.add_root rt anchor;
  let incoming : Msg_store.t option ref = ref None in
  let total_msgs = ref 0 in
  let msg_offload_top = ref (Size.paper_gb 512) in
  if Sys.getenv_opt "TH_DEBUG_OOC" <> None then
    Printf.eprintf "[engine] graph loaded, old_used=%s\n%!"
      (Size.to_string (Runtime.heap rt).Th_minijvm.H1_heap.old_used);
  let superstep_mark ~ending step =
    let clock = Runtime.clock rt in
    match Clock.tracer clock with
    | None -> ()
    | Some tr ->
        let emit =
          if ending then Th_trace.Recorder.span_end
          else Th_trace.Recorder.span_begin
        in
        emit tr ~ts:(Clock.now_ns clock) ~cat:"giraph" ~name:"superstep"
          ~args:[ ("step", Th_trace.Event.Int step) ]
          ()
  in
  for step = 1 to algo.supersteps do
    superstep_mark ~ending:false step;
    if Sys.getenv_opt "TH_DEBUG_OOC" <> None then
      Printf.eprintf "[engine] superstep %d old_used=%s\n%!" step
        (Size.to_string (Runtime.heap rt).Th_minijvm.H1_heap.old_used);
    (* Figure 5 step 4: at the beginning of each superstep, advise moving
       the previous superstep's (now immutable) messages. *)
    if teraheap && step >= 2 then Runtime.h2_move rt ~label:(step - 1);
    let current = Msg_store.create rt ~anchor ~superstep:step in
    (* Consume incoming messages from the previous superstep; offloaded
       stores are streamed back chunk by chunk. *)
    (match !incoming with
    | Some store ->
        (match ooc with
        | Some o ->
            Msg_store.consume_streamed rt store ~cache:(Ooc.page_cache o)
        | None -> Msg_store.consume rt store);
        (* Per-message processing overhead beyond the raw byte reads. *)
        Runtime.compute rt ~bytes:(store.Msg_store.bytes * msg_compute_factor)
    | None -> ());
    let volume =
      algo.message_bytes ~superstep:step ~total_edges:graph.Graph.total_edges
    in
    total_msgs := !total_msgs + volume;
    let frac = algo.active_fraction ~superstep:step in
    Array.iter
      (fun (p : Graph.partition) ->
        (match ooc with
        | Some o -> Ooc.ensure_resident o graph p
        | None -> ());
        let nv = Array.length p.Graph.vertices in
        let active = int_of_float (ceil (frac *. float_of_int nv)) in
        let active = max 0 (min nv active) in
        let routed = ref 0 in
        for i = 0 to active - 1 do
          let v = p.Graph.vertices.(i) in
          (* Route messages over the out edges. *)
          Runtime.read_obj rt v.Graph.edges_obj;
          routed := !routed + v.Graph.edges_obj.Obj_.size;
          if
            algo.update_fraction >= 1.0
            || Prng.float prng 1.0 < algo.update_fraction
          then Runtime.update_obj rt v.Graph.vobj
        done;
        Runtime.compute rt ~bytes:(!routed * edge_compute_factor);
        (* This partition's share of the superstep's messages; the
           combiner collapses same-target messages before they are
           stored. *)
        Msg_store.append rt current
          ~bytes:
            (int_of_float
               (float_of_int volume /. max 1.0 algo.combine_factor)
            / params.partitions)
          ~on_chunk_created:(fun c ->
            if teraheap then
              Runtime.h2_tag_root rt ~site:messages_site c ~label:step);
        (match ooc with
        | Some o ->
            Ooc.note_processed o p;
            Ooc.enforce_budget o graph ~max_resident;
            (* Giraph's out-of-core message store spills incrementally
               while the superstep produces messages. *)
            if
              Th_minijvm.H1_heap.old_occupancy (Runtime.heap rt)
              > (match mode with
                | Out_of_core { threshold } -> threshold
                | In_memory | Teraheap -> 1.0)
            then begin
              let written =
                Msg_store.spill rt current ~cache:(Ooc.page_cache o)
                  ~offset:!msg_offload_top ~keep_chunks:2
              in
              msg_offload_top := !msg_offload_top + written
            end
        | None -> ()))
      graph.Graph.partitions;
    (* Synchronisation barrier: the previous incoming store is fully
       consumed and dropped; the current store becomes immutable and will
       be the next superstep's incoming store. *)
    (match !incoming with
    | Some store -> Msg_store.drop rt store ~anchor
    | None -> ());
    (match ooc with
    | Some o ->
        (* The out-of-core scheduler spills the sealed message store at
           the barrier; it is streamed back during the next superstep. *)
        let written =
          Msg_store.offload rt current ~cache:(Ooc.page_cache o)
            ~offset:!msg_offload_top
        in
        msg_offload_top := !msg_offload_top + written
    | None -> ());
    incoming := Some current;
    superstep_mark ~ending:true step
  done;
  (match !incoming with
  | Some store -> Msg_store.drop rt store ~anchor
  | None -> ());
  Runtime.remove_root rt anchor;
  {
    supersteps_run = algo.supersteps;
    total_messages_bytes = !total_msgs;
    graph;
  }
