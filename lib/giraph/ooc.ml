open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Runtime = Th_psgc.Runtime
module H1_heap = Th_minijvm.H1_heap
module Page_cache = Th_device.Page_cache

type t = {
  rt : Runtime.t;
  cache : Page_cache.t;
  threshold : float;
  last_used : (int, int) Hashtbl.t;  (* pid -> tick *)
  offsets : (int, int) Hashtbl.t;  (* pid -> device offset of its edges *)
  mutable tick : int;
  mutable offheap_top : int;
}

let create rt ~device ~dr2_bytes ~threshold =
  {
    rt;
    cache = Page_cache.create ~capacity_bytes:dr2_bytes (Runtime.clock rt) device;
    threshold;
    last_used = Hashtbl.create 32;
    offsets = Hashtbl.create 32;
    tick = 0;
    offheap_top = 0;
  }

let page_cache t = t.cache

let note_processed t (p : Graph.partition) =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.last_used p.Graph.pid t.tick

let occupancy t = H1_heap.old_occupancy (Runtime.heap t.rt)

let offload_partition t (p : Graph.partition) =
  let bytes = ref 0 in
  Array.iter
    (fun (v : Graph.vertex) ->
      if not (Obj_.is_freed v.Graph.edges_obj) then begin
        bytes := !bytes + Obj_.total_size v.Graph.edges_obj;
        (* Already serialized: drop the heap array; the bytes go to the
           device. *)
        Runtime.unlink_ref t.rt v.Graph.vobj v.Graph.edges_obj
      end)
    p.Graph.vertices;
  if !bytes > 0 then begin
    (* Edges are immutable after loading: the first offload writes them to
       the device; later offloads of a reloaded partition just drop the
       heap copy. *)
    (match Hashtbl.find_opt t.offsets p.Graph.pid with
    | Some _ -> ()
    | None ->
        Hashtbl.replace t.offsets p.Graph.pid t.offheap_top;
        Page_cache.access t.cache ~cat:Clock.Serde_io ~write:true
          ~offset:t.offheap_top ~len:!bytes;
        t.offheap_top <- t.offheap_top + !bytes);
    p.Graph.offloaded_edge_bytes <- !bytes
  end

let lru_candidate t candidates =
  let best = ref None in
  List.iter
    (fun (p : Graph.partition) ->
      if p.Graph.offloaded_edge_bytes = 0 then begin
        let used =
          match Hashtbl.find_opt t.last_used p.Graph.pid with
          | Some tick -> tick
          | None -> -1
        in
        match !best with
        | Some (_, best_used) when best_used <= used -> ()
        | _ -> best := Some (p, used)
      end)
    candidates;
  Option.map fst !best

let maybe_offload_list t candidates =
  (* Offloading unlinks heap objects, but the space only comes back at
     the next collection — so offload against a byte budget derived from
     the pressure excess rather than re-reading occupancy. *)
  let heap = Th_psgc.Runtime.heap t.rt in
  let excess =
    (occupancy t -. t.threshold)
    *. float_of_int heap.H1_heap.old_capacity
  in
  if Sys.getenv_opt "TH_DEBUG_OOC" <> None then
    Printf.eprintf "[ooc] occ=%.2f excess=%s\n%!" (occupancy t)
      (Th_sim.Size.to_string (max 0 (int_of_float excess)));
  if excess > 0.0 then begin
    let freed = ref 0 in
    let continue_ = ref true in
    while !continue_ && float_of_int !freed < excess do
      match lru_candidate t candidates with
      | Some p ->
          let before = p.Graph.offloaded_edge_bytes in
          offload_partition t p;
          if p.Graph.offloaded_edge_bytes > before then
            freed := !freed + p.Graph.offloaded_edge_bytes
          else continue_ := false
      | None -> continue_ := false
    done
  end

let maybe_offload t (g : Graph.t) =
  maybe_offload_list t (Array.to_list g.Graph.partitions)

let enforce_budget_list t candidates ~max_resident =
  let resident =
    List.length
      (List.filter
         (fun (p : Graph.partition) -> p.Graph.offloaded_edge_bytes = 0)
         candidates)
  in
  let excess = ref (resident - max_resident) in
  while !excess > 0 do
    (match lru_candidate t candidates with
    | Some p -> offload_partition t p
    | None -> excess := 0);
    decr excess
  done

let enforce_budget t (g : Graph.t) ~max_resident =
  enforce_budget_list t (Array.to_list g.Graph.partitions) ~max_resident

(* Re-reading a partition's edges from the original input split (the
   recovery path when the off-heap copy is unreadable) costs compute
   proportional to the edge payload: parse and partition again. *)
let reread_compute_factor = 3.0

let ensure_resident t (g : Graph.t) (p : Graph.partition) =
  if p.Graph.offloaded_edge_bytes > 0 then begin
    let offset =
      match Hashtbl.find_opt t.offsets p.Graph.pid with
      | Some off -> off
      | None -> 0
    in
    (match
       Page_cache.access t.cache ~checked:true ~cat:Clock.Serde_io
         ~write:false ~offset ~len:p.Graph.offloaded_edge_bytes
     with
    | () -> ()
    | exception Th_device.Io_retry.Io_error _ ->
        (* The off-heap copy stayed unreadable past the retry budget:
           rebuild the partition from the input graph instead of failing
           the superstep. The allocation loop below re-creates the edge
           arrays either way. *)
        (match Th_device.Device.faults (Page_cache.device t.cache) with
        | Some f -> Th_sim.Fault.note_recompute f
        | None -> ());
        (let clock = Runtime.clock t.rt in
         match Clock.tracer clock with
         | None -> ()
         | Some tr ->
             Th_trace.Recorder.instant tr ~ts:(Clock.now_ns clock) ~cat:"fault"
               ~name:"recompute"
               ~args:[ ("pid", Th_trace.Event.Int p.Graph.pid) ]
               ());
        Runtime.compute t.rt
          ~bytes:
            (int_of_float
               (reread_compute_factor
               *. float_of_int p.Graph.offloaded_edge_bytes)));
    Array.iter
      (fun (v : Graph.vertex) ->
        let size = (v.Graph.degree * g.Graph.edge_bytes) + 32 in
        let fresh = Runtime.alloc t.rt ~kind:Obj_.Array_data ~size () in
        Runtime.write_ref t.rt v.Graph.vobj fresh;
        v.Graph.edges_obj <- fresh)
      p.Graph.vertices;
    p.Graph.offloaded_edge_bytes <- 0
  end

let offloaded_partitions t (g : Graph.t) =
  ignore t;
  Array.fold_left
    (fun n (p : Graph.partition) ->
      if p.Graph.offloaded_edge_bytes > 0 then n + 1 else n)
    0 g.Graph.partitions
