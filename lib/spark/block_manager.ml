open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Runtime = Th_psgc.Runtime
module H1_heap = Th_minijvm.H1_heap
module Page_cache = Th_device.Page_cache
module Serializer = Th_serde.Serializer

type entry_kind = On_heap | Off_heap | In_teraheap

type entry =
  | E_on_heap of Obj_.t
  | E_off_heap of { offset : int; ser : Serializer.serialized }
  | E_teraheap of Obj_.t

type t = {
  ctx : Context.t;
  table : (int * int, entry) Hashtbl.t;
  root : Obj_.t;
  onheap_budget : int;
  mutable onheap_bytes : int;
  mutable offheap_top : int;
  mutable held : Obj_.t list;
      (* deserialized groups pinned until the stage completes *)
}

let create (ctx : Context.t) =
  let rt = ctx.Context.rt in
  let root = Runtime.alloc rt ~size:512 () in
  Runtime.add_root rt root;
  let heap = Runtime.heap rt in
  let heap_bytes = H1_heap.heap_bytes heap in
  let onheap_budget =
    match ctx.Context.mode with
    | Context.Memory_and_ser_offheap { onheap_fraction } ->
        (* The storage pool is bounded both by the configured fraction of
           the heap (50 %, §6) and by what fits in the old generation
           alongside execution memory — Spark's unified memory manager
           evicts blocks to the serialized tier beyond that. *)
        min
          (int_of_float (onheap_fraction *. float_of_int heap_bytes))
          (heap.H1_heap.old_capacity * 50 / 100)
    | Context.Memory_only | Context.Teraheap_cache -> heap_bytes
  in
  {
    ctx;
    table = Hashtbl.create 256;
    root;
    onheap_budget;
    onheap_bytes = 0;
    offheap_top = 0;
    held = [];
  }

let root_object t = t.root

let block_instant t ~cat ~name ~rdd_id ~pidx =
  let clock = Runtime.clock t.ctx.Context.rt in
  match Clock.tracer clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.instant tr ~ts:(Clock.now_ns clock) ~cat ~name
        ~args:
          [
            ("rdd", Th_trace.Event.Int rdd_id);
            ("pidx", Th_trace.Event.Int pidx);
          ]
        ()

let group_bytes root =
  let total = ref (Obj_.total_size root) in
  Obj_.iter_refs (fun o -> total := !total + Obj_.total_size o) root;
  !total

let put t ~rdd_id ~pidx group =
  let rt = t.ctx.Context.rt in
  let key = (rdd_id, pidx) in
  (match Hashtbl.find_opt t.table key with
  | Some _ -> invalid_arg "Block_manager.put: block already cached"
  | None -> ());
  block_instant t ~cat:"spark" ~name:"block_put" ~rdd_id ~pidx;
  let entry =
    match t.ctx.Context.mode with
    | Context.Memory_only ->
        Runtime.write_ref rt t.root group;
        t.onheap_bytes <- t.onheap_bytes + group_bytes group;
        E_on_heap group
    | Context.Teraheap_cache ->
        (* Figure 4: the partition descriptor is the root key-object; the
           label is the RDD id, and the move advice is issued at once
           since cached RDD data is immutable. *)
        Runtime.write_ref rt t.root group;
        Runtime.h2_tag_root rt group ~label:rdd_id;
        Runtime.h2_move rt ~label:rdd_id;
        E_teraheap group
    | Context.Memory_and_ser_offheap _ ->
        let bytes = group_bytes group in
        if t.onheap_bytes + bytes <= t.onheap_budget then begin
          Runtime.write_ref rt t.root group;
          t.onheap_bytes <- t.onheap_bytes + bytes;
          E_on_heap group
        end
        else begin
          match Serializer.serialize rt group with
          | ser ->
              let cache = Option.get t.ctx.Context.offheap in
              let offset = t.offheap_top in
              t.offheap_top <- t.offheap_top + ser.Serializer.bytes;
              Page_cache.access cache ~cat:Clock.Serde_io ~write:true ~offset
                ~len:ser.Serializer.bytes;
              (* The deserialized heap copy is dropped: it becomes garbage
                 for the next collection. *)
              E_off_heap { offset; ser }
          | exception Serializer.Not_serializable _ ->
              (* A group that reaches JVM metadata cannot go off-heap.
                 Keep the partition on the heap past the budget rather
                 than failing the task: caching is an optimisation, and a
                 dropped block would be recomputed from lineage anyway. *)
              block_instant t ~cat:"spark" ~name:"block_put_unserializable"
                ~rdd_id ~pidx;
              Runtime.write_ref rt t.root group;
              t.onheap_bytes <- t.onheap_bytes + bytes;
              E_on_heap group
        end
  in
  Hashtbl.replace t.table key entry

(* Recomputing a lost partition from its lineage re-runs the narrow
   transformations that produced it; modelled as compute time proportional
   to the partition's payload, a few times the cost of scanning it once. *)
let recompute_compute_factor = 3.0

let get ?(hold = false) t ~rdd_id ~pidx ~consume =
  let rt = t.ctx.Context.rt in
  block_instant t ~cat:"spark" ~name:"block_get" ~rdd_id ~pidx;
  match Hashtbl.find t.table (rdd_id, pidx) with
  | E_on_heap group | E_teraheap group -> consume group
  | E_off_heap { offset; ser } ->
      let cache = Option.get t.ctx.Context.offheap in
      let group =
        match
          Page_cache.access cache ~checked:true ~cat:Clock.Serde_io
            ~write:false ~offset ~len:ser.Serializer.bytes
        with
        | () -> Serializer.deserialize rt ser
        | exception Th_device.Io_retry.Io_error _ ->
            (* The serialized copy is unreadable past the retry budget:
               recompute the partition from its lineage instead of
               failing the task (RDD fault tolerance). *)
            (match Th_device.Device.faults (Page_cache.device cache) with
            | Some f -> Th_sim.Fault.note_recompute f
            | None -> ());
            block_instant t ~cat:"fault" ~name:"recompute" ~rdd_id ~pidx;
            Runtime.compute rt
              ~bytes:
                (int_of_float
                   (recompute_compute_factor
                   *. float_of_int ser.Serializer.bytes));
            Serializer.rebuild rt ser
      in
      consume group;
      if hold then
        (* Downstream operators keep the deserialized iterator's data
           alive until the stage ends. *)
        t.held <- group :: t.held
      else
        (* Unpinned and not linked anywhere: reclaimed at the next GC. *)
        Runtime.remove_root rt group

let release_held t =
  let rt = t.ctx.Context.rt in
  List.iter (fun g -> Runtime.remove_root rt g) t.held;
  t.held <- []

let entry_kind t ~rdd_id ~pidx =
  match Hashtbl.find_opt t.table (rdd_id, pidx) with
  | Some (E_on_heap _) -> Some On_heap
  | Some (E_off_heap _) -> Some Off_heap
  | Some (E_teraheap _) -> Some In_teraheap
  | None -> None

let unpersist t ~rdd_id =
  let rt = t.ctx.Context.rt in
  (* th-lint: allow hashtbl-order — the fold only collects; the sort
     below pins partition order before any unlink runs. *)
  let doomed =
    Hashtbl.fold
      (fun ((rid, _) as key) entry acc ->
        if rid = rdd_id then (key, entry) :: acc else acc)
      t.table []
    |> List.sort (fun (((_, pa) : int * int), _) ((_, pb), _) ->
           Int.compare pa pb)
  in
  List.iter
    (fun (key, entry) ->
      (match entry with
      | E_on_heap group ->
          Runtime.unlink_ref rt t.root group;
          t.onheap_bytes <- t.onheap_bytes - group_bytes group
      | E_teraheap group -> Runtime.unlink_ref rt t.root group
      | E_off_heap _ -> ());
      Hashtbl.remove t.table key)
    doomed

let onheap_used t = t.onheap_bytes

let cached_blocks t = Hashtbl.length t.table
