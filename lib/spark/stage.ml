open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Runtime = Th_psgc.Runtime
module Serializer = Th_serde.Serializer

let garbage_elem_bytes = Size.kib 4

let alloc_garbage ctx ~bytes =
  let rt = Context.runtime ctx in
  let n = bytes / garbage_elem_bytes in
  for _ = 1 to n do
    ignore (Runtime.alloc rt ~kind:Obj_.Temp ~size:garbage_elem_bytes ())
  done

let shuffle_chunk_bytes = Size.kib 64

let run ctx ?(shuffle_bytes = 0) ?(transient_bytes = 0)
    ?(thread_buffer_bytes = Size.kib 128) ~work () =
  let rt = Context.runtime ctx in
  let clock = Runtime.clock rt in
  (match Clock.tracer clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.span_begin tr ~ts:(Clock.now_ns clock) ~cat:"spark"
        ~name:"stage" ());
  let threads = (Runtime.costs rt).Costs.mutator_threads in
  let buffers =
    List.init threads (fun _ ->
        let b = Runtime.alloc rt ~size:thread_buffer_bytes () in
        Runtime.add_root rt b;
        b)
  in
  (* Map-output buffers fill up over the stage and stay live until it
     completes — under frequent minor GCs most of these bytes get
     promoted, which is the old-generation churn behind Spark's frequent
     full collections (§7.1). Spark's execution-memory manager spills to
     local disk beyond its share of the heap, so the pinned portion is
     capped; the spilled remainder is immediate garbage. *)
  let heap_bytes = Th_minijvm.H1_heap.heap_bytes (Runtime.heap rt) in
  let pinned_bytes = min shuffle_bytes (heap_bytes * 5 / 100) in
  let shuffle_buffers = ref [] in
  let n_chunks = pinned_bytes / shuffle_chunk_bytes in
  for _ = 1 to n_chunks do
    let b = Runtime.alloc rt ~size:shuffle_chunk_bytes () in
    Runtime.add_root rt b;
    shuffle_buffers := b :: !shuffle_buffers
  done;
  if shuffle_bytes > pinned_bytes then
    alloc_garbage ctx ~bytes:(shuffle_bytes - pinned_bytes);
  work ();
  if shuffle_bytes > 0 then begin
    (* Map-side serialize plus reduce-side deserialize. *)
    let objects = max 1 (shuffle_bytes / 512) in
    Serializer.charge_stream rt ~bytes:shuffle_bytes ~objects;
    Serializer.charge_stream rt ~bytes:shuffle_bytes ~objects
  end;
  if transient_bytes > 0 then alloc_garbage ctx ~bytes:transient_bytes;
  List.iter (fun b -> Runtime.remove_root rt b) !shuffle_buffers;
  List.iter (fun b -> Runtime.remove_root rt b) buffers;
  match Clock.tracer clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.span_end tr ~ts:(Clock.now_ns clock) ~cat:"spark"
        ~name:"stage"
        ~args:
          [
            ("shuffle_bytes", Th_trace.Event.Int shuffle_bytes);
            ("transient_bytes", Th_trace.Event.Int transient_bytes);
          ]
        ()
