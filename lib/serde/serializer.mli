(** Kryo-like serialization cost model (§2, "Object Serialization").

    Serialization walks the transitive closure of a root object and
    produces a byte stream; deserialization re-allocates the objects on
    the managed heap. Both directions:

    - charge per-object and per-byte costs to S/D time, parallelised over
      the mutator threads (the paper observes S/D parallelising with more
      executor threads, §7.6);
    - allocate short-lived temporary buffers on the heap, the extra GC
      pressure the paper attributes to S/D;
    - skip transient fields (modelled as a fixed fraction of payload) and
      refuse objects whose closure contains JVM metadata, mirroring the
      "only serializable objects" restriction. *)

exception Not_serializable of string

type serialized = {
  bytes : int;  (** size of the byte stream *)
  objects : int;  (** objects in the serialized closure *)
  elem_sizes : int list;  (** payload sizes, used to rebuild the group *)
}

val serialized_fraction : float
(** Stream bytes per heap byte (serialized form drops headers/padding). *)

val transient_fraction : float
(** Share of payload held in transient fields, skipped by the stream. *)

val serialize :
  Th_psgc.Runtime.t -> Th_objmodel.Heap_object.t -> serialized
(** Serialize the closure rooted at the given object. Charges S/D time and
    allocates temporary buffers. Raises {!Not_serializable} if the closure
    contains JVM metadata. *)

val deserialize :
  Th_psgc.Runtime.t -> serialized -> Th_objmodel.Heap_object.t
(** Rebuild the object group on the heap: allocates a fresh root and
    elements (the memory pressure of moving off-heap data back on-heap),
    charges S/D time, and returns the new root. The root is returned
    {e pinned} (registered as a GC root); the caller must call
    {!Th_psgc.Runtime.remove_root} when done with the group. *)

val rebuild :
  Th_psgc.Runtime.t -> serialized -> Th_objmodel.Heap_object.t
(** Re-materialise the group without charging S/D time: the lineage
    recomputation path, taken when reading the serialized copy failed
    past its retry budget. Allocations (and their GC pressure) are the
    same as {!deserialize}; the caller charges the recomputation's
    compute cost. Returned pinned, like {!deserialize}. *)

val charge_stream :
  Th_psgc.Runtime.t -> bytes:int -> objects:int -> unit
(** Charge S/D cost for a stream without materialising objects (used for
    the shuffle path, where the receive side is modelled separately). *)
