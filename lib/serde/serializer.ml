open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Runtime = Th_psgc.Runtime

exception Not_serializable of string

type serialized = { bytes : int; objects : int; elem_sizes : int list }

let serialized_fraction = 0.7

let transient_fraction = 0.05

(* Temporary buffers are allocated in 64 KiB chunks, as Kryo's output
   buffers are; each chunk is one short-lived heap object. *)
let temp_chunk_bytes = Size.kib 64

let charge_sd rt ~bytes ~objects =
  let costs = Runtime.costs rt in
  let ns =
    (float_of_int bytes *. costs.Costs.serde_per_byte_ns)
    +. (float_of_int objects *. costs.Costs.serde_per_obj_ns)
  in
  Clock.advance (Runtime.clock rt) Clock.Serde_io
    (Costs.parallel costs ~threads:costs.Costs.mutator_threads ns)

let alloc_temps rt ~bytes =
  let costs = Runtime.costs rt in
  let temp_bytes =
    int_of_float (float_of_int bytes *. costs.Costs.serde_temp_bytes_per_byte)
  in
  let chunks = temp_bytes / temp_chunk_bytes in
  for _ = 1 to chunks do
    (* Unreachable immediately: pure GC pressure. *)
    ignore (Runtime.alloc rt ~kind:Obj_.Temp ~size:temp_chunk_bytes ())
  done;
  let rem = temp_bytes mod temp_chunk_bytes in
  if rem > 0 then ignore (Runtime.alloc rt ~kind:Obj_.Temp ~size:rem ())

let closure_of root =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let stack = Stack.create () in
  Stack.push root stack;
  while not (Stack.is_empty stack) do
    let o = Stack.pop stack in
    if not (Hashtbl.mem seen o.Obj_.id) then begin
      Hashtbl.replace seen o.Obj_.id ();
      (match o.Obj_.kind with
      | Obj_.Jvm_metadata ->
          raise
            (Not_serializable
               (Printf.sprintf "object #%d references JVM metadata" o.Obj_.id))
      | Obj_.Weak_reference | Obj_.Data | Obj_.Array_data | Obj_.Temp -> ());
      acc := o :: !acc;
      Obj_.iter_refs (fun c -> Stack.push c stack) o
    end
  done;
  (* The root was visited first; keep it at the head of the list. *)
  List.rev !acc
[@@th.raises "Not_serializable"]

let serialize rt root =
  let objs = closure_of root in
  let payload =
    List.fold_left (fun acc (o : Obj_.t) -> acc + o.Obj_.size) 0 objs
  in
  let effective =
    float_of_int payload *. (1.0 -. transient_fraction) *. serialized_fraction
  in
  let bytes = int_of_float effective in
  let objects = List.length objs in
  charge_sd rt ~bytes:payload ~objects;
  alloc_temps rt ~bytes;
  {
    bytes;
    objects;
    elem_sizes = List.map (fun (o : Obj_.t) -> o.Obj_.size) objs;
  }
[@@th.raises "Not_serializable"]

(* Allocate the group's objects back on the heap; shared by the normal
   deserialization path and by lineage-style recomputation (which charges
   compute time instead of S/D time). *)
let materialize rt s =
  match s.elem_sizes with
  | [] -> invalid_arg "Serializer.deserialize: empty group"
  | root_size :: elems ->
      let root = Runtime.alloc rt ~size:root_size () in
      (* Pin the group while it is under construction: a GC triggered by
         an element allocation must not reclaim it. The caller unpins. *)
      Runtime.add_root rt root;
      List.iter
        (fun size ->
          let o = Runtime.alloc rt ~size () in
          Runtime.write_ref rt root o)
        elems;
      root

let deserialize rt s =
  charge_sd rt ~bytes:s.bytes ~objects:s.objects;
  alloc_temps rt ~bytes:s.bytes;
  materialize rt s

let rebuild rt s = materialize rt s

let charge_stream rt ~bytes ~objects =
  charge_sd rt ~bytes ~objects;
  alloc_temps rt ~bytes
