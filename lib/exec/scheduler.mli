(** Work-stealing Domain scheduler for experiment-cell batches.

    [jobs - 1] worker domains plus the submitting domain execute a
    batch of independent {!Cell.t}s. At submission the batch is planned
    longest-expected-first from the cells' cost hints, packed into
    chunks (cheap cells share a chunk, expensive cells go alone) and
    dealt LPT-greedily onto per-domain Chase-Lev-style deques
    ({!Deque}); an idle domain scans the other domains in ring order
    and steals from the top of the first non-empty deque.

    Results always come back in submission order, so anything rendered
    from them serially is byte-identical for every jobs value; only the
    wall-clock numbers in {!batch_stats} depend on scheduling. *)

type t

type batch_stats = {
  cells : int;
  chunks : int;  (** placement/steal units the batch was packed into *)
  steals : int;  (** chunks executed by a domain they were not dealt to *)
  steal_scans : int;  (** idle victim-scan sweeps, successful or not *)
  cell_wall_s : float array;
      (** per-cell wall seconds, submission order: the serial-equivalent
          cost of the batch is the sum of this array *)
}

val create : ?oversubscribe:int -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs = 1]
    spawns none and {!run_cells} degenerates to an in-order loop).
    [oversubscribe] (default 4) sets the chunking target of
    [oversubscribe * jobs] chunks per batch when all cells are cheap.
    Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run_cells : ?pin:(int -> int) -> ?chunk_max:int -> t -> 'a Cell.t list -> 'a list
(** [run_cells t cells] executes the batch and returns results in
    submission order. An exception raised by a cell is re-raised here,
    with its backtrace, after the whole batch has drained (the first
    failing cell in submission order wins). Must be called from the
    domain that created [t]; batches do not nest.

    [chunk_max] caps the number of cells per chunk (default 16).
    [pin] overrides the LPT deal for tests: it maps a chunk index (in
    descending-cost order) to the domain the chunk is seeded on —
    [Invalid_argument] if outside [0, jobs). *)

val run_thunks : t -> (unit -> 'a) list -> 'a list
(** [run_cells] over {!Cell.of_thunk} — cost-blind compatibility path. *)

val last_batch : t -> batch_stats
(** Stats of the most recent batch (zeros before the first). The stats
    are scheduling-dependent: report them to stderr or JSON, never to
    the deterministic stdout. *)

val shutdown : t -> unit
(** Signal the workers to exit and join them. Required before process
    exit (the OCaml runtime waits for unjoined domains); idempotent. *)

val with_scheduler : jobs:int -> (t -> 'a) -> 'a
(** [with_scheduler ~jobs f] runs [f] and shuts down on any exit. *)
