(* Work-stealing Domain scheduler for experiment-cell batches.

   A batch of independent cells is planned once at submission:
   - cells are ordered longest-expected-first by their cost hints;
   - adjacent cells are packed into chunks (the steal/placement unit)
     whose target cost is [total / (oversubscribe * jobs)], so cheap
     cells amortize deque traffic while expensive cells stay singleton;
   - chunks are dealt to per-domain Chase-Lev-style deques (Deque) with
     an LPT greedy: each chunk, in descending cost order, goes to the
     currently least-loaded domain (deterministic index tie-break).

   During the batch, every domain pops its own deque from the bottom
   (descending expected cost — deques are seeded in ascending order so
   LIFO pops run the big chunks first) and, when empty, scans the other
   domains in ring order starting after itself and steals from the top.
   The batch ends when the remaining-cell counter hits zero.

   Determinism: cells never share state and results land in per-cell
   slots, so the result list (and anything rendered from it, in
   submission order) is byte-identical for every jobs value; only the
   wall-clock stats depend on scheduling. Workers are quiesced between
   batches (the [idle] handshake), so deques and the chunk runner are
   published race-free by the batch-start mutex. *)

type batch_stats = {
  cells : int;
  chunks : int;
  steals : int;
  steal_scans : int;
  cell_wall_s : float array;
}

let empty_stats =
  { cells = 0; chunks = 0; steals = 0; steal_scans = 0; cell_wall_s = [||] }

type t = {
  jobs : int;
  oversubscribe : int;  (* target chunks per domain when all cells are cheap *)
  mutex : Mutex.t;
  start : Condition.t;  (* batch-start broadcast *)
  quiesced : Condition.t;  (* worker-parked broadcast *)
  mutable epoch : int;
  mutable idle : int;  (* workers parked waiting for the next epoch *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  (* Per-batch state; written by the submitter while quiesced, read by
     workers after the batch-start handshake. *)
  mutable deques : Deque.t array;
  mutable run_chunk : int -> unit;
  remaining : int Atomic.t;
      [@th.atomic
        "outstanding cells this batch; decremented via RMW by every \
         executing domain, plain-set only while workers are quiesced"]
  steals : int Atomic.t;
      [@th.atomic
        "successful steals this batch; bumped via RMW by thieves, \
         plain-set only while workers are quiesced"]
  steal_scans : int Atomic.t;
      [@th.atomic
        "victim scans this batch; bumped via RMW by thieves, plain-set \
         only while workers are quiesced"]
  mutable last : batch_stats;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

let last_batch t = t.last

(* Escalating wait for domains with nothing to run or steal: spin with
   cpu_relax first (the common, microsecond-scale case near a batch
   boundary), then sleep in sub-millisecond slices. On an oversubscribed
   machine (jobs > cores) a busy spin would steal the core from the
   domains holding the remaining cells. *)
let backoff misses =
  if misses < 8 then
    for _ = 1 to 1 lsl misses do
      Domain.cpu_relax ()
    done
  else Unix.sleepf (Float.min 0.001 (1e-5 *. float_of_int (misses - 7)))

(* Drain own deque, then scan victims; spin (with cpu_relax) while
   other domains still hold unfinished cells we cannot steal. *)
let work t d =
  let deques = t.deques in
  let run = t.run_chunk in
  let jobs = t.jobs in
  let rec own () =
    match Deque.pop deques.(d) with
    | Some c ->
        run c;
        own ()
    | None -> hunt 0
  and hunt misses =
    if Atomic.get t.remaining > 0 then begin
      Atomic.incr t.steal_scans;
      let stolen = ref false in
      let i = ref 1 in
      while (not !stolen) && !i < jobs do
        (match Deque.steal deques.((d + !i) mod jobs) with
        | Some c ->
            Atomic.incr t.steals;
            stolen := true;
            run c
        | None -> incr i)
      done;
      if !stolen then own ()
      else begin
        backoff misses;
        hunt (misses + 1)
      end
    end
  in
  own ()

let worker t d =
  let my_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    t.idle <- t.idle + 1;
    Condition.broadcast t.quiesced;
    while t.epoch = !my_epoch && not t.shutting_down do
      Condition.wait t.start t.mutex
    done;
    if t.shutting_down then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      my_epoch := t.epoch;
      t.idle <- t.idle - 1;
      Mutex.unlock t.mutex;
      work t d
    end
  done

let create ?(oversubscribe = 4) ~jobs () =
  if jobs < 1 then invalid_arg "Scheduler.create: jobs must be >= 1";
  let t =
    {
      jobs;
      oversubscribe = max 1 oversubscribe;
      mutex = Mutex.create ();
      start = Condition.create ();
      quiesced = Condition.create ();
      epoch = 0;
      idle = 0;
      shutting_down = false;
      workers = [];
      deques = [||];
      run_chunk = (fun _ -> ());
      remaining = Atomic.make 0;
      steals = Atomic.make 0;
      steal_scans = Atomic.make 0;
      last = empty_stats;
    }
  in
  if jobs > 1 then
    (* th-lint: allow domain_shared — workers share the scheduler record
       by design: hot fields are Atomic.t, the rest are written only
       under [mutex] or while every worker is parked (quiesced). *)
    t.workers <-
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

(* Longest-expected-first plan: submission indices sorted by descending
   cost (stable on the submission index), packed into chunks no costlier
   than [total / (oversubscribe * jobs)] — an expensive cell always gets
   its own chunk — and capped at [chunk_max] cells. *)
let plan_chunks ~jobs ~oversubscribe ~chunk_max (costs : float array) =
  let n = Array.length costs in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare costs.(b) costs.(a) with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  let total = Array.fold_left ( +. ) 0.0 costs in
  let target = total /. float_of_int (oversubscribe * jobs) in
  let chunk_max = max 1 chunk_max in
  let chunks = ref [] in
  let current = ref [] in
  let current_cost = ref 0.0 in
  let current_len = ref 0 in
  let flush () =
    if !current_len > 0 then begin
      chunks := Array.of_list (List.rev !current) :: !chunks;
      current := [];
      current_cost := 0.0;
      current_len := 0
    end
  in
  Array.iter
    (fun i ->
      if
        !current_len >= chunk_max
        || (!current_len > 0 && !current_cost +. costs.(i) > target)
      then flush ();
      current := i :: !current;
      current_cost := !current_cost +. costs.(i);
      current_len := !current_len + 1)
    order;
  flush ();
  Array.of_list (List.rev !chunks)

(* LPT deal: chunks arrive in descending cost order; each goes to the
   least-loaded domain. Returns per-domain chunk-id lists in assignment
   order (most expensive first). *)
let deal_chunks ~jobs ~pin (chunks : int array array) (costs : float array) =
  let load = Array.make jobs 0.0 in
  let per_domain = Array.make jobs [] in
  Array.iteri
    (fun c chunk ->
      let d =
        match pin with
        | Some f ->
            let d = f c in
            if d < 0 || d >= jobs then
              invalid_arg "Scheduler.run_cells: pin out of range"
            else d
        | None ->
            let best = ref 0 in
            for d = 1 to jobs - 1 do
              if load.(d) < load.(!best) then best := d
            done;
            !best
      in
      let cost = Array.fold_left (fun a i -> a +. costs.(i)) 0.0 chunk in
      load.(d) <- load.(d) +. cost;
      per_domain.(d) <- c :: per_domain.(d))
    chunks;
  (* Reversed accumulation left the cheapest chunk first: exactly the
     seeding order we want, since owners pop LIFO (most expensive
     first) and thieves steal the cheap top end. *)
  per_domain

let run_cells ?pin ?(chunk_max = 16) t cells =
  match cells with
  | [] -> []
  | cells ->
      let arr = Array.of_list cells in
      let n = Array.length arr in
      let results = Array.make n None in
      let durations = Array.make n 0.0 in
      let exec i =
        let t0 = Wall.now_s () in
        let r =
          match (arr.(i).Cell.run) () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        durations.(i) <- Wall.elapsed_s ~since:t0;
        results.(i) <- Some r
      in
      if t.jobs = 1 then begin
        (* Serial reference path: submission order, no planning. *)
        for i = 0 to n - 1 do
          exec i
        done;
        t.last <-
          {
            cells = n;
            chunks = n;
            steals = 0;
            steal_scans = 0;
            cell_wall_s = durations;
          }
      end
      else begin
        let costs = Array.map (fun c -> c.Cell.cost) arr in
        let chunks =
          plan_chunks ~jobs:t.jobs ~oversubscribe:t.oversubscribe ~chunk_max
            costs
        in
        let per_domain = deal_chunks ~jobs:t.jobs ~pin chunks costs in
        let run_chunk c =
          Array.iter
            (fun i ->
              exec i;
              Atomic.decr t.remaining)
            chunks.(c)
        in
        (* Quiesce, then publish the batch under the mutex. *)
        Mutex.lock t.mutex;
        while t.idle < t.jobs - 1 do
          Condition.wait t.quiesced t.mutex
        done;
        t.deques <-
          Array.init t.jobs (fun _ -> Deque.create ~capacity:(Array.length chunks));
        Array.iteri
          (fun d ids -> List.iter (fun c -> Deque.push t.deques.(d) c) ids)
          per_domain;
        t.run_chunk <- run_chunk;
        (* th-lint: allow atomic-plain-write — batch-boundary publish:
           every worker is parked on [quiesced] here, so no RMW can race
           with these stores; the epoch broadcast republishes them. *)
        Atomic.set t.remaining n;
        Atomic.set t.steals 0;
        Atomic.set t.steal_scans 0;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.start;
        Mutex.unlock t.mutex;
        (* The submitting domain participates as domain 0, then waits
           for in-flight cells it could not steal. *)
        work t 0;
        let misses = ref 0 in
        while Atomic.get t.remaining > 0 do
          backoff !misses;
          incr misses
        done;
        t.last <-
          {
            cells = n;
            chunks = Array.length chunks;
            steals = Atomic.get t.steals;
            steal_scans = Atomic.get t.steal_scans;
            cell_wall_s = durations;
          }
      end;
      (* Collect in submission order; re-raise the first failure (by
         submission order) after the whole batch has drained. *)
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None ->
               failwith "Scheduler.run_cells: cell finished without a result")

let run_thunks t thunks = run_cells t (List.map Cell.of_thunk thunks)

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.start;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_scheduler ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
