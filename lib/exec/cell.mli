(** One schedulable experiment cell.

    A cell is an independent thunk (it builds its own clock, heap,
    device stack and PRNG) plus scheduling metadata: a human-readable
    [label], a [cost] hint (arbitrary positive units, e.g. heap size x
    workload iterations) that seeds longest-expected-first placement,
    and a [lane] id used by trace capture so merged traces stay
    deterministic regardless of which domain ran the cell. *)

type 'a t = { label : string; cost : float; lane : int; run : unit -> 'a }

val default_cost : float
(** 1.0 — the cost assumed when no hint is given. *)

val make : ?label:string -> ?cost:float -> ?lane:int -> (unit -> 'a) -> 'a t
(** Non-finite or non-positive [cost] hints fall back to
    {!default_cost}; a bad hint must never break scheduling. *)

val of_thunk : (unit -> 'a) -> 'a t
(** [make] with every default: label ["cell"], cost 1.0, lane 0. *)

val label : 'a t -> string
val cost : 'a t -> float
val lane : 'a t -> int
