(** Compatibility facade over the work-stealing {!Scheduler}.

    The original pool API: submit a list of cost-blind thunks, get the
    results back in submission order. Tasks must be independent: each
    benchmark cell builds its own clock, heap, device stack and PRNG,
    so no simulator state crosses domains. New code that knows per-cell
    cost hints should build {!Cell.t}s and call
    {!Scheduler.run_cells} directly. *)

type t = Scheduler.t

val create : jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs = 1] spawns
    none and {!run} degenerates to [List.map]). Raises [Invalid_argument]
    when [jobs < 1]. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run t thunks] executes every thunk (workers plus the calling domain)
    and returns the results in submission order. An exception raised by a
    thunk is re-raised here, with its backtrace, after the whole batch
    has drained. Must be called from the domain that created [t]; batches
    do not nest. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list

val shutdown : t -> unit
(** Signal the workers to exit and join them. Required before process
    exit (the OCaml runtime waits for unjoined domains); idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] and shuts the pool down on any exit. *)
