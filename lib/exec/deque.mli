(** Chase-Lev-style work-stealing deque over int work ids.

    Owner-end [push]/[pop], thief-end [steal] via a CAS on the top
    index. Specialised for the scheduler's batch discipline: deques are
    seeded (and [reset]) between batches by the submitting domain —
    the batch-start handshake publishes the seeded state — so the
    fixed-capacity buffer never grows or wraps mid-batch.

    The implementation is a functor over {!Atomic_intf.S} so the
    bounded-interleaving checker can run the same code under
    instrumented atomics; the toplevel values are
    [Make (Atomic_intf.Default)]. *)

module type S = sig
  type t

  val create : capacity:int -> t
  (** Capacity is the maximum number of ids ever pushed between two
      [reset]s (the batch's chunk count). *)

  val push : t -> int -> unit
  (** Owner only; raises [Invalid_argument] past capacity. *)

  val pop : t -> int option
  (** Owner end (LIFO). Safe against concurrent {!steal}s: on the last
      element both sides race a CAS and exactly one wins. *)

  val steal : t -> int option
  (** Thief end (FIFO). [None] means empty {e or} a lost race — callers
      rescan victims either way. *)

  val size : t -> int
  (** Snapshot; may be stale under concurrency. *)

  val is_empty : t -> bool

  val reset : t -> unit
  (** Owner/submitter only, between batches. *)
end

module Make (_ : Atomic_intf.S) : S

include S
