(** Monotonic wall-clock time.

    [Sys.time] reports CPU time summed over every domain, which is
    misleading once the harness runs on multiple cores; these helpers
    read CLOCK_MONOTONIC through bechamel's noalloc stub instead. *)

val now_ns : unit -> int64

val now_s : unit -> float

val elapsed_s : since:float -> float
(** [elapsed_s ~since] is [now_s () -. since]. *)
