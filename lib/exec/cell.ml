(* One schedulable experiment cell: an independent thunk plus the
   metadata the scheduler plans with. Cells never share simulator state
   (each builds its own clock/heap/device stack), so the only contract
   is that [run] is self-contained and its result is returned in
   submission order. *)

type 'a t = { label : string; cost : float; lane : int; run : unit -> 'a }

let default_cost = 1.0

let make ?(label = "cell") ?(cost = default_cost) ?(lane = 0) run =
  { label; cost = (if Float.is_finite cost && cost > 0.0 then cost else default_cost); lane; run }

let of_thunk run = make run

let label t = t.label

let cost t = t.cost

let lane t = t.lane
