(* The atomic operations the work-stealing deque needs, as a functor
   argument so the bounded-interleaving checker (Th_analysis.Interleave)
   can thread an instrumented implementation that yields to a schedule
   explorer before every operation. Production code instantiates with
   [Default] = stdlib [Atomic]. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
end

module Default : S with type 'a t = 'a Atomic.t = struct
  type 'a t = 'a Atomic.t

  let make = Atomic.make
  let get = Atomic.get
  let set = Atomic.set
  let compare_and_set = Atomic.compare_and_set
end
