(** Atomic operations as a functor argument.

    {!Deque.Make} is parameterised over this signature so the
    bounded-interleaving checker can substitute an instrumented
    implementation that yields control to a schedule explorer before
    every atomic operation; {!Default} is the stdlib [Atomic]. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
end

module Default : S with type 'a t = 'a Atomic.t
