let now_ns () = Monotonic_clock.now ()

let now_s () = Int64.to_float (now_ns ()) /. 1e9

let elapsed_s ~since = now_s () -. since
