(** Declarative cell DAG for the benchmark harness.

    Build a section's plan by registering independent cells; each
    registration returns a {!future} that becomes readable once a
    {!Scheduler} batch has executed the cell. [seal] pairs the cells
    with a pure render function that consumes futures in submission
    order, which is what keeps stdout/CSV byte-identical at any jobs
    count: cells never print, renders never compute.

    The harness submits the cells of every requested section as one
    global batch (cross-section batching), so a run like
    [bench fig6 fig7 fig8 fig9 --jobs N] exposes the full cell
    population to the work-stealing scheduler instead of 2–4 cells at
    a time. *)

type 'a future
(** The result of a registered cell. *)

val get : 'a future -> 'a
(** Raises [Failure] if the cell has not been executed yet — i.e. if a
    render runs before its section's cells were submitted. *)

type t
(** A plan under construction. *)

type section
(** A sealed plan: cells plus a pure render. *)

val create : unit -> t

val cell : t -> ?label:string -> ?cost:float -> (unit -> 'a) -> 'a future
(** Register one cell. [cost] is the scheduling hint (see {!Cell});
    the cell's lane id is its registration index, so traces merged in
    lane order are deterministic. The closure runs on a worker domain:
    it must not touch shared mutable state or print. *)

val cell_list : t -> ?label:string -> ?cost:float -> (unit -> 'a) list -> 'a list future
(** Register a list of cells sharing one cost hint. *)

val costed_list : t -> ?label:string -> (float * (unit -> 'a)) list -> 'a list future
(** Register a list of cells with per-cell cost hints. *)

val grouped : t -> ?label:string -> ?cost:float -> ('k * (unit -> 'a) list) list -> ('k * 'a list) list future
(** Register every cell of every group; the future regroups results
    per key, in order — the planner sees one flat batch. *)

val grouped_costed : t -> ?label:string -> ('k * (float * (unit -> 'a)) list) list -> ('k * 'a list) list future

val cell_count : t -> int

val seal : t -> render:(unit -> unit) -> section
(** Close the builder. [render] must only read futures and print. *)

val cells : section -> unit Cell.t list
(** The section's cells in registration order (for global batching). *)

val render : section -> unit
(** Run the render pass. Only valid after every cell has executed. *)

val run_section : Scheduler.t -> section -> unit
(** Submit one section's cells as a batch, then render — for callers
    outside the cross-section harness. *)
