(* Chase-Lev-style work-stealing deque over int work ids (chunk
   indices), specialised for the scheduler's batch discipline: the
   submitting domain seeds every deque before a batch starts (the
   batch-start handshake publishes the writes), after which the owner
   domain pops from the bottom and idle domains steal from the top.
   No pushes happen while thieves are active, so the buffer never
   grows or wraps: [capacity] is sized to the batch's chunk count.

   Both indices are Atomic.t: OCaml's memory model makes the CAS on
   [top] the single point of contention — a thief claims slot [t] by
   CAS(top, t, t+1); the owner claims slot [b-1] by publishing
   [bottom := b-1] first and falling back to the same CAS when only
   one element remains, so owner and thief can never both win the
   last slot.

   The implementation is a functor over the atomic primitives so the
   bounded-interleaving checker (Th_analysis.Interleave) can run the
   very same code under an instrumented Atomic that yields to a
   schedule explorer before every operation; production code uses the
   [include Make (Atomic_intf.Default)] at the bottom. *)

module type S = sig
  type t

  val create : capacity:int -> t
  val push : t -> int -> unit
  val pop : t -> int option
  val steal : t -> int option
  val size : t -> int
  val is_empty : t -> bool
  val reset : t -> unit
end

module Make (A : Atomic_intf.S) = struct
  type t = {
    buf : int array;
    top : int A.t; [@th.atomic "next slot thieves claim; stolen via CAS"]
    bottom : int A.t;
        [@th.atomic
          "next free slot, owner pops at bottom-1; owner-written, \
           thief-read"]
  }

  let empty_id = -1

  let create ~capacity =
    {
      buf = Array.make (max 1 capacity) empty_id;
      top = A.make 0;
      bottom = A.make 0;
    }

  (* Owner only, before the batch handshake (or with no concurrent
     thieves): no ordering needed beyond the publishing handshake. *)
  let push t x =
    let b = A.get t.bottom in
    if b >= Array.length t.buf then invalid_arg "Deque.push: capacity exceeded";
    t.buf.(b) <- x;
    A.set t.bottom (b + 1)

  (* Owner end. Publish the decremented bottom before reading top so a
     concurrent thief either sees the smaller bottom (and gives up on the
     last element) or wins the CAS race that [pop] then loses. *)
  let pop t =
    let b = A.get t.bottom - 1 in
    A.set t.bottom b;
    let tp = A.get t.top in
    if b > tp then Some t.buf.(b)
    else if b = tp then begin
      (* Single element left: race thieves for it via the top CAS. *)
      let won = A.compare_and_set t.top tp (tp + 1) in
      A.set t.bottom (tp + 1);
      if won then Some t.buf.(b) else None
    end
    else begin
      (* Already empty: restore the canonical empty state. *)
      A.set t.bottom (b + 1);
      None
    end

  (* Thief end: claim the top slot with a CAS. A lost CAS means another
     thief (or the owner, on the last element) won; report [None] and let
     the caller rescan victims. *)
  let steal t =
    let tp = A.get t.top in
    let b = A.get t.bottom in
    if tp >= b then None
    else
      let x = t.buf.(tp) in
      if A.compare_and_set t.top tp (tp + 1) then Some x else None

  (* th-lint: allow atomic-plain-read — size is an advisory snapshot by
     contract (victim-scan heuristics); staleness is documented in the
     interface. *)
  let size t = max 0 (A.get t.bottom - A.get t.top)

  let is_empty t = size t = 0

  (* th-lint: allow atomic-plain-write — reset runs on the submitting
     domain between batches, after the epoch barrier has quiesced every
     worker: no thief can be racing the store to top. *)
  let reset t =
    A.set t.top 0;
    A.set t.bottom 0
end

include Make (Atomic_intf.Default)
