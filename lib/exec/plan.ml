(* Declarative cell DAG for the benchmark harness.

   A section builds its plan with a builder: every call to [cell] (or
   the list/grouped helpers) registers one independent experiment cell
   and returns a future for its result. [seal] closes the builder into
   a section — the registered cells plus a pure render function that
   only reads futures. The harness then submits the cells of *all*
   requested sections to the Scheduler as one global batch and runs the
   renders serially in submission order, so stdout/CSV stay
   byte-identical at any jobs count. *)

type 'a future = unit -> 'a

let get f = f ()

type t = { mutable rev_cells : unit Cell.t list; mutable count : int }

type section = { cells : unit Cell.t list; render : unit -> unit }

let create () = { rev_cells = []; count = 0 }

let cell b ?label ?cost f =
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "cell-%d" b.count
  in
  (* The slot is written by whichever worker domain runs the cell and
     read by the coordinator after the batch; Atomic publication makes
     the hand-off explicit rather than leaning on the join fence. *)
  let slot = Atomic.make None [@th.atomic "cell result, written once by the executing domain"] in
  let c =
    Cell.make ~label ?cost ~lane:b.count (fun () -> Atomic.set slot (Some (f ())))
  in
  b.rev_cells <- c :: b.rev_cells;
  b.count <- b.count + 1;
  fun () ->
    match Atomic.get slot with
    | Some v -> v
    | None ->
        failwith
          (Printf.sprintf
             "Plan.get: cell %S read before the batch executed it" label)

let cell_list b ?label ?cost fs =
  let futures = List.map (fun f -> cell b ?label ?cost f) fs in
  fun () -> List.map get futures

let costed_list b ?label fs =
  let futures = List.map (fun (cost, f) -> cell b ?label ~cost f) fs in
  fun () -> List.map get futures

let grouped b ?label ?cost groups =
  let futures =
    List.map (fun (key, fs) -> (key, cell_list b ?label ?cost fs)) groups
  in
  fun () -> List.map (fun (key, fut) -> (key, get fut)) futures

let grouped_costed b ?label groups =
  let futures =
    List.map (fun (key, fs) -> (key, costed_list b ?label fs)) groups
  in
  fun () -> List.map (fun (key, fut) -> (key, get fut)) futures

let cell_count b = b.count

let seal b ~render = { cells = List.rev b.rev_cells; render }

let cells s = s.cells

let render s = s.render ()

(* Convenience runner for one section outside the harness (tests,
   direct callers): submit its cells as one batch, then render. *)
let run_section sched s =
  ignore (Scheduler.run_cells sched (cells s) : unit list);
  render s
