type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : task Queue.t;
  mutable pending : int;  (* submitted but not yet completed tasks *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

(* Workers block on [work_available]; a task is executed with the lock
   released. On shutdown they drain whatever is still queued, then exit. *)
let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.shutting_down do
      Condition.wait t.work_available t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      shutting_down = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let run t thunks =
  let n = List.length thunks in
  if n = 0 then []
  else if t.jobs = 1 then List.map (fun f -> f ()) thunks
  else begin
    let results = Array.make n None in
    Mutex.lock t.mutex;
    t.pending <- t.pending + n;
    List.iteri
      (fun i f ->
        Queue.push
          (fun () ->
            let r =
              match f () with
              | v -> Ok v
              | exception e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock t.mutex;
            results.(i) <- Some r;
            t.pending <- t.pending - 1;
            if t.pending = 0 then Condition.broadcast t.batch_done;
            Mutex.unlock t.mutex)
          t.queue)
      thunks;
    Condition.broadcast t.work_available;
    (* The submitting domain participates until the queue drains, then
       waits for tasks still in flight on the workers. *)
    let rec drain () =
      if not (Queue.is_empty t.queue) then begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        drain ()
      end
    in
    drain ();
    while t.pending > 0 do
      Condition.wait t.batch_done t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> failwith "Pool.run: worker slot finished without a result")
  end

let map t f xs = run t (List.map (fun x () -> f x) xs)

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
