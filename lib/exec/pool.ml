(* Compatibility facade over the work-stealing Scheduler: the original
   single-shared-queue pool API, now backed by per-domain deques. Thunks
   submitted here carry no cost hints, so they are planned at the
   default cost (uniform chunking, round-robin-ish LPT deal). *)

type t = Scheduler.t

let default_jobs = Scheduler.default_jobs

let jobs = Scheduler.jobs

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  Scheduler.create ~jobs ()

let run t thunks = Scheduler.run_thunks t thunks

let map t f xs = run t (List.map (fun x () -> f x) xs)

let shutdown = Scheduler.shutdown

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
