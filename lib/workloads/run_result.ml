module Runtime = Th_psgc.Runtime
module Gc_stats = Th_psgc.Gc_stats
module H2 = Th_core.H2
module Device = Th_device.Device
module Fault = Th_sim.Fault
module Heap_census = Th_psgc.Heap_census

type outcome = Completed | Degraded | Oom

type t = {
  label : string;
  outcome : outcome;
  breakdown : Th_sim.Clock.breakdown option;
  oom_reason : string option;
  minor_gcs : int;
  major_gcs : int;
  h2_stats : H2.stats option;
  gc_stats : Gc_stats.t option;
  h2_device : Device.stats option;
  faults : Fault.stats option;
  census : Heap_census.entry list option;
      (* live-heap composition captured at OOM *)
  at_failure : Th_sim.Clock.breakdown option;
      (* clock state at the failure point, captured best-effort *)
}

let fault_stats faults = Option.map Fault.stats faults

let ok ~label rt ?h2_device ?faults () =
  let stats = Runtime.stats rt in
  let faults = fault_stats faults in
  let outcome =
    match faults with
    | Some fs when Fault.degraded fs -> Degraded
    | Some _ | None -> Completed
  in
  {
    label;
    outcome;
    breakdown = Some (Th_sim.Clock.breakdown (Runtime.clock rt));
    oom_reason = None;
    minor_gcs = Gc_stats.minor_count stats;
    major_gcs = Gc_stats.major_count stats;
    h2_stats = Option.map H2.stats (Runtime.h2 rt);
    gc_stats = Some stats;
    h2_device = Option.map Device.stats h2_device;
    faults;
    census = None;
    at_failure = None;
  }

(* A run that died mid-collection may leave heap bookkeeping mid-update;
   snapshot every statistic defensively so the failure report itself
   cannot raise and mask the original error. *)
let guard f = try Some (f ()) with _ -> None

let oom ?reason ?h2_device ?faults ~label rt =
  let stats = guard (fun () -> Runtime.stats rt) in
  let count f =
    match Option.bind stats (fun s -> guard (fun () -> f s)) with
    | Some n -> max 0 n
    | None -> 0
  in
  {
    label;
    outcome = Oom;
    breakdown = None;
    oom_reason = reason;
    minor_gcs = count Gc_stats.minor_count;
    major_gcs = count Gc_stats.major_count;
    h2_stats =
      Option.bind (Runtime.h2 rt) (fun h2 -> guard (fun () -> H2.stats h2));
    gc_stats = stats;
    h2_device =
      Option.bind h2_device (fun d -> guard (fun () -> Device.stats d));
    faults = guard (fun () -> fault_stats faults) |> Option.join;
    census = guard (fun () -> Heap_census.of_runtime rt);
    at_failure = guard (fun () -> Th_sim.Clock.breakdown (Runtime.clock rt));
  }

let to_report_row t =
  match t.breakdown with
  | Some b -> Th_metrics.Report.row t.label b
  | None -> Th_metrics.Report.oom t.label
