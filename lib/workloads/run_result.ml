module Runtime = Th_psgc.Runtime
module Gc_stats = Th_psgc.Gc_stats
module H2 = Th_core.H2
module Device = Th_device.Device
module Fault = Th_sim.Fault
module Heap_census = Th_psgc.Heap_census
module Monitor = Th_resilience.Monitor

type outcome = Completed | Degraded | Oom

type t = {
  label : string;
  outcome : outcome;
  breakdown : Th_sim.Clock.breakdown option;
  oom_reason : string option;
  minor_gcs : int;
  major_gcs : int;
  h2_stats : H2.stats option;
  gc_stats : Gc_stats.t option;
  h2_device : Device.stats option;
  faults : Fault.stats option;
  resilience : Monitor.summary option;
  census : Heap_census.entry list option;
      (* live-heap composition captured at OOM *)
  at_failure : Th_sim.Clock.breakdown option;
      (* clock state at the failure point, captured best-effort *)
}

let fault_stats faults = Option.map Fault.stats faults

(* A run whose breaker ever tripped — or that routed promotion
   candidates around a suspended H2 — completed, but not on the
   configuration's nominal path. *)
let resilience_degraded (s : Monitor.summary) =
  s.Monitor.breaker.Th_resilience.Breaker.trips > 0
  || s.Monitor.moves_suppressed > 0
  || s.Monitor.fallback_serializations > 0
  || s.Monitor.deferred_batches > 0

let ok ~label rt ?h2_device ?faults ?monitor () =
  let stats = Runtime.stats rt in
  let faults = fault_stats faults in
  let resilience = Option.map Monitor.summary monitor in
  let outcome =
    match (faults, resilience) with
    | Some fs, _ when Fault.degraded fs -> Degraded
    | _, Some rs when resilience_degraded rs -> Degraded
    | _, _ -> Completed
  in
  {
    label;
    outcome;
    breakdown = Some (Th_sim.Clock.breakdown (Runtime.clock rt));
    oom_reason = None;
    minor_gcs = Gc_stats.minor_count stats;
    major_gcs = Gc_stats.major_count stats;
    h2_stats = Option.map H2.stats (Runtime.h2 rt);
    gc_stats = Some stats;
    h2_device = Option.map Device.stats h2_device;
    faults;
    resilience;
    census = None;
    at_failure = None;
  }

(* A run that died mid-collection may leave heap bookkeeping mid-update;
   snapshot every statistic defensively so the failure report itself
   cannot raise and mask the original error. *)
let guard f = try Some (f ()) with _ -> None

let oom ?reason ?h2_device ?faults ?monitor ~label rt =
  let stats = guard (fun () -> Runtime.stats rt) in
  let count f =
    match Option.bind stats (fun s -> guard (fun () -> f s)) with
    | Some n -> max 0 n
    | None -> 0
  in
  {
    label;
    outcome = Oom;
    breakdown = None;
    oom_reason = reason;
    minor_gcs = count Gc_stats.minor_count;
    major_gcs = count Gc_stats.major_count;
    h2_stats =
      Option.bind (Runtime.h2 rt) (fun h2 -> guard (fun () -> H2.stats h2));
    gc_stats = stats;
    h2_device =
      Option.bind h2_device (fun d -> guard (fun () -> Device.stats d));
    faults = guard (fun () -> fault_stats faults) |> Option.join;
    resilience =
      guard (fun () -> Option.map Monitor.summary monitor) |> Option.join;
    census = guard (fun () -> Heap_census.of_runtime rt);
    at_failure = guard (fun () -> Th_sim.Clock.breakdown (Runtime.clock rt));
  }

let to_report_row t =
  match t.breakdown with
  | Some b -> Th_metrics.Report.row t.label b
  | None -> Th_metrics.Report.oom t.label
