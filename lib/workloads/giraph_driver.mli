(** Executes a Giraph workload profile on a configured runtime. *)

val run :
  label:string ->
  Th_psgc.Runtime.t ->
  mode:Th_giraph.Engine.mode ->
  ?ooc_device:Th_device.Device.t ->
  ?h2_device:Th_device.Device.t ->
  ?faults:Th_sim.Fault.t ->
  ?scale:float ->
  ?seed:int64 ->
  Giraph_profiles.t ->
  Run_result.t
(** [scale] multiplies the dataset size (default 1.0). OOMs are caught
    and reported, matching the paper's missing bars. [h2_device] and
    [faults] are recorded in the result (fault counters decide between
    the [Completed] and [Degraded] outcomes). *)
