(** Outcome of one simulated workload run. *)

type outcome =
  | Completed  (** ran to completion with no fault recovery needed *)
  | Degraded
      (** ran to completion, but the fault layer injected faults or a
          recovery path fired (retries exhausted, lineage recomputation,
          H2 degraded-mode compaction) *)
  | Oom  (** died with [Out_of_memory] *)

type t = {
  label : string;
  outcome : outcome;
  breakdown : Th_sim.Clock.breakdown option;  (** [None] marks an OOM *)
  oom_reason : string option;
  minor_gcs : int;
  major_gcs : int;
  h2_stats : Th_core.H2.stats option;
  gc_stats : Th_psgc.Gc_stats.t option;
  h2_device : Th_device.Device.stats option;
  faults : Th_sim.Fault.stats option;
      (** fault-injection counters, when the setup carried an injector *)
  resilience : Th_resilience.Monitor.summary option;
      (** breaker/SLO summary, when the run carried a health monitor *)
  census : Th_psgc.Heap_census.entry list option;
      (** live-heap composition captured at OOM *)
  at_failure : Th_sim.Clock.breakdown option;
      (** clock state at the failure point, captured best-effort at OOM *)
}

val ok :
  label:string ->
  Th_psgc.Runtime.t ->
  ?h2_device:Th_device.Device.t ->
  ?faults:Th_sim.Fault.t ->
  ?monitor:Th_resilience.Monitor.t ->
  unit ->
  t
(** Snapshot a completed run. With [faults], the injector's counters are
    recorded and the outcome becomes {!Degraded} when any fault was
    injected or any recovery path fired; with [monitor], the breaker/SLO
    summary is recorded and breaker trips or fallback routing likewise
    mark the run {!Degraded}. *)

val oom :
  ?reason:string ->
  ?h2_device:Th_device.Device.t ->
  ?faults:Th_sim.Fault.t ->
  ?monitor:Th_resilience.Monitor.t ->
  label:string ->
  Th_psgc.Runtime.t ->
  t
(** Capture a run that died with [Out_of_memory]. Every statistic is
    snapshotted defensively (a run dying mid-collection may leave heap
    bookkeeping mid-update): unreadable statistics degrade to [None] or 0
    instead of raising, and GC counts are clamped non-negative. *)

val to_report_row : t -> Th_metrics.Report.row
