open Th_sim
module Runtime = Th_psgc.Runtime
module Context = Th_spark.Context
module Rdd = Th_spark.Rdd
module Block_manager = Th_spark.Block_manager
module Stage = Th_spark.Stage

let cache_rdd ctx bm rdd =
  let rt = Context.runtime ctx in
  for pidx = 0 to rdd.Rdd.partitions - 1 do
    let group = Rdd.build_partition ctx rdd in
    Block_manager.put bm ~rdd_id:rdd.Rdd.id ~pidx group;
    Runtime.remove_root rt group
  done

(* Read the partitions of [rdd] assigned to stage [stage] (round-robin
   over [stages]); deserialized groups stay held until the stage ends. *)
let read_rdd_slice ctx bm rdd ~compute_factor ~stage ~stages =
  let rt = Context.runtime ctx in
  for pidx = 0 to rdd.Rdd.partitions - 1 do
    (* Multi-stage (graph) jobs hold deserialized groups to the stage
       barrier; single-stage ML training streams partition by partition. *)
    if pidx mod stages = stage then
      Block_manager.get ~hold:(stages > 1) bm ~rdd_id:rdd.Rdd.id ~pidx
        ~consume:(fun group ->
          Rdd.read_partition ctx group;
          (* Algorithm CPU work over the partition beyond the plain
             read. *)
          if compute_factor > 1.0 then
            Runtime.compute rt
              ~bytes:
                (int_of_float
                   ((compute_factor -. 1.0)
                   *. float_of_int (Rdd.partition_bytes rdd))))
  done

let run ?(dataset_scale = 1.0) ?h2_device ?faults ~label ctx
    (p : Spark_profiles.t) =
  let rt = Context.runtime ctx in
  let dataset_bytes =
    int_of_float
      (dataset_scale *. float_of_int (Size.paper_gb p.Spark_profiles.dataset_gb))
  in
  let shuffle_bytes =
    int_of_float
      (p.Spark_profiles.shuffle_fraction *. float_of_int dataset_bytes)
  in
  let transient_bytes =
    int_of_float
      (p.Spark_profiles.transient_fraction *. float_of_int dataset_bytes /. 4.0)
  in
  try
    let bm = Block_manager.create ctx in
    let cached_bytes =
      int_of_float
        (p.Spark_profiles.cached_fraction *. float_of_int dataset_bytes)
    in
    (* Phase 1: stream the raw input (transient records) and cache the
       working set. Workloads with churn split it into a stable base RDD
       (the graph) and a per-generation RDD (ranks / frontiers). *)
    Stage.run ctx
      ~transient_bytes:((dataset_bytes - cached_bytes) / 2)
      ~work:(fun () -> ())
      ();
    let has_churn = p.Spark_profiles.recache_period <> None in
    let base_bytes = if has_churn then cached_bytes * 2 / 3 else cached_bytes in
    let base =
      Rdd.of_dataset ctx ~layout:p.Spark_profiles.layout ~bytes:base_bytes ()
    in
    cache_rdd ctx bm base;
    let churn =
      if has_churn then begin
        let r =
          Rdd.of_dataset ctx ~layout:p.Spark_profiles.layout
            ~bytes:(cached_bytes / 3) ()
        in
        cache_rdd ctx bm r;
        ref (Some r)
      end
      else ref None
    in
    (* Phase 2: iterate over the cached data. Each iteration spans
       [stages_per_iter] stages (GraphX supersteps translate to several
       stages each); every stage reads its slice of the partitions,
       shuffles, and releases its held groups at the barrier. *)
    let stages = max 1 p.Spark_profiles.stages_per_iter in
    let compute_factor = p.Spark_profiles.compute_factor in
    let intermediate_bytes =
      int_of_float
        (p.Spark_profiles.intermediate_fraction *. float_of_int dataset_bytes)
    in
    for it = 1 to p.Spark_profiles.iterations do
      (* Execution-memory live set of this iteration: aggregation buffers,
         candidate sets, gradient accumulators. Live until the iteration
         completes, then garbage. *)
      let intermediates = ref [] in
      let chunk = Size.kib 64 in
      for _ = 1 to intermediate_bytes / chunk do
        let o = Runtime.alloc rt ~size:chunk () in
        Runtime.add_root rt o;
        intermediates := o :: !intermediates
      done;
      for stage = 0 to stages - 1 do
        Stage.run ctx ~shuffle_bytes:(shuffle_bytes / stages)
          ~transient_bytes:(transient_bytes / stages)
          ~work:(fun () ->
            read_rdd_slice ctx bm base ~compute_factor ~stage ~stages;
            match !churn with
            | Some r -> read_rdd_slice ctx bm r ~compute_factor ~stage ~stages
            | None -> ())
          ();
        Block_manager.release_held bm
      done;
      List.iter (fun o -> Runtime.remove_root rt o) !intermediates;
      match (p.Spark_profiles.recache_period, !churn) with
      | Some k, Some old when it mod k = 0 && it < p.Spark_profiles.iterations
        ->
          (* A new generation of the iteratively-refined RDD is cached and
             the previous one unpersisted. *)
          let next =
            Rdd.of_dataset ctx ~layout:p.Spark_profiles.layout
              ~bytes:(cached_bytes / 3) ()
          in
          cache_rdd ctx bm next;
          Block_manager.unpersist bm ~rdd_id:old.Rdd.id;
          churn := Some next
      | _ -> ()
    done;
    Run_result.ok ~label rt ?h2_device ?faults ()
  with
  | Runtime.Out_of_memory reason ->
      Run_result.oom ~reason ?h2_device ?faults ~label rt
  | Th_core.H2.Out_of_h2_space ->
      Run_result.oom ~reason:"H2 exhausted" ?h2_device ?faults ~label rt
