open Th_sim
module Runtime = Th_psgc.Runtime
module Engine = Th_giraph.Engine

let run ~label rt ~mode ?ooc_device ?h2_device ?faults ?(scale = 1.0)
    ?(seed = 0xC0FFEEL) (p : Giraph_profiles.t) =
  let params = Giraph_profiles.graph_params p ~scale in
  let prng = Prng.create seed in
  let ooc_dr2 = Size.paper_gb p.Giraph_profiles.ooc_dr2_gb in
  try
    let (_ : Engine.result) =
      Engine.run rt ~mode ?ooc_device ~ooc_dr2 ~prng
        ~algo:p.Giraph_profiles.algo params
    in
    Run_result.ok ~label rt ?h2_device ?faults ()
  with
  | Runtime.Out_of_memory reason ->
      Run_result.oom ~reason ?h2_device ?faults ~label rt
  | Th_core.H2.Out_of_h2_space ->
      Run_result.oom ~reason:"H2 exhausted" ?h2_device ?faults ~label rt
