open Th_sim
module Runtime = Th_psgc.Runtime
module Obj_ = Th_objmodel.Heap_object
module Device = Th_device.Device
module Serializer = Th_serde.Serializer
module Monitor = Th_resilience.Monitor

type profile = {
  name : string;
  seed : int64;
  batches : int;
  batch_interval_ns : float;
  events_bytes_per_batch : int;
  window : int;
  state_bytes_per_batch : int;
  elems_per_batch : int;
  churn_updates_per_batch : int;
  reads_per_batch : int;
  h1_gb : int;
  dr2_gb : int;
}

let smoke =
  {
    name = "smoke";
    seed = 11L;
    batches = 40;
    batch_interval_ns = 50e6;
    events_bytes_per_batch = Size.kib 256;
    window = 8;
    state_bytes_per_batch = Size.kib 128;
    elems_per_batch = 16;
    churn_updates_per_batch = 4;
    reads_per_batch = 4;
    h1_gb = 2;
    dr2_gb = 1;
  }

(* 2000 batches x 5 simulated seconds of interval = ~2.8 simulated hours
   of service time; the window retains 64 batches (~8 MiB of operator
   state at paper scale), enough live old-generation data to make every
   major GC a real move-to-H2 decision. *)
let soak =
  {
    name = "soak";
    seed = 1031L;
    batches = 2000;
    batch_interval_ns = 5e9;
    events_bytes_per_batch = Size.kib 512;
    window = 64;
    state_bytes_per_batch = Size.kib 128;
    elems_per_batch = 16;
    churn_updates_per_batch = 8;
    reads_per_batch = 8;
    h1_gb = 12;
    dr2_gb = 2;
  }

let by_name = function
  | "smoke" -> Some smoke
  | "soak" -> Some soak
  | _ -> None

(* One retained batch of operator state. [On_heap] groups live in
   H1/H2 under GC management; [Serialized] groups were routed off-heap
   by the breaker and exist only as a byte stream on the device, plus
   [Deferred] groups that could not serialize (their closure contains
   JVM metadata) and simply wait in H1. *)
type slot =
  | On_heap of { root : Obj_.t; batch : int }
  | Serialized of { ser : Serializer.serialized; batch : int }

(* Every 7th batch captures an operator closure (JVM metadata) in its
   state group: that group can never take the serialize fallback, so an
   Open breaker must defer it in H1 — both fallback arms stay exercised. *)
let unserializable_every = 7

let stream_instant rt ~name args =
  let clock = Runtime.clock rt in
  match Clock.tracer clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.instant tr ~ts:(Clock.now_ns clock) ~cat:"stream"
        ~name ~args ()

(* Lineage recomputation cost, as in Block_manager. *)
let recompute_compute_factor = 3.0

let run ?h2_device ?faults ?monitor ~label rt (p : profile) =
  let prng = Prng.create p.seed in
  let chunk = Size.kib 64 in
  let window : slot option array = Array.make (max 1 p.window) None in
  let alive = ref 0 in
  try
    for batch = 0 to p.batches - 1 do
      (* Ingest: a burst of transient event records, dead by the end of
         the batch (young garbage), plus the per-event compute. *)
      for _ = 1 to p.events_bytes_per_batch / chunk do
        ignore (Runtime.alloc rt ~size:chunk ())
      done;
      Runtime.compute rt ~bytes:p.events_bytes_per_batch;

      (* Build this batch's state group: a root holding the windowed
         aggregation elements. *)
      let elems = max 1 p.elems_per_batch in
      let elem_size = max 64 (p.state_bytes_per_batch / elems) in
      let root = Runtime.alloc rt ~size:256 () in
      Runtime.add_root rt root;
      for i = 1 to elems - 1 do
        let kind =
          if
            unserializable_every > 0
            && batch mod unserializable_every = unserializable_every - 1
            && i = 1
          then Obj_.Jvm_metadata
          else Obj_.Data
        in
        let o = Runtime.alloc rt ~kind ~size:elem_size () in
        Runtime.write_ref rt root o
      done;

      (* Route the group: the nominal path tags it for move-to-H2 at the
         next major GC; with the circuit Open the batch goes to the
         serialize-to-offheap fallback, or stays deferred in H1 when its
         closure cannot serialize. *)
      let slot =
        match monitor with
        | Some m when not (Monitor.h2_allowed m) -> (
            match Serializer.serialize rt root with
            | ser ->
                Monitor.note_fallback m ~bytes:ser.Serializer.bytes;
                stream_instant rt ~name:"batch_offheap"
                  [
                    ("batch", Th_trace.Event.Int batch);
                    ("bytes", Th_trace.Event.Int ser.Serializer.bytes);
                  ];
                (match h2_device with
                | Some d ->
                    Device.write d ~cat:Clock.Serde_io ~random:false
                      ser.Serializer.bytes
                | None -> ());
                (* The heap copy is dropped: garbage at the next GC. *)
                Runtime.remove_root rt root;
                Serialized { ser; batch }
            | exception Serializer.Not_serializable _ ->
                Monitor.note_deferred m;
                stream_instant rt ~name:"batch_deferred"
                  [ ("batch", Th_trace.Event.Int batch) ];
                On_heap { root; batch })
        | _ ->
            (* Site 0: every batch root is the same logical allocation
               site even though each gets a fresh batch-numbered label. *)
            Runtime.h2_tag_root rt ~site:0 root ~label:batch;
            Runtime.h2_move rt ~label:batch;
            On_heap { root; batch }
      in

      (* Expire the oldest batch, then retain this one. *)
      let idx = batch mod Array.length window in
      (match window.(idx) with
      | Some (On_heap { root; _ }) ->
          Runtime.remove_root rt root;
          decr alive
      | Some (Serialized _) -> decr alive
      | None -> ());
      window.(idx) <- Some slot;
      incr alive;

      (* Slow churn: in-place updates against random retained batches —
         read-modify-writes once the victim has moved to H2 (§7.2). *)
      for _ = 1 to p.churn_updates_per_batch do
        match window.(Prng.int prng (Array.length window)) with
        | Some (On_heap { root; _ }) -> Runtime.update_obj rt root
        | Some (Serialized _) | None -> ()
      done;

      (* Serve point reads against the window. Serialized batches pay a
         checked device read plus deserialization; a read that exhausts
         its retries (or trips the watchdog) fails over to lineage
         recomputation, as in Block_manager. *)
      for _ = 1 to p.reads_per_batch do
        match window.(Prng.int prng (Array.length window)) with
        | Some (On_heap { root; _ }) -> Runtime.read_obj rt root
        | Some (Serialized { ser; _ }) ->
            let group =
              match h2_device with
              | None -> Serializer.deserialize rt ser
              | Some d -> (
                  match
                    Device.read d ~checked:true ~cat:Clock.Serde_io
                      ~random:false ser.Serializer.bytes
                  with
                  | () -> Serializer.deserialize rt ser
                  | exception Th_device.Io_retry.Io_error _ ->
                      (match faults with
                      | Some f -> Fault.note_recompute f
                      | None -> ());
                      stream_instant rt ~name:"recompute"
                        [ ("bytes", Th_trace.Event.Int ser.Serializer.bytes) ];
                      Runtime.compute rt
                        ~bytes:
                          (int_of_float
                             (recompute_compute_factor
                             *. float_of_int ser.Serializer.bytes));
                      Serializer.rebuild rt ser)
            in
            Runtime.remove_root rt group
        | None -> ()
      done;

      (* Idle to the next batch boundary: this is what stretches the run
         to service horizons, and what lets breaker cooldowns elapse. *)
      Clock.advance (Runtime.clock rt) Clock.Other p.batch_interval_ns;
      match monitor with Some m -> Monitor.sample m | None -> ()
    done;
    Run_result.ok ~label rt ?h2_device ?faults ?monitor ()
  with
  | Runtime.Out_of_memory reason ->
      Run_result.oom ~reason ?h2_device ?faults ?monitor ~label rt
  | Th_core.H2.Out_of_h2_space ->
      Run_result.oom ~reason:"H2 exhausted" ?h2_device ?faults ?monitor ~label
        rt
