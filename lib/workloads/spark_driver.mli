(** Executes a Spark workload profile against a configured context.

    Phases: (1) generate the input and cache the working RDD via
    [persist()]; (2) run the iterative computation, each iteration reading
    every cached partition, shuffling and producing transient records;
    workloads with churn re-cache a new RDD generation periodically and
    unpersist the previous one. *)

val run :
  ?dataset_scale:float ->
  ?h2_device:Th_device.Device.t ->
  ?faults:Th_sim.Fault.t ->
  label:string ->
  Th_spark.Context.t ->
  Spark_profiles.t ->
  Run_result.t
(** [dataset_scale] multiplies the dataset size (Figure 12c sizes the
    inputs to Panthera's 64 GB heap; Figure 13b grows them).
    Out-of-memory conditions are caught and reported as an OOM result,
    matching the paper's missing bars. [h2_device] and [faults] are
    recorded in the result (fault counters decide between the
    [Completed] and [Degraded] outcomes). *)
