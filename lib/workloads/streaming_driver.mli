(** Long-horizon micro-batch streaming workload (ROADMAP item 5).

    Models a stateful streaming service of the Spark-Streaming shape:
    every micro-batch ingests a burst of transient events, appends a
    block of windowed operator state (aggregations over the last
    [window] batches), slowly churns older state in place, serves reads
    against the window, expires the oldest batch, and then idles until
    the next batch interval — so a run spans hours of {e simulated} time
    while the allocator sees a steady old-generation churn that exercises
    move-to-H2 on every major GC.

    Retained state is the promotion candidate: each batch's state group
    is tagged and moved to H2 (the TeraHeap path). When a resilience
    {!Th_resilience.Monitor} is attached and its circuit breaker is Open,
    the driver routes the batch to the serialize-to-offheap fallback
    (sequential stream write, cheaper for a sick device than scattered
    moves plus later read-modify-writes) or, if the group is not
    serializable, defers it in H1 — the "Rock and Hard Place" frontier,
    chosen per batch by device health rather than fixed per run.

    The run is judged like a service, not a job: pause-time tails over
    every GC cycle (via {!Th_metrics.Cdf.percentile}) and SLO compliance
    land in the {!Run_result}'s resilience summary. *)

type profile = {
  name : string;
  seed : int64;  (** drives slot selection for churn and reads *)
  batches : int;
  batch_interval_ns : float;
      (** idle simulated time appended after each batch *)
  events_bytes_per_batch : int;  (** transient ingest, dead within a batch *)
  window : int;  (** batches of operator state retained *)
  state_bytes_per_batch : int;  (** retained state appended per batch *)
  elems_per_batch : int;  (** objects the state block is split into *)
  churn_updates_per_batch : int;
      (** in-place updates against random retained batches *)
  reads_per_batch : int;  (** point reads against random retained batches *)
  h1_gb : int;  (** H1 capacity (paper GB) the profile is sized for *)
  dr2_gb : int;  (** H2 page-cache DRAM (paper GB) *)
}

val smoke : profile
(** Small profile for tests and CI smoke runs (~2 simulated seconds). *)

val soak : profile
(** Long-horizon chaos-soak profile (~2.8 simulated hours). *)

val by_name : string -> profile option
(** ["smoke"] or ["soak"]. *)

val run :
  ?h2_device:Th_device.Device.t ->
  ?faults:Th_sim.Fault.t ->
  ?monitor:Th_resilience.Monitor.t ->
  label:string ->
  Th_psgc.Runtime.t ->
  profile ->
  Run_result.t
(** Run the workload. [monitor] (attach it {e after}
    {!Th_verify.Verify.attach}) enables breaker-driven routing and is
    sampled at every batch boundary in addition to GC safepoints;
    without it every batch takes the move-to-H2 path. [Out_of_memory]
    and H2 exhaustion are captured as {!Run_result.oom}. *)
