(** Safepoint heap-state sanitizer for H1/H2 — the simulator's analogue
    of HotSpot's [-XX:+VerifyBeforeGC/AfterGC].

    Attached to a runtime, the sanitizer re-derives the cross-structure
    invariants the TeraHeap design relies on (§3.3–§3.4) at every GC
    safepoint and reports divergences as structured {!violation} records
    instead of aborting:

    - {b rset-completeness} — every old-generation object with a young
      reference sits on a dirty H1 card, and the card-indexed remembered
      set holds exactly the old generation (so the [Card_buckets] walk
      and the [Linear_scan] oracle visit the same objects);
    - {b h2-card-legality} — every H2 object with a backward reference is
      covered by a card segment whose state gets it scanned;
    - {b h2-card-transition} — only legal 4-state card transitions occur
      (recorded online through {!Th_core.H2_card_table}'s hook);
    - {b dependency-soundness} — every cross-region H2 reference is in
      the source region's dependency list (or Union-Find group), and no
      reference or dependency targets a reclaimed region;
    - {b region-accounting} — space counters match per-object sums, H2
      region allocation pointers replay, the {!Th_psgc.Heap_census}
      agrees, and reclaimed regions are really empty;
    - {b reachability} ([Paranoid] only) — a from-scratch reachability
      census finds no freed or reclaimed-region object;
    - {b conservation} — the clock, device and page-cache counters only
      ever grow, and the page cache respects its capacity.

    The sanitizer is purely observational: it never advances the
    simulated clock nor touches the device or page cache, so a verified
    run's output is byte-identical to an unverified one. *)

type level =
  | Off
  | Safepoint  (** all structural rules at every GC safepoint *)
  | Paranoid  (** [Safepoint] plus the full reachability census *)

val level_of_string : string -> level option

val level_to_string : level -> string

type rule =
  | Rset_completeness
  | H2_card_legality
  | H2_card_transition
  | Dependency_soundness
  | Region_accounting
  | Reachability
  | Conservation

val rule_id : rule -> string
(** Stable kebab-case identifier, e.g. ["rset-completeness"]. *)

type phase =
  | Before_minor
  | After_minor
  | Before_major
  | After_major
  | Online  (** recorded by the card-table transition hook mid-run *)
  | Manual  (** a {!check_now} call *)

val phase_name : phase -> string

type violation = {
  rule : rule;
  phase : phase;
  detail : string;
  object_id : int option;
  region : int option;
  card : int option;
}

type t

val attach : Th_psgc.Runtime.t -> level -> t
(** Install the sanitizer on a runtime: hooks the GC safepoints and, when
    an H2 is present, the H2 card table's transition recorder. With
    [Off], installs nothing and never checks. The same verifier instance
    accumulates violations for the whole run. *)

val check_now : t -> unit
(** Run all checks immediately (phase [Manual]); useful at end of run. *)

val violations : t -> violation list

val violation_count : t -> int

val pp_violation : Format.formatter -> violation -> unit

val report : t -> string
(** Multi-line human-readable summary of all recorded violations. *)
