open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Roots = Th_objmodel.Roots
module Card_table = Th_minijvm.Card_table
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module H2_card_table = Th_core.H2_card_table
module Device = Th_device.Device
module Page_cache = Th_device.Page_cache
module Rt = Th_psgc.Rt
module Heap_census = Th_psgc.Heap_census

type level = Off | Safepoint | Paranoid

let level_of_string = function
  | "off" -> Some Off
  | "safepoint" -> Some Safepoint
  | "paranoid" -> Some Paranoid
  | _ -> None

let level_to_string = function
  | Off -> "off"
  | Safepoint -> "safepoint"
  | Paranoid -> "paranoid"

type rule =
  | Rset_completeness
  | H2_card_legality
  | H2_card_transition
  | Dependency_soundness
  | Region_accounting
  | Reachability
  | Conservation

let rule_id = function
  | Rset_completeness -> "rset-completeness"
  | H2_card_legality -> "h2-card-legality"
  | H2_card_transition -> "h2-card-transition"
  | Dependency_soundness -> "dependency-soundness"
  | Region_accounting -> "region-accounting"
  | Reachability -> "reachability"
  | Conservation -> "conservation"

type phase =
  | Before_minor
  | After_minor
  | Before_major
  | After_major
  | Online
  | Manual

let phase_name = function
  | Before_minor -> "before-minor"
  | After_minor -> "after-minor"
  | Before_major -> "before-major"
  | After_major -> "after-major"
  | Online -> "online"
  | Manual -> "manual"

type violation = {
  rule : rule;
  phase : phase;
  detail : string;
  object_id : int option;
  region : int option;
  card : int option;
}

type t = {
  rt : Rt.t;
  level : level;
  violations : violation Vec.t;
  (* Everything monotone between safepoints, captured at the previous
     one. The capture and the monotonicity rules live in
     [Counters] / {!Th_trace.Snapshot} so the trace rollup checks the
     same counters the sanitizer watches. *)
  mutable last : Th_trace.Snapshot.t option;
}

let violations t = Vec.to_list t.violations

let violation_count t = Vec.length t.violations

let add t ~rule ~phase ?object_id ?region ?card detail =
  Vec.push t.violations { rule; phase; detail; object_id; region; card }

let pp_violation f v =
  Format.fprintf f "[%s] %s: %s" (rule_id v.rule) (phase_name v.phase) v.detail;
  (match v.object_id with
  | Some id -> Format.fprintf f " (object #%d)" id
  | None -> ());
  (match v.region with
  | Some r -> Format.fprintf f " (region %d)" r
  | None -> ());
  match v.card with Some c -> Format.fprintf f " (card %d)" c | None -> ()

let report t =
  let b = Buffer.create 256 in
  let f = Format.formatter_of_buffer b in
  Format.fprintf f "heap-state sanitizer: %d violation(s)@."
    (Vec.length t.violations);
  Vec.iter (fun v -> Format.fprintf f "  %a@." pp_violation v) t.violations;
  Format.pp_print_flush f ();
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Rule 1: remembered-set completeness (H1 cards + bucket index)       *)

let has_young_ref o =
  let found = ref false in
  Obj_.iter_refs (fun c -> if Obj_.is_young c then found := true) o;
  !found

let check_rset t phase =
  let heap = t.rt.Rt.heap in
  let cards = heap.H1_heap.cards in
  let csize = Card_table.card_size cards in
  let ncards = Card_table.num_cards cards in
  let in_bucket card (o : Obj_.t) =
    let found = ref false in
    Card_table.iter_card_objects cards ~card (fun x ->
        if x == o then found := true);
    !found
  in
  Vec.iter
    (fun (o : Obj_.t) ->
      if o.Obj_.loc = Obj_.Old then begin
        let card = o.Obj_.addr / csize in
        (* Out-of-range addresses are transiently possible right after a
           major GC whose survivors overflowed the old generation (the
           collector raises Out_of_memory immediately afterwards); the
           card table skips them too. *)
        if card >= 0 && card < ncards then begin
          if has_young_ref o && not (Card_table.is_dirty cards ~card) then
            add t ~rule:Rset_completeness ~phase ~object_id:o.Obj_.id ~card
              "old object with a young reference on a clean card";
          if not (in_bucket card o) then
            add t ~rule:Rset_completeness ~phase ~object_id:o.Obj_.id ~card
              "old object missing from its card's remembered-set bucket"
        end
      end)
    heap.H1_heap.old_objs;
  (* Bucket totals vs the linear sweep: every registered object must be an
     old-generation resident, and the index must hold exactly the old
     generation — the Card_buckets walk and the Linear_scan oracle then
     necessarily visit the same objects. *)
  let bucket_total = ref 0 in
  for card = 0 to ncards - 1 do
    bucket_total := !bucket_total + Card_table.card_object_count cards ~card;
    Card_table.iter_card_objects cards ~card (fun o ->
        if o.Obj_.loc <> Obj_.Old then
          add t ~rule:Rset_completeness ~phase ~object_id:o.Obj_.id ~card
            "remembered-set bucket holds a non-old-generation object"
        else if o.Obj_.addr / csize <> card then
          add t ~rule:Rset_completeness ~phase ~object_id:o.Obj_.id ~card
            "remembered-set bucket holds an object of a different card")
  done;
  let old_count = Vec.length heap.H1_heap.old_objs in
  if !bucket_total <> old_count then
    add t ~rule:Rset_completeness ~phase
      (Printf.sprintf
         "remembered-set index holds %d objects, old generation has %d"
         !bucket_total old_count)

(* ------------------------------------------------------------------ *)
(* Rule 2: H2 card-state legality                                      *)

(* An object's backward references are scanned if *any* segment it
   overlaps is in a scanned state: the per-segment buckets register the
   object under every overlapped segment, and the write barrier dirties
   only the start segment. The check is therefore existential over the
   object's segment range, exactly matching scan coverage. *)
let check_h2_cards t phase h2 =
  let cfg = H2.config h2 in
  let cards = H2.card_table h2 in
  let nsegs = H2_card_table.num_segments cards in
  let seg_size = cfg.H2.card_segment_size in
  H2.iter_region_views h2 (fun (rv : H2.region_view) ->
      if rv.H2.view_label >= 0 then
        Vec.iter
          (fun (o : Obj_.t) ->
            let to_young = ref false and to_old = ref false in
            Obj_.iter_refs
              (fun c ->
                match c.Obj_.loc with
                | Obj_.Eden | Obj_.Survivor -> to_young := true
                | Obj_.Old -> to_old := true
                | Obj_.In_h2 | Obj_.Freed -> ())
              o;
            if !to_young || !to_old then begin
              let gstart =
                (rv.H2.view_idx * cfg.H2.region_size) + o.Obj_.addr
              in
              let s0 = max 0 (gstart / seg_size) in
              let s1 =
                min (nsegs - 1) ((gstart + Obj_.total_size o - 1) / seg_size)
              in
              let scanned_minor = ref false and non_clean = ref false in
              for s = s0 to s1 do
                match H2_card_table.state cards ~seg:s with
                | H2_card_table.Dirty | H2_card_table.Young_gen ->
                    scanned_minor := true;
                    non_clean := true
                | H2_card_table.Old_gen -> non_clean := true
                | H2_card_table.Clean -> ()
              done;
              if !to_young && not !scanned_minor then
                add t ~rule:H2_card_legality ~phase ~object_id:o.Obj_.id
                  ~region:rv.H2.view_idx ~card:s0
                  "H2 object with a young backward reference covered by no \
                   dirty/youngGen segment";
              if (not !to_young) && !to_old && not !non_clean then
                add t ~rule:H2_card_legality ~phase ~object_id:o.Obj_.id
                  ~region:rv.H2.view_idx ~card:s0
                  "H2 object with an old backward reference covered only by \
                   clean segments"
            end)
          rv.H2.view_objects)

(* Rule 2b: transition legality, recorded online by the card-table hook.
   [Recompute] legality is judged on the state the collector *requested*
   (sticky boundary cards may keep [Dirty] lawfully): a recompute never
   targets [Dirty], never runs on a [Clean] card (the scan iterators skip
   them), and never upgrades [Old_gen] to [Young_gen] — right after the
   only recompute that visits [Old_gen] cards (major GC), no young
   objects exist. *)
let check_transition t ~seg ~before ~after event =
  let bad detail = add t ~rule:H2_card_transition ~phase:Online ~card:seg detail in
  match event with
  | H2_card_table.Barrier_dirty ->
      if after <> H2_card_table.Dirty then
        bad "write barrier left the card in a non-dirty state"
  | H2_card_table.Bulk_clear ->
      if after <> H2_card_table.Clean then
        bad "bulk region reclamation left the card non-clean"
  | H2_card_table.Recompute target -> (
      if before = H2_card_table.Clean then
        bad "card recompute ran on a clean card";
      if target = H2_card_table.Dirty then
        bad "card recompute targeted the dirty state";
      match (before, target) with
      | H2_card_table.Old_gen, H2_card_table.Young_gen ->
          bad "card recompute upgraded oldGen to youngGen"
      | ( ( H2_card_table.Clean | H2_card_table.Dirty
          | H2_card_table.Young_gen | H2_card_table.Old_gen ),
          ( H2_card_table.Clean | H2_card_table.Dirty
          | H2_card_table.Young_gen | H2_card_table.Old_gen ) ) ->
          ())

(* ------------------------------------------------------------------ *)
(* Rule 3: dependency-list soundness                                   *)

let check_deps t phase h2 =
  let heap = t.rt.Rt.heap in
  let mode = (H2.config h2).H2.reclaim_mode in
  let active region = H2.label_of_region h2 ~region >= 0 in
  H2.iter_region_views h2 (fun (rv : H2.region_view) ->
      if rv.H2.view_label >= 0 then begin
        let src = rv.H2.view_idx in
        List.iter
          (fun d ->
            if not (active d) then
              add t ~rule:Dependency_soundness ~phase ~region:src
                (Printf.sprintf "dependency list targets reclaimed region %d" d))
          rv.H2.view_deps;
        Vec.iter
          (fun (o : Obj_.t) ->
            Obj_.iter_refs
              (fun c ->
                match c.Obj_.loc with
                | Obj_.In_h2 when c.Obj_.h2_region <> src ->
                    let dst = c.Obj_.h2_region in
                    if not (active dst) then
                      add t ~rule:Dependency_soundness ~phase
                        ~object_id:o.Obj_.id ~region:src
                        (Printf.sprintf
                           "cross-region reference into reclaimed region %d" dst)
                    else begin
                      match mode with
                      | H2.Dependency_lists ->
                          if not (List.mem dst rv.H2.view_deps) then
                            add t ~rule:Dependency_soundness ~phase
                              ~object_id:o.Obj_.id ~region:src
                              (Printf.sprintf
                                 "cross-region reference to region %d missing \
                                  from the dependency list" dst)
                      | H2.Region_groups ->
                          if not (H2.in_same_group h2 ~a:src ~b:dst) then
                            add t ~rule:Dependency_soundness ~phase
                              ~object_id:o.Obj_.id ~region:src
                              (Printf.sprintf
                                 "cross-region reference to region %d outside \
                                  the Union-Find group" dst)
                    end
                | Obj_.Freed ->
                    add t ~rule:Dependency_soundness ~phase ~object_id:o.Obj_.id
                      ~region:src
                      (Printf.sprintf "H2 object references freed object #%d"
                         c.Obj_.id)
                | Obj_.In_h2 | Obj_.Eden | Obj_.Survivor | Obj_.Old -> ())
              o)
          rv.H2.view_objects
      end);
  (* Forward-reference coverage: a live H1 resident must never point into
     a reclaimed region — region liveness is driven by exactly these
     references plus the dependency lists (§3.3). *)
  let check_h1 (o : Obj_.t) =
    Obj_.iter_refs
      (fun c ->
        if c.Obj_.loc = Obj_.In_h2 && not (active c.Obj_.h2_region) then
          add t ~rule:Dependency_soundness ~phase ~object_id:o.Obj_.id
            ~region:c.Obj_.h2_region
            "H1 object holds a forward reference into a reclaimed region")
      o
  in
  Vec.iter check_h1 heap.H1_heap.eden;
  Vec.iter check_h1 heap.H1_heap.survivor;
  Vec.iter check_h1 heap.H1_heap.old_objs

(* ------------------------------------------------------------------ *)
(* Rule 4: region and space accounting                                 *)

let align8 n = (n + 7) land lnot 7

let check_accounting t phase =
  let heap = t.rt.Rt.heap in
  let sum_space name vec expected_loc used by_footprint =
    let sum = ref 0 in
    Vec.iter
      (fun (o : Obj_.t) ->
        if o.Obj_.loc <> expected_loc then
          add t ~rule:Region_accounting ~phase ~object_id:o.Obj_.id
            (Printf.sprintf "%s vector holds an object located elsewhere" name)
        else
          sum :=
            !sum + (if by_footprint then Obj_.footprint o else Obj_.total_size o))
      vec;
    if !sum <> used then
      add t ~rule:Region_accounting ~phase
        (Printf.sprintf "%s accounting: used=%d, object sum=%d" name used !sum)
  in
  sum_space "eden" heap.H1_heap.eden Obj_.Eden heap.H1_heap.eden_used false;
  sum_space "survivor" heap.H1_heap.survivor Obj_.Survivor
    heap.H1_heap.survivor_used false;
  sum_space "old" heap.H1_heap.old_objs Obj_.Old heap.H1_heap.old_used true;
  (* The census recomputes H1 composition from scratch; its total must
     match an independent sum over the space vectors. *)
  let census = Heap_census.of_runtime t.rt in
  let vec_total =
    let s = ref 0 in
    let addv (o : Obj_.t) = s := !s + Obj_.total_size o in
    Vec.iter addv heap.H1_heap.eden;
    Vec.iter addv heap.H1_heap.survivor;
    Vec.iter addv heap.H1_heap.old_objs;
    !s
  in
  if Heap_census.total_bytes census <> vec_total then
    add t ~rule:Region_accounting ~phase
      (Printf.sprintf "heap census total %d disagrees with space vectors %d"
         (Heap_census.total_bytes census) vec_total);
  match t.rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      let cfg = H2.config h2 in
      let top_sum = ref 0 in
      H2.iter_region_views h2 (fun (rv : H2.region_view) ->
          let region = rv.H2.view_idx in
          if rv.H2.view_label >= 0 then begin
            top_sum := !top_sum + rv.H2.view_top;
            (* Replay the bump allocator over the address-ordered object
               vector: addresses and the allocation pointer must agree. *)
            let expected = ref 0 in
            Vec.iter
              (fun (o : Obj_.t) ->
                if o.Obj_.loc <> Obj_.In_h2 then
                  add t ~rule:Region_accounting ~phase ~object_id:o.Obj_.id
                    ~region "region vector holds an object not located in H2"
                else begin
                  if o.Obj_.h2_region <> region then
                    add t ~rule:Region_accounting ~phase ~object_id:o.Obj_.id
                      ~region "region vector holds an object of another region";
                  if o.Obj_.addr <> !expected then
                    add t ~rule:Region_accounting ~phase ~object_id:o.Obj_.id
                      ~region
                      (Printf.sprintf
                         "object address %d breaks the bump sequence \
                          (expected %d)" o.Obj_.addr !expected);
                  expected := !expected + align8 (Obj_.total_size o)
                end)
              rv.H2.view_objects;
            if !expected <> rv.H2.view_top then
              add t ~rule:Region_accounting ~phase ~region
                (Printf.sprintf "region top %d, object sum %d" rv.H2.view_top
                   !expected);
            if rv.H2.view_top > cfg.H2.region_size then
              add t ~rule:Region_accounting ~phase ~region
                "allocation pointer beyond the region size"
          end
          else begin
            if
              rv.H2.view_top <> 0
              || Vec.length rv.H2.view_objects <> 0
              || rv.H2.view_deps <> []
            then
              add t ~rule:Region_accounting ~phase ~region
                "reclaimed region retains objects, space or dependencies";
            if rv.H2.view_live then
              add t ~rule:Region_accounting ~phase ~region
                "reclaimed region carries a live bit"
          end);
      if H2.used_bytes h2 <> !top_sum then
        add t ~rule:Region_accounting ~phase
          (Printf.sprintf "H2 used_bytes %d disagrees with region tops %d"
             (H2.used_bytes h2) !top_sum);
      List.iter
        (fun r ->
          if H2.label_of_region h2 ~region:r >= 0 then
            add t ~rule:Region_accounting ~phase ~region:r
              "free-list region carries a label")
        (H2.free_region_list h2)

(* ------------------------------------------------------------------ *)
(* Rule 6 (Paranoid): from-scratch reachability census                 *)

let check_reachability t phase =
  let roots = Roots.to_list t.rt.Rt.roots in
  let reach = Obj_.reachable ~roots ~fence_h2:false in
  (* Order-insensitive: ids are collected and sorted before checking, so
     the violation order never depends on hash iteration.
     th-lint: allow hashtbl-order *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) reach [] in
  List.iter
    (fun id ->
      let o = Hashtbl.find reach id in
      if Obj_.is_freed o then
        add t ~rule:Reachability ~phase ~object_id:id
          "reachable object is marked freed"
      else if o.Obj_.loc = Obj_.In_h2 then
        match t.rt.Rt.h2 with
        | None ->
            add t ~rule:Reachability ~phase ~object_id:id
              "reachable object located in H2 but no H2 heap is attached"
        | Some h2 ->
            if H2.label_of_region h2 ~region:o.Obj_.h2_region < 0 then
              add t ~rule:Reachability ~phase ~object_id:id
                ~region:o.Obj_.h2_region
                "reachable H2 object lives in a reclaimed region")
    (List.sort Int.compare ids)

(* ------------------------------------------------------------------ *)
(* Rule 5: conservation (monotone counters, clock consistency)         *)

let check_conservation t phase =
  let clock = t.rt.Rt.clock in
  let now = Clock.now_ns clock in
  let bd = Clock.breakdown clock in
  if Float.abs (now -. Clock.total_ns bd) > 1e-3 then
    add t ~rule:Conservation ~phase
      "clock total disagrees with its per-category breakdown";
  (match t.rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      let cache = H2.page_cache h2 in
      if Page_cache.resident_pages cache > Page_cache.capacity_pages cache then
        add t ~rule:Conservation ~phase
          "page cache holds more pages than its capacity");
  let current = Counters.capture t.rt in
  (match t.last with
  | None -> ()
  | Some last ->
      List.iter
        (fun detail -> add t ~rule:Conservation ~phase detail)
        (Th_trace.Snapshot.monotone ~earlier:last ~later:current));
  t.last <- Some current

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let run_checks t phase =
  check_rset t phase;
  (match t.rt.Rt.h2 with
  | None -> ()
  | Some h2 ->
      check_h2_cards t phase h2;
      check_deps t phase h2);
  check_accounting t phase;
  if t.level = Paranoid then check_reachability t phase;
  check_conservation t phase

let phase_of_safepoint = function
  | Rt.Before_minor -> Before_minor
  | Rt.After_minor -> After_minor
  | Rt.Before_major -> Before_major
  | Rt.After_major -> After_major

let check_now t = run_checks t Manual

let attach rt level =
  let t = { rt; level; violations = Vec.create (); last = None } in
  if level <> Off then begin
    rt.Rt.safepoint_hook <- Some (fun p -> run_checks t (phase_of_safepoint p));
    match rt.Rt.h2 with
    | None -> ()
    | Some h2 ->
        H2_card_table.set_transition_hook (H2.card_table h2)
          (Some
             (fun ~seg ~before ~after event ->
               check_transition t ~seg ~before ~after event))
  end;
  t
