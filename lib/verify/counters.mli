(** Capture a runtime's cumulative counters as a plain-data
    {!Th_trace.Snapshot.t}.

    This is the single place the clock breakdown, device traffic and
    page-cache statistics are read out for cross-checking: the
    {!Verify} conservation rule diffs successive captures with
    {!Th_trace.Snapshot.monotone}, and the trace tests hand a final
    capture to {!Th_trace.Rollup.check_against}. *)

val capture : Th_psgc.Rt.t -> Th_trace.Snapshot.t
(** Device and cache fields are [None] when the runtime has no H2 heap
    attached. *)
