module Clock = Th_sim.Clock
module Device = Th_device.Device
module Page_cache = Th_device.Page_cache
module H2 = Th_core.H2
module Rt = Th_psgc.Rt

let capture (rt : Rt.t) : Th_trace.Snapshot.t =
  let bd = Clock.breakdown rt.Rt.clock in
  let device =
    match rt.Rt.h2 with
    | None -> None
    | Some h2 ->
        let s = Device.stats (H2.device h2) in
        Some
          {
            Th_trace.Snapshot.bytes_read = s.Device.bytes_read;
            bytes_written = s.Device.bytes_written;
            read_ops = s.Device.read_ops;
            write_ops = s.Device.write_ops;
          }
  in
  let cache =
    match rt.Rt.h2 with
    | None -> None
    | Some h2 ->
        let s = Page_cache.stats (H2.page_cache h2) in
        Some
          {
            Th_trace.Snapshot.hits = s.Page_cache.hits;
            misses = s.Page_cache.misses;
            evictions = s.Page_cache.evictions;
            writebacks = s.Page_cache.writebacks;
          }
  in
  {
    Th_trace.Snapshot.now_ns = Clock.now_ns rt.Rt.clock;
    other_ns = bd.Clock.other_ns;
    serde_io_ns = bd.Clock.serde_io_ns;
    minor_gc_ns = bd.Clock.minor_gc_ns;
    major_gc_ns = bd.Clock.major_gc_ns;
    device;
    cache;
  }
