(** Simulated Java objects.

    An object is a node of a mutable reference graph with a size in bytes, a
    location (which simulated space holds it), and the extra 8-byte header
    word TeraHeap adds for the H2 label (§3.2). Reference stores go through
    the runtime's write barrier ({!Th_minijvm}); this module only holds
    state and raw graph edits. *)

type kind =
  | Data  (** ordinary framework data *)
  | Array_data  (** large backing arrays; G1 humongous candidates *)
  | Jvm_metadata
      (** class objects / class loader — excluded from H2 closures (§3.2) *)
  | Weak_reference
      (** [java.lang.ref.Reference] subclasses — excluded from H2 closures *)
  | Temp  (** serializer temporaries and other short-lived garbage *)

type location =
  | Eden
  | Survivor
  | Old  (** address in [addr] *)
  | In_h2  (** region in [h2_region], address in [addr] *)
  | Freed  (** reclaimed by the simulated collector; access is a bug *)

type t = {
  id : int;
  kind : kind;
  size : int;  (** bytes, including the header *)
  mutable refs : t array;
  mutable nrefs : int;
  mutable loc : location;
  mutable addr : int;  (** byte offset in old gen or within its H2 region *)
  mutable h2_region : int;  (** region index, or -1 *)
  mutable label : int;  (** TeraHeap label header word, or -1 *)
  mutable site : int;
      (** allocation site of the tag that labelled this object (an
          identifier stable across runs of the same workload), or -1;
          placement policies key lifetime profiles on it *)
  mutable age : int;  (** minor GCs survived *)
  mutable mark : int;  (** liveness mark epoch *)
  mutable closure_mark : int;  (** H2-candidate tag epoch *)
  mutable new_addr : int;  (** forwarding address set by precompaction *)
  mutable root_pin : int;  (** times registered as a GC root *)
  mutable region_slack : int;
      (** unusable space pinned by this object under region-based
          allocators: the tail of a G1 humongous region (§7.1) *)
}

val header_bytes : int
(** Vanilla object header size (16 B: mark word + klass pointer). *)

val label_word_bytes : int
(** TeraHeap's extra header field (8 B, §3.2). *)

val create : ?kind:kind -> id:int -> size:int -> unit -> t
(** A fresh object located in [Eden] with no references. [size] is the
    payload size; the header is added on top. *)

val total_size : t -> int
(** Payload plus headers. *)

val footprint : t -> int
(** [total_size] plus {!field-region_slack}: the heap space the object
    actually pins. *)

val add_ref : t -> t -> unit
(** [add_ref parent child] appends an outgoing reference. Raw edit — the
    runtime write barrier must be invoked separately. *)

val set_ref : t -> int -> t -> unit
(** [set_ref parent i child] overwrites reference slot [i]. *)

val remove_ref : t -> t -> unit
(** Remove the first reference to the given child, if any. *)

val clear_refs : t -> unit

val iter_refs : (t -> unit) -> t -> unit

val ref_count : t -> int

val refs_list : t -> t list

val is_young : t -> bool

val is_in_h1 : t -> bool

val is_freed : t -> bool

val excluded_from_closure : t -> bool
(** True for JVM metadata and [Reference]-inheriting objects (§3.2). *)

val reachable : roots:t list -> fence_h2:bool -> (int, t) Hashtbl.t
(** Oracle reachability: all objects reachable from [roots]. With
    [fence_h2], traversal does not continue through objects living in H2
    (mirrors the collector's fencing). Used by tests as ground truth. *)

val pp : Format.formatter -> t -> unit
