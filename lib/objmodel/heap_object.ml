type kind = Data | Array_data | Jvm_metadata | Weak_reference | Temp

type location = Eden | Survivor | Old | In_h2 | Freed

type t = {
  id : int;
  kind : kind;
  size : int;
  mutable refs : t array;
  mutable nrefs : int;
  mutable loc : location;
  mutable addr : int;
  mutable h2_region : int;
  mutable label : int;
  mutable site : int;
  mutable age : int;
  mutable mark : int;
  mutable closure_mark : int;
  mutable new_addr : int;
  mutable root_pin : int;
  mutable region_slack : int;
}

let header_bytes = 16

let label_word_bytes = 8

let create ?(kind = Data) ~id ~size () =
  if size < 0 then invalid_arg "Heap_object.create: negative size";
  {
    id;
    kind;
    size;
    refs = [||];
    nrefs = 0;
    loc = Eden;
    addr = -1;
    h2_region = -1;
    label = -1;
    site = -1;
    age = 0;
    mark = 0;
    closure_mark = 0;
    new_addr = -1;
    root_pin = 0;
    region_slack = 0;
  }

let total_size t = t.size + header_bytes + label_word_bytes

let footprint t = total_size t + t.region_slack

let grow_refs t =
  let cap = Array.length t.refs in
  let cap' = if cap = 0 then 2 else cap * 2 in
  let refs' = Array.make cap' t in
  Array.blit t.refs 0 refs' 0 t.nrefs;
  t.refs <- refs'

let add_ref parent child =
  if parent.nrefs = Array.length parent.refs then grow_refs parent;
  parent.refs.(parent.nrefs) <- child;
  parent.nrefs <- parent.nrefs + 1

let set_ref parent i child =
  if i < 0 || i >= parent.nrefs then invalid_arg "Heap_object.set_ref";
  parent.refs.(i) <- child

let remove_ref parent child =
  let rec find i = if i >= parent.nrefs then -1
    else if parent.refs.(i) == child then i
    else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    for j = i to parent.nrefs - 2 do
      parent.refs.(j) <- parent.refs.(j + 1)
    done;
    parent.nrefs <- parent.nrefs - 1
  end

let clear_refs t = t.nrefs <- 0

let iter_refs f t =
  for i = 0 to t.nrefs - 1 do
    f t.refs.(i)
  done

let ref_count t = t.nrefs

let refs_list t =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) (t.refs.(i) :: acc)
  in
  loop (t.nrefs - 1) []

let is_young t = match t.loc with Eden | Survivor -> true | Old | In_h2 | Freed -> false

let is_in_h1 t = match t.loc with Eden | Survivor | Old -> true | In_h2 | Freed -> false

let is_freed t = t.loc = Freed

let excluded_from_closure t =
  match t.kind with
  | Jvm_metadata | Weak_reference -> true
  | Data | Array_data | Temp -> false

let reachable ~roots ~fence_h2 =
  let seen : (int, t) Hashtbl.t = Hashtbl.create 1024 in
  let stack = Stack.create () in
  let visit o =
    if not (Hashtbl.mem seen o.id) then begin
      Hashtbl.replace seen o.id o;
      Stack.push o stack
    end
  in
  List.iter visit roots;
  while not (Stack.is_empty stack) do
    let o = Stack.pop stack in
    let fenced = fence_h2 && o.loc = In_h2 in
    if not fenced then iter_refs visit o
  done;
  seen

let pp f t =
  let loc =
    match t.loc with
    | Eden -> "eden"
    | Survivor -> "survivor"
    | Old -> Printf.sprintf "old@%d" t.addr
    | In_h2 -> Printf.sprintf "h2[r%d]@%d" t.h2_region t.addr
    | Freed -> "freed"
  in
  Format.fprintf f "#%d(%s, %dB, %d refs%s)" t.id loc (total_size t) t.nrefs
    (if t.label >= 0 then Printf.sprintf ", label %d" t.label else "")
