(** Baseline and TeraHeap system configurations (Table 2).

    Each constructor assembles a complete simulated system — clock, cost
    model, devices, heap, collector, H2 — for one row of Table 2 (plus the
    collector and Panthera variants of §7.1 and §7.5). All capacities are
    given at paper scale (GB) and scaled internally. *)

type spark = {
  ctx : Th_spark.Context.t;
  clock : Th_sim.Clock.t;
  h2_device : Th_device.Device.t option;
  offheap_device : Th_device.Device.t option;
  faults : Th_sim.Fault.t option;
      (** the injector shared by the setup's devices, when fault
          injection was requested *)
}

type giraph = {
  rt : Th_psgc.Runtime.t;
  g_clock : Th_sim.Clock.t;
  mode : Th_giraph.Engine.mode;
  ooc_device : Th_device.Device.t option;
  g_h2_device : Th_device.Device.t option;
  g_faults : Th_sim.Fault.t option;
}

type streaming = {
  s_rt : Th_psgc.Runtime.t;
  s_clock : Th_sim.Clock.t;
  s_h2_device : Th_device.Device.t option;
  s_faults : Th_sim.Fault.t option;
}

val default_costs : Th_sim.Costs.t

(** Constructors that take a device accept [?faults], a
    {!Th_sim.Fault.plan}: the setup then creates one injector, attaches
    it to its devices, and exposes it in the record so drivers can
    snapshot its counters into the {!Th_workloads.Run_result}. A plain
    static regime is passed as [Fault.static spec]. Setups without a
    device (Spark-MO, Panthera) have nowhere to inject faults and expose
    [None]. *)

(** {1 Spark} *)

val spark_sd :
  ?device_kind:Th_device.Device.kind ->
  ?collector:Th_psgc.Rt.collector ->
  ?costs:Th_sim.Costs.t ->
  ?faults:Th_sim.Fault.plan ->
  heap_gb:int ->
  unit ->
  spark
(** Spark-SD: heap in DRAM, RDDs cached on-heap up to 50 % of the heap and
    serialized to the device beyond that. [device_kind] defaults to NVMe
    SSD; pass [Nvm_app_direct] for the NVM server (Figure 12a). The
    [collector] selects vanilla PS (default), the JDK11 PS or JDK17 G1 of
    Figure 8. *)

val spark_mo :
  ?costs:Th_sim.Costs.t -> heap_gb:int -> dram_gb:int -> unit -> spark
(** Spark-MO: all RDDs on-heap, the heap on NVM in Memory mode with
    [dram_gb] of DRAM acting as cache (Figure 12b). *)

val spark_teraheap :
  ?device_kind:Th_device.Device.kind ->
  ?collector:Th_psgc.Rt.collector ->
  ?costs:Th_sim.Costs.t ->
  ?h2_config:Th_core.H2.config ->
  ?huge_pages:bool ->
  ?policy:Th_policy.Policy.t ->
  ?faults:Th_sim.Fault.plan ->
  h1_gb:int ->
  dr2_gb:int ->
  unit ->
  spark
(** TeraHeap for Spark: H1 in DRAM, H2 memory-mapped over the device with
    [dr2_gb] of page cache. [collector] defaults to PS; pass [Rt.G1] for
    the G1 + TeraHeap combination the paper sketches in §7.1 (moving
    humongous long-lived objects to H2 removes G1's fragmentation).
    [policy] selects the H2 placement policy (default
    {!Th_policy.Policy.threshold}, the paper's behavior). *)

val spark_panthera : ?costs:Th_sim.Costs.t -> heap_gb:int -> unit -> spark
(** Panthera (§7.5): a single managed heap spanning DRAM and NVM — young
    generation in DRAM, most of the old generation on NVM; major GC still
    scans the whole old generation at NVM cost. *)

(** {1 Giraph} *)

val giraph_ooc :
  ?costs:Th_sim.Costs.t ->
  ?threshold:float ->
  ?faults:Th_sim.Fault.plan ->
  heap_gb:int ->
  unit ->
  giraph
(** Giraph-OOC: heap in DRAM, out-of-core scheduler offloading edges and
    message stores to the NVMe SSD above [threshold] (default 0.75). *)

val giraph_teraheap :
  ?costs:Th_sim.Costs.t ->
  ?h2_config:Th_core.H2.config ->
  ?policy:Th_policy.Policy.t ->
  ?faults:Th_sim.Fault.plan ->
  h1_gb:int ->
  dr2_gb:int ->
  unit ->
  giraph

(** {1 Streaming} *)

val streaming_retry : Th_device.Io_retry.policy
(** Default retry policy of the streaming setup: patient (6 retries) but
    with the I/O watchdog armed at a 2 ms episode deadline, so a sick
    device fails a micro-batch over to recovery instead of wedging it. *)

val streaming_teraheap :
  ?costs:Th_sim.Costs.t ->
  ?h2_config:Th_core.H2.config ->
  ?retry:Th_device.Io_retry.policy ->
  ?policy:Th_policy.Policy.t ->
  ?faults:Th_sim.Fault.plan ->
  h1_gb:int ->
  dr2_gb:int ->
  unit ->
  streaming
(** TeraHeap for a long-running micro-batch streaming service: H1 in
    DRAM, H2 over the NVMe SSD, retry policy from [retry] (default
    {!streaming_retry}). The driver layers windowed operator state and a
    resilience monitor on top. Unlike the batch setups, an explicit
    [h2_config] is honored verbatim — capacity included — so tests can
    shrink H2 to a few regions. *)
