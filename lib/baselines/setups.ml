open Th_sim
module Device = Th_device.Device
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2
module Rt = Th_psgc.Rt
module Runtime = Th_psgc.Runtime
module Cost_profile = Th_psgc.Cost_profile
module Context = Th_spark.Context
module Engine = Th_giraph.Engine

type spark = {
  ctx : Context.t;
  clock : Clock.t;
  h2_device : Device.t option;
  offheap_device : Device.t option;
  faults : Fault.t option;
}

type giraph = {
  rt : Runtime.t;
  g_clock : Clock.t;
  mode : Engine.mode;
  ooc_device : Device.t option;
  g_h2_device : Device.t option;
  g_faults : Fault.t option;
}

type streaming = {
  s_rt : Runtime.t;
  s_clock : Clock.t;
  s_h2_device : Device.t option;
  s_faults : Fault.t option;
}

let default_costs = Costs.default

(* One injector per setup: all of the setup's devices share it, so its
   counters aggregate the whole run's faults and recoveries. *)
let make_faults = Option.map Fault.create_plan

(* H2 is provisioned generously: the paper maps it over a 1 TB file. *)
let default_h2_capacity_gb = 1024

let make_h2 ?(h2_config = H2.default_config) ?(huge_pages = false) ~clock
    ~costs ~device ~dr2_bytes () =
  let config =
    {
      h2_config with
      H2.capacity = Size.paper_gb default_h2_capacity_gb;
      huge_pages = h2_config.H2.huge_pages || huge_pages;
    }
  in
  H2.create ~config ~clock ~costs ~device ~dr2_bytes ()

let spark_sd ?(device_kind = Device.Nvme_ssd) ?(collector = Rt.Ps)
    ?(costs = default_costs) ?faults ~heap_gb () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.paper_gb heap_gb) () in
  let rt = Runtime.create ~collector ~clock ~costs ~heap () in
  let faults = make_faults faults in
  let device = Device.create ?faults clock device_kind in
  let ctx =
    Context.create ~offheap_device:device
      ~mode:(Context.Memory_and_ser_offheap { onheap_fraction = 0.5 })
      rt
  in
  { ctx; clock; h2_device = None; offheap_device = Some device; faults }

let spark_mo ?(costs = default_costs) ~heap_gb ~dram_gb () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.paper_gb heap_gb) () in
  let profile =
    Cost_profile.nvm_memory_mode ~dram_bytes:(Size.paper_gb dram_gb)
      ~heap_bytes:(Size.paper_gb heap_gb)
  in
  let rt = Runtime.create ~profile ~clock ~costs ~heap () in
  let ctx = Context.create ~mode:Context.Memory_only rt in
  { ctx; clock; h2_device = None; offheap_device = None; faults = None }

let spark_teraheap ?(device_kind = Device.Nvme_ssd) ?(collector = Rt.Ps)
    ?(costs = default_costs) ?h2_config ?huge_pages ?policy ?faults ~h1_gb
    ~dr2_gb () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.paper_gb h1_gb) () in
  let faults = make_faults faults in
  let device = Device.create ?faults clock device_kind in
  let h2 =
    make_h2 ?h2_config ?huge_pages ~clock ~costs ~device
      ~dr2_bytes:(Size.paper_gb dr2_gb) ()
  in
  let rt = Runtime.create ~collector ~h2 ?policy ~clock ~costs ~heap () in
  let ctx = Context.create ~mode:Context.Teraheap_cache rt in
  { ctx; clock; h2_device = Some device; offheap_device = None; faults }

let spark_panthera ?(costs = default_costs) ~heap_gb () =
  let clock = Clock.create () in
  (* 64 GB heap: young 10 GB on DRAM, old 54 GB of which 48 on NVM; the
     Panthera cost profile charges the NVM latency on old-gen work. *)
  let heap =
    H1_heap.create ~new_ratio:5 ~heap_bytes:(Size.paper_gb heap_gb) ()
  in
  let rt =
    Runtime.create ~profile:Cost_profile.panthera ~clock ~costs ~heap ()
  in
  let ctx = Context.create ~mode:Context.Memory_only rt in
  { ctx; clock; h2_device = None; offheap_device = None; faults = None }

let giraph_ooc ?(costs = default_costs) ?(threshold = 0.75) ?faults ~heap_gb
    () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.paper_gb heap_gb) () in
  let rt = Runtime.create ~clock ~costs ~heap () in
  let faults = make_faults faults in
  let device = Device.create ?faults clock Device.Nvme_ssd in
  {
    rt;
    g_clock = clock;
    mode = Engine.Out_of_core { threshold };
    ooc_device = Some device;
    g_h2_device = None;
    g_faults = faults;
  }

(* A long-running service retries patiently but bounds each checked-I/O
   episode with the watchdog: under a worn-out device the retry loop must
   fail over (recompute, defer) within a bounded pause instead of wedging
   a micro-batch behind an unbounded backoff ladder. *)
let streaming_retry =
  {
    Th_device.Io_retry.default with
    Th_device.Io_retry.max_retries = 6;
    episode_deadline_ns = 2_000_000.0;
  }

let streaming_teraheap ?(costs = default_costs) ?h2_config
    ?(retry = streaming_retry) ?policy ?faults ~h1_gb ~dr2_gb () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.paper_gb h1_gb) () in
  let faults = make_faults faults in
  let device = Device.create ?faults ~retry clock Device.Nvme_ssd in
  let dr2_bytes = Size.paper_gb dr2_gb in
  (* Unlike the batch setups, an explicit [h2_config] is honored verbatim
     (capacity included): resilience tests size H2 down to a few regions
     to force the occupancy tripwire. *)
  let h2 =
    match h2_config with
    | Some config -> H2.create ~config ~clock ~costs ~device ~dr2_bytes ()
    | None -> make_h2 ~clock ~costs ~device ~dr2_bytes ()
  in
  let rt = Runtime.create ~h2 ?policy ~clock ~costs ~heap () in
  { s_rt = rt; s_clock = clock; s_h2_device = Some device; s_faults = faults }

let giraph_teraheap ?(costs = default_costs) ?h2_config ?policy ?faults
    ~h1_gb ~dr2_gb () =
  let clock = Clock.create () in
  let heap = H1_heap.create ~heap_bytes:(Size.paper_gb h1_gb) () in
  let faults = make_faults faults in
  let device = Device.create ?faults clock Device.Nvme_ssd in
  let h2 =
    make_h2 ?h2_config ~clock ~costs ~device ~dr2_bytes:(Size.paper_gb dr2_gb)
      ()
  in
  let rt = Runtime.create ~h2 ?policy ~clock ~costs ~heap () in
  {
    rt;
    g_clock = clock;
    mode = Engine.Teraheap;
    ooc_device = None;
    g_h2_device = Some device;
    g_faults = faults;
  }
