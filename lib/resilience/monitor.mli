(** Runtime health monitor: samples the flight-recorder counters at GC
    safepoints and drives the H2 circuit {!Breaker}.

    Each sample reads the H2 device's cumulative fault counters (retries,
    fault penalty time, exhausted retries, watchdog timeouts) and H2
    occupancy, folds per-operation rates into EWMAs, and classifies the
    interval as healthy or not against the configured tripwires. The
    verdict feeds the breaker; while the circuit is Open the installed
    {!Th_psgc.Rt.t.h2_move_gate} suppresses move-to-H2 (the collector
    skips its move passes) and drivers consult {!h2_allowed} to route
    promotion candidates to the serialize-to-offheap fallback or defer
    them in H1. Half-open probes let a cycle of moves through; sustained
    health closes the circuit again.

    The monitor also watches {!Th_psgc.Gc_stats} for new GC cycles and
    flags pauses over the SLO budget as they happen ([slo_violation]
    trace instants), then folds the whole pause history into a
    {!Slo.report} in the final {!summary}.

    Attach order matters: the monitor chains onto the current
    [safepoint_hook], so attach it {e after} {!Th_verify.Verify.attach}
    (which overwrites the hook). All sampling happens at safepoints and
    uses only simulated time — the monitor is as deterministic as the
    run it watches. *)

module Runtime := Th_psgc.Runtime

type config = {
  breaker : Breaker.config;
  ewma_alpha : float;  (** weight of the newest interval in the EWMAs *)
  retry_rate_trip : float;
      (** trip when the EWMA of retries per device op exceeds this *)
  penalty_per_op_trip_ns : float;
      (** trip when the EWMA of fault-penalty ns per device op exceeds
          this *)
  h2_occupancy_trip : float;
      (** trip when H2 used/capacity exceeds this fraction *)
}

val default_config : config

type summary = {
  final_state : Breaker.state;
  breaker : Breaker.stats;
  samples : int;  (** health samples taken *)
  moves_suppressed : int;  (** GC cycles whose move passes were gated off *)
  fallback_serializations : int;
      (** promotion candidates serialized off-heap instead (driver-fed) *)
  fallback_bytes : int;
  deferred_batches : int;  (** candidates simply left in H1 (driver-fed) *)
  slo_violations : int;  (** pauses flagged over budget as they happened *)
  time_total_ns : float;
  time_open_ns : float;
  time_half_open_ns : float;
  slo : Slo.report option;  (** present when an SLO spec was attached *)
}

type t

val attach : ?config:config -> ?slo:Slo.spec -> Runtime.t -> t
(** Install the monitor on [rt]: chains the safepoint hook and installs
    the H2 move gate. Device and fault counters come from the runtime's
    H2 device; without an attached H2 (or fault injector) the device
    tripwires never fire and only SLO pause tracking remains active. *)

val state : t -> Breaker.state

val h2_allowed : t -> bool
(** False while the circuit is Open: drivers should serialize promotion
    candidates off-heap ({!Th_serde}) or defer them in H1 instead of
    tagging/moving. Half-open counts as allowed — that's the probe. *)

val sample : t -> unit
(** Take a health sample now. Safepoints do this automatically; drivers
    additionally call it at batch boundaries so quiet phases (no GC)
    still advance cooldowns and probe counting. *)

val note_fallback : t -> bytes:int -> unit
(** Record one promotion candidate routed to the off-heap serializer. *)

val note_deferred : t -> unit
(** Record one promotion candidate deferred in H1. *)

val summary : t -> summary
(** Snapshot the counters and evaluate the SLO over the full pause
    history (all recorded GC cycle durations) and degraded-time
    accounting. *)

val pp_summary : Format.formatter -> summary -> unit
