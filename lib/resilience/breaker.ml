type state = Closed | Open | Half_open

type event = Trip | Probe_ok | Probe_fail | Cooldown_elapsed

let step state event =
  match (state, event) with
  | _, Trip -> Open
  | Open, Cooldown_elapsed -> Half_open
  | Half_open, Probe_ok -> Closed
  | Half_open, Probe_fail -> Open
  | Closed, (Probe_ok | Probe_fail | Cooldown_elapsed) -> Closed
  | Open, (Probe_ok | Probe_fail) -> Open
  | Half_open, Cooldown_elapsed -> Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type config = { open_cooldown_ns : float; probe_successes : int }

(* One simulated second of cooldown spans several GC cycles of the soak
   workloads; two clean probe samples in a row close the circuit. *)
let default_config = { open_cooldown_ns = 1e9; probe_successes = 2 }

type stats = {
  trips : int;
  reopens : int;
  closes : int;
  probes_ok : int;
  probes_failed : int;
}

let zero_stats =
  { trips = 0; reopens = 0; closes = 0; probes_ok = 0; probes_failed = 0 }

type t = {
  config : config;
  mutable state : state;
  mutable opened_at_ns : float;
  mutable probe_streak : int;
  mutable s : stats;
}

let create ?(config = default_config) () =
  {
    config;
    state = Closed;
    opened_at_ns = neg_infinity;
    probe_streak = 0;
    s = zero_stats;
  }

let state t = t.state

let stats t = t.s

let transition t event =
  let next = step t.state event in
  let changed = next <> t.state in
  (if changed then
     match next with
     | Open ->
         t.s <-
           {
             t.s with
             trips = t.s.trips + 1;
             reopens =
               (t.s.reopens + if t.state = Half_open then 1 else 0);
           }
     | Closed -> t.s <- { t.s with closes = t.s.closes + 1 }
     | Half_open -> ());
  t.state <- next;
  changed

let on_sample t ~now_ns ~healthy =
  match t.state with
  | Closed ->
      if healthy then `Unchanged
      else begin
        ignore (transition t Trip);
        t.opened_at_ns <- now_ns;
        t.probe_streak <- 0;
        `Opened
      end
  | Open ->
      if not healthy then begin
        (* Still sick: restart the cooldown so the circuit only probes
           after a full quiet interval. *)
        t.opened_at_ns <- now_ns;
        `Unchanged
      end
      else if now_ns -. t.opened_at_ns >= t.config.open_cooldown_ns then begin
        ignore (transition t Cooldown_elapsed);
        t.probe_streak <- 1;
        t.s <- { t.s with probes_ok = t.s.probes_ok + 1 };
        if t.probe_streak >= t.config.probe_successes then begin
          ignore (transition t Probe_ok);
          `Closed
        end
        else `Unchanged
      end
      else `Unchanged
  | Half_open ->
      if healthy then begin
        t.probe_streak <- t.probe_streak + 1;
        t.s <- { t.s with probes_ok = t.s.probes_ok + 1 };
        if t.probe_streak >= t.config.probe_successes then begin
          ignore (transition t Probe_ok);
          `Closed
        end
        else `Unchanged
      end
      else begin
        t.s <- { t.s with probes_failed = t.s.probes_failed + 1 };
        ignore (transition t Probe_fail);
        t.opened_at_ns <- now_ns;
        t.probe_streak <- 0;
        `Opened
      end
