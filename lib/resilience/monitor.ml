module Clock = Th_sim.Clock
module Fault = Th_sim.Fault
module Device = Th_device.Device
module H2 = Th_core.H2
module Rt = Th_psgc.Rt
module Runtime = Th_psgc.Runtime
module Gc_stats = Th_psgc.Gc_stats

type config = {
  breaker : Breaker.config;
  ewma_alpha : float;
  retry_rate_trip : float;
  penalty_per_op_trip_ns : float;
  h2_occupancy_trip : float;
}

(* Tripwires sized against the default Io_retry policy: a sustained 2%
   retry rate (one op in 50 needs a second attempt) or 10 us of
   fault-penalty time per op means the device is visibly sick; 90% H2
   occupancy means further moves mostly buy future compaction pain. *)
let default_config =
  {
    breaker = Breaker.default_config;
    ewma_alpha = 0.3;
    retry_rate_trip = 0.02;
    penalty_per_op_trip_ns = 10_000.0;
    h2_occupancy_trip = 0.9;
  }

type summary = {
  final_state : Breaker.state;
  breaker : Breaker.stats;
  samples : int;
  moves_suppressed : int;
  fallback_serializations : int;
  fallback_bytes : int;
  deferred_batches : int;
  slo_violations : int;
  time_total_ns : float;
  time_open_ns : float;
  time_half_open_ns : float;
  slo : Slo.report option;
}

(* Concurrency audit: every mutable field below is domain-confined. A
   monitor is attached inside the cell that owns the run (see
   bench/soak.ml), sampled and read on that same domain, and dropped
   before the cell returns its (immutable) summary — it is never
   captured by another cell's closure, which the escape-capture rule
   would flag. Plain mutable fields are therefore correct; converting
   them to Atomic.t would buy nothing and imply sharing that must not
   happen. *)
type t = {
  config : config;
  slo_spec : Slo.spec option;
  rt : Runtime.t;
  clock : Clock.t;
  h2 : H2.t option;
  faults : Fault.t option;
  breaker : Breaker.t;
  attached_at_ns : float;
  (* last-seen cumulative counters, for per-interval deltas *)
  mutable last_ops : int;
  mutable last_retries : int;
  mutable last_penalty_ns : float;
  mutable last_exhausted : int;
  mutable last_watchdogs : int;
  mutable last_cycles : int;
  (* per-op EWMAs, updated only on intervals that saw device traffic *)
  mutable retry_rate_ewma : float;
  mutable penalty_per_op_ewma : float;
  (* degraded-time accounting: dt since the previous sample is charged
     to the state the breaker was in across that interval *)
  mutable last_sample_ns : float;
  mutable time_open_ns : float;
  mutable time_half_open_ns : float;
  mutable samples : int;
  mutable moves_suppressed : int;
  mutable fallback_serializations : int;
  mutable fallback_bytes : int;
  mutable deferred_batches : int;
  mutable slo_violations : int;
}

let instant t ~name args =
  match Clock.tracer t.clock with
  | None -> ()
  | Some tr ->
      Th_trace.Recorder.instant tr ~ts:(Clock.now_ns t.clock)
        ~cat:"resilience" ~name ~args ()

let device_counters t =
  match t.h2 with
  | None -> (0, Fault.zero_stats)
  | Some h2 ->
      let d = Device.stats (H2.device h2) in
      let fs =
        match t.faults with
        | Some f -> Fault.stats f
        | None -> Fault.zero_stats
      in
      (d.Device.read_ops + d.Device.write_ops, fs)

(* Health verdict for the interval since the last sample. Hard evidence
   (exhausted retries, watchdog timeouts) trips immediately; soft
   evidence (retry rate, penalty per op) goes through the EWMAs so one
   unlucky interval doesn't flip the breaker. *)
let classify t =
  let ops, fs = device_counters t in
  let d_ops = ops - t.last_ops in
  let d_retries = fs.Fault.retries - t.last_retries in
  let d_penalty = fs.Fault.penalty_ns -. t.last_penalty_ns in
  let d_exhausted = fs.Fault.exhausted_retries - t.last_exhausted in
  let d_watchdogs = fs.Fault.watchdog_timeouts - t.last_watchdogs in
  t.last_ops <- ops;
  t.last_retries <- fs.Fault.retries;
  t.last_penalty_ns <- fs.Fault.penalty_ns;
  t.last_exhausted <- fs.Fault.exhausted_retries;
  t.last_watchdogs <- fs.Fault.watchdog_timeouts;
  if d_ops > 0 then begin
    let a = t.config.ewma_alpha in
    let mix ewma x = ((1.0 -. a) *. ewma) +. (a *. x) in
    t.retry_rate_ewma <-
      mix t.retry_rate_ewma (float_of_int d_retries /. float_of_int d_ops);
    t.penalty_per_op_ewma <-
      mix t.penalty_per_op_ewma (d_penalty /. float_of_int d_ops)
  end;
  let occupancy =
    match t.h2 with
    | None -> 0.0
    | Some h2 ->
        let cap = (H2.config h2).H2.capacity in
        if cap > 0 then float_of_int (H2.used_bytes h2) /. float_of_int cap
        else 0.0
  in
  if d_exhausted > 0 then Some "exhausted_retries"
  else if d_watchdogs > 0 then Some "watchdog_timeout"
  else if t.retry_rate_ewma > t.config.retry_rate_trip then Some "retry_rate"
  else if t.penalty_per_op_ewma > t.config.penalty_per_op_trip_ns then
    Some "io_penalty"
  else if occupancy > t.config.h2_occupancy_trip then Some "h2_occupancy"
  else None

let check_slo t =
  match t.slo_spec with
  | None -> ()
  | Some spec ->
      let stats = Runtime.stats t.rt in
      let n = Gc_stats.cycle_count stats in
      if n > t.last_cycles then begin
        let cycles = Gc_stats.cycles stats in
        List.iteri
          (fun i c ->
            if i >= t.last_cycles then
              let dur =
                match c with
                | Gc_stats.Minor m -> m.duration_ns
                | Gc_stats.Major m -> m.duration_ns
              in
              if dur > spec.Slo.p99_pause_ns then begin
                t.slo_violations <- t.slo_violations + 1;
                instant t ~name:"slo_violation"
                  [
                    ("pause_ns", Th_trace.Event.Float dur);
                    ( "budget_ns",
                      Th_trace.Event.Float spec.Slo.p99_pause_ns );
                  ]
              end)
          cycles;
        t.last_cycles <- n
      end

let sample t =
  let now = Clock.now_ns t.clock in
  let dt = Float.max 0.0 (now -. t.last_sample_ns) in
  (match Breaker.state t.breaker with
  | Breaker.Open -> t.time_open_ns <- t.time_open_ns +. dt
  | Breaker.Half_open -> t.time_half_open_ns <- t.time_half_open_ns +. dt
  | Breaker.Closed -> ());
  t.last_sample_ns <- now;
  t.samples <- t.samples + 1;
  check_slo t;
  let trouble = classify t in
  let healthy = trouble = None in
  match Breaker.on_sample t.breaker ~now_ns:now ~healthy with
  | `Unchanged -> ()
  | `Opened ->
      instant t ~name:"breaker_open"
        [
          ( "reason",
            Th_trace.Event.Str (Option.value trouble ~default:"probe_fail") );
        ]
  | `Closed -> instant t ~name:"breaker_close" []

let attach ?(config = default_config) ?slo rt =
  let h2 = Runtime.h2 rt in
  let faults = Option.bind h2 (fun h2 -> Device.faults (H2.device h2)) in
  let clock = Runtime.clock rt in
  let now = Clock.now_ns clock in
  let t =
    {
      config;
      slo_spec = slo;
      rt;
      clock;
      h2;
      faults;
      breaker = Breaker.create ~config:config.breaker ();
      attached_at_ns = now;
      last_ops = 0;
      last_retries = 0;
      last_penalty_ns = 0.0;
      last_exhausted = 0;
      last_watchdogs = 0;
      last_cycles = 0;
      retry_rate_ewma = 0.0;
      penalty_per_op_ewma = 0.0;
      last_sample_ns = now;
      time_open_ns = 0.0;
      time_half_open_ns = 0.0;
      samples = 0;
      moves_suppressed = 0;
      fallback_serializations = 0;
      fallback_bytes = 0;
      deferred_batches = 0;
      slo_violations = 0;
    }
  in
  (* Baseline the cumulative counters so pre-attach traffic (setup I/O)
     doesn't land in the first interval. *)
  let ops, fs = device_counters t in
  t.last_ops <- ops;
  t.last_retries <- fs.Fault.retries;
  t.last_penalty_ns <- fs.Fault.penalty_ns;
  t.last_exhausted <- fs.Fault.exhausted_retries;
  t.last_watchdogs <- fs.Fault.watchdog_timeouts;
  t.last_cycles <- Gc_stats.cycle_count (Runtime.stats rt);
  (* Chain, don't clobber: the Th_verify sanitizer may already own the
     hook. Attach the monitor after the verifier. *)
  let prev_hook = rt.Rt.safepoint_hook in
  rt.Rt.safepoint_hook <-
    Some
      (fun p ->
        (match prev_hook with Some f -> f p | None -> ());
        sample t);
  rt.Rt.h2_move_gate <-
    Some
      (fun () ->
        let allowed = Breaker.state t.breaker <> Breaker.Open in
        if not allowed then t.moves_suppressed <- t.moves_suppressed + 1;
        allowed);
  t

let state t = Breaker.state t.breaker

let h2_allowed t = Breaker.state t.breaker <> Breaker.Open

let note_fallback t ~bytes =
  t.fallback_serializations <- t.fallback_serializations + 1;
  t.fallback_bytes <- t.fallback_bytes + bytes

let note_deferred t = t.deferred_batches <- t.deferred_batches + 1

let pause_samples t =
  List.map
    (function
      | Gc_stats.Minor m -> m.duration_ns
      | Gc_stats.Major m -> m.duration_ns)
    (Gc_stats.cycles (Runtime.stats t.rt))

let summary t =
  (* Close the open degraded-time interval up to "now" without taking a
     health sample (summary must not perturb the breaker). *)
  let now = Clock.now_ns t.clock in
  let dt = Float.max 0.0 (now -. t.last_sample_ns) in
  let time_open_ns, time_half_open_ns =
    match Breaker.state t.breaker with
    | Breaker.Open -> (t.time_open_ns +. dt, t.time_half_open_ns)
    | Breaker.Half_open -> (t.time_open_ns, t.time_half_open_ns +. dt)
    | Breaker.Closed -> (t.time_open_ns, t.time_half_open_ns)
  in
  let time_total_ns = Float.max 0.0 (now -. t.attached_at_ns) in
  let slo =
    Option.map
      (fun spec ->
        Slo.evaluate spec ~pause_samples_ns:(pause_samples t)
          ~total_ns:time_total_ns
          ~degraded_ns:(time_open_ns +. time_half_open_ns))
      t.slo_spec
  in
  {
    final_state = Breaker.state t.breaker;
    breaker = Breaker.stats t.breaker;
    samples = t.samples;
    moves_suppressed = t.moves_suppressed;
    fallback_serializations = t.fallback_serializations;
    fallback_bytes = t.fallback_bytes;
    deferred_batches = t.deferred_batches;
    slo_violations = t.slo_violations;
    time_total_ns;
    time_open_ns;
    time_half_open_ns;
    slo;
  }

let pp_summary f s =
  Format.fprintf f "@[<v>";
  Format.fprintf f
    "breaker %s: %d trips (%d reopens), %d closes, probes %d ok / %d failed \
     | %d samples | moves suppressed %d cycles, fallback serializations %d \
     (%d B), deferred %d | slo violations %d | degraded %.1f%% of %.1f ms"
    (Breaker.state_name s.final_state)
    s.breaker.Breaker.trips s.breaker.Breaker.reopens s.breaker.Breaker.closes
    s.breaker.Breaker.probes_ok s.breaker.Breaker.probes_failed s.samples
    s.moves_suppressed s.fallback_serializations s.fallback_bytes
    s.deferred_batches s.slo_violations
    (if s.time_total_ns > 0.0 then
       100.0 *. (s.time_open_ns +. s.time_half_open_ns) /. s.time_total_ns
     else 0.0)
    (s.time_total_ns /. 1e6);
  (match s.slo with
  | None -> ()
  | Some r -> Format.fprintf f "@,%a" Slo.pp_report r);
  Format.fprintf f "@]"
