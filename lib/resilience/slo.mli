(** Service-level objectives for long-running (streaming) workloads.

    Following the server-throughput analysis line of work, a long-running
    service is judged by its pause-time tail and by how much of the run
    it spent in degraded mode — not by completion time. A {!spec} states
    the budget (p99 GC pause, maximum degraded-time fraction); {!evaluate}
    turns a run's pause samples and degraded-time accounting into a
    compliance {!report} with p50/p99/p999 tails. *)

type spec = {
  p99_pause_ns : float;  (** budget for the 99th-percentile GC pause *)
  max_degraded_fraction : float;
      (** largest acceptable fraction of run time with the breaker not
          Closed *)
}

val default : spec
(** 50 ms p99 pause budget, at most 20% of the run degraded. *)

val parse : string -> (spec, string) result
(** [parse "p99_ms=40,degraded_max=0.25"]; keys [p99_ms] (or [p99_us])
    and [degraded_max] (a fraction in [0, 1]), starting from {!default}. *)

val to_string : spec -> string

type report = {
  spec : spec;
  pause_count : int;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_pause_ns : float;
  pause_violations : int;  (** pauses individually over the p99 budget *)
  degraded_fraction : float;
  pause_compliant : bool;  (** p99 tail within budget *)
  degraded_compliant : bool;  (** degraded fraction within budget *)
  compliant : bool;  (** both *)
}

val evaluate :
  spec -> pause_samples_ns:float list -> total_ns:float -> degraded_ns:float ->
  report
(** Build the compliance report: percentiles are nearest-rank over the
    pause samples ({!Th_metrics.Cdf.percentile}); [degraded_fraction] is
    [degraded_ns / total_ns] (0 when the run had no duration). A run
    with no pauses is pause-compliant by definition. *)

val pp_report : Format.formatter -> report -> unit
(** Multi-line human-readable report, stable across runs (no wall-clock
    content), e.g. for the soak harness and CI artifacts. *)
