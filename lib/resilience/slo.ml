type spec = { p99_pause_ns : float; max_degraded_fraction : float }

let default = { p99_pause_ns = 50e6; max_degraded_fraction = 0.2 }

let to_string s =
  Printf.sprintf "p99_ms=%g,degraded_max=%g" (s.p99_pause_ns /. 1e6)
    s.max_degraded_fraction

let parse str =
  let fields = String.split_on_char ',' (String.trim str) in
  List.fold_left
    (fun acc field ->
      Result.bind acc (fun spec ->
          let field = String.trim field in
          if field = "" then Result.Ok spec
          else
            match String.index_opt field '=' with
            | None ->
                Result.Error
                  (Printf.sprintf "slo spec: missing '=' in %S" field)
            | Some i -> (
                let key = String.sub field 0 i in
                let v = String.sub field (i + 1) (String.length field - i - 1) in
                let pos_v () =
                  match float_of_string_opt v with
                  | Some f when f > 0.0 -> Result.Ok f
                  | _ ->
                      Result.Error
                        (Printf.sprintf "slo spec: bad value %S for %s" v key)
                in
                match key with
                | "p99_ms" ->
                    Result.map
                      (fun f -> { spec with p99_pause_ns = f *. 1e6 })
                      (pos_v ())
                | "p99_us" ->
                    Result.map
                      (fun f -> { spec with p99_pause_ns = f *. 1e3 })
                      (pos_v ())
                | "degraded_max" -> (
                    match float_of_string_opt v with
                    | Some f when f >= 0.0 && f <= 1.0 ->
                        Result.Ok { spec with max_degraded_fraction = f }
                    | _ ->
                        Result.Error
                          (Printf.sprintf
                             "slo spec: degraded_max=%s is not a fraction \
                              (want 0..1)"
                             v))
                | _ ->
                    Result.Error
                      (Printf.sprintf "slo spec: unknown key %S" key))))
    (Result.Ok default) fields

type report = {
  spec : spec;
  pause_count : int;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  max_pause_ns : float;
  pause_violations : int;
  degraded_fraction : float;
  pause_compliant : bool;
  degraded_compliant : bool;
  compliant : bool;
}

let evaluate spec ~pause_samples_ns ~total_ns ~degraded_ns =
  let pct p = Th_metrics.Cdf.percentile pause_samples_ns p in
  let p99 = pct 99.0 in
  let degraded_fraction =
    if total_ns > 0.0 then degraded_ns /. total_ns else 0.0
  in
  let pause_compliant =
    pause_samples_ns = [] || p99 <= spec.p99_pause_ns
  in
  let degraded_compliant = degraded_fraction <= spec.max_degraded_fraction in
  {
    spec;
    pause_count = List.length pause_samples_ns;
    p50_ns = pct 50.0;
    p99_ns = p99;
    p999_ns = pct 99.9;
    max_pause_ns = List.fold_left Float.max 0.0 pause_samples_ns;
    pause_violations =
      List.length
        (List.filter (fun p -> p > spec.p99_pause_ns) pause_samples_ns);
    degraded_fraction;
    pause_compliant;
    degraded_compliant;
    compliant = pause_compliant && degraded_compliant;
  }

let verdict ok = if ok then "PASS" else "FAIL"

let pp_report f r =
  Format.fprintf f
    "@[<v>SLO %s (budget: p99 pause %.1f ms, degraded <= %.0f%%)@,\
     pauses: %d samples, p50 %.3f ms, p99 %.3f ms, p999 %.3f ms, max %.3f \
     ms (%d over budget) [%s]@,\
     degraded time: %.1f%% of run [%s]@]"
    (verdict r.compliant)
    (r.spec.p99_pause_ns /. 1e6)
    (100.0 *. r.spec.max_degraded_fraction)
    r.pause_count (r.p50_ns /. 1e6) (r.p99_ns /. 1e6) (r.p999_ns /. 1e6)
    (r.max_pause_ns /. 1e6) r.pause_violations
    (verdict r.pause_compliant)
    (100.0 *. r.degraded_fraction)
    (verdict r.degraded_compliant)
