(** Circuit breaker over the move-to-H2 path.

    Classic three-state breaker (Closed / Open / Half-open) specialised
    to the H2 device: while Closed, promotion proceeds normally; a trip
    (error/latency tripwire firing) opens the circuit, suspending
    move-to-H2 so the collector stops writing object groups to a sick
    device; after a cooldown the breaker goes Half-open and lets a
    bounded probe through — enough consecutive healthy samples close the
    circuit again, any failure snaps it back Open for another cooldown.

    The transition relation is exposed as the pure function {!step} so
    tests can enumerate the full table; the stateful {!t} layers time
    (cooldown expiry) and probe counting on top, driven by periodic
    health samples from the {!Monitor}. *)

type state = Closed | Open | Half_open

type event =
  | Trip  (** a tripwire fired on this sample *)
  | Probe_ok  (** a Half-open probe round completed healthy *)
  | Probe_fail  (** a Half-open probe round saw trouble *)
  | Cooldown_elapsed  (** the Open cooldown timer expired *)

val step : state -> event -> state
(** The pure transition table. Events that make no sense in a state
    (e.g. [Probe_ok] while Closed) leave it unchanged; [Trip] is
    absorbing into [Open] from every state. *)

val state_name : state -> string

type config = {
  open_cooldown_ns : float;
      (** simulated time the circuit stays Open before probing *)
  probe_successes : int;
      (** consecutive healthy Half-open samples needed to close *)
}

val default_config : config

type stats = {
  trips : int;  (** transitions into Open (from any state) *)
  reopens : int;  (** trips taken from Half-open (failed recoveries) *)
  closes : int;  (** successful recoveries (Half-open -> Closed) *)
  probes_ok : int;
  probes_failed : int;
}

type t

val create : ?config:config -> unit -> t
(** A fresh breaker, Closed. *)

val state : t -> state

val stats : t -> stats

val on_sample :
  t -> now_ns:float -> healthy:bool -> [ `Unchanged | `Opened | `Closed ]
(** Feed one health sample at simulated time [now_ns]. Returns whether
    the circuit changed state so the caller can emit trace events. An
    unhealthy sample while Open restarts the cooldown (the device is
    still sick); a healthy sample after the cooldown moves to Half-open
    and begins counting probe successes. *)
