open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Roots = Th_objmodel.Roots
module Card_table = Th_minijvm.Card_table
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2

type t = Rt.t

exception Out_of_memory = Rt.Out_of_memory

exception Invalid_heap_state = Rt.Invalid_heap_state

let create = Rt.create

let clock (t : t) = t.Rt.clock

let costs (t : t) = t.Rt.costs

let heap (t : t) = t.Rt.heap

let h2 (t : t) = t.Rt.h2

let stats (t : t) = t.Rt.stats

let roots (t : t) = t.Rt.roots

let teraheap_enabled = Rt.teraheap_enabled

let minor_gc t = if Ps_gc.minor_gc t then Ps_gc.major_gc t

let major_gc t = Ps_gc.major_gc t

(* G1 rounds humongous objects (larger than half a G1 region) up to whole
   regions; the tail of the last region is dead space pinned for the
   object's lifetime (§7.1). *)
let g1_slack (t : t) size =
  let total = size + Obj_.header_bytes + Obj_.label_word_bytes in
  let regions = (total + t.Rt.g1_region_size - 1) / t.Rt.g1_region_size in
  (regions * t.Rt.g1_region_size) - total

(* G1 allocates humongous objects directly in contiguous (old) regions. *)
let g1_humongous (t : t) kind size =
  t.Rt.collector = Rt.G1
  && kind = Obj_.Array_data
  && size + Obj_.header_bytes + Obj_.label_word_bytes
     > t.Rt.g1_region_size / 2

let alloc (t : t) ?(kind = Obj_.Data) ~size () =
  let humongous = g1_humongous t kind size in
  Rt.charge t Clock.Other t.Rt.costs.Costs.alloc_ns;
  let alloc_once () =
    if humongous then begin
      (* Humongous path: contiguous regions straight in the old
         generation, with the last region's tail pinned as slack. *)
      let id = H1_heap.fresh_id t.Rt.heap in
      let o = Obj_.create ~kind ~id ~size () in
      let slack = g1_slack t size in
      o.Obj_.region_slack <- slack;
      t.Rt.g1_humongous_waste <- t.Rt.g1_humongous_waste + slack;
      match H1_heap.old_alloc_addr t.Rt.heap (Obj_.footprint o) with
      | None -> H1_heap.Old_full
      | Some addr ->
          o.Obj_.loc <- Obj_.Old;
          o.Obj_.addr <- addr;
          H1_heap.push_old t.Rt.heap o;
          H1_heap.Allocated o
    end
    else H1_heap.alloc t.Rt.heap ~kind ~size
  in
  let rec attempt tries =
    match alloc_once () with
    | H1_heap.Allocated o -> o
    | H1_heap.Eden_full ->
        if tries = 0 then minor_gc t
        else if tries = 1 then major_gc t
        else
          raise
            (Out_of_memory
               (Printf.sprintf "cannot allocate %s in eden (%s)"
                  (Size.to_string size)
                  (Size.to_string t.Rt.heap.H1_heap.eden_capacity)));
        attempt (tries + 1)
    | H1_heap.Old_full ->
        if tries <= 1 then major_gc t
        else
          raise
            (Out_of_memory
               (Printf.sprintf
                  "cannot allocate %s directly in the old generation"
                  (Size.to_string size)));
        attempt (tries + 2)
  in
  attempt 0

(* Post-write barrier with the TeraHeap reference range check (§4). *)
let barrier (t : t) (parent : Obj_.t) =
  t.Rt.barrier_checks <- t.Rt.barrier_checks + 1;
  (* EnableTeraHeap adds a reference range check to select the H1 or H2
     card table (§4); the measured overhead stays within a few percent. *)
  let mult = if Rt.teraheap_enabled t then 1.35 else 1.0 in
  Rt.charge t Clock.Other (t.Rt.costs.Costs.write_barrier_ns *. mult);
  match parent.Obj_.loc with
  | Obj_.Old ->
      Card_table.mark_dirty t.Rt.heap.H1_heap.cards ~addr:parent.Obj_.addr
  | Obj_.In_h2 -> (
      match t.Rt.h2 with
      | Some h2 -> H2.mutator_write h2 parent
      | None ->
          Rt.invalid_heap_state ~object_id:parent.Obj_.id
            ~phase:"post-write barrier: In_h2 parent without an H2 heap")
  | Obj_.Eden | Obj_.Survivor -> ()
  | Obj_.Freed -> invalid_arg "Runtime.write_ref: store into freed object"

let write_ref t parent child =
  if Obj_.is_freed child then
    invalid_arg "Runtime.write_ref: reference to freed object";
  Obj_.add_ref parent child;
  (* A mutator store can create a new cross-region reference inside H2;
     record it in the dependency lists so region liveness stays sound
     (§3.3 allows objects in any region to refer to each other). *)
  (match (parent.Obj_.loc, child.Obj_.loc, t.Rt.h2) with
  | Obj_.In_h2, Obj_.In_h2, Some h2
    when parent.Obj_.h2_region <> child.Obj_.h2_region ->
      H2.add_dependency h2 ~src_region:parent.Obj_.h2_region
        ~dst_region:child.Obj_.h2_region
  | _ -> ());
  barrier t parent

let unlink_ref t parent child =
  Obj_.remove_ref parent child;
  barrier t parent

let replace_refs t parent children =
  Obj_.clear_refs parent;
  List.iter (Obj_.add_ref parent) children;
  barrier t parent

let mutator_compute (t : t) bytes =
  let ns =
    float_of_int bytes *. t.Rt.costs.Costs.compute_per_byte_ns
    *. t.Rt.profile.Cost_profile.mutator_mult
  in
  Rt.charge t Clock.Other
    (Costs.parallel t.Rt.costs ~threads:t.Rt.costs.Costs.mutator_threads ns)

(* Feed labelled-object accesses to the placement policy. Pure host-side
   bookkeeping (no simulated time, no trace events), reported after the
   access itself so a policy observing its own effects sees consistent
   page-cache statistics. *)
let observe_access (t : t) (o : Obj_.t) ~write =
  if o.Obj_.label >= 0 then
    t.Rt.policy.Th_policy.Policy.observe
      (Th_policy.Policy.Access
         {
           label = o.Obj_.label;
           site = o.Obj_.site;
           bytes = Obj_.total_size o;
           write;
           in_h2 = o.Obj_.loc = Obj_.In_h2;
         })

let read_obj (t : t) o =
  mutator_compute t o.Obj_.size;
  (match (o.Obj_.loc, t.Rt.h2) with
  | Obj_.In_h2, Some h2 -> H2.mutator_read h2 o
  | Obj_.In_h2, None ->
      Rt.invalid_heap_state ~object_id:o.Obj_.id
        ~phase:"read_obj: In_h2 object without an H2 heap"
  | (Obj_.Eden | Obj_.Survivor | Obj_.Old), _ -> ()
  | Obj_.Freed, _ -> invalid_arg "Runtime.read_obj: freed object");
  observe_access t o ~write:false

let update_obj (t : t) o =
  mutator_compute t o.Obj_.size;
  (match (o.Obj_.loc, t.Rt.h2) with
  | Obj_.In_h2, Some h2 -> H2.mutator_write h2 o
  | Obj_.In_h2, None ->
      Rt.invalid_heap_state ~object_id:o.Obj_.id
        ~phase:"update_obj: In_h2 object without an H2 heap"
  | (Obj_.Eden | Obj_.Survivor | Obj_.Old), _ -> ()
  | Obj_.Freed, _ -> invalid_arg "Runtime.update_obj: freed object");
  observe_access t o ~write:true

let compute t ~bytes = mutator_compute t bytes

let add_root (t : t) o = Roots.add t.Rt.roots o

let remove_root (t : t) o = Roots.remove t.Rt.roots o

let barrier_checks (t : t) = t.Rt.barrier_checks

let h2_tag_root (t : t) ?site o ~label =
  match t.Rt.h2 with
  | None -> ()
  | Some h2 ->
      let prev = o.Obj_.label in
      H2.h2_tag_root h2 ?site o ~label;
      (* Report only tags that actually registered (same condition as
         H2.h2_tag_root's): re-tagging an already-labelled or already-
         moved object must not inflate site profiles. *)
      if o.Obj_.loc <> Obj_.In_h2 && prev <> label then
        t.Rt.policy.Th_policy.Policy.observe
          (Th_policy.Policy.Tagged
             { label; site = o.Obj_.site; bytes = Obj_.total_size o })

let h2_move (t : t) ~label =
  match t.Rt.h2 with
  | None -> ()
  | Some h2 ->
      H2.h2_move h2 ~label;
      t.Rt.policy.Th_policy.Policy.observe (Th_policy.Policy.Advice { label })
