(** Per-cycle GC statistics.

    Records what Figure 7 (GC timeline and old-generation occupancy) and
    Figure 11b (major-GC phase breakdown) plot. *)

type phases = {
  marking_ns : float;
  precompact_ns : float;
  adjust_ns : float;
  compact_ns : float;
}

type cycle =
  | Minor of { at_ns : float; duration_ns : float }
  | Major of {
      at_ns : float;
      duration_ns : float;
      phases : phases;
      old_occupancy_after : float;
      bytes_moved_to_h2 : int;
      regions_freed : int;
    }

type t

val create : unit -> t

val record : t -> cycle -> unit

val record_occupancy : t -> at_ns:float -> float -> unit
(** Sample the old-generation occupancy outside GC (Figure 7's top row). *)

val cycles : t -> cycle list

val cycle_count : t -> int
(** Cycles recorded so far; O(1), for pollers watching for new cycles. *)

val last_cycle : t -> cycle option
(** Most recently recorded cycle; O(1). *)

val minor_count : t -> int

val major_count : t -> int

val minor_total_ns : t -> float

val major_total_ns : t -> float

val avg_major_ns : t -> float

val phase_totals : t -> phases

val occupancy_timeline : t -> (float * float) list
(** [(at_ns, old_occupancy)] samples in chronological order. *)
