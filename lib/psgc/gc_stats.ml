open Th_sim

type phases = {
  marking_ns : float;
  precompact_ns : float;
  adjust_ns : float;
  compact_ns : float;
}

type cycle =
  | Minor of { at_ns : float; duration_ns : float }
  | Major of {
      at_ns : float;
      duration_ns : float;
      phases : phases;
      old_occupancy_after : float;
      bytes_moved_to_h2 : int;
      regions_freed : int;
    }

type t = {
  cycles : cycle Vec.t;
  occupancy : (float * float) Vec.t;
}

let create () = { cycles = Vec.create (); occupancy = Vec.create () }

let record t c = Vec.push t.cycles c

let record_occupancy t ~at_ns occ = Vec.push t.occupancy (at_ns, occ)

let cycles t = Vec.to_list t.cycles

let cycle_count t = Vec.length t.cycles

let last_cycle t =
  let n = Vec.length t.cycles in
  if n = 0 then None else Some (Vec.get t.cycles (n - 1))

let count p t = Vec.fold_left (fun n c -> if p c then n + 1 else n) 0 t.cycles

let minor_count t = count (function Minor _ -> true | Major _ -> false) t

let major_count t = count (function Major _ -> true | Minor _ -> false) t

let minor_total_ns t =
  Vec.fold_left
    (fun acc -> function Minor m -> acc +. m.duration_ns | Major _ -> acc)
    0.0 t.cycles

let major_total_ns t =
  Vec.fold_left
    (fun acc -> function Major m -> acc +. m.duration_ns | Minor _ -> acc)
    0.0 t.cycles

let avg_major_ns t =
  let n = major_count t in
  if n = 0 then 0.0 else major_total_ns t /. float_of_int n

let zero_phases =
  { marking_ns = 0.0; precompact_ns = 0.0; adjust_ns = 0.0; compact_ns = 0.0 }

let add_phases a b =
  {
    marking_ns = a.marking_ns +. b.marking_ns;
    precompact_ns = a.precompact_ns +. b.precompact_ns;
    adjust_ns = a.adjust_ns +. b.adjust_ns;
    compact_ns = a.compact_ns +. b.compact_ns;
  }

let phase_totals t =
  Vec.fold_left
    (fun acc -> function
      | Major m -> add_phases acc m.phases
      | Minor _ -> acc)
    zero_phases t.cycles

let occupancy_timeline t = Vec.to_list t.occupancy
