(** Mutator-facing runtime API ("MiniJVM").

    Frameworks allocate objects, store references (through the post-write
    barrier with its H1/H2 range check, §4), touch data, and register GC
    roots through this module. Allocation transparently triggers minor and
    major collections exactly as heap pressure dictates; the TeraHeap hint
    calls are re-exported from {!Th_core.H2} for convenience. *)

type t = Rt.t

exception Out_of_memory of string
(** Alias of {!Rt.Out_of_memory}. *)

exception Invalid_heap_state of { object_id : int; phase : string }
(** Alias of {!Rt.Invalid_heap_state}: an object's location contradicted
    the runtime configuration or collection phase (for instance an
    [In_h2] object reached while no H2 heap is attached). Indicates a
    simulator bug, not a recoverable condition; the payload names the
    offending object and the phase that found it. *)

val create :
  ?collector:Rt.collector ->
  ?profile:Cost_profile.t ->
  ?rset_mode:Rt.rset_mode ->
  ?h2:Th_core.H2.t ->
  ?policy:Th_policy.Policy.t ->
  clock:Th_sim.Clock.t ->
  costs:Th_sim.Costs.t ->
  heap:Th_minijvm.H1_heap.t ->
  unit ->
  t

val clock : t -> Th_sim.Clock.t

val costs : t -> Th_sim.Costs.t

val heap : t -> Th_minijvm.H1_heap.t

val h2 : t -> Th_core.H2.t option

val stats : t -> Gc_stats.t

val roots : t -> Th_objmodel.Roots.t

val teraheap_enabled : t -> bool

(** {1 Mutator operations} *)

val alloc :
  t -> ?kind:Th_objmodel.Heap_object.kind -> size:int -> unit ->
  Th_objmodel.Heap_object.t
(** Allocate in eden (or directly in the old generation for objects larger
    than half of eden). Runs minor/major GC on demand; raises
    {!Out_of_memory} when even a full collection cannot make room. *)

val write_ref :
  t -> Th_objmodel.Heap_object.t -> Th_objmodel.Heap_object.t -> unit
(** [write_ref t parent child] stores a reference, executing the post-write
    barrier: the range check selects the H1 or H2 card table. *)

val unlink_ref :
  t -> Th_objmodel.Heap_object.t -> Th_objmodel.Heap_object.t -> unit
(** Remove a reference (a field overwrite with null). Also a barriered
    store. *)

val replace_refs :
  t -> Th_objmodel.Heap_object.t -> Th_objmodel.Heap_object.t list -> unit
(** Overwrite all reference slots of [parent]. *)

val read_obj : t -> Th_objmodel.Heap_object.t -> unit
(** Touch an object's payload: mutator compute, plus page-cache I/O when it
    lives in H2 (faults land in "other" time, §6). *)

val update_obj : t -> Th_objmodel.Heap_object.t -> unit
(** Mutate an object's scalar payload in place: compute plus, for H2
    residents, the read-modify-write device traffic of §7.2. *)

val compute : t -> bytes:int -> unit
(** Pure computation over [bytes] of data, spread across the configured
    mutator threads. *)

val add_root : t -> Th_objmodel.Heap_object.t -> unit

val remove_root : t -> Th_objmodel.Heap_object.t -> unit

(** {1 GC entry points} *)

val minor_gc : t -> unit

val major_gc : t -> unit

val barrier_checks : t -> int
(** Number of post-write barriers executed (DaCapo overhead experiment). *)

(** {1 TeraHeap hints (no-ops without an H2)} *)

val h2_tag_root :
  t -> ?site:int -> Th_objmodel.Heap_object.t -> label:int -> unit
(** [site] (default [label]) names the allocation site for
    lifetime-profiling placement policies; it must be stable across runs
    of the same workload. *)

val h2_move : t -> label:int -> unit
