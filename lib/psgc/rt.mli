(** Runtime state shared by the mutator facade ({!Runtime}) and the
    collector ({!Ps_gc}). Kept in its own module to break the mutual
    dependency between allocation (which triggers GC) and collection.

    The record type is exposed: both halves of the runtime — and the
    {!Th_verify} sanitizer — read and update its fields directly. *)

open Th_sim
module Obj_ = Th_objmodel.Heap_object
module Roots = Th_objmodel.Roots
module H1_heap = Th_minijvm.H1_heap
module H2 = Th_core.H2

exception Out_of_memory of string

exception Invalid_heap_state of { object_id : int; phase : string }
(** Raised in place of the old [assert false] dead branches: an object's
    location contradicts the runtime configuration or collection phase
    (e.g. an [In_h2] object with no H2 heap attached). Carries enough
    context to identify the object and the phase that tripped over it. *)

val invalid_heap_state : object_id:int -> phase:string -> 'a

type collector = Ps | Ps_jdk11 | G1

type rset_mode = Card_buckets | Linear_scan
(** How minor GC finds old-to-young references. [Card_buckets] (default)
    visits only the dirty cards' remembered-set buckets; [Linear_scan]
    sweeps every old-generation object, checking its card — the original
    O(#old objects) implementation, kept as a debug/equivalence oracle. *)

type move_pressure = No_pressure | Move_all_tagged | Move_until_low
(** Pending move policy decided at the end of the previous major GC. *)

type safepoint = Before_minor | After_minor | Before_major | After_major
(** GC safepoints at which an external observer (the {!Th_verify}
    sanitizer) may inspect the heap. The hook lives here, not in the
    verifier, so the collector never depends on it. *)

type t = {
  clock : Clock.t;
  costs : Costs.t;
  heap : H1_heap.t;
  roots : Roots.t;
  h2 : H2.t option;
  profile : Cost_profile.t;
  collector : collector;
  rset_mode : rset_mode;
  stats : Gc_stats.t;
  mutable mark_epoch : int;
  mutable closure_epoch : int;
  mutable pressure : move_pressure;
  mutable in_gc : bool;
  mutable barrier_checks : int;  (** post-write barriers executed *)
  mutable g1_humongous_waste : int;
      (** wasted bytes in humongous regions *)
  g1_region_size : int;
  mutable safepoint_hook : (safepoint -> unit) option;
  mutable h2_move_gate : (unit -> bool) option;
      (** consulted once per major GC before the move-to-H2 passes;
          [false] suppresses moving for that cycle (tagged roots stay in
          H1). Installed by the {!Th_resilience} circuit breaker. *)
  mutable policy : Th_policy.Policy.t;
      (** decides which tagged roots move at each major GC and how they
          group into H2 regions; defaults to
          {!Th_policy.Policy.threshold}, the paper's behavior. The
          collector keeps the validity guards and the pressure budget. *)
}

val create :
  ?collector:collector ->
  ?profile:Cost_profile.t ->
  ?rset_mode:rset_mode ->
  ?h2:H2.t ->
  ?policy:Th_policy.Policy.t ->
  clock:Clock.t ->
  costs:Costs.t ->
  heap:H1_heap.t ->
  unit ->
  t

val safepoint : t -> safepoint -> unit
(** Announce a GC safepoint: runs the installed hook, if any. Called by
    {!Ps_gc} at entry and exit of the minor and major collections. *)

val h2_moves_allowed : t -> bool
(** Consult the installed move gate (true when none is installed). *)

val teraheap_enabled : t -> bool

val charge : t -> Clock.category -> float -> unit

val charge_minor : t -> float -> unit
(** Parallel minor-GC work divides over the GC threads. *)

val major_threads : t -> int
(** PS's old-generation collection is single-threaded in OpenJDK8,
    parallel in the JDK11/G1 configurations. *)

val gen_mult : t -> Obj_.t -> float
(** Cost-profile multiplier for the generation holding the object. *)
