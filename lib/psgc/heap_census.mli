(** Diagnostic census of live H1 contents, grouped by object kind.

    Used by drivers to explain out-of-memory conditions and by tests to
    assert on heap composition. *)

type entry = { kind : Th_objmodel.Heap_object.kind; count : int; bytes : int }

val of_runtime : Rt.t -> entry list
(** Entries for all objects currently in H1 spaces, largest first (ties
    broken by kind name, so the order is deterministic). *)

val total_bytes : entry list -> int
(** Sum of all entries' bytes — the census's view of H1 usage, compared
    by {!Th_verify} against the heap's own accounting. *)

val pp : Format.formatter -> entry list -> unit
